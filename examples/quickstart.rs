//! Quickstart: compile and run a mini-Scheme program, inspect the
//! instrumentation the paper's evaluation is built on.
//!
//! Run with: `cargo run --example quickstart`

use lesgs::compiler::{compile, CompilerConfig};
use lesgs::vm::ActivationClass;

fn main() {
    let src = r#"
        (define (sum-squares l)
          (if (null? l)
              0
              (+ (* (car l) (car l)) (sum-squares (cdr l)))))
        (display "sum of squares: ")
        (display (sum-squares '(1 2 3 4 5)))
        (newline)
        (sum-squares (iota 100))
    "#;

    let config = CompilerConfig::default();
    let compiled = compile(src, &config).expect("program compiles");
    let out = compiled.run(&config).expect("program runs");

    println!("program output:\n{}", out.output);
    println!("final value: {}", out.value);
    println!();
    println!("instructions:      {}", out.stats.instructions);
    println!("simulated cycles:  {}", out.stats.cycles);
    println!("stack references:  {}", out.stats.stack_refs());
    println!("register saves:    {}", out.stats.saves());
    println!("register restores: {}", out.stats.restores());
    println!("non-tail calls:    {}", out.stats.calls);
    println!("tail calls:        {}", out.stats.tail_calls);
    println!();
    println!("activation classes (Table 2's classification):");
    for class in ActivationClass::ALL {
        println!(
            "  {:<24} {:>6}",
            class.label(),
            out.stats.activations.get(&class).copied().unwrap_or(0)
        );
    }
    println!(
        "effective leaf fraction: {:.1}%",
        100.0 * out.stats.effective_leaf_fraction()
    );
}
