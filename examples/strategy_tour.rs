//! Runs a few benchmarks under every save/restore strategy and prints a
//! compact comparison — a miniature of the paper's evaluation section.
//!
//! Run with: `cargo run --release --example strategy_tour`

use lesgs::allocator::{AllocConfig, RestoreStrategy, SaveStrategy};
use lesgs::suite::tables::Table;
use lesgs::suite::{measure, programs, Scale};

fn main() {
    let configs: Vec<(String, AllocConfig)> = vec![
        ("lazy/eager".into(), AllocConfig::paper_default()),
        (
            "early/eager".into(),
            AllocConfig {
                save: SaveStrategy::Early,
                ..AllocConfig::paper_default()
            },
        ),
        (
            "late/eager".into(),
            AllocConfig {
                save: SaveStrategy::Late,
                ..AllocConfig::paper_default()
            },
        ),
        (
            "lazy/lazy".into(),
            AllocConfig {
                restore: RestoreStrategy::Lazy,
                ..AllocConfig::paper_default()
            },
        ),
        ("baseline (c=0)".into(), AllocConfig::baseline()),
    ];

    for name in ["tak", "queens", "deriv"] {
        let bench = programs::benchmark(name).expect("benchmark exists");
        let mut t = Table::new(vec![
            "config".into(),
            "cycles".into(),
            "stack refs".into(),
            "saves".into(),
            "restores".into(),
            "stalls".into(),
        ]);
        for (label, cfg) in &configs {
            let run = measure(&bench, Scale::Small, cfg).expect("benchmark runs");
            t.row(vec![
                label.clone(),
                run.stats.cycles.to_string(),
                run.stats.stack_refs().to_string(),
                run.stats.saves().to_string(),
                run.stats.restores().to_string(),
                run.stats.stall_cycles.to_string(),
            ]);
        }
        println!("{name} (small scale)\n{t}");
    }
}
