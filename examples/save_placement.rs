//! Save placement under the three strategies, on the paper's own
//! motivating shapes.
//!
//! Run with: `cargo run --example save_placement`

use lesgs::allocator::toy::{s_revised, s_simple, save_set, Toy};
use lesgs::allocator::{allocate_program, AllocConfig, SaveStrategy};
use lesgs::frontend::pipeline;
use lesgs::ir::machine::arg_reg;
use lesgs::ir::{lower_program, RegSet};

fn show_allocated(src: &str, name: &str) {
    println!("  source: {}", src.lines().next().unwrap_or("").trim());
    for save in [SaveStrategy::Lazy, SaveStrategy::Early, SaveStrategy::Late] {
        let ir = lower_program(&pipeline::front_to_closed(src).expect("compiles"));
        let cfg = AllocConfig {
            save,
            ..AllocConfig::paper_default()
        };
        let allocated = allocate_program(&ir, &cfg);
        let f = allocated
            .funcs
            .iter()
            .find(|f| f.name == name)
            .expect("function exists");
        println!("  {save:?}:\n    {}", f.body);
    }
    println!();
}

fn main() {
    println!("== The paper's §2.1.2 example, in the simplified language ==\n");
    let live: RegSet = [arg_reg(0), arg_reg(1)].into_iter().collect();
    let x = Toy::Var(arg_reg(0));
    let inner = Toy::if_(x.clone(), Toy::call(live.iter()), Toy::False);
    let outer = Toy::if_(inner.clone(), Toy::Var(arg_reg(1)), Toy::call(live.iter()));
    println!("A = (if (if x call false) y call), live = {live}");
    println!("  simple algorithm  S[A]           = {}", s_simple(&outer));
    let (st, sf) = s_revised(&outer);
    println!("  revised algorithm S_t[A]         = {st}");
    println!("  revised algorithm S_f[A]         = {sf}");
    println!("  save set          S_t ∩ S_f      = {}", save_set(&outer));
    println!(
        "  inner if's save set              = {}\n",
        save_set(&inner)
    );

    println!("== Save placement on real functions ==\n");
    println!("factorial — the base case is call-free, so lazy placement");
    println!("keeps the save out of it while early pays on every activation:\n");
    show_allocated(
        "(define (fact n) (if (zero? n) 1 (* n (fact (- n 1))))) (fact 5)",
        "fact",
    );

    println!("a tail-recursive loop — tail calls are jumps, so no strategy");
    println!("needs any saves at all:\n");
    show_allocated(
        "(define (loop i acc) (if (zero? i) acc (loop (- i 1) (+ acc i)))) (loop 9 0)",
        "loop",
    );

    println!("two calls in sequence — late saving is redundant on the");
    println!("second call; lazy saves once, as early as the call is inevitable:\n");
    show_allocated(
        "(define (g x) (if (zero? x) 0 (g (- x 1))))
         (define (f x) (+ (g x) (g (+ x 1))))
         (f 3)",
        "f",
    );
}
