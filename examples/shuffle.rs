//! Greedy argument shuffling on the paper's §2.3 examples.
//!
//! Run with: `cargo run --example shuffle`

use lesgs::allocator::alloc::ArgRef;
use lesgs::allocator::shuffle::{
    fixed_order, greedy, optimal_permi, optimal_temp_count, NodeSpec, Problem, Target,
};
use lesgs::ir::machine::arg_reg;
use lesgs::ir::RegSet;

fn spec(i: u16, target: usize, reads: &[usize]) -> NodeSpec {
    NodeSpec {
        arg: ArgRef::Arg(i),
        target: Target::Reg(arg_reg(target)),
        reads_regs: reads.iter().map(|&r| arg_reg(r)).collect(),
        reads_params: 0,
        complex: false,
        move_of: None,
    }
}

/// A pure register-to-register move argument: the shape the
/// permutation-aware strategy can resolve with `swap`/`permi`.
fn move_spec(i: u16, target: usize, src: usize) -> NodeSpec {
    NodeSpec {
        arg: ArgRef::Arg(i),
        target: Target::Reg(arg_reg(target)),
        reads_regs: RegSet::single(arg_reg(src)),
        reads_params: 0,
        complex: false,
        move_of: Some(arg_reg(src)),
    }
}

fn show(title: &str, problem: &Problem) {
    println!("== {title} ==");
    let plan = greedy(problem);
    println!("greedy plan ({} steps):", plan.steps.len());
    for s in &plan.steps {
        println!("  {s:?}");
    }
    println!(
        "cycle: {}, greedy temps: {}, optimal temps: {}",
        plan.had_cycle,
        plan.cycle_temps,
        optimal_temp_count(problem)
    );
    let naive = fixed_order(problem);
    println!(
        "fixed left-to-right would use {} stack temporaries\n",
        naive.frame_temps
    );
}

fn main() {
    // §2.3: "consider the call f(y, x), where at the time of the call x
    // is in argument register a1 and y in a2 … requiring a swap".
    let swap = Problem {
        nodes: vec![spec(0, 0, &[1]), spec(1, 1, &[0])],
        temp_regs: RegSet::single(arg_reg(2)),
    };
    show(
        "f(y, x) — a genuine swap; one temporary is unavoidable",
        &swap,
    );

    // §2.3: "the call f(x+y, y+1, y+z), where x is in register a1, y in
    // a2, z in a3, can be set up without shuffling by evaluating y+1
    // last."
    let reorder = Problem {
        nodes: vec![
            spec(0, 0, &[0, 1]), // x+y -> a0, reads x(a0), y(a1)
            spec(1, 1, &[1]),    // y+1 -> a1, reads y(a1)
            spec(2, 2, &[1, 2]), // y+z -> a2, reads y(a1), z(a2)
        ],
        temp_regs: RegSet::EMPTY,
    };
    show(
        "f(x+y, y+1, y+z) — reordering avoids every temporary",
        &reorder,
    );

    // A three-cycle: a0 <- a1, a1 <- a2, a2 <- a0.
    let rotation = Problem {
        nodes: vec![spec(0, 0, &[1]), spec(1, 1, &[2]), spec(2, 2, &[0])],
        temp_regs: RegSet::single(arg_reg(3)),
    };
    show(
        "three-register rotation — one temp breaks the cycle",
        &rotation,
    );

    // The same rotation, recognized as pure moves: the optimal
    // shuffle-code strategy replaces the whole cycle with a single
    // permi and zero temporaries.
    let move_rotation = Problem {
        nodes: vec![move_spec(0, 0, 1), move_spec(1, 1, 2), move_spec(2, 2, 0)],
        temp_regs: RegSet::single(arg_reg(3)),
    };
    let plan = optimal_permi(&move_rotation);
    println!("== same rotation under optimal shuffle code ==");
    println!("plan ({} steps):", plan.steps.len());
    for s in &plan.steps {
        println!("  {s:?}");
    }
    println!(
        "permutation instructions: {}, moves subsumed: {}, temps: {}",
        plan.perm_ops, plan.perm_moves, plan.cycle_temps
    );
}
