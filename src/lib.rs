//! # lesgs — Register Allocation Using Lazy Saves, Eager Restores, and Greedy Shuffling
//!
//! A from-scratch Rust reproduction of Burger, Waddell & Dybvig
//! (PLDI '95): the linear intraprocedural register allocation strategy
//! used by Chez Scheme, together with everything needed to evaluate it —
//! a mini-Scheme compiler, a reference interpreter, an instrumented
//! register-machine VM with a memory-latency cost model, the Gabriel-
//! style benchmark suite, and harnesses regenerating every table and
//! figure in the paper.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`sexpr`] | `lesgs-sexpr` | S-expression reader/printer |
//! | [`frontend`] | `lesgs-frontend` | desugaring, renaming, assignment & closure conversion |
//! | [`interp`] | `lesgs-interp` | reference interpreter (differential oracle) |
//! | [`ir`] | `lesgs-ir` | allocator IR, register sets, machine model |
//! | [`allocator`] | `lesgs-core` | **the paper's contribution**: lazy saves, eager restores, greedy shuffling |
//! | [`codegen`] | `lesgs-codegen` | IR → VM code |
//! | [`vm`] | `lesgs-vm` | instrumented virtual machine |
//! | [`compiler`] | `lesgs-compiler` | end-to-end driver |
//! | [`engine`] | `lesgs-engine` | embeddable facade: compile, execute, versioned `.lbc` serialization |
//! | [`svc`] | `lesgs-svc` | batch compile-and-run service with a content-keyed program cache |
//! | [`metrics`] | `lesgs-metrics` | metrics registry, span timing, JSON reports |
//! | [`suite`] | `lesgs-suite` | benchmarks and experiment machinery |
//! | [`exec`] | `lesgs-exec` | deterministic worker pool behind every `--jobs` flag |
//! | [`fuzz`] | `lesgs-fuzz` | generative differential fuzzing: generator, oracle, shrinker |
//!
//! # Quick start
//!
//! The [`engine`] facade is the front door: compile once, execute
//! many times, and serialize compiled programs to the versioned
//! `.lbc` format (specified in `BYTECODE.md`):
//!
//! ```
//! use lesgs::engine::Engine;
//!
//! let engine = Engine::new();
//! let program = engine.compile("(+ 40 2)").unwrap();
//! let blob = program.to_bytes();                  // versioned .lbc bytes
//! let loaded = engine.load_program(&blob).unwrap(); // verified on load
//! assert_eq!(engine.execute(&loaded).unwrap().value, "42");
//! ```
//!
//! The lower-level pipeline remains available:
//!
//! ```
//! use lesgs::compiler::{run_source, CompilerConfig};
//!
//! let out = run_source(
//!     "(define (fact n) (if (zero? n) 1 (* n (fact (- n 1))))) (fact 10)",
//!     &CompilerConfig::default(),
//! ).unwrap();
//! assert_eq!(out.value, "3628800");
//! // The run is fully instrumented:
//! assert!(out.stats.saves() > 0);
//! assert!(out.stats.effective_leaf_fraction() > 0.0);
//! ```
//!
//! # Comparing save strategies
//!
//! ```
//! use lesgs::allocator::{AllocConfig, SaveStrategy};
//! use lesgs::compiler::{run_source, CompilerConfig};
//!
//! let src = "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) (fib 12)";
//! let run = |save| {
//!     let cfg = CompilerConfig::with_alloc(AllocConfig { save, ..AllocConfig::default() });
//!     run_source(src, &cfg).unwrap().stats
//! };
//! let lazy = run(SaveStrategy::Lazy);
//! let early = run(SaveStrategy::Early);
//! // Lazy placement executes fewer save stores than saving at entry.
//! assert!(lazy.saves() < early.saves());
//! ```

pub use lesgs_codegen as codegen;
pub use lesgs_compiler as compiler;
pub use lesgs_core as allocator;
pub use lesgs_engine as engine;
pub use lesgs_exec as exec;
pub use lesgs_frontend as frontend;
pub use lesgs_fuzz as fuzz;
pub use lesgs_interp as interp;
pub use lesgs_ir as ir;
pub use lesgs_metrics as metrics;
pub use lesgs_sexpr as sexpr;
pub use lesgs_suite as suite;
pub use lesgs_svc as svc;
pub use lesgs_vm as vm;
