//! CLI for the fusion-table generator.
//!
//! * `lesgs-fusegen` — mine the corpus and rewrite
//!   `crates/vm/src/fusion_table.rs` in place.
//! * `lesgs-fusegen --check` — mine and compare against the checked-in
//!   file; exit nonzero on any drift (the CI drift gate).
//!
//! Both modes print the enabled pair/triple tables and the top-10 raw
//! mined pairs and triples, so the CI job log shows what the
//! measurement saw.

use lesgs_fusegen::{build_table, build_triple_table, corpus, mine, regenerate, table_path};

fn main() {
    let mut check = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--check" => check = true,
            other => {
                eprintln!("unknown option `{other}`\nusage: lesgs-fusegen [--check]");
                std::process::exit(2);
            }
        }
    }

    let corpus = match corpus() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("fusegen: failed to read corpus: {e}");
            std::process::exit(1);
        }
    };
    let report = mine(&corpus);
    let table = build_table(&report);
    let triples = build_triple_table(&report);

    eprintln!(
        "fusegen: mined {} programs ({} skipped), {} dynamic ops",
        report.programs_mined, report.programs_skipped, report.total_executed
    );
    for entry in &table {
        eprintln!(
            "fusegen:   enabled pair   {:<16} {:>12}",
            entry.kind.key(),
            entry.dynamic_count
        );
    }
    for entry in &triples {
        eprintln!(
            "fusegen:   enabled triple {:<16} {:>12}",
            entry.kind.key(),
            entry.dynamic_count
        );
    }
    eprintln!("fusegen: top mined pairs (template or not):");
    for (key, count) in report.top_pairs(10) {
        eprintln!("fusegen:   {count:>12}  {key}");
    }
    eprintln!("fusegen: top mined triples (template or not):");
    for (key, count) in report.top_triples(10) {
        eprintln!("fusegen:   {count:>12}  {key}");
    }

    let path = table_path();
    let current = std::fs::read_to_string(&path).unwrap_or_default();
    let fresh = regenerate(&current, &report, &table, &triples);

    if check {
        if current == fresh {
            eprintln!("fusegen: {} is up to date", path.display());
        } else {
            eprintln!(
                "fusegen: {} drifted from a fresh measurement;\n\
                 fusegen: regenerate with `cargo run --release -p lesgs-fusegen`",
                path.display()
            );
            for (i, (a, b)) in current.lines().zip(fresh.lines()).enumerate() {
                if a != b {
                    eprintln!("fusegen: first difference at line {}:", i + 1);
                    eprintln!("fusegen:   checked in: {a}");
                    eprintln!("fusegen:   fresh:      {b}");
                    break;
                }
            }
            std::process::exit(1);
        }
    } else if current == fresh {
        eprintln!("fusegen: {} already up to date", path.display());
    } else {
        if let Err(e) = std::fs::write(&path, &fresh) {
            eprintln!("fusegen: failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("fusegen: wrote {}", path.display());
    }
}
