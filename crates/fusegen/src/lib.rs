//! Fusion-table generator: mines dynamic opcode-pair and -triple
//! frequencies.
//!
//! The VM's superinstruction decoder (`lesgs-vm`'s `decode` module)
//! knows fixed *catalogues* of pair and triple templates it can fuse,
//! but which templates are worth enabling is an empirical question: a
//! fused handler only pays for itself when its shape is hot in real
//! programs. This crate answers that question by measurement and
//! emits the checked-in `crates/vm/src/fusion_table.rs` the decoder
//! consults.
//!
//! The pipeline:
//!
//! 1. **Corpus** — every `scheme-examples/*.scm` program plus a
//!    fixed-seed fuzz corpus ([`FUZZ_SEED`], [`FUZZ_CASES`]), so the
//!    measurement covers both the curated benchmarks and a broad
//!    mechanical sample of compiler output.
//! 2. **Mine** — compile each program, decode it *unfused* (empty
//!    table), and run it with per-pc execution profiling
//!    (`Machine::run_profiled`). In an unfused decode, decoded op
//!    `base + i` corresponds 1:1 to source instruction `i`, and every
//!    template's first half is a fallthrough op, so the dynamic count
//!    of a candidate pair at `i` is exactly `profile[base + i]`.
//!    Pair attribution replays the decoder's greedy left-to-right
//!    pairing so overlapping candidates are counted the way the real
//!    decoder would fuse them; triple attribution runs a separate
//!    greedy triple-only replay so the pair measurement is
//!    independent of the triple catalogue.
//! 3. **Select** — a template earns a table slot when it fires at
//!    least once per [`ENABLE_DENOMINATOR`] executed ops across the
//!    corpus; entries are ranked by descending dynamic count.
//! 4. **Render** — the generated file carries the measured counts, an
//!    FNV-1a checksum over the entries (a vm unit test recomputes it,
//!    so hand edits trip immediately), and top raw pair/triple
//!    frequency lists as comments for future catalogue work.
//!
//! Every input is fixed (seeds, configs, the deterministic VM), so
//! regeneration is reproducible across machines; CI runs
//! `lesgs-fusegen --check` and fails on any drift between the file
//! and a fresh measurement.

use std::collections::BTreeMap;
use std::path::PathBuf;

use lesgs_compiler::CompilerConfig;
use lesgs_fuzz::{case_seed, generate, GenConfig};
use lesgs_testkit::Rng;
use lesgs_vm::{
    fusion_table_checksum, template_match, template_match3, triple_table_checksum, CostModel,
    DecodedProgram, FusionEntry, FusionKind, Instr, Machine, TripleEntry, TripleKind,
};

/// Base seed for the fuzz half of the corpus. Fixed forever: changing
/// it changes the measurement and therefore the generated table.
pub const FUZZ_SEED: u64 = 0xF05E_2026;

/// Number of fuzz-generated corpus programs.
pub const FUZZ_CASES: u64 = 24;

/// Instruction budget per corpus run (matches the dispatch fixture
/// tests' budget; every corpus program halts well within it).
pub const MINE_FUEL: u64 = 60_000_000;

/// A template earns a table slot when it fires at least once per this
/// many executed source ops across the whole corpus.
pub const ENABLE_DENOMINATOR: u64 = 1000;

/// Everything the miner measured, before selection.
#[derive(Debug, Clone, Default)]
pub struct MiningReport {
    /// Dynamic greedy-pair count per catalogue template.
    pub per_kind: [u64; FusionKind::COUNT],
    /// Dynamic greedy-triple count per triple-catalogue template,
    /// from a separate triple-only attribution scan (so the pair
    /// counts above stay independent of the triple catalogue).
    pub per_triple: [u64; TripleKind::COUNT],
    /// Total dynamic source ops executed across the corpus.
    pub total_executed: u64,
    /// Corpus programs that compiled and ran to completion.
    pub programs_mined: usize,
    /// Corpus programs skipped (compile or run failure).
    pub programs_skipped: usize,
    /// Raw adjacent-pair frequencies (mnemonic pair → dynamic count),
    /// fallthrough firsts only. Informational.
    pub raw_pairs: BTreeMap<String, u64>,
    /// Raw adjacent-triple frequencies, fallthrough prefixes only.
    pub raw_triples: BTreeMap<String, u64>,
}

impl MiningReport {
    /// Dynamic count for one catalogue template.
    pub fn count(&self, kind: FusionKind) -> u64 {
        self.per_kind[kind as usize]
    }

    /// Dynamic count for one triple-catalogue template.
    pub fn count3(&self, kind: TripleKind) -> u64 {
        self.per_triple[kind as usize]
    }

    /// The `n` hottest raw pairs, by descending count.
    pub fn top_pairs(&self, n: usize) -> Vec<(&str, u64)> {
        top_n(&self.raw_pairs, n)
    }

    /// The `n` hottest raw triples, by descending count.
    pub fn top_triples(&self, n: usize) -> Vec<(&str, u64)> {
        top_n(&self.raw_triples, n)
    }
}

fn top_n(map: &BTreeMap<String, u64>, n: usize) -> Vec<(&str, u64)> {
    let mut v: Vec<(&str, u64)> = map.iter().map(|(k, c)| (k.as_str(), *c)).collect();
    // Descending count; the BTreeMap's key order breaks ties.
    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    v.truncate(n);
    v
}

/// Directory holding the curated example programs.
pub fn examples_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scheme-examples")
}

/// Path of the generated table inside the vm crate.
pub fn table_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../vm/src/fusion_table.rs")
}

/// The full mining corpus as `(label, source)` pairs: every
/// `scheme-examples/*.scm` in name order, then the fixed-seed fuzz
/// programs.
pub fn corpus() -> std::io::Result<Vec<(String, String)>> {
    let mut out = Vec::new();
    let mut names: Vec<PathBuf> = std::fs::read_dir(examples_dir())?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "scm"))
        .collect();
    names.sort();
    for path in names {
        let label = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        out.push((label, std::fs::read_to_string(&path)?));
    }
    out.extend(fuzz_corpus(FUZZ_SEED, FUZZ_CASES));
    Ok(out)
}

/// The fuzz half of the corpus, parameterized for tests.
pub fn fuzz_corpus(base_seed: u64, cases: u64) -> Vec<(String, String)> {
    (0..cases)
        .map(|i| {
            let seed = case_seed(base_seed, i);
            let mut rng = Rng::new(seed);
            let program = generate(&mut rng, &GenConfig::default());
            (format!("fuzz-{i:02} (seed {seed:#018x})"), program.render())
        })
        .collect()
}

/// True when control always continues at `pc + 1` after this op — the
/// property that makes `profile[first]` the pair's dynamic count.
fn falls_through(i: &Instr) -> bool {
    !matches!(
        i,
        Instr::Jump { .. }
            | Instr::BranchFalse { .. }
            | Instr::BranchTrue { .. }
            | Instr::Call { .. }
            | Instr::TailCall { .. }
            | Instr::Return
            | Instr::Halt
    )
}

/// Short mnemonic for the raw-frequency comment lists.
fn mnemonic(i: &Instr) -> &'static str {
    match i {
        Instr::LoadImm { .. } => "imm",
        Instr::LoadConst { .. } => "const",
        Instr::Mov { .. } => "mov",
        Instr::StackLoad { .. } => "load",
        Instr::StackStore { .. } => "store",
        Instr::Prim { .. } => "prim",
        Instr::Jump { .. } => "jump",
        Instr::BranchFalse { .. } => "brf",
        Instr::BranchTrue { .. } => "brt",
        Instr::Call { .. } => "call",
        Instr::TailCall { .. } => "tailcall",
        Instr::Return => "return",
        Instr::AllocClosure { .. } => "closure",
        Instr::ClosureSlotSet { .. } => "closure-set",
        Instr::LoadFree { .. } => "loadfree",
        Instr::LoadGlobal { .. } => "loadglobal",
        Instr::StoreGlobal { .. } => "storeglobal",
        Instr::Swap { .. } => "swap",
        Instr::Permi { .. } => "permi",
        Instr::Halt => "halt",
    }
}

/// Mines the given corpus: compiles, decodes unfused, runs profiled,
/// and aggregates dynamic pair counts. Programs that fail to compile
/// or run are skipped (and counted).
pub fn mine(corpus: &[(String, String)]) -> MiningReport {
    let config = CompilerConfig::default();
    let mut report = MiningReport::default();
    for (_label, source) in corpus {
        let Ok(compiled) = lesgs_compiler::compile(source, &config) else {
            report.programs_skipped += 1;
            continue;
        };
        let unfused = DecodedProgram::decode_with_table(&compiled.vm, &[], &[]);
        let machine = Machine::from_decoded(&unfused, CostModel::alpha_like()).with_fuel(MINE_FUEL);
        let Ok((_outcome, profile)) = machine.run_profiled() else {
            report.programs_skipped += 1;
            continue;
        };
        report.programs_mined += 1;
        report.total_executed += profile.iter().sum::<u64>();
        for (func, info) in compiled.vm.funcs.iter().zip(unfused.funcs()) {
            let base = info.base as usize;
            let code = &func.code;
            // Replay the decoder's greedy left-to-right pairing so
            // overlapping candidates are attributed exactly as the
            // real decoder would fuse them.
            let mut i = 0;
            while i + 1 < code.len() {
                if let Some(kind) = template_match(&code[i], &code[i + 1]) {
                    report.per_kind[kind as usize] += profile[base + i];
                    i += 2;
                } else {
                    i += 1;
                }
            }
            // Separate greedy triple-only replay. Triples are NOT
            // attributed through the pair scan above (and vice versa),
            // so the pair table stays byte-stable when the triple
            // catalogue changes — each scan models a decoder running
            // only that catalogue.
            let mut i = 0;
            while i + 2 < code.len() {
                if let Some(kind) = template_match3(&code[i], &code[i + 1], &code[i + 2]) {
                    report.per_triple[kind as usize] += profile[base + i];
                    i += 3;
                } else {
                    i += 1;
                }
            }
            // Raw frequency lists (informational): every adjacent
            // pair/triple whose prefix falls through, template or not.
            for (j, w) in code.windows(2).enumerate() {
                if falls_through(&w[0]) {
                    let key = format!("{} {}", mnemonic(&w[0]), mnemonic(&w[1]));
                    *report.raw_pairs.entry(key).or_insert(0) += profile[base + j];
                }
            }
            for (j, w) in code.windows(3).enumerate() {
                if falls_through(&w[0]) && falls_through(&w[1]) {
                    let key = format!(
                        "{} {} {}",
                        mnemonic(&w[0]),
                        mnemonic(&w[1]),
                        mnemonic(&w[2])
                    );
                    *report.raw_triples.entry(key).or_insert(0) += profile[base + j];
                }
            }
        }
    }
    report
}

/// Selects the enabled table from a mining report: templates firing at
/// least once per [`ENABLE_DENOMINATOR`] executed ops, ranked by
/// descending count (catalogue order breaks ties).
pub fn build_table(report: &MiningReport) -> Vec<FusionEntry> {
    let mut entries: Vec<FusionEntry> = FusionKind::ALL
        .iter()
        .map(|&kind| FusionEntry {
            kind,
            dynamic_count: report.count(kind),
        })
        .filter(|e| e.dynamic_count > 0)
        .filter(|e| e.dynamic_count.saturating_mul(ENABLE_DENOMINATOR) >= report.total_executed)
        .collect();
    entries.sort_by(|a, b| {
        b.dynamic_count
            .cmp(&a.dynamic_count)
            .then(a.kind.cmp(&b.kind))
    });
    entries
}

/// Selects the enabled triple table from a mining report, under the
/// same threshold and ranking discipline as [`build_table`].
pub fn build_triple_table(report: &MiningReport) -> Vec<TripleEntry> {
    let mut entries: Vec<TripleEntry> = TripleKind::ALL
        .iter()
        .map(|&kind| TripleEntry {
            kind,
            dynamic_count: report.count3(kind),
        })
        .filter(|e| e.dynamic_count > 0)
        .filter(|e| e.dynamic_count.saturating_mul(ENABLE_DENOMINATOR) >= report.total_executed)
        .collect();
    entries.sort_by(|a, b| {
        b.dynamic_count
            .cmp(&a.dynamic_count)
            .then(a.kind.cmp(&b.kind))
    });
    entries
}

/// Renders the generated `fusion_table.rs` source.
pub fn render(report: &MiningReport, table: &[FusionEntry], triples: &[TripleEntry]) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    s.push_str("//! @generated by lesgs-fusegen — do not edit by hand.\n");
    s.push_str("//!\n");
    s.push_str("//! The enabled superinstruction tables (pairs and triples), mined\n");
    s.push_str("//! from measured dynamic opcode-sequence frequencies. Regenerate\n");
    s.push_str("//! with `cargo run --release -p lesgs-fusegen`; CI runs\n");
    s.push_str("//! `lesgs-fusegen --check` and rejects any drift between this file\n");
    s.push_str("//! and a fresh measurement.\n");
    s.push_str("//!\n");
    s.push_str("//! Corpus: every `scheme-examples/*.scm` program plus a fixed-seed\n");
    s.push_str("//! fuzz corpus (see `lesgs-fusegen`'s `FUZZ_SEED`/`FUZZ_CASES`).\n");
    s.push_str("//!\n");
    let _ = writeln!(
        s,
        "//! Measurement: {} corpus programs mined ({} skipped), {} dynamic ops.",
        report.programs_mined, report.programs_skipped, report.total_executed
    );
    let _ = writeln!(
        s,
        "//! Selection: dynamic count ≥ total / {ENABLE_DENOMINATOR}."
    );
    s.push_str("//!\n");
    s.push_str("//! Hottest fallthrough pairs (dynamic, template or not):\n");
    for (key, count) in report.top_pairs(8) {
        let _ = writeln!(s, "//!   {count:>12}  {key}");
    }
    s.push_str("//!\n");
    s.push_str("//! Hottest fallthrough triples (dynamic, template or not):\n");
    for (key, count) in report.top_triples(8) {
        let _ = writeln!(s, "//!   {count:>12}  {key}");
    }
    s.push('\n');
    if triples.is_empty() {
        s.push_str("use crate::decode::{FusionEntry, FusionKind, TripleEntry};\n");
    } else {
        s.push_str("use crate::decode::{FusionEntry, FusionKind, TripleEntry, TripleKind};\n");
    }
    s.push('\n');
    s.push_str("/// Enabled fusion templates, ranked by measured dynamic pair count.\n");
    s.push_str("pub const FUSION_TABLE: &[FusionEntry] = &[\n");
    for entry in table {
        let _ = writeln!(
            s,
            "    FusionEntry {{\n        kind: FusionKind::{:?},\n        dynamic_count: {},\n    }},",
            entry.kind, entry.dynamic_count
        );
    }
    s.push_str("];\n");
    s.push('\n');
    s.push_str("/// FNV-1a integrity mark over the entries above (recomputed by a vm\n");
    s.push_str("/// unit test and by `lesgs-fusegen --check`).\n");
    let _ = writeln!(
        s,
        "pub const FUSION_TABLE_CHECKSUM: u64 = {:#018x};",
        fusion_table_checksum(table)
    );
    s.push('\n');
    s.push_str("/// Enabled triple-fusion templates, ranked by measured dynamic\n");
    s.push_str("/// triple count.\n");
    s.push_str("pub const TRIPLE_TABLE: &[TripleEntry] = &[\n");
    for entry in triples {
        let _ = writeln!(
            s,
            "    TripleEntry {{\n        kind: TripleKind::{:?},\n        dynamic_count: {},\n    }},",
            entry.kind, entry.dynamic_count
        );
    }
    s.push_str("];\n");
    s.push('\n');
    s.push_str("/// FNV-1a integrity mark over the triple entries above (recomputed\n");
    s.push_str("/// by a vm unit test and by `lesgs-fusegen --check`).\n");
    let _ = writeln!(
        s,
        "pub const TRIPLE_TABLE_CHECKSUM: u64 = {:#018x};",
        triple_table_checksum(triples)
    );
    s
}

/// The tail of the checked-in file that `render` does not produce (the
/// in-crate unit tests). Preserved verbatim on regeneration.
pub const TEST_MARKER: &str = "#[cfg(test)]";

/// Regenerates the full file contents: rendered header + table, plus
/// the existing `#[cfg(test)]` tail of `current` (if any) carried over
/// unchanged.
pub fn regenerate(
    current: &str,
    report: &MiningReport,
    table: &[FusionEntry],
    triples: &[TripleEntry],
) -> String {
    let mut out = render(report, table, triples);
    if let Some(pos) = current.find(TEST_MARKER) {
        out.push('\n');
        out.push_str(&current[pos..]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(per_kind: [u64; FusionKind::COUNT], total: u64) -> MiningReport {
        MiningReport {
            per_kind,
            total_executed: total,
            programs_mined: 1,
            ..Default::default()
        }
    }

    #[test]
    fn selection_applies_threshold_and_ranking() {
        // CmpBranch hot, MovMov hotter, ImmImm below 1/1000, rest zero.
        let mut per_kind = [0u64; FusionKind::COUNT];
        per_kind[FusionKind::CmpBranch as usize] = 5_000;
        per_kind[FusionKind::MovMov as usize] = 9_000;
        per_kind[FusionKind::ImmImm as usize] = 999;
        let table = build_table(&report_with(per_kind, 1_000_000));
        let kinds: Vec<FusionKind> = table.iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec![FusionKind::MovMov, FusionKind::CmpBranch]);
    }

    #[test]
    fn ties_break_in_catalogue_order() {
        let mut per_kind = [0u64; FusionKind::COUNT];
        per_kind[FusionKind::MovMov as usize] = 500;
        per_kind[FusionKind::CmpBranch as usize] = 500;
        let table = build_table(&report_with(per_kind, 1_000));
        let kinds: Vec<FusionKind> = table.iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec![FusionKind::CmpBranch, FusionKind::MovMov]);
    }

    #[test]
    fn triple_selection_applies_threshold_and_ranking() {
        let mut report = report_with([0; FusionKind::COUNT], 1_000_000);
        report.per_triple[TripleKind::PrimStoreMov as usize] = 5_000;
        report.per_triple[TripleKind::ImmPrimMov as usize] = 9_000;
        report.per_triple[TripleKind::LoadLoadLoad as usize] = 999;
        let table = build_triple_table(&report);
        let kinds: Vec<TripleKind> = table.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![TripleKind::ImmPrimMov, TripleKind::PrimStoreMov]
        );
    }

    #[test]
    fn rendered_table_round_trips_its_checksum() {
        let mut per_kind = [0u64; FusionKind::COUNT];
        per_kind[FusionKind::CmpBranch as usize] = 10;
        let mut report = report_with(per_kind, 10);
        report.per_triple[TripleKind::ImmPrimMov as usize] = 10;
        let table = build_table(&report);
        let triples = build_triple_table(&report);
        let rendered = render(&report, &table, &triples);
        let want = format!(
            "pub const FUSION_TABLE_CHECKSUM: u64 = {:#018x};",
            fusion_table_checksum(&table)
        );
        assert!(rendered.contains(&want));
        let want3 = format!(
            "pub const TRIPLE_TABLE_CHECKSUM: u64 = {:#018x};",
            triple_table_checksum(&triples)
        );
        assert!(rendered.contains(&want3));
        assert!(rendered.contains("TripleKind::ImmPrimMov"));
    }

    #[test]
    fn regenerate_preserves_test_tail() {
        let current = "old header\n\n#[cfg(test)]\nmod tests { fn keep_me() {} }\n";
        let report = report_with([0; FusionKind::COUNT], 0);
        let out = regenerate(current, &report, &[], &[]);
        assert!(out.contains("keep_me"));
        assert!(!out.contains("old header"));
    }

    /// End-to-end smoke on a tiny slice of the corpus: mining a real
    /// program must attribute nonzero dynamic pair AND triple counts.
    #[test]
    fn mining_counter_example_finds_hot_pairs() {
        let source = std::fs::read_to_string(examples_dir().join("counter.scm")).unwrap();
        let report = mine(&[("counter.scm".into(), source)]);
        assert_eq!(report.programs_mined, 1);
        assert_eq!(report.programs_skipped, 0);
        assert!(report.total_executed > 0);
        assert!(
            report.per_kind.iter().sum::<u64>() > 0,
            "no fusible pairs mined from counter.scm: {report:?}"
        );
        assert!(
            report.per_triple.iter().sum::<u64>() > 0,
            "no fusible triples mined from counter.scm: {report:?}"
        );
    }

    /// The fuzz half of the corpus is a pure function of the seed.
    #[test]
    fn fuzz_corpus_is_deterministic() {
        assert_eq!(fuzz_corpus(FUZZ_SEED, 3), fuzz_corpus(FUZZ_SEED, 3));
    }
}
