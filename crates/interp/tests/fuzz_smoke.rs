//! The interpreter is the differential oracle, so a campaign here
//! checks its robustness: every generated program must reach a clean
//! verdict — the oracle itself may never reject a well-formed
//! generated program, and fuel skips must stay rare.

use lesgs_fuzz::oracle::{CaseOutcome, SkipReason};
use lesgs_fuzz::{fuzz_case, FuzzOptions};

#[test]
fn oracle_accepts_every_generated_program() {
    let opts = FuzzOptions {
        seed: 0x0_2AC1E,
        cases: 40,
        ..Default::default()
    };
    let mut fuel_skips = 0u64;
    for index in 0..opts.cases {
        let (src, outcome, _) = fuzz_case(index, &opts);
        match outcome {
            CaseOutcome::Pass => {}
            CaseOutcome::Skip(SkipReason::Fuel) => fuel_skips += 1,
            CaseOutcome::Skip(SkipReason::OracleError(e)) => {
                panic!("oracle rejected a generated program: {e}\n{src}")
            }
            CaseOutcome::Find(f) => panic!("miscompile (not an oracle bug, but fatal): {f}"),
        }
    }
    assert!(
        fuel_skips * 5 <= opts.cases,
        "fuel skips too common: {fuel_skips}/{} — generator loop bounds drifted?",
        opts.cases
    );
}
