//! Persistent environments (shared-tail linked frames).

use std::cell::RefCell;
use std::rc::Rc;

use lesgs_frontend::VarId;

use crate::value::Value;

#[derive(Debug)]
struct EnvNode {
    var: VarId,
    val: RefCell<Value>,
    next: Env,
}

/// A lexical environment. Cloning is cheap (reference counted); frames
/// are shared between closures capturing the same scope.
#[derive(Debug, Clone, Default)]
pub struct Env(Option<Rc<EnvNode>>);

impl Env {
    /// The empty environment.
    pub fn empty() -> Env {
        Env(None)
    }

    /// Extends the environment with one binding.
    pub fn bind(&self, var: VarId, val: Value) -> Env {
        Env(Some(Rc::new(EnvNode {
            var,
            val: RefCell::new(val),
            next: self.clone(),
        })))
    }

    /// Extends with several bindings (left to right).
    pub fn bind_all(&self, vars: &[VarId], vals: Vec<Value>) -> Env {
        debug_assert_eq!(vars.len(), vals.len());
        let mut env = self.clone();
        for (v, val) in vars.iter().zip(vals) {
            env = env.bind(*v, val);
        }
        env
    }

    /// Reads a variable.
    pub fn get(&self, var: VarId) -> Option<Value> {
        let mut cur = &self.0;
        while let Some(node) = cur {
            if node.var == var {
                return Some(node.val.borrow().clone());
            }
            cur = &node.next.0;
        }
        None
    }

    /// Writes a variable (`set!`). Returns false if unbound.
    pub fn set(&self, var: VarId, val: Value) -> bool {
        let mut cur = &self.0;
        while let Some(node) = cur {
            if node.var == var {
                *node.val.borrow_mut() = val;
                return true;
            }
            cur = &node.next.0;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_and_lookup() {
        let env = Env::empty();
        let x = VarId(0);
        let y = VarId(1);
        let env = env.bind(x, Value::Fixnum(1)).bind(y, Value::Fixnum(2));
        assert!(matches!(env.get(x), Some(Value::Fixnum(1))));
        assert!(matches!(env.get(y), Some(Value::Fixnum(2))));
        assert!(env.get(VarId(9)).is_none());
    }

    #[test]
    fn shadowing_finds_innermost() {
        let x = VarId(0);
        let env = Env::empty()
            .bind(x, Value::Fixnum(1))
            .bind(x, Value::Fixnum(2));
        assert!(matches!(env.get(x), Some(Value::Fixnum(2))));
    }

    #[test]
    fn set_mutates_shared_frames() {
        let x = VarId(0);
        let base = Env::empty().bind(x, Value::Fixnum(1));
        let extended = base.bind(VarId(1), Value::Nil);
        assert!(extended.set(x, Value::Fixnum(42)));
        assert!(matches!(base.get(x), Some(Value::Fixnum(42))));
        assert!(!extended.set(VarId(7), Value::Nil));
    }

    #[test]
    fn bind_all_orders_left_to_right() {
        let env = Env::empty().bind_all(
            &[VarId(0), VarId(1)],
            vec![Value::Fixnum(1), Value::Fixnum(2)],
        );
        assert!(matches!(env.get(VarId(0)), Some(Value::Fixnum(1))));
        assert!(matches!(env.get(VarId(1)), Some(Value::Fixnum(2))));
    }
}
