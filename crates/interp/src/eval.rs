//! The evaluator: a tail-recursive tree walker with a step budget.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use lesgs_frontend::{Const, Expr, Lambda, Prim, VarId};
use lesgs_sexpr::Datum;

use crate::env::Env;
use crate::value::{ClosureV, Value};

/// What went wrong, beyond the rendered message — differential drivers
/// need to tell a timeout apart from a genuine failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InterpErrorKind {
    /// A genuine failure: type error, `(error …)`, unbound variable, or
    /// a frontend rejection.
    #[default]
    Runtime,
    /// A resource budget (steps, or nested non-tail evaluation depth)
    /// ran out before the program finished. Not a verdict about the
    /// program — only about the budget.
    FuelExhausted,
}

/// How many nested non-tail evaluations the interpreter allows. Tail
/// calls loop in place and cost nothing, but every non-tail
/// subexpression costs one native stack frame — without a bound,
/// runaway non-tail recursion like `(define (f) (+ (f) 0)) (f)` is a
/// native stack overflow (an abort) instead of a reportable error.
/// 4000 is an order of magnitude beyond any benchmark or generated
/// program (their non-tail depth is at most a few hundred), and the
/// dedicated wide-stack thread `run_source` evaluates on fits 4000
/// frames in every build profile. A fixed limit also keeps the
/// oracle's verdict taxonomy identical across profiles.
pub const MAX_EVAL_DEPTH: u64 = 4_000;

/// A runtime (or fuel) error.
#[derive(Debug, Clone, PartialEq)]
pub struct InterpError {
    /// Human-readable description.
    pub message: String,
    /// Failure class (runtime error vs. fuel exhaustion).
    pub kind: InterpErrorKind,
}

impl InterpError {
    /// Creates a runtime error with the given message.
    pub fn new(message: impl Into<String>) -> InterpError {
        InterpError {
            message: message.into(),
            kind: InterpErrorKind::Runtime,
        }
    }

    /// Creates the fuel-exhaustion error.
    pub fn fuel() -> InterpError {
        InterpError {
            message: "fuel exhausted".to_owned(),
            kind: InterpErrorKind::FuelExhausted,
        }
    }

    /// Creates the recursion-depth error. Classified as budget
    /// exhaustion: like fuel, it is a resource limit, not a verdict
    /// about the program.
    pub fn depth() -> InterpError {
        InterpError {
            message: format!("recursion too deep ({MAX_EVAL_DEPTH} nested non-tail evals)"),
            kind: InterpErrorKind::FuelExhausted,
        }
    }

    /// True when this error means the step budget ran out (as opposed
    /// to the program being wrong).
    pub fn is_fuel_exhausted(&self) -> bool {
        self.kind == InterpErrorKind::FuelExhausted
    }
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "interpreter error: {}", self.message)
    }
}

impl std::error::Error for InterpError {}

type Result<T> = std::result::Result<T, InterpError>;

/// Interpreter-internal expression: reference-counted so the evaluation
/// loop can move between bodies without cloning trees.
pub type IExpr = Rc<Node>;

/// One interpreter AST node.
#[derive(Debug)]
pub enum Node {
    /// Immediate constant (quoted data prebuilt and shared).
    Const(Value),
    /// Variable reference.
    Var(VarId),
    /// Global location reference.
    Global(u32),
    /// Assignment.
    Set(VarId, IExpr),
    /// Global location assignment.
    GlobalSet(u32, IExpr),
    /// Conditional.
    If(IExpr, IExpr, IExpr),
    /// Sequence (non-empty).
    Seq(Vec<IExpr>),
    /// Abstraction.
    Lambda {
        /// Parameters.
        params: Vec<VarId>,
        /// Body.
        body: IExpr,
        /// Diagnostic name.
        name: Option<String>,
    },
    /// Parallel bindings.
    Let(Vec<(VarId, IExpr)>, IExpr),
    /// Recursive procedure bindings.
    Letrec(Vec<(VarId, IExpr)>, IExpr),
    /// Application.
    App(IExpr, Vec<IExpr>),
    /// Primitive application.
    PrimApp(Prim, Vec<IExpr>),
}

fn datum_to_value(d: &Datum) -> Value {
    match d {
        Datum::Fixnum(n) => Value::Fixnum(*n),
        Datum::Bool(b) => Value::Bool(*b),
        Datum::Char(c) => Value::Char(*c),
        Datum::Str(s) => Value::Str(Rc::new(s.clone())),
        Datum::Symbol(s) => Value::Symbol(Rc::new(s.clone())),
        Datum::List(items) => items
            .iter()
            .rev()
            .fold(Value::Nil, |acc, d| Value::cons(datum_to_value(d), acc)),
        Datum::Improper(items, tail) => items.iter().rev().fold(datum_to_value(tail), |acc, d| {
            Value::cons(datum_to_value(d), acc)
        }),
        Datum::Vector(items) => Value::Vector(Rc::new(RefCell::new(
            items.iter().map(datum_to_value).collect(),
        ))),
    }
}

fn const_to_value(c: &Const) -> Value {
    match c {
        Const::Fixnum(n) => Value::Fixnum(*n),
        Const::Bool(b) => Value::Bool(*b),
        Const::Char(c) => Value::Char(*c),
        Const::Str(s) => Value::Str(Rc::new(s.clone())),
        Const::Nil => Value::Nil,
        Const::Void => Value::Void,
        Const::Symbol(s) => Value::Symbol(Rc::new(s.clone())),
        Const::Datum(d) => datum_to_value(d),
    }
}

/// Converts the frontend AST into the interpreter's shared form.
/// Quoted structured data is built once here, so repeated evaluation
/// yields the identical (`eq?`) object, matching compiled constant
/// pools.
pub fn lower(e: &Expr<VarId>) -> IExpr {
    Rc::new(match e {
        Expr::Const(c) => Node::Const(const_to_value(c)),
        Expr::Var(v) => Node::Var(*v),
        Expr::Global(g) => Node::Global(*g),
        Expr::Set(v, rhs) => Node::Set(*v, lower(rhs)),
        Expr::GlobalSet(g, rhs) => Node::GlobalSet(*g, lower(rhs)),
        Expr::If(c, t, el) => Node::If(lower(c), lower(t), lower(el)),
        Expr::Seq(es) => Node::Seq(es.iter().map(lower).collect()),
        Expr::Lambda(l) => lower_lambda(l),
        Expr::Let(bs, b) => Node::Let(bs.iter().map(|(v, e)| (*v, lower(e))).collect(), lower(b)),
        Expr::Letrec(bs, b) => Node::Letrec(
            bs.iter()
                .map(|(v, l)| (*v, Rc::new(lower_lambda(l))))
                .collect(),
            lower(b),
        ),
        Expr::App(f, args) => Node::App(lower(f), args.iter().map(lower).collect()),
        Expr::PrimApp(p, args) => Node::PrimApp(*p, args.iter().map(lower).collect()),
    })
}

fn lower_lambda(l: &Lambda<VarId>) -> Node {
    Node::Lambda {
        params: l.params.clone(),
        body: lower(&l.body),
        name: l.name.clone(),
    }
}

/// The result of a successful run.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// The final value, rendered in `write` style.
    pub value: String,
    /// Everything printed by `display`/`write`/`newline`.
    pub output: String,
    /// Steps consumed.
    pub steps: u64,
}

/// The interpreter state: fuel and output buffer.
#[derive(Debug)]
pub struct Interp {
    fuel: u64,
    steps: u64,
    output: String,
    globals: Vec<Value>,
    depth: u64,
}

impl Interp {
    /// Creates an interpreter with the given step budget.
    pub fn new(fuel: u64) -> Interp {
        Interp {
            fuel,
            steps: 0,
            depth: 0,
            output: String::new(),
            globals: Vec::new(),
        }
    }

    /// Reserves `n` global locations (initialized to the unspecified
    /// value, like the compiled program's global table).
    pub fn with_globals(mut self, n: u32) -> Interp {
        self.globals = vec![Value::Void; n as usize];
        self
    }

    /// Evaluates a closed expression as a whole program.
    ///
    /// # Errors
    ///
    /// Runtime type errors, `(error …)`, unbound variables, and fuel
    /// exhaustion.
    pub fn run(&mut self, program: &Expr<VarId>) -> Result<Outcome> {
        let lowered = lower(program);
        let value = self.eval(lowered, Env::empty())?;
        Ok(Outcome {
            value: value.write_string(),
            output: std::mem::take(&mut self.output),
            steps: self.steps,
        })
    }

    fn tick(&mut self) -> Result<()> {
        self.steps += 1;
        if self.steps > self.fuel {
            Err(InterpError::fuel())
        } else {
            Ok(())
        }
    }

    fn eval(&mut self, expr: IExpr, env: Env) -> Result<Value> {
        if self.depth >= MAX_EVAL_DEPTH {
            return Err(InterpError::depth());
        }
        self.depth += 1;
        let result = self.eval_loop(expr, env);
        self.depth -= 1;
        result
    }

    fn eval_loop(&mut self, mut expr: IExpr, mut env: Env) -> Result<Value> {
        loop {
            self.tick()?;
            match &*expr {
                Node::Const(v) => return Ok(v.clone()),
                Node::Var(v) => {
                    return env
                        .get(*v)
                        .ok_or_else(|| InterpError::new(format!("unbound variable {v}")))
                }
                Node::Global(g) => {
                    return self
                        .globals
                        .get(*g as usize)
                        .cloned()
                        .ok_or_else(|| InterpError::new(format!("global {g} out of range")))
                }
                Node::GlobalSet(g, rhs) => {
                    let val = self.eval(rhs.clone(), env.clone())?;
                    let slot = self
                        .globals
                        .get_mut(*g as usize)
                        .ok_or_else(|| InterpError::new(format!("global {g} out of range")))?;
                    *slot = val;
                    return Ok(Value::Void);
                }
                Node::Set(v, rhs) => {
                    let val = self.eval(rhs.clone(), env.clone())?;
                    if env.set(*v, val) {
                        return Ok(Value::Void);
                    }
                    return Err(InterpError::new(format!("set! of unbound {v}")));
                }
                Node::If(c, t, e) => {
                    let cond = self.eval(c.clone(), env.clone())?;
                    expr = if cond.is_truthy() {
                        t.clone()
                    } else {
                        e.clone()
                    };
                }
                Node::Seq(es) => {
                    let (last, init) = es.split_last().expect("non-empty seq");
                    for e in init {
                        self.eval(e.clone(), env.clone())?;
                    }
                    expr = last.clone();
                }
                Node::Lambda { params, body, name } => {
                    return Ok(Value::Closure(Rc::new(ClosureV {
                        params: params.clone(),
                        body: body.clone(),
                        env,
                        name: name.clone(),
                    })))
                }
                Node::Let(bs, b) => {
                    let mut vals = Vec::with_capacity(bs.len());
                    for (_, rhs) in bs {
                        vals.push(self.eval(rhs.clone(), env.clone())?);
                    }
                    let vars: Vec<VarId> = bs.iter().map(|(v, _)| *v).collect();
                    env = env.bind_all(&vars, vals);
                    expr = b.clone();
                }
                Node::Letrec(bs, b) => {
                    // Bind names to placeholders, then tie the knot.
                    for (v, _) in bs {
                        env = env.bind(*v, Value::Void);
                    }
                    for (v, lam) in bs {
                        let clo = self.eval(lam.clone(), env.clone())?;
                        env.set(*v, clo);
                    }
                    expr = b.clone();
                }
                Node::App(f, args) => {
                    let callee = self.eval(f.clone(), env.clone())?;
                    let mut vals = Vec::with_capacity(args.len());
                    for a in args {
                        vals.push(self.eval(a.clone(), env.clone())?);
                    }
                    let Value::Closure(clo) = callee else {
                        return Err(InterpError::new(format!(
                            "call of non-procedure `{}`",
                            callee.write_string()
                        )));
                    };
                    if clo.params.len() != vals.len() {
                        return Err(InterpError::new(format!(
                            "arity mismatch calling {}: expected {}, got {}",
                            clo.name.as_deref().unwrap_or("#<anonymous>"),
                            clo.params.len(),
                            vals.len()
                        )));
                    }
                    env = clo.env.bind_all(&clo.params, vals);
                    expr = clo.body.clone();
                }
                Node::PrimApp(p, args) => {
                    let mut vals = Vec::with_capacity(args.len());
                    for a in args {
                        vals.push(self.eval(a.clone(), env.clone())?);
                    }
                    return self.apply_prim(*p, vals);
                }
            }
        }
    }

    fn apply_prim(&mut self, p: Prim, mut args: Vec<Value>) -> Result<Value> {
        use Prim::*;

        fn fixnum(v: &Value, who: Prim) -> Result<i64> {
            match v {
                Value::Fixnum(n) => Ok(*n),
                other => Err(InterpError::new(format!(
                    "{who}: expected number, got {}",
                    other.write_string()
                ))),
            }
        }
        fn pair(v: &Value, who: Prim) -> Result<Rc<RefCell<(Value, Value)>>> {
            match v {
                Value::Pair(p) => Ok(p.clone()),
                other => Err(InterpError::new(format!(
                    "{who}: expected pair, got {}",
                    other.write_string()
                ))),
            }
        }
        fn vector(v: &Value, who: Prim) -> Result<Rc<RefCell<Vec<Value>>>> {
            match v {
                Value::Vector(v) => Ok(v.clone()),
                other => Err(InterpError::new(format!(
                    "{who}: expected vector, got {}",
                    other.write_string()
                ))),
            }
        }
        fn arith(p: Prim, a: i64, b: i64) -> Result<i64> {
            let overflow = || InterpError::new(format!("{p}: fixnum overflow"));
            match p {
                Add => a.checked_add(b).ok_or_else(overflow),
                Sub => a.checked_sub(b).ok_or_else(overflow),
                Mul => a.checked_mul(b).ok_or_else(overflow),
                Quotient | Remainder | Modulo => {
                    if b == 0 {
                        return Err(InterpError::new(format!("{p}: division by zero")));
                    }
                    match p {
                        Quotient => a.checked_div(b).ok_or_else(overflow),
                        Remainder => a.checked_rem(b).ok_or_else(overflow),
                        _ => Ok(((a % b) + b) % b),
                    }
                }
                Min => Ok(a.min(b)),
                Max => Ok(a.max(b)),
                _ => unreachable!("not a binary arithmetic prim"),
            }
        }

        let a0 = || args.first().cloned().expect("arity checked by renamer");
        let a1 = || args.get(1).cloned().expect("arity checked by renamer");

        Ok(match p {
            Add | Sub | Mul | Quotient | Remainder | Modulo | Min | Max => {
                let (a, b) = (fixnum(&a0(), p)?, fixnum(&a1(), p)?);
                Value::Fixnum(arith(p, a, b)?)
            }
            Abs => Value::Fixnum(
                fixnum(&a0(), p)?
                    .checked_abs()
                    .ok_or_else(|| InterpError::new("abs: fixnum overflow"))?,
            ),
            Add1 => Value::Fixnum(
                fixnum(&a0(), p)?
                    .checked_add(1)
                    .ok_or_else(|| InterpError::new("add1: fixnum overflow"))?,
            ),
            Sub1 => Value::Fixnum(
                fixnum(&a0(), p)?
                    .checked_sub(1)
                    .ok_or_else(|| InterpError::new("sub1: fixnum overflow"))?,
            ),
            IsZero => Value::Bool(fixnum(&a0(), p)? == 0),
            IsPositive => Value::Bool(fixnum(&a0(), p)? > 0),
            IsNegative => Value::Bool(fixnum(&a0(), p)? < 0),
            IsEven => Value::Bool(fixnum(&a0(), p)? % 2 == 0),
            IsOdd => Value::Bool(fixnum(&a0(), p)? % 2 != 0),
            NumEq => Value::Bool(fixnum(&a0(), p)? == fixnum(&a1(), p)?),
            Lt => Value::Bool(fixnum(&a0(), p)? < fixnum(&a1(), p)?),
            Le => Value::Bool(fixnum(&a0(), p)? <= fixnum(&a1(), p)?),
            Gt => Value::Bool(fixnum(&a0(), p)? > fixnum(&a1(), p)?),
            Ge => Value::Bool(fixnum(&a0(), p)? >= fixnum(&a1(), p)?),
            IsEq | IsEqv => Value::Bool(a0().eq_ptr(&a1())),
            IsEqual => Value::Bool(a0().eq_structural(&a1())),
            Not => Value::Bool(!a0().is_truthy()),
            IsPair => Value::Bool(matches!(a0(), Value::Pair(_))),
            IsNull => Value::Bool(matches!(a0(), Value::Nil)),
            IsSymbol => Value::Bool(matches!(a0(), Value::Symbol(_))),
            IsNumber => Value::Bool(matches!(a0(), Value::Fixnum(_))),
            IsBoolean => Value::Bool(matches!(a0(), Value::Bool(_))),
            IsProcedure => Value::Bool(matches!(a0(), Value::Closure(_))),
            IsVector => Value::Bool(matches!(a0(), Value::Vector(_))),
            IsString => Value::Bool(matches!(a0(), Value::Str(_))),
            IsChar => Value::Bool(matches!(a0(), Value::Char(_))),
            Cons => Value::cons(a0(), a1()),
            Car => pair(&a0(), p)?.borrow().0.clone(),
            Cdr => pair(&a0(), p)?.borrow().1.clone(),
            SetCar => {
                pair(&a0(), p)?.borrow_mut().0 = a1();
                Value::Void
            }
            SetCdr => {
                pair(&a0(), p)?.borrow_mut().1 = a1();
                Value::Void
            }
            MakeVector | MakeVectorFill => {
                let n = fixnum(&a0(), p)?;
                if n < 0 {
                    return Err(InterpError::new("make-vector: negative length"));
                }
                let fill = if p == MakeVectorFill {
                    a1()
                } else {
                    Value::Fixnum(0)
                };
                Value::Vector(Rc::new(RefCell::new(vec![fill; n as usize])))
            }
            VectorRef => {
                let v = vector(&a0(), p)?;
                let i = fixnum(&a1(), p)?;
                let v = v.borrow();
                v.get(
                    usize::try_from(i)
                        .ok()
                        .filter(|&i| i < v.len())
                        .ok_or_else(|| {
                            InterpError::new(format!("vector-ref: index {i} out of range"))
                        })?,
                )
                .cloned()
                .expect("bounds checked")
            }
            VectorSet => {
                let v = vector(&a0(), p)?;
                let i = fixnum(&a1(), p)?;
                let x = args.pop().expect("three args");
                let mut v = v.borrow_mut();
                let len = v.len();
                let slot = v
                    .get_mut(
                        usize::try_from(i)
                            .ok()
                            .filter(|&i| i < len)
                            .ok_or_else(|| {
                                InterpError::new(format!("vector-set!: index {i} out of range"))
                            })?,
                    )
                    .expect("bounds checked");
                *slot = x;
                Value::Void
            }
            VectorLength => Value::Fixnum(vector(&a0(), p)?.borrow().len() as i64),
            StringLength => match a0() {
                Value::Str(s) => Value::Fixnum(s.chars().count() as i64),
                other => {
                    return Err(InterpError::new(format!(
                        "string-length: expected string, got {}",
                        other.write_string()
                    )))
                }
            },
            CharToInteger => match a0() {
                Value::Char(c) => Value::Fixnum(c as i64),
                other => {
                    return Err(InterpError::new(format!(
                        "char->integer: expected char, got {}",
                        other.write_string()
                    )))
                }
            },
            Display => {
                self.output.push_str(&a0().display_string());
                Value::Void
            }
            Write => {
                self.output.push_str(&a0().write_string());
                Value::Void
            }
            Newline => {
                self.output.push('\n');
                Value::Void
            }
            Error => {
                return Err(InterpError::new(format!(
                    "error: {}",
                    a0().display_string()
                )))
            }
            Void => Value::Void,
            MakeCell => Value::Cell(Rc::new(RefCell::new(a0()))),
            CellRef => match a0() {
                Value::Cell(c) => c.borrow().clone(),
                other => {
                    return Err(InterpError::new(format!(
                        "unbox: expected box, got {}",
                        other.write_string()
                    )))
                }
            },
            CellSet => match a0() {
                Value::Cell(c) => {
                    *c.borrow_mut() = a1();
                    Value::Void
                }
                other => {
                    return Err(InterpError::new(format!(
                        "set-box!: expected box, got {}",
                        other.write_string()
                    )))
                }
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::run_source;

    fn value(src: &str) -> String {
        run_source(src, 10_000_000).unwrap().value
    }

    fn output(src: &str) -> String {
        run_source(src, 10_000_000).unwrap().output
    }

    fn fails(src: &str) -> String {
        run_source(src, 10_000_000).unwrap_err().message
    }

    #[test]
    fn arithmetic() {
        assert_eq!(value("(+ 1 2 3)"), "6");
        assert_eq!(value("(- 10 1 2)"), "7");
        assert_eq!(value("(* 2 3 4)"), "24");
        assert_eq!(value("(quotient 7 2)"), "3");
        assert_eq!(value("(remainder 7 2)"), "1");
        assert_eq!(value("(remainder -7 2)"), "-1");
        assert_eq!(value("(modulo -7 2)"), "1");
        assert_eq!(value("(min 3 1)"), "1");
        assert_eq!(value("(max 3 1)"), "3");
        assert_eq!(value("(abs -4)"), "4");
    }

    #[test]
    fn comparisons_and_predicates() {
        assert_eq!(value("(< 1 2 3)"), "#t");
        assert_eq!(value("(< 1 3 2)"), "#f");
        assert_eq!(value("(= 2 2)"), "#t");
        assert_eq!(value("(zero? 0)"), "#t");
        assert_eq!(value("(odd? 3)"), "#t");
        assert_eq!(value("(even? 3)"), "#f");
        assert_eq!(value("(negative? -1)"), "#t");
    }

    #[test]
    fn pairs_and_lists() {
        assert_eq!(value("(car '(1 2))"), "1");
        assert_eq!(value("(cdr '(1 2))"), "(2)");
        assert_eq!(value("(cons 1 2)"), "(1 . 2)");
        assert_eq!(value("(length '(a b c))"), "3");
        assert_eq!(value("(append '(1 2) '(3))"), "(1 2 3)");
        assert_eq!(value("(reverse '(1 2 3))"), "(3 2 1)");
        assert_eq!(value("(assq 'b '((a 1) (b 2)))"), "(b 2)");
        assert_eq!(value("(memq 'b '(a b c))"), "(b c)");
        assert_eq!(value("(equal? '(1 (2)) '(1 (2)))"), "#t");
        assert_eq!(value("(eq? '() '())"), "#t");
    }

    #[test]
    fn mutation() {
        assert_eq!(value("(let ((p (cons 1 2))) (set-car! p 9) (car p))"), "9");
        assert_eq!(
            value("(let ((x 0)) (set! x (+ x 1)) (set! x (+ x 1)) x)"),
            "2"
        );
    }

    #[test]
    fn vectors() {
        assert_eq!(value("(vector-length (make-vector 3))"), "3");
        assert_eq!(
            value("(let ((v (make-vector 2 'a))) (vector-set! v 1 'b) (vector-ref v 1))"),
            "b"
        );
        assert_eq!(value("(vector->list (vector 1 2 3))"), "(1 2 3)");
        assert!(fails("(vector-ref (make-vector 2) 5)").contains("out of range"));
    }

    #[test]
    fn closures_and_recursion() {
        assert_eq!(
            value("(define (fact n) (if (zero? n) 1 (* n (fact (- n 1))))) (fact 10)"),
            "3628800"
        );
        assert_eq!(
            value("(define (adder n) (lambda (x) (+ x n))) ((adder 3) 4)"),
            "7"
        );
        assert_eq!(
            value("(let loop ((i 0) (acc 0)) (if (= i 5) acc (loop (+ i 1) (+ acc i))))"),
            "10"
        );
    }

    #[test]
    fn tail_calls_do_not_grow_stack() {
        assert_eq!(
            value("(let loop ((i 0)) (if (= i 100000) i (loop (+ i 1))))"),
            "100000"
        );
    }

    #[test]
    fn deep_non_tail_recursion_is_a_budget_error_not_a_crash() {
        // Without the depth bound this is a native stack overflow —
        // an abort the differential drivers could never classify.
        let e = crate::run_source("(define (f) (+ (f) 0)) (f)", 100_000_000).unwrap_err();
        assert!(e.is_fuel_exhausted(), "{e}");
        assert!(e.to_string().contains("recursion too deep"), "{e}");
    }

    #[test]
    fn higher_order_prelude() {
        assert_eq!(value("(map (lambda (x) (* x x)) '(1 2 3))"), "(1 4 9)");
        assert_eq!(value("(filter odd? '(1 2 3 4 5))"), "(1 3 5)");
        assert_eq!(value("(fold-left + 0 '(1 2 3))"), "6");
        assert_eq!(value("(map car '((1 2) (3 4)))"), "(1 3)");
    }

    #[test]
    fn output_buffering() {
        assert_eq!(
            output("(display 1) (display 'two) (newline) (write \"x\")"),
            "1two\n\"x\""
        );
    }

    #[test]
    fn errors() {
        assert!(fails("(car 5)").contains("expected pair"));
        assert!(fails("(error \"boom\")").contains("boom"));
        assert!(fails("(quotient 1 0)").contains("division by zero"));
        assert!(fails("((lambda (x) x))").contains("arity mismatch"));
        assert!(fails("(1 2)").contains("non-procedure"));
    }

    #[test]
    fn fuel_exhaustion() {
        let err = run_source("(let loop () (loop))", 1000).unwrap_err();
        assert!(err.message.contains("fuel"));
    }

    #[test]
    fn quoted_data_is_shared() {
        // The same quote expression evaluates to the same object.
        assert_eq!(value("(define (f) '(a)) (eq? (f) (f))"), "#t");
    }

    #[test]
    fn letrec_mutual() {
        assert_eq!(
            value(
                "(letrec ((even2? (lambda (n) (if (zero? n) #t (odd2? (- n 1)))))
                          (odd2? (lambda (n) (if (zero? n) #f (even2? (- n 1))))))
                   (even2? 100))"
            ),
            "#t"
        );
    }

    #[test]
    fn boxes() {
        assert_eq!(value("(let ((b (box 1))) (set-box! b 2) (unbox b))"), "2");
    }

    #[test]
    fn arithmetic_edge_cases() {
        assert_eq!(value("(quotient -7 2)"), "-3");
        assert_eq!(value("(modulo 7 -2)"), "-1");
        assert_eq!(value("(remainder 7 -2)"), "1");
        assert_eq!(value("(min -9 -9)"), "-9");
        assert_eq!(value("(abs 0)"), "0");
        assert!(fails(&format!("(+ {} 1)", i64::MAX)).contains("overflow"));
        assert!(fails(&format!("(- {} 1)", i64::MIN)).contains("overflow"));
        assert!(fails(&format!("(abs {})", i64::MIN)).contains("overflow"));
    }

    #[test]
    fn deep_structures_render() {
        // 200-deep nested list builds and prints without issue.
        assert_eq!(
            value(
                "(define (nest n) (if (zero? n) '() (list (nest (- n 1)))))
                   (length (nest 200))"
            ),
            "1"
        );
    }

    #[test]
    fn characters_and_strings() {
        assert_eq!(value(r"(char->integer #\a)"), "97");
        assert_eq!(value(r"(char? #\space)"), "#t");
        assert_eq!(value(r#"(string-length "hello")"#), "5");
        assert_eq!(value(r#"(string? "x")"#), "#t");
        assert_eq!(value(r"(eq? #\a #\a)"), "#t");
    }

    #[test]
    fn eqv_vs_equal_on_structures() {
        assert_eq!(value("(let ((l '(1 2))) (eqv? l l))"), "#t");
        assert_eq!(value("(eqv? (list 1) (list 1))"), "#f");
        assert_eq!(value("(equal? (vector 1 2) (vector 1 2))"), "#t");
        assert_eq!(value("(equal? (vector 1 2) (vector 1 3))"), "#f");
        assert_eq!(value(r#"(equal? "ab" "ab")"#), "#t");
    }

    #[test]
    fn shadowing_of_prelude_and_prims() {
        assert_eq!(value("(define (length l) 42) (length '(1 2 3))"), "42");
        assert_eq!(value("(let ((car cdr)) (car '(1 2 3)))"), "(2 3)");
    }

    #[test]
    fn converted_pipeline_agrees() {
        let src = "(define counter
                     (let ((n 0)) (lambda () (set! n (+ n 1)) n)))
                   (counter) (counter) (counter)";
        let a = crate::run_source(src, 1_000_000).unwrap();
        let b = crate::run_source_converted(src, 1_000_000).unwrap();
        assert_eq!(a.value, b.value);
        assert_eq!(a.value, "3");
    }
}
