//! Runtime values of the reference interpreter.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use lesgs_frontend::VarId;

use crate::env::Env;
use crate::eval::IExpr;

/// A closure value: code plus captured environment.
#[derive(Debug)]
pub struct ClosureV {
    /// Formal parameters.
    pub params: Vec<VarId>,
    /// The body expression.
    pub body: IExpr,
    /// The defining environment.
    pub env: Env,
    /// Diagnostic name.
    pub name: Option<String>,
}

/// A Scheme value.
#[derive(Debug, Clone)]
pub enum Value {
    /// An integer.
    Fixnum(i64),
    /// `#t` / `#f`.
    Bool(bool),
    /// A character.
    Char(char),
    /// An immutable string.
    Str(Rc<String>),
    /// A symbol (compared by name).
    Symbol(Rc<String>),
    /// The empty list.
    Nil,
    /// The unspecified value.
    Void,
    /// A mutable pair.
    Pair(Rc<RefCell<(Value, Value)>>),
    /// A mutable vector.
    Vector(Rc<RefCell<Vec<Value>>>),
    /// A procedure.
    Closure(Rc<ClosureV>),
    /// A mutable cell (`box`).
    Cell(Rc<RefCell<Value>>),
}

impl Value {
    /// Builds a pair.
    pub fn cons(car: Value, cdr: Value) -> Value {
        Value::Pair(Rc::new(RefCell::new((car, cdr))))
    }

    /// Scheme truthiness: everything but `#f` is true.
    pub fn is_truthy(&self) -> bool {
        !matches!(self, Value::Bool(false))
    }

    /// `eq?` — identity for heap values, value equality for immediates.
    pub fn eq_ptr(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Fixnum(a), Value::Fixnum(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Char(a), Value::Char(b)) => a == b,
            (Value::Nil, Value::Nil) => true,
            (Value::Void, Value::Void) => true,
            (Value::Symbol(a), Value::Symbol(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => Rc::ptr_eq(a, b),
            (Value::Pair(a), Value::Pair(b)) => Rc::ptr_eq(a, b),
            (Value::Vector(a), Value::Vector(b)) => Rc::ptr_eq(a, b),
            (Value::Closure(a), Value::Closure(b)) => Rc::ptr_eq(a, b),
            (Value::Cell(a), Value::Cell(b)) => Rc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// `equal?` — structural equality.
    pub fn eq_structural(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Pair(a), Value::Pair(b)) => {
                if Rc::ptr_eq(a, b) {
                    return true;
                }
                let (a_car, a_cdr) = &*a.borrow();
                let (b_car, b_cdr) = &*b.borrow();
                a_car.eq_structural(b_car) && a_cdr.eq_structural(b_cdr)
            }
            (Value::Vector(a), Value::Vector(b)) => {
                if Rc::ptr_eq(a, b) {
                    return true;
                }
                let a = a.borrow();
                let b = b.borrow();
                a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.eq_structural(y))
            }
            (Value::Str(a), Value::Str(b)) => a == b,
            _ => self.eq_ptr(other),
        }
    }

    /// Renders the value in `display` style (strings and chars raw).
    pub fn display_string(&self) -> String {
        let mut s = String::new();
        self.render(&mut s, false);
        s
    }

    /// Renders the value in `write` style (strings quoted, chars with
    /// `#\` syntax).
    pub fn write_string(&self) -> String {
        let mut s = String::new();
        self.render(&mut s, true);
        s
    }

    fn render(&self, out: &mut String, write: bool) {
        match self {
            Value::Fixnum(n) => out.push_str(&n.to_string()),
            Value::Bool(true) => out.push_str("#t"),
            Value::Bool(false) => out.push_str("#f"),
            Value::Char(c) => {
                if write {
                    match c {
                        ' ' => out.push_str("#\\space"),
                        '\n' => out.push_str("#\\newline"),
                        '\t' => out.push_str("#\\tab"),
                        c => {
                            out.push_str("#\\");
                            out.push(*c);
                        }
                    }
                } else {
                    out.push(*c);
                }
            }
            Value::Str(s) => {
                if write {
                    out.push('"');
                    for c in s.chars() {
                        match c {
                            '"' => out.push_str("\\\""),
                            '\\' => out.push_str("\\\\"),
                            '\n' => out.push_str("\\n"),
                            c => out.push(c),
                        }
                    }
                    out.push('"');
                } else {
                    out.push_str(s);
                }
            }
            Value::Symbol(s) => out.push_str(s),
            Value::Nil => out.push_str("()"),
            Value::Void => out.push_str("#<void>"),
            Value::Pair(_) => {
                out.push('(');
                let mut current = self.clone();
                let mut first = true;
                loop {
                    match current {
                        Value::Pair(p) => {
                            if !first {
                                out.push(' ');
                            }
                            first = false;
                            let (car, cdr) = &*p.borrow();
                            car.render(out, write);
                            current = cdr.clone();
                        }
                        Value::Nil => break,
                        other => {
                            out.push_str(" . ");
                            other.render(out, write);
                            break;
                        }
                    }
                }
                out.push(')');
            }
            Value::Vector(v) => {
                out.push_str("#(");
                for (i, x) in v.borrow().iter().enumerate() {
                    if i > 0 {
                        out.push(' ');
                    }
                    x.render(out, write);
                }
                out.push(')');
            }
            Value::Closure(c) => {
                out.push_str("#<procedure");
                if let Some(n) = &c.name {
                    out.push(' ');
                    out.push_str(n);
                }
                out.push('>');
            }
            Value::Cell(_) => out.push_str("#<box>"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(Value::Fixnum(0).is_truthy());
        assert!(Value::Nil.is_truthy());
        assert!(!Value::Bool(false).is_truthy());
    }

    #[test]
    fn eq_semantics() {
        let a = Value::cons(Value::Fixnum(1), Value::Nil);
        let b = Value::cons(Value::Fixnum(1), Value::Nil);
        assert!(!a.eq_ptr(&b));
        assert!(a.eq_ptr(&a.clone()));
        assert!(a.eq_structural(&b));
        assert!(Value::Fixnum(3).eq_ptr(&Value::Fixnum(3)));
        assert!(!Value::Fixnum(3).eq_ptr(&Value::Bool(true)));
    }

    #[test]
    fn rendering() {
        let l = Value::cons(
            Value::Fixnum(1),
            Value::cons(Value::Str(Rc::new("hi".into())), Value::Nil),
        );
        assert_eq!(l.display_string(), "(1 hi)");
        assert_eq!(l.write_string(), "(1 \"hi\")");
        let dotted = Value::cons(Value::Fixnum(1), Value::Fixnum(2));
        assert_eq!(dotted.display_string(), "(1 . 2)");
        assert_eq!(Value::Char('a').write_string(), "#\\a");
        assert_eq!(Value::Char('a').display_string(), "a");
    }
}
