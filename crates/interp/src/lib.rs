//! Reference tree-walking interpreter for the lesgs mini-Scheme.
//!
//! The interpreter evaluates the *renamed* core AST directly (with
//! first-class `set!`, before assignment and closure conversion), so it
//! shares as little machinery as possible with the compiler pipeline.
//! Differential tests compare its answer and output against the
//! compiled VM under every allocator configuration.
//!
//! # Examples
//!
//! ```
//! use lesgs_interp::run_source;
//!
//! let outcome = run_source("(display (+ 40 2)) (* 6 7)", 1_000_000).unwrap();
//! assert_eq!(outcome.value, "42");
//! assert_eq!(outcome.output, "42");
//! ```

mod env;
mod eval;
mod value;

pub use env::Env;
pub use eval::{Interp, InterpError, InterpErrorKind, Outcome};
pub use value::Value;

use std::cell::Cell;
use std::sync::mpsc;
use std::sync::{Arc, Mutex, OnceLock};

use lesgs_frontend::pipeline;

/// Stack size for interpreter evaluation threads. Non-tail
/// subexpression evaluation is natively recursive, so a generous
/// dedicated stack guarantees [`eval::MAX_EVAL_DEPTH`] nested
/// evaluations fit in every build profile (unoptimized frames are the
/// largest) — runaway recursion is then always cut off by the depth
/// guard as a reportable budget error, never by a native stack
/// overflow. The memory is virtual; only pages actually touched are
/// committed.
const INTERP_STACK_BYTES: usize = 64 * 1024 * 1024;

thread_local! {
    /// Set on threads whose stack is known to fit
    /// [`eval::MAX_EVAL_DEPTH`] nested evaluations, so evaluation runs
    /// inline instead of bouncing to a shared wide-stack worker.
    static ON_WIDE_STACK: Cell<bool> = const { Cell::new(false) };
}

/// Declares that the current thread's stack is at least
/// [`wide_stack_bytes`] — typically because it was spawned with
/// exactly that `stack_size`. Subsequent [`run_source`] /
/// [`run_source_converted`] calls from this thread evaluate inline
/// with zero thread handoff; this is what a `lesgs-exec` pool passes
/// as its `worker_init` so a fuzz campaign's thousands of oracle
/// evaluations stop paying per-call thread spawn/teardown.
pub fn mark_wide_stack() {
    ON_WIDE_STACK.with(|flag| flag.set(true));
}

/// The stack size (bytes) a thread needs before [`mark_wide_stack`] is
/// truthful: enough for [`eval::MAX_EVAL_DEPTH`] nested non-tail
/// evaluations in every build profile.
pub fn wide_stack_bytes() -> usize {
    INTERP_STACK_BYTES
}

type Job = Box<dyn FnOnce() + Send>;

/// The persistent wide-stack worker pool serving callers whose own
/// thread has an ordinary stack. Spawned once on first use and kept
/// for the process lifetime: evaluation is a channel send/receive
/// instead of a thread spawn/teardown per call. Panics inside a job
/// are caught and re-raised on the caller, so the workers never die.
fn wide_stack_workers() -> &'static mpsc::Sender<Job> {
    static WORKERS: OnceLock<mpsc::Sender<Job>> = OnceLock::new();
    WORKERS.get_or_init(|| {
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8);
        for w in 0..workers {
            let rx = Arc::clone(&rx);
            std::thread::Builder::new()
                .name(format!("lesgs-interp-{w}"))
                .stack_size(INTERP_STACK_BYTES)
                .spawn(move || {
                    mark_wide_stack();
                    loop {
                        // Holding the lock only while waiting for the
                        // next job is the standard shared-receiver
                        // pattern; the mutex cannot be poisoned because
                        // jobs catch their own panics.
                        let job = {
                            let guard = rx.lock().unwrap_or_else(|poison| poison.into_inner());
                            guard.recv()
                        };
                        match job {
                            Ok(job) => job(),
                            Err(_) => break, // sender gone: process exit
                        }
                    }
                })
                .expect("spawn interpreter worker");
        }
        tx
    })
}

/// Runs `f` on a stack wide enough for [`eval::MAX_EVAL_DEPTH`] nested
/// evaluations: inline when the current thread is already wide
/// ([`mark_wide_stack`]), otherwise on a persistent wide-stack worker.
/// Panics propagate to the caller either way.
fn on_interp_stack<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> T {
    if ON_WIDE_STACK.with(Cell::get) {
        return f();
    }
    let (tx, rx) = mpsc::channel();
    wide_stack_workers()
        .send(Box::new(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
            let _ = tx.send(result);
        }))
        .expect("interpreter worker pool alive");
    match rx.recv().expect("interpreter worker replies") {
        Ok(value) => value,
        Err(panic) => std::panic::resume_unwind(panic),
    }
}

/// Parses, desugars, renames, and interprets `src` with the given step
/// budget. Evaluation happens on a wide stack — inline when the caller
/// already runs on one ([`mark_wide_stack`]), otherwise on a shared
/// persistent wide-stack worker — so the recursion-depth budget, not
/// the native stack, is the binding limit.
///
/// # Errors
///
/// Returns an [`InterpError`] for frontend failures, runtime type
/// errors, calls to `error`, or budget exhaustion (steps or recursion
/// depth).
pub fn run_source(src: &str, fuel: u64) -> Result<Outcome, InterpError> {
    let src = src.to_owned();
    on_interp_stack(move || {
        let program = lesgs_frontend::program::SurfaceProgram::from_source(&src)
            .map_err(|e| InterpError::new(e.to_string()))?;
        let (assembled, globals) = program.assemble();
        let mut renamer = lesgs_frontend::rename::Renamer::new();
        renamer.set_globals(&globals);
        let renamed = renamer
            .rename(&assembled)
            .map_err(|e| InterpError::new(e.to_string()))?;
        let mut interp = Interp::new(fuel).with_globals(globals.len() as u32);
        interp.run(&renamed)
    })
}

/// Like [`run_source`] but reuses the full frontend driver, exercising
/// assignment conversion as well (the interpreter handles `unbox` and
/// friends natively).
///
/// # Errors
///
/// Same as [`run_source`].
pub fn run_source_converted(src: &str, fuel: u64) -> Result<Outcome, InterpError> {
    let src = src.to_owned();
    on_interp_stack(move || {
        let (core, _names, n_globals) =
            pipeline::front_to_core_full(&src).map_err(|e| InterpError::new(e.to_string()))?;
        let mut interp = Interp::new(fuel).with_globals(n_globals);
        interp.run(&core)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_calls_reuse_persistent_workers() {
        // Thousands of evaluations used to spawn a thread each; they
        // now ride the persistent pool. This is a smoke test that the
        // dispatch path stays correct under reuse.
        for i in 0..200 {
            let out = run_source(&format!("(+ {i} 1)"), 1_000).unwrap();
            assert_eq!(out.value, (i + 1).to_string());
        }
    }

    #[test]
    fn marked_thread_evaluates_inline() {
        std::thread::Builder::new()
            .stack_size(wide_stack_bytes())
            .spawn(|| {
                mark_wide_stack();
                // Deep non-tail recursion close to the depth budget
                // must fit this thread's own stack (no handoff).
                let src = "(define (f n) (if (zero? n) 0 (+ 1 (f (- n 1))))) (f 3000)";
                let out = run_source(src, 10_000_000).unwrap();
                assert_eq!(out.value, "3000");
            })
            .unwrap()
            .join()
            .unwrap();
    }

    #[test]
    fn depth_budget_still_reports_as_fuel_exhaustion() {
        let e = run_source("(define (f) (+ (f) 0)) (f)", u64::MAX).unwrap_err();
        assert!(e.is_fuel_exhausted(), "{e}");
        assert!(e.message.contains("recursion too deep"), "{e}");
    }

    #[test]
    fn concurrent_callers_all_complete() {
        std::thread::scope(|s| {
            for i in 0..8u64 {
                s.spawn(move || {
                    let out = run_source(&format!("(* {i} {i})"), 10_000).unwrap();
                    assert_eq!(out.value, (i * i).to_string());
                });
            }
        });
    }

    #[test]
    fn panics_propagate_to_the_caller_and_workers_survive() {
        for _ in 0..3 {
            let err =
                std::panic::catch_unwind(|| on_interp_stack(|| -> u32 { panic!("deliberate") }))
                    .unwrap_err();
            let msg = err
                .downcast_ref::<&str>()
                .copied()
                .map(str::to_owned)
                .or_else(|| err.downcast_ref::<String>().cloned())
                .unwrap_or_default();
            assert!(msg.contains("deliberate"), "{msg}");
            // The pool must still serve requests after a panic.
            assert_eq!(run_source("42", 100).unwrap().value, "42");
        }
    }
}
