//! Reference tree-walking interpreter for the lesgs mini-Scheme.
//!
//! The interpreter evaluates the *renamed* core AST directly (with
//! first-class `set!`, before assignment and closure conversion), so it
//! shares as little machinery as possible with the compiler pipeline.
//! Differential tests compare its answer and output against the
//! compiled VM under every allocator configuration.
//!
//! # Examples
//!
//! ```
//! use lesgs_interp::run_source;
//!
//! let outcome = run_source("(display (+ 40 2)) (* 6 7)", 1_000_000).unwrap();
//! assert_eq!(outcome.value, "42");
//! assert_eq!(outcome.output, "42");
//! ```

mod env;
mod eval;
mod value;

pub use env::Env;
pub use eval::{Interp, InterpError, Outcome};
pub use value::Value;

use lesgs_frontend::pipeline;

/// Parses, desugars, renames, and interprets `src` with the given step
/// budget.
///
/// # Errors
///
/// Returns an [`InterpError`] for frontend failures, runtime type
/// errors, calls to `error`, or fuel exhaustion.
pub fn run_source(src: &str, fuel: u64) -> Result<Outcome, InterpError> {
    let program = lesgs_frontend::program::SurfaceProgram::from_source(src)
        .map_err(|e| InterpError::new(e.to_string()))?;
    let (assembled, globals) = program.assemble();
    let mut renamer = lesgs_frontend::rename::Renamer::new();
    renamer.set_globals(&globals);
    let renamed = renamer
        .rename(&assembled)
        .map_err(|e| InterpError::new(e.to_string()))?;
    let mut interp = Interp::new(fuel).with_globals(globals.len() as u32);
    interp.run(&renamed)
}

/// Like [`run_source`] but reuses the full frontend driver, exercising
/// assignment conversion as well (the interpreter handles `unbox` and
/// friends natively).
///
/// # Errors
///
/// Same as [`run_source`].
pub fn run_source_converted(src: &str, fuel: u64) -> Result<Outcome, InterpError> {
    let (core, _names, n_globals) =
        pipeline::front_to_core_full(src).map_err(|e| InterpError::new(e.to_string()))?;
    let mut interp = Interp::new(fuel).with_globals(n_globals);
    interp.run(&core)
}
