//! Reference tree-walking interpreter for the lesgs mini-Scheme.
//!
//! The interpreter evaluates the *renamed* core AST directly (with
//! first-class `set!`, before assignment and closure conversion), so it
//! shares as little machinery as possible with the compiler pipeline.
//! Differential tests compare its answer and output against the
//! compiled VM under every allocator configuration.
//!
//! # Examples
//!
//! ```
//! use lesgs_interp::run_source;
//!
//! let outcome = run_source("(display (+ 40 2)) (* 6 7)", 1_000_000).unwrap();
//! assert_eq!(outcome.value, "42");
//! assert_eq!(outcome.output, "42");
//! ```

mod env;
mod eval;
mod value;

pub use env::Env;
pub use eval::{Interp, InterpError, InterpErrorKind, Outcome};
pub use value::Value;

use lesgs_frontend::pipeline;

/// Stack size for the dedicated interpreter thread. Non-tail
/// subexpression evaluation is natively recursive, so a generous
/// dedicated stack guarantees [`eval::MAX_EVAL_DEPTH`] nested
/// evaluations fit in every build profile (unoptimized frames are the
/// largest) — runaway recursion is then always cut off by the depth
/// guard as a reportable budget error, never by a native stack
/// overflow. The memory is virtual; only pages actually touched are
/// committed.
const INTERP_STACK_BYTES: usize = 64 * 1024 * 1024;

/// Runs `f` on a thread with [`INTERP_STACK_BYTES`] of stack,
/// propagating panics.
fn on_interp_stack<T: Send>(f: impl FnOnce() -> T + Send) -> T {
    std::thread::scope(|s| {
        std::thread::Builder::new()
            .name("lesgs-interp".into())
            .stack_size(INTERP_STACK_BYTES)
            .spawn_scoped(s, f)
            .expect("spawn interpreter thread")
            .join()
            .unwrap_or_else(|panic| std::panic::resume_unwind(panic))
    })
}

/// Parses, desugars, renames, and interprets `src` with the given step
/// budget. Evaluation happens on a dedicated wide-stack thread so the
/// recursion-depth budget, not the native stack, is the binding limit.
///
/// # Errors
///
/// Returns an [`InterpError`] for frontend failures, runtime type
/// errors, calls to `error`, or budget exhaustion (steps or recursion
/// depth).
pub fn run_source(src: &str, fuel: u64) -> Result<Outcome, InterpError> {
    on_interp_stack(|| {
        let program = lesgs_frontend::program::SurfaceProgram::from_source(src)
            .map_err(|e| InterpError::new(e.to_string()))?;
        let (assembled, globals) = program.assemble();
        let mut renamer = lesgs_frontend::rename::Renamer::new();
        renamer.set_globals(&globals);
        let renamed = renamer
            .rename(&assembled)
            .map_err(|e| InterpError::new(e.to_string()))?;
        let mut interp = Interp::new(fuel).with_globals(globals.len() as u32);
        interp.run(&renamed)
    })
}

/// Like [`run_source`] but reuses the full frontend driver, exercising
/// assignment conversion as well (the interpreter handles `unbox` and
/// friends natively).
///
/// # Errors
///
/// Same as [`run_source`].
pub fn run_source_converted(src: &str, fuel: u64) -> Result<Outcome, InterpError> {
    on_interp_stack(|| {
        let (core, _names, n_globals) =
            pipeline::front_to_core_full(src).map_err(|e| InterpError::new(e.to_string()))?;
        let mut interp = Interp::new(fuel).with_globals(n_globals);
        interp.run(&core)
    })
}
