//! The benchmark programs, written in the mini-Scheme dialect.
//!
//! These are adaptations of the Gabriel-suite kernels the paper's
//! evaluation reports per-row (tak, takl, takr, cpstak, deriv, dderiv,
//! destruct, div-iter, div-rec) plus additional call-heavy workloads
//! (ack, fib, queens, primes, msort) standing in for the large
//! programs (compiler, DDD, Similix, SoftScheme) we cannot run.
//! Substitutions are documented in DESIGN.md.

/// Benchmark problem size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny inputs for differential tests against the interpreter.
    Small,
    /// The measurement size used by the experiment harnesses.
    Standard,
}

/// One benchmark program.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Short name (matching the paper's rows where applicable).
    pub name: &'static str,
    /// What it exercises.
    pub description: &'static str,
    /// Source at standard scale.
    pub standard: String,
    /// Source at small scale.
    pub small: String,
    /// Expected final value at standard scale, when independently
    /// known.
    pub expected: Option<&'static str>,
}

impl Benchmark {
    /// Source text at the given scale.
    pub fn source(&self, scale: Scale) -> &str {
        match scale {
            Scale::Small => &self.small,
            Scale::Standard => &self.standard,
        }
    }
}

const TAK_BODY: &str = "
(define (tak x y z)
  (if (not (< y x))
      z
      (tak (tak (- x 1) y z)
           (tak (- y 1) z x)
           (tak (- z 1) x y))))
";

fn tak(x: i64, y: i64, z: i64) -> String {
    format!("{TAK_BODY}(tak {x} {y} {z})")
}

const TAKL_BODY: &str = "
(define (listn n)
  (if (zero? n) '() (cons n (listn (- n 1)))))
(define (shorterp x y)
  (and (not (null? y))
       (or (null? x)
           (shorterp (cdr x) (cdr y)))))
(define (mas x y z)
  (if (not (shorterp y x))
      z
      (mas (mas (cdr x) y z)
           (mas (cdr y) z x)
           (mas (cdr z) x y))))
";

fn takl(x: i64, y: i64, z: i64) -> String {
    format!("{TAKL_BODY}(length (mas (listn {x}) (listn {y}) (listn {z})))")
}

/// `takr`: tak split across many textually distinct procedures, used by
/// Gabriel to defeat instruction caches; here it diversifies the static
/// call graph.
fn takr(x: i64, y: i64, z: i64, n_funcs: usize) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    for i in 0..n_funcs {
        let f = |k: usize| format!("tak{}", (i * 4 + k) % n_funcs);
        let _ = writeln!(
            s,
            "(define (tak{i} x y z)
               (if (not (< y x)) z
                   ({} ({} (- x 1) y z)
                       ({} (- y 1) z x)
                       ({} (- z 1) x y))))",
            f(1),
            f(2),
            f(3),
            f(4),
        );
    }
    let _ = write!(s, "(tak0 {x} {y} {z})");
    s
}

const CPSTAK_BODY: &str = "
(define (cpstak x y z)
  (define (tak x y z k)
    (if (not (< y x))
        (k z)
        (tak (- x 1) y z
             (lambda (v1)
               (tak (- y 1) z x
                    (lambda (v2)
                      (tak (- z 1) x y
                           (lambda (v3)
                             (tak v1 v2 v3 k)))))))))
  (tak x y z (lambda (a) a)))
";

fn cpstak(x: i64, y: i64, z: i64) -> String {
    format!("{CPSTAK_BODY}(cpstak {x} {y} {z})")
}

const ACK_BODY: &str = "
(define (ack m n)
  (cond ((zero? m) (+ n 1))
        ((zero? n) (ack (- m 1) 1))
        (else (ack (- m 1) (ack m (- n 1))))))
";

fn ack(m: i64, n: i64) -> String {
    format!("{ACK_BODY}(ack {m} {n})")
}

const FIB_BODY: &str = "
(define (fib n)
  (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))
";

fn fib(n: i64) -> String {
    format!("{FIB_BODY}(fib {n})")
}

const DERIV_BODY: &str = "
(define (deriv-aux a) (list '/ (deriv a) a))
(define (deriv a)
  (cond ((not (pair? a)) (if (eq? a 'x) 1 0))
        ((eq? (car a) '+) (cons '+ (map deriv (cdr a))))
        ((eq? (car a) '-) (cons '- (map deriv (cdr a))))
        ((eq? (car a) '*)
         (list '* a (cons '+ (map deriv-aux (cdr a)))))
        ((eq? (car a) '/)
         (list '- (list '/ (deriv (cadr a)) (caddr a))
                  (list '/ (cadr a)
                        (list '* (caddr a) (caddr a) (deriv (caddr a))))))
        (else (error \"no derivation method\"))))
";

fn deriv(iters: i64) -> String {
    format!(
        "{DERIV_BODY}
(do ((i {iters} (- i 1)))
    ((zero? i) 'done)
  (deriv '(+ (* 3 x x) (* a x x) (* b x) 5)))"
    )
}

const DDERIV_BODY: &str = "
(define (dderiv-aux a) (list '/ (dderiv a) a))
(define (+dderiv a) (cons '+ (map dderiv (cdr a))))
(define (-dderiv a) (cons '- (map dderiv (cdr a))))
(define (*dderiv a) (list '* a (cons '+ (map dderiv-aux (cdr a)))))
(define (/dderiv a)
  (list '- (list '/ (dderiv (cadr a)) (caddr a))
           (list '/ (cadr a)
                 (list '* (caddr a) (caddr a) (dderiv (caddr a))))))
(define method-table
  (list (cons '+ +dderiv) (cons '- -dderiv)
        (cons '* *dderiv) (cons '/ /dderiv)))
(define (dderiv a)
  (if (not (pair? a))
      (if (eq? a 'x) 1 0)
      (let ((m (assq (car a) method-table)))
        (if m ((cdr m) a) (error \"no method\")))))
";

fn dderiv(iters: i64) -> String {
    format!(
        "{DDERIV_BODY}
(do ((i {iters} (- i 1)))
    ((zero? i) 'done)
  (dderiv '(+ (* 3 x x) (* a x x) (* b x) 5)))"
    )
}

const DESTRUCT_BODY: &str = "
(define (make-ring n)
  (let ((head (cons 0 '())))
    (let loop ((i 1) (tail head))
      (if (= i n)
          (begin (set-cdr! tail head) head)
          (let ((cell (cons i '())))
            (set-cdr! tail cell)
            (loop (+ i 1) cell))))))
(define (destruct n iters)
  (let ((r (make-ring n)))
    (let loop ((i 0) (p r) (acc 0))
      (if (= i iters)
          acc
          (begin
            (set-car! p (+ (car p) 1))
            (loop (+ i 1) (cdr p) (+ acc (car p))))))))
";

fn destruct(n: i64, iters: i64) -> String {
    format!("{DESTRUCT_BODY}(destruct {n} {iters})")
}

const DIV_BODY: &str = "
(define (create-n n)
  (do ((n n (- n 1)) (a '() (cons '() a)))
      ((= n 0) a)))
(define (iterative-div2 l)
  (do ((l l (cddr l)) (a '() (cons (car l) a)))
      ((null? l) a)))
(define (recursive-div2 l)
  (if (null? l)
      '()
      (cons (car l) (recursive-div2 (cddr l)))))
";

fn div_iter(size: i64, iters: i64) -> String {
    format!(
        "{DIV_BODY}
(define big-list (create-n {size}))
(do ((i {iters} (- i 1)) (r '() (iterative-div2 big-list)))
    ((zero? i) (length r)))"
    )
}

fn div_rec(size: i64, iters: i64) -> String {
    format!(
        "{DIV_BODY}
(define big-list (create-n {size}))
(do ((i {iters} (- i 1)) (r '() (recursive-div2 big-list)))
    ((zero? i) (length r)))"
    )
}

const QUEENS_BODY: &str = "
(define (queens n)
  (define (ok? row dist placed)
    (if (null? placed)
        #t
        (and (not (= (car placed) (+ row dist)))
             (not (= (car placed) (- row dist)))
             (ok? row (+ dist 1) (cdr placed)))))
(define (try x y z)
    (if (null? x)
        (if (null? y) 1 0)
        (+ (if (ok? (car x) 1 z)
               (try (append (cdr x) y) '() (cons (car x) z))
               0)
           (try (cdr x) (cons (car x) y) z))))
  (try (iota n) '() '()))
";

fn queens(n: i64) -> String {
    format!("{QUEENS_BODY}(queens {n})")
}

const PRIMES_BODY: &str = "
(define (range a b)
  (if (> a b) '() (cons a (range (+ a 1) b))))
(define (sieve l)
  (if (null? l)
      '()
      (cons (car l)
            (sieve (filter (lambda (x)
                             (not (zero? (remainder x (car l)))))
                           (cdr l))))))
";

fn primes(n: i64) -> String {
    format!("{PRIMES_BODY}(length (sieve (range 2 {n})))")
}

const MSORT_BODY: &str = "
(define (merge a b)
  (cond ((null? a) b)
        ((null? b) a)
        ((< (car a) (car b)) (cons (car a) (merge (cdr a) b)))
        (else (cons (car b) (merge a (cdr b))))))
(define (split l)
  (if (or (null? l) (null? (cdr l)))
      (cons l '())
      (let ((rest (split (cddr l))))
        (cons (cons (car l) (car rest))
              (cons (cadr l) (cdr rest))))))
(define (msort l)
  (if (or (null? l) (null? (cdr l)))
      l
      (let ((halves (split l)))
        (merge (msort (car halves)) (msort (cdr halves))))))
(define (gen n seed)
  (if (zero? n)
      '()
      (cons seed (gen (- n 1) (remainder (+ (* seed 25) 17) 101)))))
";

fn msort(n: i64) -> String {
    format!("{MSORT_BODY}(car (msort (gen {n} 42)))")
}

const TRIANG_BODY: &str = "
(define *board* (make-vector 16 1))
(define *sequence* (make-vector 14 0))
(define *a* (vector 1 2 4 3 5 6 1 3 6 2 5 4 11 12 13 7 8 4 4 7 11 8 12 13
                    6 10 15 9 14 13 13 14 15 9 10 6 6))
(define *b* (vector 2 4 7 5 8 9 3 6 10 5 9 8 12 13 14 8 9 5 2 4 7 5 8 9
                    3 6 10 5 9 8 12 13 14 8 9 5 5))
(define *c* (vector 4 7 11 8 12 13 6 10 15 9 14 13 13 14 15 9 10 6 1 2 4
                    3 5 6 1 3 6 2 5 4 11 12 13 7 8 4 4))
(define *answer* 0)
(define (try i depth)
  (cond ((= depth 14)
         (set! *answer* (+ *answer* 1))
         #f)
        ((and (= 1 (vector-ref *board* (vector-ref *a* i)))
              (= 1 (vector-ref *board* (vector-ref *b* i)))
              (= 0 (vector-ref *board* (vector-ref *c* i))))
         (vector-set! *board* (vector-ref *a* i) 0)
         (vector-set! *board* (vector-ref *b* i) 0)
         (vector-set! *board* (vector-ref *c* i) 1)
         (vector-set! *sequence* depth i)
         (do ((j 0 (+ j 1)) (d (+ depth 1)))
             ((or (= j 36) (try j d)) #f))
         (vector-set! *board* (vector-ref *a* i) 1)
         (vector-set! *board* (vector-ref *b* i) 1)
         (vector-set! *board* (vector-ref *c* i) 0)
         #f)
        (else #f)))
(define (gogogo i)
  (vector-set! *board* 5 0)
  (try i 1)
  *answer*)
";

fn triang(start: i64, depth_limit: i64) -> String {
    // depth_limit < 14 truncates the search for the small scale by
    // pre-marking the sequence vector length check.
    if depth_limit >= 14 {
        format!("{TRIANG_BODY}(gogogo {start})")
    } else {
        // Shallow variant: replace the success depth.
        format!(
            "{}(gogogo {start})",
            TRIANG_BODY.replace("(= depth 14)", &format!("(= depth {depth_limit})"))
        )
    }
}

const BOYER_BODY: &str = "
(define (truep x lst)
  (or (eq? x 'true) (member x lst)))
(define (falsep x lst)
  (or (eq? x 'false) (member x lst)))
(define (tautologyp x true-lst false-lst)
  (cond ((truep x true-lst) #t)
        ((falsep x false-lst) #f)
        ((not (pair? x)) #f)
        ((eq? (car x) 'if)
         (cond ((truep (cadr x) true-lst)
                (tautologyp (caddr x) true-lst false-lst))
               ((falsep (cadr x) false-lst)
                (tautologyp (cadddr x) true-lst false-lst))
               (else
                (and (tautologyp (caddr x)
                                 (cons (cadr x) true-lst) false-lst)
                     (tautologyp (cadddr x)
                                 true-lst (cons (cadr x) false-lst))))))
        (else #f)))
(define (var k) (list-ref '(p q r s t u v w) (remainder k 8)))
(define (gen-term depth seed)
  (if (zero? depth)
      (if (even? seed) 'true (var seed))
      (list 'if (var seed)
            (gen-term (- depth 1) (remainder (+ (* seed 7) 3) 64))
            (gen-term (- depth 1) (remainder (+ (* seed 5) 1) 64)))))
(define (run-boyer depth reps)
  (let loop ((i 0) (acc 0))
    (if (= i reps)
        acc
        (loop (+ i 1)
              (+ acc (if (tautologyp (gen-term depth i) '() '()) 1 0))))))
";

fn boyer(depth: i64, reps: i64) -> String {
    format!("{BOYER_BODY}(run-boyer {depth} {reps})")
}

/// The benchmark registry.
pub fn all_benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "tak",
            description: "deeply non-tail-recursive integer kernel (Table 4's benchmark)",
            standard: tak(18, 12, 6),
            small: tak(8, 4, 2),
            expected: Some("7"),
        },
        Benchmark {
            name: "takl",
            description: "tak over unary-list numbers; heavy pointer chasing",
            standard: tak_scale_takl(),
            small: takl(8, 5, 2),
            expected: Some("7"),
        },
        Benchmark {
            name: "takr",
            description:
                "tak split across 100 procedures (as in Gabriel); diverse static call graph",
            standard: takr(18, 12, 6, 100),
            small: takr(8, 4, 2, 20),
            expected: Some("7"),
        },
        Benchmark {
            name: "cpstak",
            description: "tak in continuation-passing style; anonymous closures everywhere",
            standard: cpstak(15, 9, 6),
            small: cpstak(6, 3, 1),
            expected: None,
        },
        Benchmark {
            name: "ack",
            description: "Ackermann; pathological non-tail recursion",
            standard: ack(3, 5),
            small: ack(2, 3),
            expected: Some("253"),
        },
        Benchmark {
            name: "fib",
            description: "doubly recursive Fibonacci",
            standard: fib(20),
            small: fib(10),
            expected: Some("6765"),
        },
        Benchmark {
            name: "deriv",
            description: "symbolic differentiation over s-expressions",
            standard: deriv(1500),
            small: deriv(10),
            expected: Some("done"),
        },
        Benchmark {
            name: "dderiv",
            description: "table-driven symbolic differentiation (escaping procedures)",
            standard: dderiv(1200),
            small: dderiv(10),
            expected: Some("done"),
        },
        Benchmark {
            name: "destruct",
            description: "destructive list operations on a ring",
            standard: destruct(50, 60_000),
            small: destruct(10, 200),
            expected: None,
        },
        Benchmark {
            name: "div-iter",
            description: "iterative list halving (pure tail loops)",
            standard: div_iter(200, 600),
            small: div_iter(20, 5),
            expected: Some("100"),
        },
        Benchmark {
            name: "div-rec",
            description: "recursive list halving (non-tail recursion)",
            standard: div_rec(200, 600),
            small: div_rec(20, 5),
            expected: Some("100"),
        },
        Benchmark {
            name: "queens",
            description: "n-queens solution counting",
            standard: queens(8),
            small: queens(5),
            expected: Some("92"),
        },
        Benchmark {
            name: "primes",
            description: "list-based sieve with closures passed to filter",
            standard: primes(600),
            small: primes(40),
            expected: Some("109"),
        },
        Benchmark {
            name: "triang",
            description: "Gabriel triangle-puzzle tree search over global vectors",
            standard: triang(22, 8),
            small: triang(22, 5),
            expected: None,
        },
        Benchmark {
            name: "boyer",
            description: "tautology checking over generated if-terms (boyer's kernel)",
            standard: boyer(12, 12),
            small: boyer(6, 3),
            expected: None,
        },
        Benchmark {
            name: "msort",
            description: "merge sort over generated lists",
            standard: msort(700),
            small: msort(30),
            expected: None,
        },
    ]
}

fn tak_scale_takl() -> String {
    takl(18, 12, 6)
}

/// Looks up a benchmark by name.
pub fn benchmark(name: &str) -> Option<Benchmark> {
    all_benchmarks().into_iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_expected_entries() {
        let names: Vec<&str> = all_benchmarks().iter().map(|b| b.name).collect();
        for expected in ["tak", "takl", "takr", "cpstak", "div-iter", "div-rec"] {
            assert!(names.contains(&expected), "{expected} missing");
        }
        assert!(names.len() >= 12);
    }

    #[test]
    fn all_sources_parse() {
        for b in all_benchmarks() {
            for scale in [Scale::Small, Scale::Standard] {
                lesgs_frontend::pipeline::front_to_closed(b.source(scale))
                    .unwrap_or_else(|e| panic!("{} ({scale:?}): {e}", b.name));
            }
        }
    }

    #[test]
    fn takr_generates_distinct_functions() {
        let src = takr(8, 4, 2, 20);
        assert!(src.contains("(define (tak0"));
        assert!(src.contains("(define (tak19"));
    }

    #[test]
    fn small_sources_run_in_interpreter() {
        for b in all_benchmarks() {
            let out = lesgs_interp::run_source(b.source(Scale::Small), 30_000_000)
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            assert!(!out.value.is_empty(), "{}", b.name);
        }
    }
}
