//! Running benchmarks under configurations and deriving the paper's
//! comparison metrics.

use lesgs_compiler::{compile, CompilerConfig};
use lesgs_core::AllocConfig;
use lesgs_metrics::ratio;
use lesgs_vm::{CostModel, RunStats};

use crate::programs::{Benchmark, Scale};

/// One benchmark executed under one configuration.
#[derive(Debug, Clone)]
pub struct BenchmarkRun {
    /// Benchmark name.
    pub name: String,
    /// Final value (write-rendered).
    pub value: String,
    /// Runtime counters.
    pub stats: RunStats,
    /// Static shuffle statistics of the compiled program.
    pub shuffle: lesgs_core::stats::ShuffleStats,
}

/// Runs `bench` under `alloc` with the standard cost model.
///
/// # Errors
///
/// Compile or runtime failures, stringified.
pub fn measure(
    bench: &Benchmark,
    scale: Scale,
    alloc: &AllocConfig,
) -> Result<BenchmarkRun, String> {
    measure_with_cost(bench, scale, alloc, CostModel::alpha_like())
}

/// Runs `bench` under `alloc` with an explicit cost model.
///
/// # Errors
///
/// Compile or runtime failures, stringified.
pub fn measure_with_cost(
    bench: &Benchmark,
    scale: Scale,
    alloc: &AllocConfig,
    cost: CostModel,
) -> Result<BenchmarkRun, String> {
    let config = CompilerConfig {
        alloc: *alloc,
        cost,
        fuel: 4_000_000_000,
        ..CompilerConfig::default()
    };
    let compiled = compile(bench.source(scale), &config).map_err(|e| e.to_string())?;
    let out = compiled.run(&config).map_err(|e| e.to_string())?;
    if let (Scale::Standard, Some(expected)) = (scale, bench.expected) {
        if out.value != expected {
            return Err(format!(
                "{}: produced {}, expected {expected}",
                bench.name, out.value
            ));
        }
    }
    Ok(BenchmarkRun {
        name: bench.name.to_owned(),
        value: out.value,
        stats: out.stats,
        shuffle: compiled.shuffle_stats(),
    })
}

/// A baseline-vs-optimized comparison (one Table 3 cell pair).
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Stack references in the baseline run.
    pub base_stack_refs: u64,
    /// Stack references in the optimized run.
    pub opt_stack_refs: u64,
    /// Cycles in the baseline run.
    pub base_cycles: u64,
    /// Cycles in the optimized run.
    pub opt_cycles: u64,
}

impl Measurement {
    /// Builds the comparison from two runs.
    pub fn compare(base: &BenchmarkRun, opt: &BenchmarkRun) -> Measurement {
        Measurement {
            base_stack_refs: base.stats.stack_refs(),
            opt_stack_refs: opt.stats.stack_refs(),
            base_cycles: base.stats.cycles,
            opt_cycles: opt.stats.cycles,
        }
    }

    /// Percentage reduction in stack references (the paper's "stack
    /// ref reduction" column). A baseline with zero stack references
    /// cannot be reduced: `0.0`.
    pub fn stack_ref_reduction(&self) -> f64 {
        100.0 * (1.0 - ratio(self.opt_stack_refs as f64, self.base_stack_refs as f64, 1.0))
    }

    /// Percentage run-time improvement (the paper's "performance
    /// increase" column): `base/opt - 1`. An empty optimized run is
    /// treated as no improvement: `0.0`.
    pub fn speedup_percent(&self) -> f64 {
        100.0 * (ratio(self.base_cycles as f64, self.opt_cycles as f64, 1.0) - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::benchmark;

    #[test]
    fn measure_small_tak() {
        let b = benchmark("tak").unwrap();
        let run = measure(&b, Scale::Small, &AllocConfig::paper_default()).unwrap();
        assert_eq!(run.value, "3"); // tak(8,4,2) = 3
        assert!(run.stats.calls > 0);
    }

    #[test]
    fn comparison_math() {
        let m = Measurement {
            base_stack_refs: 100,
            opt_stack_refs: 28,
            base_cycles: 143,
            opt_cycles: 100,
        };
        assert!((m.stack_ref_reduction() - 72.0).abs() < 1e-9);
        assert!((m.speedup_percent() - 43.0).abs() < 1e-9);
    }

    #[test]
    fn comparison_zero_denominators() {
        let m = Measurement {
            base_stack_refs: 0,
            opt_stack_refs: 0,
            base_cycles: 0,
            opt_cycles: 0,
        };
        assert_eq!(m.stack_ref_reduction(), 0.0);
        assert_eq!(m.speedup_percent(), 0.0);
    }

    #[test]
    fn lazy_beats_baseline_on_small_tak() {
        let b = benchmark("tak").unwrap();
        let base = measure(&b, Scale::Small, &AllocConfig::baseline()).unwrap();
        let opt = measure(&b, Scale::Small, &AllocConfig::paper_default()).unwrap();
        let m = Measurement::compare(&base, &opt);
        assert!(m.stack_ref_reduction() > 30.0, "{m:?}");
        assert!(m.speedup_percent() > 0.0, "{m:?}");
    }
}
