//! The benchmark suite and experiment machinery.
//!
//! [`programs`] holds mini-Scheme versions of the Gabriel-style kernels
//! the paper's evaluation uses (tak, takl, takr, cpstak, deriv, dderiv,
//! destruct, div-iter, div-rec, …) plus a few additional call-heavy
//! workloads. Every program comes in two sizes: `Small` for the
//! differential tests (which also run the slow reference interpreter)
//! and `Standard` for the experiments.
//!
//! [`measure()`] runs benchmarks under allocator configurations and
//! [`tables`] renders the paper's tables from the measurements.

pub mod measure;
pub mod programs;
pub mod tables;

pub use measure::{measure, BenchmarkRun, Measurement};
pub use programs::{all_benchmarks, Benchmark, Scale};
