//! Plain-text table rendering for the experiment harnesses.

use std::fmt;

/// A simple aligned text table.
///
/// # Examples
///
/// ```
/// use lesgs_suite::tables::Table;
///
/// let mut t = Table::new(vec!["benchmark".into(), "value".into()]);
/// t.row(vec!["tak".into(), "7".into()]);
/// let s = t.to_string();
/// assert!(s.contains("benchmark"));
/// assert!(s.contains("tak"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Table {
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Data rows, in insertion order.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                if i == 0 {
                    write!(f, "{c:<width$}", width = widths[i])?;
                } else {
                    write!(f, "{c:>width$}", width = widths[i])?;
                }
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (n - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a percentage with no decimals, like the paper's tables.
pub fn pct(x: f64) -> String {
    format!("{:.0}%", x)
}

/// Formats a fraction of activations as a percentage.
pub fn frac_pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["name".into(), "n".into()]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "100".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with("---"));
        assert!(!t.is_empty());
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_length_checked() {
        let mut t = Table::new(vec!["a".into()]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn formatting() {
        assert_eq!(pct(43.2), "43%");
        assert_eq!(frac_pct(0.666), "66.6%");
    }
}
