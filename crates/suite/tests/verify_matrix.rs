//! The bytecode verifier accepts every benchmark under every allocator
//! configuration, with and without the peephole pass — and the
//! peephole pass preserves observable behaviour.

use lesgs_compiler::{compile, config_matrix, CompilerConfig};
use lesgs_suite::programs::{all_benchmarks, Scale};
use lesgs_vm::{verify_bytecode, CostModel, Machine, SlotClass};

/// Every benchmark × allocator configuration × peephole on/off
/// compiles to bytecode the abstract interpreter accepts.
#[test]
fn verifier_accepts_benchmark_config_matrix() {
    for b in all_benchmarks() {
        for (i, alloc) in config_matrix().into_iter().enumerate() {
            for no_peephole in [false, true] {
                let cfg = CompilerConfig {
                    alloc,
                    no_peephole,
                    ..CompilerConfig::default()
                };
                let compiled = compile(b.source(Scale::Small), &cfg)
                    .unwrap_or_else(|e| panic!("{}: {e}", b.name));
                let errors = verify_bytecode(&compiled.vm);
                assert!(
                    errors.is_empty(),
                    "{} under config #{i} (peephole {}): {}",
                    b.name,
                    if no_peephole { "off" } else { "on" },
                    errors
                        .iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join("\n")
                );
            }
        }
    }
}

/// The peephole pass is behaviour-preserving: with it on and off, both
/// programs verify, produce identical values and output, and the
/// optimized program never makes *more* stack references (store-load
/// forwarding and self-move elimination can only remove them).
#[test]
fn peephole_preserves_behaviour_and_verification() {
    for b in all_benchmarks() {
        let run = |no_peephole: bool| {
            let cfg = CompilerConfig {
                no_peephole,
                ..CompilerConfig::default()
            };
            let compiled = compile(b.source(Scale::Small), &cfg).expect("compiles");
            assert!(
                verify_bytecode(&compiled.vm).is_empty(),
                "{} (peephole {}) fails verification",
                b.name,
                if no_peephole { "off" } else { "on" }
            );
            Machine::new(&compiled.vm, CostModel::alpha_like())
                .run()
                .expect("runs")
        };
        let on = run(false);
        let off = run(true);
        assert_eq!(on.value, off.value, "{}: final value differs", b.name);
        assert_eq!(on.output, off.output, "{}: output differs", b.name);
        let refs = |o: &lesgs_vm::VmOutcome| {
            let count = |m: &std::collections::HashMap<SlotClass, u64>| m.values().sum::<u64>();
            count(&o.stats.stack_loads) + count(&o.stats.stack_stores)
        };
        assert!(
            refs(&on) <= refs(&off),
            "{}: peephole increased stack references ({} > {})",
            b.name,
            refs(&on),
            refs(&off)
        );
    }
}
