//! Constant folding and branch pruning on the IR.
//!
//! A conservative simplifier run before register allocation:
//!
//! * scalar primitives applied to constants are evaluated at compile
//!   time — but **only when they succeed**: `(quotient 1 0)` keeps its
//!   runtime error, and overflow is never folded;
//! * `(if <constant> t e)` selects its branch (constants are
//!   effect-free);
//! * effect-free expressions in non-final `seq` position disappear.
//!
//! Heap-identity-sensitive operations (`cons`, `eq?` on strings, …) are
//! left alone.

use lesgs_frontend::{Const, Prim};

use crate::expr::{Callee, Expr, Func, Program};

/// Folding statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FoldStats {
    /// Primitive applications evaluated at compile time.
    pub prims_folded: usize,
    /// Conditional branches pruned.
    pub branches_pruned: usize,
    /// Effect-free sequence elements dropped.
    pub seq_dropped: usize,
}

fn const_fixnum(e: &Expr) -> Option<i64> {
    match e {
        Expr::Const(Const::Fixnum(n)) => Some(*n),
        _ => None,
    }
}

/// Evaluates a scalar primitive over constants; `None` when the
/// operation does not apply, fails, or has identity semantics we must
/// not decide at compile time.
fn eval_prim(p: Prim, args: &[Expr]) -> Option<Const> {
    use Prim::*;
    let a = || const_fixnum(&args[0]);
    let b = || const_fixnum(&args[1]);
    Some(match p {
        Add => Const::Fixnum(a()?.checked_add(b()?)?),
        Sub => Const::Fixnum(a()?.checked_sub(b()?)?),
        Mul => Const::Fixnum(a()?.checked_mul(b()?)?),
        Quotient => {
            let d = b()?;
            if d == 0 {
                return None; // keep the runtime error
            }
            Const::Fixnum(a()?.checked_div(d)?)
        }
        Remainder => {
            let d = b()?;
            if d == 0 {
                return None;
            }
            Const::Fixnum(a()?.checked_rem(d)?)
        }
        Modulo => {
            let d = b()?;
            if d == 0 {
                return None;
            }
            Const::Fixnum(((a()? % d) + d) % d)
        }
        Min => Const::Fixnum(a()?.min(b()?)),
        Max => Const::Fixnum(a()?.max(b()?)),
        Abs => Const::Fixnum(a()?.checked_abs()?),
        Add1 => Const::Fixnum(a()?.checked_add(1)?),
        Sub1 => Const::Fixnum(a()?.checked_sub(1)?),
        IsZero => Const::Bool(a()? == 0),
        IsPositive => Const::Bool(a()? > 0),
        IsNegative => Const::Bool(a()? < 0),
        IsEven => Const::Bool(a()? % 2 == 0),
        IsOdd => Const::Bool(a()? % 2 != 0),
        NumEq => Const::Bool(a()? == b()?),
        Lt => Const::Bool(a()? < b()?),
        Le => Const::Bool(a()? <= b()?),
        Gt => Const::Bool(a()? > b()?),
        Ge => Const::Bool(a()? >= b()?),
        Not => match &args[0] {
            Expr::Const(c) => Const::Bool(!c.is_truthy()),
            _ => return None,
        },
        IsEq | IsEqv => match (&args[0], &args[1]) {
            (Expr::Const(Const::Fixnum(x)), Expr::Const(Const::Fixnum(y))) => Const::Bool(x == y),
            (Expr::Const(Const::Symbol(x)), Expr::Const(Const::Symbol(y))) => Const::Bool(x == y),
            (Expr::Const(Const::Bool(x)), Expr::Const(Const::Bool(y))) => Const::Bool(x == y),
            (Expr::Const(Const::Nil), Expr::Const(Const::Nil)) => Const::Bool(true),
            _ => return None,
        },
        IsNull => match &args[0] {
            Expr::Const(Const::Nil) => Const::Bool(true),
            Expr::Const(_) => Const::Bool(false),
            _ => return None,
        },
        IsNumber => match &args[0] {
            Expr::Const(Const::Fixnum(_)) => Const::Bool(true),
            Expr::Const(c) if !matches!(c, Const::Datum(_)) => Const::Bool(false),
            _ => return None,
        },
        IsBoolean => match &args[0] {
            Expr::Const(Const::Bool(_)) => Const::Bool(true),
            Expr::Const(c) if !matches!(c, Const::Datum(_)) => Const::Bool(false),
            _ => return None,
        },
        _ => return None,
    })
}

/// True when evaluating `e` has no observable effect (so it can be
/// dropped from non-final sequence positions).
fn effect_free(e: &Expr) -> bool {
    matches!(
        e,
        Expr::Const(_) | Expr::Var(_) | Expr::FreeRef(_) | Expr::Global(_)
    )
}

struct Folder {
    stats: FoldStats,
}

impl Folder {
    fn fold(&mut self, e: Expr) -> Expr {
        match e {
            Expr::Const(_) | Expr::Var(_) | Expr::FreeRef(_) | Expr::Global(_) => e,
            Expr::GlobalSet(g, rhs) => Expr::GlobalSet(g, Box::new(self.fold(*rhs))),
            Expr::If(c, t, el) => {
                let c = self.fold(*c);
                if let Expr::Const(k) = &c {
                    self.stats.branches_pruned += 1;
                    return if k.is_truthy() {
                        self.fold(*t)
                    } else {
                        self.fold(*el)
                    };
                }
                Expr::If(
                    Box::new(c),
                    Box::new(self.fold(*t)),
                    Box::new(self.fold(*el)),
                )
            }
            Expr::Seq(es) => {
                let n = es.len();
                let mut out: Vec<Expr> = Vec::with_capacity(n);
                for (i, e) in es.into_iter().enumerate() {
                    let e = self.fold(e);
                    if i + 1 < n && effect_free(&e) {
                        self.stats.seq_dropped += 1;
                        continue;
                    }
                    out.push(e);
                }
                if out.len() == 1 {
                    out.pop().expect("one element")
                } else {
                    Expr::Seq(out)
                }
            }
            Expr::Let { var, rhs, body } => Expr::Let {
                var,
                rhs: Box::new(self.fold(*rhs)),
                body: Box::new(self.fold(*body)),
            },
            Expr::PrimApp(p, args) => {
                let args: Vec<Expr> = args.into_iter().map(|a| self.fold(a)).collect();
                if args.iter().all(|a| matches!(a, Expr::Const(_))) {
                    if let Some(c) = eval_prim(p, &args) {
                        self.stats.prims_folded += 1;
                        return Expr::Const(c);
                    }
                }
                Expr::PrimApp(p, args)
            }
            Expr::Call { callee, args, tail } => Expr::Call {
                callee: match callee {
                    Callee::Direct(f) => Callee::Direct(f),
                    Callee::KnownClosure(f, e) => Callee::KnownClosure(f, Box::new(self.fold(*e))),
                    Callee::Computed(e) => Callee::Computed(Box::new(self.fold(*e))),
                },
                args: args.into_iter().map(|a| self.fold(a)).collect(),
                tail,
            },
            Expr::MakeClosure { func, free } => Expr::MakeClosure {
                func,
                free: free.into_iter().map(|a| self.fold(a)).collect(),
            },
            Expr::ClosureSet { clo, index, value } => Expr::ClosureSet {
                clo: Box::new(self.fold(*clo)),
                index,
                value: Box::new(self.fold(*value)),
            },
        }
    }
}

/// Folds one function, returning statistics.
pub fn fold_func(func: &mut Func) -> FoldStats {
    let mut folder = Folder {
        stats: FoldStats::default(),
    };
    let body = std::mem::replace(&mut func.body, Expr::Const(Const::Void));
    func.body = folder.fold(body);
    folder.stats
}

/// Folds a whole program in place, returning aggregate statistics.
pub fn fold_program(program: &mut Program) -> FoldStats {
    let mut total = FoldStats::default();
    for f in &mut program.funcs {
        let s = fold_func(f);
        total.prims_folded += s.prims_folded;
        total.branches_pruned += s.branches_pruned;
        total.seq_dropped += s.seq_dropped;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower_program;
    use lesgs_frontend::pipeline;

    fn folded(src: &str, name: &str) -> (Expr, FoldStats) {
        let mut p = lower_program(&pipeline::front_to_closed(src).unwrap());
        let stats = fold_program(&mut p);
        let f = p.funcs.iter().find(|f| f.name == name).unwrap();
        (f.body.clone(), stats)
    }

    #[test]
    fn arithmetic_folds() {
        let (body, stats) = folded("(define (f) (+ 1 (* 2 3))) (f)", "f");
        assert_eq!(body.to_string(), "7");
        assert_eq!(stats.prims_folded, 2);
    }

    #[test]
    fn branches_prune() {
        let (body, stats) = folded("(define (f x) (if (< 1 2) x 99)) (f 5)", "f");
        assert_eq!(body.to_string(), "x0");
        assert!(stats.branches_pruned >= 1);
    }

    #[test]
    fn division_by_zero_not_folded() {
        let (body, _) = folded("(define (f) (quotient 1 0)) (f)", "f");
        assert!(body.to_string().contains("quotient"), "{body}");
    }

    #[test]
    fn overflow_not_folded() {
        let max = i64::MAX;
        let (body, _) = folded(&format!("(define (f) (+ {max} 1)) (f)"), "f");
        assert!(body.to_string().contains("%+"), "{body}");
    }

    #[test]
    fn heap_identity_not_decided() {
        let (body, _) = folded("(define (f) (eq? \"a\" \"a\")) (f)", "f");
        assert!(body.to_string().contains("eq?"), "{body}");
    }

    #[test]
    fn symbol_eq_folds() {
        let (body, _) = folded("(define (f) (eq? 'a 'a)) (f)", "f");
        assert_eq!(body.to_string(), "#t");
        let (body, _) = folded("(define (f) (eq? 'a 'b)) (f)", "f");
        assert_eq!(body.to_string(), "#f");
    }

    #[test]
    fn effect_free_seq_elements_drop() {
        let (body, stats) = folded("(define (f x) (begin x 1 (+ x 1))) (f 3)", "f");
        assert_eq!(body.to_string(), "(%+ x0 1)");
        assert_eq!(stats.seq_dropped, 2);
    }

    #[test]
    fn effects_preserved() {
        let (body, _) = folded("(define (f x) (begin (display x) (+ 1 2))) (f 3)", "f");
        assert!(body.to_string().contains("display"), "{body}");
        assert!(body.to_string().contains('3'), "folded sum remains");
    }

    #[test]
    fn not_folds_through() {
        let (body, _) = folded("(define (f x) (if (not #f) x 9)) (f 1)", "f");
        assert_eq!(body.to_string(), "x0");
    }
}
