//! Compiler IR for the lesgs register allocator.
//!
//! This crate defines:
//!
//! * [`machine`] — the abstract register machine the allocator targets:
//!   a return-address register, a closure-pointer register, a return
//!   value register, scratch registers for local (code-generator)
//!   allocation, and up to six argument registers, mirroring §3 of the
//!   paper ("two of these are used for the return address and closure
//!   pointer; the first `c` actual parameters are passed via these
//!   registers").
//! * [`regset`] — register sets as n-bit integers ("Liveness
//!   information is collected using a bit vector for the registers,
//!   implemented as an n-bit integer", §3).
//! * [`expr`] — the first-order expression language the allocator
//!   runs on, lowered from the frontend's closure-converted form by
//!   [`lower`].

pub mod expr;
pub mod fold;
pub mod lower;
pub mod machine;
pub mod regset;

pub use expr::{Callee, Expr, Func, LocalId, Program};
pub use lower::lower_program;
pub use machine::{MachineConfig, Reg};
pub use regset::RegSet;
