//! The first-order expression language the allocator operates on.
//!
//! This is the paper's simplified language (§2) grown to a full
//! compiler IR: trivials, `seq`, `if`, and calls, plus `let` bindings,
//! primitive applications, and explicit closure construction. Lambdas
//! are gone — every function is a top-level [`Func`] and variables are
//! dense per-function [`LocalId`]s.

use std::fmt;

pub use lesgs_frontend::FuncId;
use lesgs_frontend::{Const, Prim};

/// A per-function variable index. Parameters occupy `0..n_params`;
/// `let`-bound variables follow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LocalId(pub u32);

impl LocalId {
    /// Index into per-function side tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LocalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// How a call site reaches its target (see
/// [`lesgs_frontend::Callee`]; this is the same classification over IR
/// expressions).
#[derive(Debug, Clone, PartialEq)]
pub enum Callee {
    /// Known function, no closure.
    Direct(FuncId),
    /// Known function; the expression yields its closure.
    KnownClosure(FuncId, Box<Expr>),
    /// Unknown procedure value.
    Computed(Box<Expr>),
}

impl Callee {
    /// The closure expression, if this callee carries one.
    pub fn closure_expr(&self) -> Option<&Expr> {
        match self {
            Callee::Direct(_) => None,
            Callee::KnownClosure(_, e) | Callee::Computed(e) => Some(e),
        }
    }

    /// The statically-known target, if any.
    pub fn known_target(&self) -> Option<FuncId> {
        match self {
            Callee::Direct(f) | Callee::KnownClosure(f, _) => Some(*f),
            Callee::Computed(_) => None,
        }
    }
}

/// An IR expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A constant.
    Const(Const),
    /// A parameter or `let`-bound variable.
    Var(LocalId),
    /// The `i`-th captured value, read through the closure pointer.
    FreeRef(u32),
    /// A top-level global location (a memory read, not a register).
    Global(u32),
    /// Assignment to a global location.
    GlobalSet(u32, Box<Expr>),
    /// Two-way conditional.
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Sequencing (non-empty).
    Seq(Vec<Expr>),
    /// A single binding.
    Let {
        /// Bound variable.
        var: LocalId,
        /// Its value.
        rhs: Box<Expr>,
        /// Scope of the binding.
        body: Box<Expr>,
    },
    /// A primitive application.
    PrimApp(Prim, Vec<Expr>),
    /// A procedure call; `tail` calls are jumps, not calls (§2 fn 1).
    Call {
        /// Call target.
        callee: Callee,
        /// Unordered argument expressions (the shuffler picks the
        /// evaluation order).
        args: Vec<Expr>,
        /// Tail-position flag.
        tail: bool,
    },
    /// Heap-allocates a closure.
    MakeClosure {
        /// Code pointer.
        func: FuncId,
        /// Captured values in free-list order.
        free: Vec<Expr>,
    },
    /// Backpatches a closure slot (recursive closure groups).
    ClosureSet {
        /// The closure to patch.
        clo: Box<Expr>,
        /// Slot index.
        index: u32,
        /// New slot value.
        value: Box<Expr>,
    },
}

impl Expr {
    /// Visits every direct subexpression.
    pub fn for_each_child<'a>(&'a self, f: &mut dyn FnMut(&'a Expr)) {
        match self {
            Expr::Const(_) | Expr::Var(_) | Expr::FreeRef(_) | Expr::Global(_) => {}
            Expr::GlobalSet(_, rhs) => f(rhs),
            Expr::If(c, t, e) => {
                f(c);
                f(t);
                f(e);
            }
            Expr::Seq(es) => es.iter().for_each(f),
            Expr::Let { rhs, body, .. } => {
                f(rhs);
                f(body);
            }
            Expr::PrimApp(_, args) => args.iter().for_each(f),
            Expr::Call { callee, args, .. } => {
                if let Some(e) = callee.closure_expr() {
                    f(e);
                }
                args.iter().for_each(f);
            }
            Expr::MakeClosure { free, .. } => free.iter().for_each(f),
            Expr::ClosureSet { clo, value, .. } => {
                f(clo);
                f(value);
            }
        }
    }

    /// True if the subtree contains a non-tail call. Tail calls do not
    /// count: "Because tail calls in Scheme are essentially jumps, they
    /// are not considered calls" (§2 footnote 1).
    pub fn contains_call(&self) -> bool {
        if let Expr::Call { tail: false, .. } = self {
            return true;
        }
        let mut found = false;
        self.for_each_child(&mut |c| found = found || c.contains_call());
        found
    }

    /// Counts non-tail call sites in the subtree.
    pub fn count_calls(&self) -> usize {
        let mut n = usize::from(matches!(self, Expr::Call { tail: false, .. }));
        self.for_each_child(&mut |c| n += c.count_calls());
        n
    }

    /// Counts AST nodes.
    pub fn size(&self) -> usize {
        let mut n = 1;
        self.for_each_child(&mut |c| n += c.size());
        n
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(c) => write!(f, "{c}"),
            Expr::Var(v) => write!(f, "{v}"),
            Expr::FreeRef(i) => write!(f, "(free {i})"),
            Expr::Global(g) => write!(f, "(global {g})"),
            Expr::GlobalSet(g, rhs) => write!(f, "(global-set! {g} {rhs})"),
            Expr::If(c, t, e) => write!(f, "(if {c} {t} {e})"),
            Expr::Seq(es) => {
                write!(f, "(seq")?;
                for e in es {
                    write!(f, " {e}")?;
                }
                write!(f, ")")
            }
            Expr::Let { var, rhs, body } => {
                write!(f, "(let (({var} {rhs})) {body})")
            }
            Expr::PrimApp(p, args) => {
                write!(f, "(%{p}")?;
                for a in args {
                    write!(f, " {a}")?;
                }
                write!(f, ")")
            }
            Expr::Call { callee, args, tail } => {
                write!(f, "({}", if *tail { "tailcall" } else { "call" })?;
                match callee {
                    Callee::Direct(id) => write!(f, " {id}")?,
                    Callee::KnownClosure(id, e) => write!(f, " {id}[{e}]")?,
                    Callee::Computed(e) => write!(f, " [{e}]")?,
                }
                for a in args {
                    write!(f, " {a}")?;
                }
                write!(f, ")")
            }
            Expr::MakeClosure { func, free } => {
                write!(f, "(closure {func}")?;
                for e in free {
                    write!(f, " {e}")?;
                }
                write!(f, ")")
            }
            Expr::ClosureSet { clo, index, value } => {
                write!(f, "(closure-set! {clo} {index} {value})")
            }
        }
    }
}

/// A first-order function in the IR.
#[derive(Debug, Clone)]
pub struct Func {
    /// Function id (index into [`Program::funcs`]).
    pub id: FuncId,
    /// Diagnostic name.
    pub name: String,
    /// Number of parameters (locals `0..n_params`).
    pub n_params: usize,
    /// Total number of locals including parameters.
    pub n_locals: usize,
    /// Number of captured values.
    pub n_free: usize,
    /// Diagnostic names per local.
    pub local_names: Vec<String>,
    /// The body.
    pub body: Expr,
}

impl Func {
    /// True if the function body contains no non-tail calls — a
    /// *syntactic leaf* routine in the paper's terminology.
    pub fn is_syntactic_leaf(&self) -> bool {
        !self.body.contains_call()
    }

    /// Parameter locals.
    pub fn params(&self) -> impl Iterator<Item = LocalId> {
        (0..self.n_params as u32).map(LocalId)
    }
}

impl fmt::Display for Func {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(define ({}", self.name)?;
        for p in self.params() {
            write!(f, " {p}")?;
        }
        write!(f, ") {})", self.body)
    }
}

/// A whole IR program.
#[derive(Debug, Clone)]
pub struct Program {
    /// All functions; `FuncId(i)` is `funcs[i]`.
    pub funcs: Vec<Func>,
    /// Entry function.
    pub main: FuncId,
    /// Number of top-level global locations.
    pub n_globals: u32,
}

impl Program {
    /// Looks up a function.
    pub fn func(&self, id: FuncId) -> &Func {
        &self.funcs[id.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(tail: bool) -> Expr {
        Expr::Call {
            callee: Callee::Direct(FuncId(0)),
            args: vec![],
            tail,
        }
    }

    #[test]
    fn contains_call_ignores_tail_calls() {
        assert!(!call(true).contains_call());
        assert!(call(false).contains_call());
        let e = Expr::Seq(vec![Expr::Var(LocalId(0)), call(true)]);
        assert!(!e.contains_call());
        let e = Expr::If(
            Box::new(Expr::Var(LocalId(0))),
            Box::new(call(false)),
            Box::new(call(true)),
        );
        assert!(e.contains_call());
        assert_eq!(e.count_calls(), 1);
    }

    #[test]
    fn callee_in_computed_position_is_searched() {
        let e = Expr::Call {
            callee: Callee::Computed(Box::new(call(false))),
            args: vec![],
            tail: true,
        };
        assert!(e.contains_call());
    }

    #[test]
    fn display_smoke() {
        let e = Expr::Let {
            var: LocalId(1),
            rhs: Box::new(Expr::Const(lesgs_frontend::Const::Fixnum(1))),
            body: Box::new(Expr::Var(LocalId(1))),
        };
        assert_eq!(e.to_string(), "(let ((x1 1)) x1)");
    }

    #[test]
    fn size_counts() {
        let e = Expr::Seq(vec![Expr::Var(LocalId(0)), call(false)]);
        assert_eq!(e.size(), 3);
    }
}
