//! Lowering from the frontend's closure-converted program to the IR.
//!
//! The only real work is renaming each function's variables to dense
//! [`LocalId`]s so downstream passes can use vector-indexed side
//! tables.

use std::collections::HashMap;

use lesgs_frontend::Callee as FCallee;
use lesgs_frontend::{CExpr, ClosedFunc, ClosedProgram, VarId};

use crate::expr::{Callee, Expr, Func, LocalId, Program};

struct FnLower<'a> {
    map: HashMap<VarId, LocalId>,
    names: Vec<String>,
    interner: &'a lesgs_frontend::Interner,
}

impl FnLower<'_> {
    fn local(&mut self, v: VarId) -> LocalId {
        if let Some(&l) = self.map.get(&v) {
            return l;
        }
        let l = LocalId(self.names.len() as u32);
        self.map.insert(v, l);
        self.names.push(self.interner.pretty(v));
        l
    }

    fn expr(&mut self, e: &CExpr) -> Expr {
        match e {
            CExpr::Const(c) => Expr::Const(c.clone()),
            CExpr::Local(v) => Expr::Var(self.local(*v)),
            CExpr::FreeRef(i) => Expr::FreeRef(*i),
            CExpr::Global(g) => Expr::Global(*g),
            CExpr::GlobalSet(g, rhs) => Expr::GlobalSet(*g, Box::new(self.expr(rhs))),
            CExpr::If(c, t, el) => Expr::If(
                Box::new(self.expr(c)),
                Box::new(self.expr(t)),
                Box::new(self.expr(el)),
            ),
            CExpr::Seq(es) => Expr::Seq(es.iter().map(|e| self.expr(e)).collect()),
            CExpr::Let(v, rhs, body) => {
                let rhs = self.expr(rhs);
                let var = self.local(*v);
                Expr::Let {
                    var,
                    rhs: Box::new(rhs),
                    body: Box::new(self.expr(body)),
                }
            }
            CExpr::PrimApp(p, args) => {
                Expr::PrimApp(*p, args.iter().map(|a| self.expr(a)).collect())
            }
            CExpr::Call { callee, args, tail } => Expr::Call {
                callee: match callee {
                    FCallee::Direct(f) => Callee::Direct(*f),
                    FCallee::KnownClosure(f, e) => Callee::KnownClosure(*f, Box::new(self.expr(e))),
                    FCallee::Computed(e) => Callee::Computed(Box::new(self.expr(e))),
                },
                args: args.iter().map(|a| self.expr(a)).collect(),
                tail: *tail,
            },
            CExpr::MakeClosure { func, free } => Expr::MakeClosure {
                func: *func,
                free: free.iter().map(|e| self.expr(e)).collect(),
            },
            CExpr::ClosureSet { clo, index, value } => Expr::ClosureSet {
                clo: Box::new(self.expr(clo)),
                index: *index,
                value: Box::new(self.expr(value)),
            },
        }
    }
}

fn lower_func(f: &ClosedFunc, interner: &lesgs_frontend::Interner) -> Func {
    let mut lower = FnLower {
        map: HashMap::new(),
        names: Vec::new(),
        interner,
    };
    for p in &f.params {
        lower.local(*p);
    }
    let body = lower.expr(&f.body);
    Func {
        id: f.id,
        name: f.name.clone(),
        n_params: f.params.len(),
        n_locals: lower.names.len(),
        n_free: f.free.len(),
        local_names: lower.names,
        body,
    }
}

/// Lowers a closure-converted program into the allocator IR.
///
/// # Examples
///
/// ```
/// use lesgs_frontend::pipeline;
/// use lesgs_ir::lower_program;
///
/// let closed = pipeline::front_to_closed("(define (f x) (+ x 1)) (f 1)").unwrap();
/// let program = lower_program(&closed);
/// let f = program.funcs.iter().find(|f| f.name == "f").unwrap();
/// assert_eq!(f.n_params, 1);
/// ```
pub fn lower_program(p: &ClosedProgram) -> Program {
    Program {
        funcs: p.funcs.iter().map(|f| lower_func(f, &p.interner)).collect(),
        main: p.main,
        n_globals: p.n_globals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lesgs_frontend::pipeline;

    fn lower(src: &str) -> Program {
        lower_program(&pipeline::front_to_closed(src).unwrap())
    }

    #[test]
    fn params_get_low_indices() {
        let p = lower("(define (f a b) (+ a b)) (f 1 2)");
        let f = p.funcs.iter().find(|f| f.name == "f").unwrap();
        assert_eq!(f.n_params, 2);
        assert_eq!(f.n_locals, 2);
        assert_eq!(f.body.to_string(), "(%+ x0 x1)");
    }

    #[test]
    fn let_vars_follow_params() {
        let p = lower("(define (f a) (let ((t (+ a 1))) (* t t))) (f 1)");
        let f = p.funcs.iter().find(|f| f.name == "f").unwrap();
        assert_eq!(f.n_params, 1);
        assert_eq!(f.n_locals, 2);
    }

    #[test]
    fn syntactic_leaf_detection() {
        let p = lower(
            "(define (leaf x) (+ x 1))
             (define (internal x) (+ (leaf x) 1))
             (define (tail-only x) (leaf x))
             (internal (tail-only 1))",
        );
        let find = |n: &str| p.funcs.iter().find(|f| f.name == n).unwrap();
        assert!(find("leaf").is_syntactic_leaf());
        assert!(!find("internal").is_syntactic_leaf());
        // Tail calls are jumps, not calls.
        assert!(find("tail-only").is_syntactic_leaf());
    }

    #[test]
    fn free_refs_survive() {
        let p = lower("(define (f a) (lambda (x) (+ x a))) ((f 1) 2)");
        let lam = p
            .funcs
            .iter()
            .find(|f| f.name.starts_with("lambda@"))
            .unwrap();
        assert_eq!(lam.n_free, 1);
        assert!(lam.body.to_string().contains("(free 0)"));
    }
}
