//! Register sets as n-bit integers.
//!
//! The paper (§3): "Liveness information is collected using a bit
//! vector for the registers, implemented as an n-bit integer. Thus, the
//! union operation is logical or, the intersection operation is logical
//! and, and creating the singleton {r} is a logical shift left of 1 for
//! r bits."

use std::fmt;
use std::ops::{BitAnd, BitOr, Sub};

use crate::machine::Reg;

/// An immutable set of registers backed by a `u64` bit vector.
///
/// # Examples
///
/// ```
/// use lesgs_ir::RegSet;
/// use lesgs_ir::machine::{arg_reg, RET};
///
/// let s = RegSet::EMPTY.insert(RET).insert(arg_reg(0));
/// assert!(s.contains(RET));
/// assert_eq!(s.len(), 2);
/// assert_eq!((s & RegSet::single(RET)).len(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RegSet(pub u64);

impl RegSet {
    /// The empty set — the identity for union.
    pub const EMPTY: RegSet = RegSet(0);

    /// The universe `R` of all registers — the identity for
    /// intersection, used by the paper for impossible paths ("we define
    /// these cases to be R so that any impossible path will have a save
    /// set of R", §2.1.3).
    pub const ALL: RegSet = RegSet(u64::MAX);

    /// The singleton `{r}`.
    pub fn single(r: Reg) -> RegSet {
        RegSet(1u64 << r.index())
    }

    /// Set with `r` added.
    #[must_use]
    pub fn insert(self, r: Reg) -> RegSet {
        RegSet(self.0 | (1u64 << r.index()))
    }

    /// Set with `r` removed.
    #[must_use]
    pub fn remove(self, r: Reg) -> RegSet {
        RegSet(self.0 & !(1u64 << r.index()))
    }

    /// Membership test.
    pub fn contains(self, r: Reg) -> bool {
        self.0 & (1u64 << r.index()) != 0
    }

    /// True if no registers are present.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of registers in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// True if `self ⊆ other`.
    pub fn is_subset(self, other: RegSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Iterates registers in ascending index order.
    pub fn iter(self) -> impl Iterator<Item = Reg> {
        (0..64u8)
            .filter(move |i| self.0 & (1u64 << i) != 0)
            .map(Reg)
    }
}

impl BitOr for RegSet {
    type Output = RegSet;
    fn bitor(self, rhs: RegSet) -> RegSet {
        RegSet(self.0 | rhs.0)
    }
}

impl BitAnd for RegSet {
    type Output = RegSet;
    fn bitand(self, rhs: RegSet) -> RegSet {
        RegSet(self.0 & rhs.0)
    }
}

impl Sub for RegSet {
    type Output = RegSet;
    fn sub(self, rhs: RegSet) -> RegSet {
        RegSet(self.0 & !rhs.0)
    }
}

impl FromIterator<Reg> for RegSet {
    fn from_iter<I: IntoIterator<Item = Reg>>(iter: I) -> RegSet {
        iter.into_iter().fold(RegSet::EMPTY, RegSet::insert)
    }
}

impl fmt::Display for RegSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == RegSet::ALL {
            return write!(f, "{{R}}");
        }
        write!(f, "{{")?;
        for (i, r) in self.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{arg_reg, CP, RET};

    #[test]
    fn basic_ops() {
        let a = RegSet::single(RET) | RegSet::single(CP);
        let b = RegSet::single(CP) | RegSet::single(arg_reg(0));
        assert_eq!((a & b), RegSet::single(CP));
        assert_eq!((a | b).len(), 3);
        assert_eq!((a - b), RegSet::single(RET));
        assert!(a.contains(RET));
        assert!(!a.contains(arg_reg(0)));
        assert!(RegSet::EMPTY.is_empty());
    }

    #[test]
    fn identities() {
        let a = RegSet::single(arg_reg(2));
        assert_eq!(a | RegSet::EMPTY, a);
        assert_eq!(a & RegSet::ALL, a);
        assert_eq!(a.remove(arg_reg(2)), RegSet::EMPTY);
    }

    #[test]
    fn subset_and_iter() {
        let a = RegSet::single(RET).insert(arg_reg(1));
        assert!(RegSet::single(RET).is_subset(a));
        assert!(!a.is_subset(RegSet::single(RET)));
        let regs: Vec<Reg> = a.iter().collect();
        assert_eq!(regs, vec![RET, arg_reg(1)]);
    }

    #[test]
    fn from_iterator() {
        let s: RegSet = [RET, CP, arg_reg(0)].into_iter().collect();
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn algebraic_laws() {
        let a = RegSet::single(RET) | RegSet::single(arg_reg(1));
        let b = RegSet::single(arg_reg(1)) | RegSet::single(arg_reg(3));
        let c = RegSet::single(arg_reg(3)) | RegSet::single(CP);
        // Distribution and De Morgan-ish difference laws used by the
        // save placement algebra.
        assert_eq!(a & (b | c), (a & b) | (a & c));
        assert_eq!(a - (b | c), (a - b) & (a - c));
        assert_eq!((a | b) - c, (a - c) | (b - c));
        // Intersection with ALL is identity even on mixed sets.
        assert_eq!((a | b | c) & RegSet::ALL, a | b | c);
    }

    #[test]
    fn display() {
        assert_eq!(RegSet::EMPTY.to_string(), "{}");
        assert_eq!(RegSet::ALL.to_string(), "{R}");
        assert_eq!(
            (RegSet::single(RET) | RegSet::single(arg_reg(0))).to_string(),
            "{ret a0}"
        );
    }
}
