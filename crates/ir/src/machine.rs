//! The abstract register machine.
//!
//! Register file layout (indices are [`Reg`] values):
//!
//! | index | name | role |
//! |-------|------|------|
//! | 0 | `ret` | return address; caller-save, managed by the allocator (§2.4) |
//! | 1 | `cp`  | closure pointer; caller-save, managed by the allocator |
//! | 2 | `rv`  | return value; never live across calls |
//! | 3–6 | `s0`–`s3` | scratch registers for local register allocation by the code generator ("Other registers are used for local register allocation", §1) |
//! | 7–12 | `a0`–`a5` | argument registers, also homes for user variables and compiler temporaries |
//!
//! The allocator's save/restore analysis covers `ret`, `cp`, and the
//! argument registers; `rv` and the scratch registers never hold values
//! across calls by construction.

use std::fmt;

use crate::regset::RegSet;

/// A machine register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u8);

/// The return-address register.
pub const RET: Reg = Reg(0);
/// The closure-pointer register.
pub const CP: Reg = Reg(1);
/// The return-value register.
pub const RV: Reg = Reg(2);
/// Number of scratch registers available to the code generator.
pub const NUM_SCRATCH: usize = 4;
/// Maximum number of argument registers (as in the paper's evaluation).
pub const MAX_ARG_REGS: usize = 6;
/// Number of callee-save registers (used only by the callee-save
/// discipline of §2.4 and the Table 4/5 experiments).
pub const NUM_CALLEE_SAVE: usize = 6;
/// Maximum registers a single `permi` permutation instruction may
/// touch (the bounded-width assumption of Buchwald/Mohr/Rutter's
/// optimal shuffle-code construction).
pub const MAX_PERMI_REGS: usize = 5;
/// Total size of the register file.
pub const NUM_REGS: usize = 3 + NUM_SCRATCH + MAX_ARG_REGS + NUM_CALLEE_SAVE;

/// The `i`-th scratch register.
///
/// # Panics
///
/// Panics if `i >= NUM_SCRATCH`.
pub fn scratch_reg(i: usize) -> Reg {
    assert!(i < NUM_SCRATCH, "scratch register {i} out of range");
    Reg(3 + i as u8)
}

/// The `i`-th argument register.
///
/// # Panics
///
/// Panics if `i >= MAX_ARG_REGS`.
pub fn arg_reg(i: usize) -> Reg {
    assert!(i < MAX_ARG_REGS, "argument register {i} out of range");
    Reg((3 + NUM_SCRATCH + i) as u8)
}

/// The `i`-th callee-save register.
///
/// # Panics
///
/// Panics if `i >= NUM_CALLEE_SAVE`.
pub fn callee_reg(i: usize) -> Reg {
    assert!(i < NUM_CALLEE_SAVE, "callee-save register {i} out of range");
    Reg((3 + NUM_SCRATCH + MAX_ARG_REGS + i) as u8)
}

impl Reg {
    /// Index into per-register tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// True for `a0`–`a5`.
    pub fn is_arg(self) -> bool {
        (3 + NUM_SCRATCH..3 + NUM_SCRATCH + MAX_ARG_REGS).contains(&self.index())
    }

    /// True for `k0`–`k5`.
    pub fn is_callee_save(self) -> bool {
        self.index() >= 3 + NUM_SCRATCH + MAX_ARG_REGS
    }

    /// The argument position of an argument register.
    pub fn arg_position(self) -> Option<usize> {
        self.is_arg().then(|| self.index() - 3 - NUM_SCRATCH)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            0 => write!(f, "ret"),
            1 => write!(f, "cp"),
            2 => write!(f, "rv"),
            n if (n as usize) < 3 + NUM_SCRATCH => write!(f, "s{}", n - 3),
            n if (n as usize) < 3 + NUM_SCRATCH + MAX_ARG_REGS => {
                write!(f, "a{}", n as usize - 3 - NUM_SCRATCH)
            }
            n => write!(f, "k{}", n as usize - 3 - NUM_SCRATCH - MAX_ARG_REGS),
        }
    }
}

/// Configuration of the registers available to the allocator.
///
/// `num_arg_regs` is the paper's `c`: how many of `a0`–`a5` carry call
/// arguments. `reg_homes` enables giving user variables and compiler
/// temporaries homes in unused argument registers (the paper's `l`
/// registers); the baseline configuration of Table 3 disables both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineConfig {
    /// Number of argument registers (0–6), the paper's `c`.
    pub num_arg_regs: usize,
    /// Whether user variables may live in registers.
    pub reg_homes: bool,
}

impl MachineConfig {
    /// The paper's headline configuration: six argument registers.
    pub fn six_registers() -> MachineConfig {
        MachineConfig {
            num_arg_regs: MAX_ARG_REGS,
            reg_homes: true,
        }
    }

    /// The Table 3 baseline: no argument registers, all variables on
    /// the stack.
    pub fn baseline() -> MachineConfig {
        MachineConfig {
            num_arg_regs: 0,
            reg_homes: false,
        }
    }

    /// A configuration with `c` argument registers (register homes
    /// enabled when `c > 0`).
    ///
    /// # Panics
    ///
    /// Panics if `c > MAX_ARG_REGS`.
    pub fn with_arg_regs(c: usize) -> MachineConfig {
        assert!(
            c <= MAX_ARG_REGS,
            "at most {MAX_ARG_REGS} argument registers"
        );
        MachineConfig {
            num_arg_regs: c,
            reg_homes: c > 0,
        }
    }

    /// The set of registers the save/restore analysis manages: `ret`,
    /// `cp`, and the configured argument registers.
    pub fn allocatable(&self) -> RegSet {
        let mut set = RegSet::EMPTY.insert(RET).insert(CP);
        for i in 0..self.num_arg_regs {
            set = set.insert(arg_reg(i));
        }
        set
    }

    /// The argument registers as a set.
    pub fn arg_regs(&self) -> RegSet {
        let mut set = RegSet::EMPTY;
        for i in 0..self.num_arg_regs {
            set = set.insert(arg_reg(i));
        }
        set
    }
}

impl Default for MachineConfig {
    fn default() -> MachineConfig {
        MachineConfig::six_registers()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_names() {
        assert_eq!(RET.to_string(), "ret");
        assert_eq!(CP.to_string(), "cp");
        assert_eq!(RV.to_string(), "rv");
        assert_eq!(scratch_reg(0).to_string(), "s0");
        assert_eq!(arg_reg(0).to_string(), "a0");
        assert_eq!(arg_reg(5).to_string(), "a5");
    }

    #[test]
    fn arg_positions() {
        assert_eq!(arg_reg(3).arg_position(), Some(3));
        assert_eq!(RET.arg_position(), None);
        assert!(arg_reg(0).is_arg());
        assert!(!RV.is_arg());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn arg_reg_bounds() {
        let _ = arg_reg(6);
    }

    #[test]
    fn allocatable_sets() {
        let cfg = MachineConfig::with_arg_regs(2);
        let a = cfg.allocatable();
        assert!(a.contains(RET));
        assert!(a.contains(CP));
        assert!(a.contains(arg_reg(0)));
        assert!(a.contains(arg_reg(1)));
        assert!(!a.contains(arg_reg(2)));
        assert!(!a.contains(RV));
        assert_eq!(MachineConfig::baseline().arg_regs().len(), 0);
        assert_eq!(MachineConfig::six_registers().arg_regs().len(), 6);
    }
}
