//! Deterministic randomness for tests and benches, with no external
//! dependencies.
//!
//! The workspace must build and test in fully offline environments, so
//! the property-style tests cannot depend on `proptest`/`rand`. This
//! crate provides the two pieces they actually need:
//!
//! * [`Rng`] — a tiny, fast, seedable generator (SplitMix64), good
//!   enough for structural test-case generation (not cryptography).
//! * [`run_cases`] — a fixed-seed case loop that reports the failing
//!   case's seed so a failure reproduces exactly with
//!   `Rng::new(seed)`.
//!
//! Generators are ordinary functions `fn(&mut Rng) -> T`; shrinking is
//! traded away for zero dependencies and perfect reproducibility.

use std::fmt;

/// A deterministic 64-bit generator (SplitMix64, Steele et al. 2014).
///
/// # Examples
///
/// ```
/// use lesgs_testkit::Rng;
/// let mut a = Rng::new(7);
/// let mut b = Rng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        // Multiply-shift rejection-free mapping; bias is negligible for
        // the small ranges tests use.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// A uniform `i64` in the inclusive range `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = (hi as i128 - lo as i128 + 1) as u128;
        lo + ((self.next_u64() as u128 % span) as i64)
    }

    /// A uniform `u32` in `0..n`.
    pub fn below_u32(&mut self, n: u32) -> u32 {
        self.below(n as usize) as u32
    }

    /// True with probability `num/den`.
    pub fn chance(&mut self, num: u32, den: u32) -> bool {
        self.below_u32(den) < num
    }

    /// A uniformly chosen element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }

    /// Chooses an index with probability proportional to its weight.
    ///
    /// # Panics
    ///
    /// Panics if all weights are zero or `weights` is empty.
    pub fn weighted(&mut self, weights: &[u32]) -> usize {
        let total: u64 = weights.iter().map(|&w| u64::from(w)).sum();
        assert!(total > 0, "weighted() needs a positive total weight");
        let mut roll = self.next_u64() % total;
        for (i, &w) in weights.iter().enumerate() {
            let w = u64::from(w);
            if roll < w {
                return i;
            }
            roll -= w;
        }
        unreachable!("roll below total")
    }
}

/// The panic payload [`run_cases`] raises around a failing case, so the
/// report carries the reproducing seed.
#[derive(Debug)]
pub struct CaseFailure {
    /// Seed of the failing case: `Rng::new(seed)` reproduces it.
    pub seed: u64,
    /// Case index within the run.
    pub case: u32,
    /// The inner panic, rendered.
    pub message: String,
    /// An exact shell command reproducing the case (when the property
    /// has a CLI entry point, e.g. `lesgs-fuzz --seed N`).
    pub repro: Option<String>,
}

impl fmt::Display for CaseFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.repro {
            Some(cmd) => write!(
                f,
                "property failed at case {} (reproduce with: {cmd}): {}",
                self.case, self.message
            ),
            None => write!(
                f,
                "property failed at case {} (reproduce with Rng::new({})): {}",
                self.case, self.seed, self.message
            ),
        }
    }
}

fn payload_to_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic".to_owned()
    }
}

/// Runs `body` for `cases` deterministic seeds, panicking with the
/// failing seed on the first failure.
///
/// Seeds are derived from the case index (never from time), so every
/// run of the suite exercises the identical case set.
///
/// # Panics
///
/// Re-raises the first failing case as a [`CaseFailure`]-formatted
/// panic.
pub fn run_cases(cases: u32, body: impl FnMut(&mut Rng)) {
    run_cases_impl(cases, None, body);
}

/// Like [`run_cases`], but the failure report prints an exact shell
/// command (built from the failing seed by `repro`) instead of the raw
/// seed — e.g. `|seed| format!("lesgs-fuzz --seed {seed} --cases 1")`.
///
/// # Panics
///
/// Re-raises the first failing case as a [`CaseFailure`]-formatted
/// panic carrying the reproduction command.
pub fn run_cases_repro(cases: u32, repro: impl Fn(u64) -> String, body: impl FnMut(&mut Rng)) {
    run_cases_impl(cases, Some(&repro), body);
}

fn run_cases_impl(
    cases: u32,
    repro: Option<&dyn Fn(u64) -> String>,
    mut body: impl FnMut(&mut Rng),
) {
    for case in 0..cases {
        // Golden-ratio stride decorrelates neighbouring case seeds.
        let seed = (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x00C0_FFEE;
        let mut rng = Rng::new(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(payload) = result {
            panic!(
                "{}",
                CaseFailure {
                    seed,
                    case,
                    message: payload_to_string(&*payload),
                    repro: repro.map(|r| r(seed)),
                }
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = Rng::new(1);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn range_inclusive_bounds() {
        let mut r = Rng::new(2);
        let (mut saw_lo, mut saw_hi) = (false, false);
        for _ in 0..2000 {
            let v = r.range_i64(-3, 3);
            assert!((-3..=3).contains(&v));
            saw_lo |= v == -3;
            saw_hi |= v == 3;
        }
        assert!(saw_lo && saw_hi, "range endpoints reachable");
    }

    #[test]
    fn weighted_respects_zero_weights() {
        let mut r = Rng::new(3);
        for _ in 0..500 {
            let i = r.weighted(&[0, 5, 0, 1]);
            assert!(i == 1 || i == 3);
        }
    }

    #[test]
    fn run_cases_reports_seed() {
        let err = std::panic::catch_unwind(|| {
            run_cases(10, |rng| {
                // Fails on some case; the report must carry a seed.
                assert!(rng.below(4) != 2, "boom");
            });
        })
        .unwrap_err();
        let msg = payload_to_string(&*err);
        assert!(msg.contains("reproduce with Rng::new("), "{msg}");
    }

    #[test]
    fn run_cases_repro_prints_command() {
        let err = std::panic::catch_unwind(|| {
            run_cases_repro(
                10,
                |seed| format!("lesgs-fuzz --seed {seed} --cases 1"),
                |rng| {
                    assert!(rng.below(4) != 2, "boom");
                },
            );
        })
        .unwrap_err();
        let msg = payload_to_string(&*err);
        assert!(msg.contains("reproduce with: lesgs-fuzz --seed "), "{msg}");
        assert!(msg.contains("--cases 1"), "{msg}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(4);
        assert!(!r.chance(0, 4));
        assert!(r.chance(4, 4));
    }
}
