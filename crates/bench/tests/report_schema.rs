//! Golden tests for the shared JSON report schema.
//!
//! The run-record side of the schema is deterministic: a fixed small
//! benchmark (tak at `Scale::Small`) under the paper-default allocator
//! and the pinned `alpha_like` cost model always produces the same
//! counters, and `run_record` excludes wall times. The serialized
//! document is compared byte-for-byte against a checked-in fixture.
//!
//! To regenerate after an *intentional* schema change (bump
//! `SCHEMA_VERSION` first):
//!
//! ```text
//! LESGS_UPDATE_FIXTURES=1 cargo test -p lesgs-bench --test report_schema
//! ```

use lesgs_bench::report::{run_record, Report, SCHEMA_VERSION};
use lesgs_core::AllocConfig;
use lesgs_metrics::parse_json;
use lesgs_suite::programs::benchmark;
use lesgs_suite::tables::Table;
use lesgs_suite::{measure, Scale};

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/golden_report.json"
);

fn golden_report() -> String {
    let tak = benchmark("tak").expect("tak exists");
    let run = measure(&tak, Scale::Small, &AllocConfig::paper_default())
        .expect("tak runs under paper defaults");
    let mut table = Table::new(vec!["benchmark".into(), "stack refs".into()]);
    table.row(vec![run.name.clone(), run.stats.stack_refs().to_string()]);
    let mut report = Report::new("golden", "Report-schema golden fixture", Scale::Small);
    report.add_table("main", &table);
    report.add_run(run_record("paper_default", &run));
    report.note("Fixture for the schema golden test; see tests/report_schema.rs.");
    report.to_json().pretty()
}

#[test]
fn schema_version_is_pinned() {
    assert_eq!(
        SCHEMA_VERSION, 1,
        "schema version changed: regenerate the fixture and update \
         OBSERVABILITY.md's schema section"
    );
}

#[test]
fn report_matches_checked_in_fixture() {
    let got = golden_report();
    if std::env::var("LESGS_UPDATE_FIXTURES").is_ok() {
        std::fs::write(FIXTURE, &got).expect("write fixture");
    }
    let want = std::fs::read_to_string(FIXTURE)
        .expect("fixture exists; regenerate with LESGS_UPDATE_FIXTURES=1");
    assert_eq!(
        got, want,
        "JSON report schema drifted from the checked-in fixture; if the \
         change is intentional, bump SCHEMA_VERSION and regenerate with \
         LESGS_UPDATE_FIXTURES=1"
    );
}

#[test]
fn committed_bench_report_is_valid() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_report.json");
    let text = std::fs::read_to_string(path)
        .expect("BENCH_report.json exists at the repo root (run bench-report)");
    let doc = parse_json(&text).expect("BENCH_report.json parses");
    assert_eq!(
        doc.get("schema_version").and_then(|v| v.as_u64()),
        Some(SCHEMA_VERSION)
    );
    assert_eq!(
        doc.get("tool").and_then(|v| v.as_str()),
        Some("lesgs-bench")
    );
    let runs = doc.get("runs").and_then(|r| r.as_array()).expect("runs");
    // Every suite benchmark appears under the full-optimization config.
    for b in lesgs_suite::all_benchmarks() {
        assert!(
            runs.iter().any(|r| {
                r.get("benchmark").and_then(|v| v.as_str()) == Some(b.name)
                    && r.get("config").and_then(|v| v.as_str()) == Some("paper_default")
            }),
            "{} missing from BENCH_report.json runs",
            b.name
        );
    }
}
