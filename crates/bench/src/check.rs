//! The perf-regression gate behind `bench-report --check`.
//!
//! A report document mixes two kinds of data: **deterministic** fields
//! (instruction counts, stack references, cost-model totals, the full
//! per-run `vm.*`/`alloc.*` counter sets) that must be bit-identical
//! run to run on the same sources, and **wall-clock** tables whose
//! values depend on the machine of the day. The gate strips the
//! wall-clock tables ([`WALL_CLOCK_TABLES`]) from both the committed
//! baseline and a freshly built report and requires the rest to match
//! exactly — any drift means a PR changed counted events without
//! regenerating the baseline, which is precisely what CI should refuse.

use lesgs_metrics::Json;

use crate::suite_report::{DISPATCH_THROUGHPUT_TABLE, SERVICE_THROUGHPUT_TABLE, TIMING_TABLE};

/// The tables whose *values* are wall-clock-dependent and therefore
/// excluded from the deterministic projection. Everything else in a
/// report — including the `dispatch` fusion-statistics table and the
/// `service_cache` accounting table — is covered by the gate.
pub const WALL_CLOCK_TABLES: &[&str] = &[
    TIMING_TABLE,
    DISPATCH_THROUGHPUT_TABLE,
    SERVICE_THROUGHPUT_TABLE,
];

/// Strips the wall-clock tables from a report document, leaving only
/// fields that are byte-identical across runs (and job counts) on the
/// same sources. Non-report documents pass through unchanged — the
/// comparison will then fail with an honest diff.
pub fn deterministic_projection(report: &Json) -> Json {
    let Some(fields) = report.as_object() else {
        return report.clone();
    };
    let filtered = fields.iter().map(|(k, v)| {
        let v = match (k.as_str(), v.as_array()) {
            ("tables", Some(tables)) => Json::array(
                tables
                    .iter()
                    .filter(|t| {
                        let name = t.get("name").and_then(|n| n.as_str());
                        !name.is_some_and(|n| WALL_CLOCK_TABLES.contains(&n))
                    })
                    .cloned(),
            ),
            _ => v.clone(),
        };
        (k.as_str(), v)
    });
    Json::object(filtered)
}

/// Compares the deterministic projections of a committed baseline and a
/// freshly built report.
///
/// # Errors
///
/// On drift, returns a message naming the first divergent line of the
/// pretty-printed projections (with the line number), so the failure is
/// actionable straight from a CI log.
pub fn check_reports(baseline: &Json, current: &Json) -> Result<(), String> {
    let want = deterministic_projection(baseline).pretty();
    let got = deterministic_projection(current).pretty();
    if want == got {
        return Ok(());
    }
    let mut want_lines = want.lines();
    let mut got_lines = got.lines();
    let mut line = 0usize;
    loop {
        line += 1;
        match (want_lines.next(), got_lines.next()) {
            (Some(w), Some(g)) if w == g => continue,
            (Some(w), Some(g)) => {
                return Err(format!(
                    "deterministic fields diverge at line {line}:\n\
                     baseline: {w}\n\
                     current:  {g}\n\
                     (regenerate the baseline with bench-report if the change is intended)"
                ))
            }
            (Some(w), None) => {
                return Err(format!(
                    "current report ends early at line {line}; baseline continues with: {w}"
                ))
            }
            (None, Some(g)) => {
                return Err(format!(
                    "current report has extra content at line {line}: {g}"
                ))
            }
            (None, None) => {
                // Same lines, different strings — only possible via
                // line terminators; report it rather than loop forever.
                return Err("reports differ only in line terminators".to_owned());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite_report::build_suite_report;
    use lesgs_suite::{all_benchmarks, Scale};

    fn tiny_report() -> Json {
        let benchmarks: Vec<_> = all_benchmarks().into_iter().take(2).collect();
        build_suite_report(benchmarks, Scale::Small, 1, |_| {})
            .report
            .to_json()
    }

    #[test]
    fn projection_strips_only_wall_clock_tables() {
        let report = tiny_report();
        let names = |j: &Json| -> Vec<String> {
            j.get("tables")
                .and_then(|t| t.as_array())
                .unwrap()
                .iter()
                .map(|t| t.get("name").and_then(|n| n.as_str()).unwrap().to_owned())
                .collect()
        };
        let before = names(&report);
        assert!(before.iter().any(|n| n == TIMING_TABLE));
        assert!(before.iter().any(|n| n == DISPATCH_THROUGHPUT_TABLE));
        assert!(before.iter().any(|n| n == SERVICE_THROUGHPUT_TABLE));
        let after = names(&deterministic_projection(&report));
        assert!(after
            .iter()
            .all(|n| !WALL_CLOCK_TABLES.contains(&n.as_str())));
        assert!(after.iter().any(|n| n == "comparisons"));
        assert!(after.iter().any(|n| n == "dispatch"));
        assert!(after.iter().any(|n| n == "service_cache"));
    }

    #[test]
    fn identical_runs_pass_and_wall_clock_drift_is_ignored() {
        // Two independent builds differ (at most) in wall-clock tables;
        // the gate must accept them.
        let a = tiny_report();
        let b = tiny_report();
        check_reports(&a, &b).unwrap();
    }

    #[test]
    fn perturbed_counter_fails_with_located_diff() {
        let a = tiny_report();
        // Hand-perturb one deterministic counter, as a regressing PR
        // effectively would.
        let text = a.pretty();
        let needle = "\"vm.instructions\": ";
        let at = text.find(needle).expect("run records carry counters") + needle.len();
        let end = at + text[at..].find([',', '\n']).unwrap();
        let mut perturbed = text.clone();
        perturbed.replace_range(at..end, "1");
        let b = lesgs_metrics::parse_json(&perturbed).unwrap();
        let err = check_reports(&a, &b).unwrap_err();
        assert!(err.contains("diverge at line"), "{err}");
        assert!(err.contains("vm.instructions"), "{err}");
    }
}
