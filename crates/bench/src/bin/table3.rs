//! Table 3 — stack-reference reduction and speedup for the three save
//! strategies with six argument registers, relative to the no-register
//! baseline.
//!
//! The paper's averages: lazy 72%/43%, early 58%/32%, late 65%/36%.
//! The shape to reproduce: lazy wins both columns; early saves too
//! often on call-free paths; late saves redundantly on multi-call
//! paths.

use lesgs_bench::report::Report;
use lesgs_bench::{mean, run_benchmark, save_strategies, scale_from_args};
use lesgs_core::AllocConfig;
use lesgs_suite::all_benchmarks;
use lesgs_suite::measure::Measurement;
use lesgs_suite::tables::{pct, Table};

fn main() {
    let scale = scale_from_args();
    let baseline_cfg = AllocConfig::baseline();

    let mut headers = vec!["benchmark".into()];
    for (name, _) in save_strategies() {
        headers.push(format!("{name} stack-ref"));
        headers.push(format!("{name} speedup"));
    }
    let mut table = Table::new(headers);
    let mut sums: Vec<Vec<f64>> = vec![Vec::new(); 6];

    for b in all_benchmarks() {
        let base = run_benchmark(&b, scale, &baseline_cfg);
        let mut cells = vec![b.name.to_owned()];
        for (i, (_, save)) in save_strategies().into_iter().enumerate() {
            let cfg = AllocConfig {
                save,
                ..AllocConfig::paper_default()
            };
            let opt = run_benchmark(&b, scale, &cfg);
            assert_eq!(
                base.value, opt.value,
                "{}: strategies must agree on the answer",
                b.name
            );
            let m = Measurement::compare(&base, &opt);
            cells.push(pct(m.stack_ref_reduction()));
            cells.push(pct(m.speedup_percent()));
            sums[2 * i].push(m.stack_ref_reduction());
            sums[2 * i + 1].push(m.speedup_percent());
        }
        table.row(cells);
    }
    let mut avg = vec!["Average".to_owned()];
    avg.extend(sums.iter().map(|xs| pct(mean(xs))));
    table.row(avg);

    println!(
        "Table 3: stack-reference reduction and speedup vs no-register \
         baseline ({scale:?} scale, six argument registers)"
    );
    println!("{table}");
    println!(
        "Paper averages: lazy 72%/43%, early 58%/32%, late 65%/36%.\n\
         Expected shape: lazy >= late >= early on stack refs; lazy best on speedup."
    );

    let mut report = Report::new("table3", "Save-strategy reductions vs baseline", scale);
    report.add_table("save_strategies", &table);
    report.note("Paper averages: lazy 72%/43%, early 58%/32%, late 65%/36%.");
    report.emit();
}
