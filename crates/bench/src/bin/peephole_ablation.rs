//! Backend ablation — the peephole optimizer's contribution.
//!
//! Not a paper experiment; quantifies how much of the measured cycle
//! counts come from the peephole rewrites (mostly store-load
//! forwarding of the code generator's temporaries) so the table
//! harnesses' numbers can be interpreted.

use lesgs_bench::report::Report;
use lesgs_bench::{mean, scale_from_args};
use lesgs_compiler::{run_source, CompilerConfig};
use lesgs_suite::all_benchmarks;
use lesgs_suite::tables::Table;

fn main() {
    let scale = scale_from_args();
    let mut t = Table::new(vec![
        "benchmark".into(),
        "cycles off".into(),
        "cycles on".into(),
        "stack refs off".into(),
        "stack refs on".into(),
        "improvement".into(),
    ]);
    let mut improvements = Vec::new();
    for b in all_benchmarks() {
        let src = b.source(scale);
        let off = run_source(
            src,
            &CompilerConfig {
                no_peephole: true,
                ..CompilerConfig::default()
            },
        )
        .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let on = run_source(src, &CompilerConfig::default())
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        assert_eq!(off.value, on.value, "{}", b.name);
        let imp = 100.0 * (off.stats.cycles as f64 / on.stats.cycles as f64 - 1.0);
        improvements.push(imp);
        t.row(vec![
            b.name.to_owned(),
            off.stats.cycles.to_string(),
            on.stats.cycles.to_string(),
            off.stats.stack_refs().to_string(),
            on.stats.stack_refs().to_string(),
            format!("{imp:+.1}%"),
        ]);
    }
    println!("Backend ablation: peephole optimizer ({scale:?} scale)");
    println!("{t}");
    println!("Mean improvement: {:+.1}%.", mean(&improvements));

    let mut report = Report::new(
        "peephole_ablation",
        "Peephole optimizer contribution",
        scale,
    );
    report.add_table("peephole", &t);
    report.note(&format!("Mean improvement: {:+.1}%.", mean(&improvements)));
    report.emit();
}
