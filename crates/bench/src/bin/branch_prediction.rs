//! §6 static branch prediction — "paths without calls are assumed to be
//! more likely than paths with calls. Preliminary experiments suggest
//! that this results in a small (2–3%) but consistent improvement."

use lesgs_bench::report::Report;
use lesgs_bench::{mean, run_benchmark, scale_from_args};
use lesgs_core::AllocConfig;
use lesgs_suite::all_benchmarks;
use lesgs_suite::tables::{pct, Table};

fn main() {
    let scale = scale_from_args();
    let off = AllocConfig::paper_default();
    let on = AllocConfig {
        branch_prediction: true,
        ..off
    };

    let mut t = Table::new(vec![
        "benchmark".into(),
        "mispredicts off".into(),
        "mispredicts on".into(),
        "cycles off".into(),
        "cycles on".into(),
        "improvement".into(),
    ]);
    let mut improvements = Vec::new();
    for b in all_benchmarks() {
        let base = run_benchmark(&b, scale, &off);
        let pred = run_benchmark(&b, scale, &on);
        assert_eq!(base.value, pred.value, "{}", b.name);
        let imp = 100.0 * (base.stats.cycles as f64 / pred.stats.cycles as f64 - 1.0);
        improvements.push(imp);
        t.row(vec![
            b.name.to_owned(),
            base.stats.mispredicts.to_string(),
            pred.stats.mispredicts.to_string(),
            base.stats.cycles.to_string(),
            pred.stats.cycles.to_string(),
            format!("{imp:+.1}%"),
        ]);
    }
    println!("§6: call-free-path static branch prediction ({scale:?} scale)");
    println!("{t}");
    println!(
        "Mean improvement: {} (paper: small 2-3% but consistent).\n\
         Most rows are flat because the frontend already lays call-free\n\
         base cases out as the fallthrough path; the heuristic's headroom\n\
         appears when the source puts the recursive case first:",
        pct(mean(&improvements))
    );

    // tak with the branches inverted: the call-free base case is the
    // else branch, so the layout swap is exactly what §6 proposes.
    let inverted = "(define (tak x y z)
       (if (< y x)
           (tak (tak (- x 1) y z) (tak (- y 1) z x) (tak (- z 1) x y))
           z))
     (tak 18 12 6)";
    let run = |alloc: &AllocConfig| {
        let cfg = lesgs_compiler::CompilerConfig {
            alloc: *alloc,
            ..Default::default()
        };
        lesgs_compiler::run_source(inverted, &cfg).expect("inverted tak runs")
    };
    let base = run(&off);
    let pred = run(&on);
    assert_eq!(base.value, pred.value);
    println!(
        "\ninverted tak: {} -> {} cycles ({:+.1}%), mispredicts {} -> {}",
        base.stats.cycles,
        pred.stats.cycles,
        100.0 * (base.stats.cycles as f64 / pred.stats.cycles as f64 - 1.0),
        base.stats.mispredicts,
        pred.stats.mispredicts,
    );

    let mut report = Report::new(
        "branch_prediction",
        "Call-free-path static branch prediction",
        scale,
    );
    report.add_table("prediction", &t);
    report.note("Paper: small (2-3%) but consistent improvement.");
    report.note(&format!(
        "inverted tak: {} -> {} cycles, mispredicts {} -> {}",
        base.stats.cycles, pred.stats.cycles, base.stats.mispredicts, pred.stats.mispredicts
    ));
    report.emit();
}
