//! §3.1 statistics — shuffle cycles and greedy-vs-optimal temporaries.
//!
//! The paper: "only 7% of the call sites had cycles. Furthermore, the
//! greedy algorithm was optimal for all of the call sites in all of the
//! benchmarks excluding our compiler, where it was optimal in all but
//! six of the 20,245 call sites, and in these six it required only one
//! extra temporary location."

use lesgs_bench::report::Report;
use lesgs_compiler::{compile, CompilerConfig};
use lesgs_suite::all_benchmarks;
use lesgs_suite::programs::Scale;
use lesgs_suite::tables::{frac_pct, Table};

fn main() {
    let cfg = CompilerConfig::default();
    let mut t = Table::new(vec![
        "benchmark".into(),
        "call sites".into(),
        "with cycles".into(),
        "greedy temps".into(),
        "optimal temps".into(),
        "greedy=optimal".into(),
    ]);
    let mut total_sites = 0usize;
    let mut total_cycles = 0usize;
    let mut total_greedy = 0usize;
    let mut total_optimal = 0usize;
    let mut total_match = 0usize;
    let mut no_takr_sites = 0usize;
    let mut no_takr_cycles = 0usize;
    for b in all_benchmarks() {
        let compiled =
            compile(b.source(Scale::Standard), &cfg).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let s = compiled.shuffle_stats();
        total_sites += s.call_sites;
        total_cycles += s.sites_with_cycles;
        total_greedy += s.greedy_temps;
        total_optimal += s.optimal_temps;
        total_match += s.sites_greedy_optimal;
        if b.name != "takr" {
            no_takr_sites += s.call_sites;
            no_takr_cycles += s.sites_with_cycles;
        }
        t.row(vec![
            b.name.to_owned(),
            s.call_sites.to_string(),
            s.sites_with_cycles.to_string(),
            s.greedy_temps.to_string(),
            s.optimal_temps.to_string(),
            frac_pct(s.optimal_fraction()),
        ]);
    }
    t.row(vec![
        "Total".into(),
        total_sites.to_string(),
        total_cycles.to_string(),
        total_greedy.to_string(),
        total_optimal.to_string(),
        frac_pct(total_match as f64 / total_sites as f64),
    ]);
    println!("§3.1: greedy shuffling statistics (static, standard sources)");
    println!("{t}");
    println!(
        "Excluding takr (100 textual copies of tak's rotating call \
         pattern,\nwhich dominates a small static corpus): {} of {} sites \
         with cycles ({}).",
        no_takr_cycles,
        no_takr_sites,
        frac_pct(no_takr_cycles as f64 / no_takr_sites as f64),
    );
    println!(
        "Cycle-bearing call sites: {} ({}). Paper: 7% of call sites.\n\
         Greedy matched the exhaustive optimum at {} of {} sites, using\n\
         {} temporaries where the optimum is {}.",
        total_cycles,
        frac_pct(total_cycles as f64 / total_sites as f64),
        total_match,
        total_sites,
        total_greedy,
        total_optimal,
    );

    let mut report = Report::new(
        "shuffle_stats",
        "Greedy shuffling statistics",
        Scale::Standard,
    );
    report.add_table("shuffle", &t);
    report.note("Paper: 7% of call sites had cycles; greedy optimal at nearly all sites.");
    report.emit();
}
