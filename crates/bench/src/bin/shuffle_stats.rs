//! §3.1 statistics — shuffle cycles and a three-way strategy
//! comparison: paper-greedy vs. the exhaustive optimum vs. optimal
//! shuffle code with permutation instructions.
//!
//! The paper: "only 7% of the call sites had cycles. Furthermore, the
//! greedy algorithm was optimal for all of the call sites in all of the
//! benchmarks excluding our compiler, where it was optimal in all but
//! six of the 20,245 call sites, and in these six it required only one
//! extra temporary location."
//!
//! The third column set compiles the same sources under
//! `ShuffleStrategy::OptimalPermi`, which resolves register-move cycles
//! with `swap`/`permi` instructions instead of temporaries (after
//! Buchwald, Mohr & Rutter's optimal shuffle-code generation).

use lesgs_bench::report::Report;
use lesgs_compiler::{compile, CompilerConfig};
use lesgs_core::config::ShuffleStrategy;
use lesgs_core::stats::ShuffleStats;
use lesgs_core::AllocConfig;
use lesgs_suite::all_benchmarks;
use lesgs_suite::programs::Scale;
use lesgs_suite::tables::{frac_pct, Table};

fn stats_under(src: &str, name: &str, shuffle: ShuffleStrategy) -> ShuffleStats {
    let cfg = CompilerConfig {
        alloc: AllocConfig {
            shuffle,
            ..AllocConfig::default()
        },
        ..CompilerConfig::default()
    };
    compile(src, &cfg)
        .unwrap_or_else(|e| panic!("{name}: {e}"))
        .shuffle_stats()
}

fn main() {
    let mut t = Table::new(vec![
        "benchmark".into(),
        "call sites".into(),
        "with cycles".into(),
        "greedy temps".into(),
        "optimal temps".into(),
        "greedy=optimal".into(),
    ]);
    let mut three = Table::new(vec![
        "benchmark".into(),
        "greedy temps".into(),
        "optimal temps".into(),
        "permi temps".into(),
        "perm ops".into(),
        "perm moves".into(),
    ]);
    let mut total_sites = 0usize;
    let mut total_cycles = 0usize;
    let mut total_greedy = 0usize;
    let mut total_optimal = 0usize;
    let mut total_match = 0usize;
    let mut total_permi_temps = 0usize;
    let mut total_perm_ops = 0usize;
    let mut total_perm_moves = 0usize;
    let mut no_takr_sites = 0usize;
    let mut no_takr_cycles = 0usize;
    for b in all_benchmarks() {
        let src = b.source(Scale::Standard);
        let s = stats_under(src, b.name, ShuffleStrategy::Greedy);
        let p = stats_under(src, b.name, ShuffleStrategy::OptimalPermi);
        total_sites += s.call_sites;
        total_cycles += s.sites_with_cycles;
        total_greedy += s.greedy_temps;
        total_optimal += s.optimal_temps;
        total_match += s.sites_greedy_optimal;
        total_permi_temps += p.greedy_temps;
        total_perm_ops += p.perm_ops;
        total_perm_moves += p.perm_moves;
        if b.name != "takr" {
            no_takr_sites += s.call_sites;
            no_takr_cycles += s.sites_with_cycles;
        }
        t.row(vec![
            b.name.to_owned(),
            s.call_sites.to_string(),
            s.sites_with_cycles.to_string(),
            s.greedy_temps.to_string(),
            s.optimal_temps.to_string(),
            frac_pct(s.optimal_fraction()),
        ]);
        three.row(vec![
            b.name.to_owned(),
            s.greedy_temps.to_string(),
            s.optimal_temps.to_string(),
            p.greedy_temps.to_string(),
            p.perm_ops.to_string(),
            p.perm_moves.to_string(),
        ]);
    }
    t.row(vec![
        "Total".into(),
        total_sites.to_string(),
        total_cycles.to_string(),
        total_greedy.to_string(),
        total_optimal.to_string(),
        frac_pct(total_match as f64 / total_sites as f64),
    ]);
    three.row(vec![
        "Total".into(),
        total_greedy.to_string(),
        total_optimal.to_string(),
        total_permi_temps.to_string(),
        total_perm_ops.to_string(),
        total_perm_moves.to_string(),
    ]);
    println!("§3.1: greedy shuffling statistics (static, standard sources)");
    println!("{t}");
    println!(
        "Excluding takr (100 textual copies of tak's rotating call \
         pattern,\nwhich dominates a small static corpus): {} of {} sites \
         with cycles ({}).",
        no_takr_cycles,
        no_takr_sites,
        frac_pct(no_takr_cycles as f64 / no_takr_sites as f64),
    );
    println!(
        "Cycle-bearing call sites: {} ({}). Paper: 7% of call sites.\n\
         Greedy matched the exhaustive optimum at {} of {} sites, using\n\
         {} temporaries where the optimum is {}.",
        total_cycles,
        frac_pct(total_cycles as f64 / total_sites as f64),
        total_match,
        total_sites,
        total_greedy,
        total_optimal,
    );
    println!();
    println!("Three-way strategy comparison (temporaries / permutation code)");
    println!("{three}");
    println!(
        "optimal-permi replaces register-move cycles with {} swap/permi\n\
         instructions subsuming {} moves, cutting temporaries from {} to {}.",
        total_perm_ops, total_perm_moves, total_greedy, total_permi_temps,
    );

    let mut report = Report::new(
        "shuffle_stats",
        "Greedy shuffling statistics",
        Scale::Standard,
    );
    report.add_table("shuffle", &t);
    report.add_table("shuffle_strategies", &three);
    report.note("Paper: 7% of call sites had cycles; greedy optimal at nearly all sites.");
    report.note(
        "Three-way comparison: paper-greedy vs. exhaustive-optimal orderings \
         vs. optimal shuffle code with permutation instructions (swap/permi).",
    );
    report.emit();
}
