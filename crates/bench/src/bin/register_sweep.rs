//! §4 register sweep — performance from zero through six argument
//! registers, with and without greedy shuffling.
//!
//! The paper: "Performance increases monotonically from zero through
//! six registers, although the difference between five and six
//! registers is minimal. Our greedy shuffling algorithm becomes
//! important as the number of argument registers increases. Before we
//! installed this algorithm, the performance actually decreased after
//! two argument registers."

use lesgs_bench::report::Report;
use lesgs_bench::{geometric_mean, run_benchmark, scale_from_args};
use lesgs_core::config::ShuffleStrategy;
use lesgs_core::AllocConfig;
use lesgs_ir::MachineConfig;
use lesgs_suite::all_benchmarks;
use lesgs_suite::tables::Table;

fn main() {
    let scale = scale_from_args();
    let mut headers = vec!["shuffle".into()];
    for c in 0..=6 {
        headers.push(format!("c={c}"));
    }
    let mut t = Table::new(headers);

    for (label, shuffle) in [
        ("greedy", ShuffleStrategy::Greedy),
        ("optimal-permi", ShuffleStrategy::OptimalPermi),
        ("fixed-order", ShuffleStrategy::FixedOrder),
    ] {
        let mut cells = vec![label.to_owned()];
        let mut base: Vec<f64> = Vec::new();
        for c in 0..=6 {
            let cfg = AllocConfig {
                machine: MachineConfig::with_arg_regs(c),
                shuffle,
                ..AllocConfig::paper_default()
            };
            let mut ratios = Vec::new();
            for (i, b) in all_benchmarks().into_iter().enumerate() {
                let run = run_benchmark(&b, scale, &cfg);
                let cycles = run.stats.cycles as f64;
                if c == 0 {
                    base.push(cycles);
                    ratios.push(1.0);
                } else {
                    ratios.push(base[i] / cycles);
                }
            }
            cells.push(format!("{:.3}", geometric_mean(&ratios)));
        }
        t.row(cells);
    }

    println!(
        "§4 register sweep: geometric-mean speedup over the zero-register \
         baseline ({scale:?} scale)"
    );
    println!("{t}");
    println!(
        "Expected shape: monotonic increase 0→6 with a small 5→6 step;\n\
         fixed-order evaluation flattens (or reverses) beyond ~2 registers\n\
         because argument shuffling starts forcing temporaries. The\n\
         optimal-permi row replaces cycle-breaking temporaries with\n\
         swap/permi instructions where every argument is a register move."
    );

    let mut report = Report::new(
        "register_sweep",
        "Speedup vs argument-register count",
        scale,
    );
    report.add_table("sweep", &t);
    report.note(
        "Paper: monotonic increase 0-6; fixed-order regresses past two \
         registers. optimal-permi adds permutation-instruction shuffle code \
         on top of greedy ordering.",
    );
    report.emit();
}
