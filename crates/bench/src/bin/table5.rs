//! Table 5 — tak under early vs lazy callee-save and caller-save lazy.
//!
//! The paper hand-modified the C compilers' assembly to use the lazy
//! save technique for callee-save registers, and also hand-coded a
//! caller-save version; lazy saves helped both disciplines, with
//! caller-save lazy fastest overall (speedups of 91%, 60%, 55% over the
//! respective early versions).

use lesgs_bench::report::{run_record, Report};
use lesgs_bench::{callee_save_config, run_benchmark, scale_from_args};
use lesgs_core::config::SaveStrategy;
use lesgs_core::AllocConfig;
use lesgs_suite::programs::benchmark;
use lesgs_suite::tables::{pct, Table};

fn main() {
    let scale = scale_from_args();
    let tak = benchmark("tak").expect("tak exists");

    let callee_early = run_benchmark(&tak, scale, &callee_save_config(SaveStrategy::Early));
    let callee_lazy = run_benchmark(&tak, scale, &callee_save_config(SaveStrategy::Lazy));
    let caller_lazy = run_benchmark(&tak, scale, &AllocConfig::paper_default());
    let caller_early = run_benchmark(
        &tak,
        scale,
        &AllocConfig {
            save: SaveStrategy::Early,
            ..AllocConfig::paper_default()
        },
    );

    for r in [&callee_lazy, &caller_lazy, &caller_early] {
        assert_eq!(callee_early.value, r.value, "configurations must agree");
    }

    let speedup = |early: u64, lazy: u64| 100.0 * (early as f64 / lazy as f64 - 1.0);

    let mut t = Table::new(vec![
        "discipline".into(),
        "early cycles".into(),
        "lazy cycles".into(),
        "lazy speedup".into(),
    ]);
    t.row(vec![
        "callee-save (C model)".into(),
        callee_early.stats.cycles.to_string(),
        callee_lazy.stats.cycles.to_string(),
        pct(speedup(callee_early.stats.cycles, callee_lazy.stats.cycles)),
    ]);
    t.row(vec![
        "caller-save".into(),
        caller_early.stats.cycles.to_string(),
        caller_lazy.stats.cycles.to_string(),
        pct(speedup(caller_early.stats.cycles, caller_lazy.stats.cycles)),
    ]);

    println!("Table 5: early vs lazy saves under both disciplines, tak ({scale:?} scale)");
    println!("{t}");
    println!(
        "saves executed: callee-early {} / callee-lazy {} / caller-early {} / caller-lazy {}",
        callee_early.stats.saves(),
        callee_lazy.stats.saves(),
        caller_early.stats.saves(),
        caller_lazy.stats.saves(),
    );
    println!(
        "\nPaper: lazy saves speed up cc by 91%, gcc by 60%; the hand-coded\n\
         caller-save version gains 55% and is fastest overall.\n\
         Expected shape: lazy beats early under both disciplines, and\n\
         caller-save lazy has the lowest cycle count."
    );
    let fastest = [
        ("callee-early", callee_early.stats.cycles),
        ("callee-lazy", callee_lazy.stats.cycles),
        ("caller-early", caller_early.stats.cycles),
        ("caller-lazy", caller_lazy.stats.cycles),
    ]
    .into_iter()
    .min_by_key(|(_, c)| *c)
    .expect("non-empty");
    println!("Fastest here: {} ({} cycles).", fastest.0, fastest.1);

    let mut report = Report::new("table5", "tak: early vs lazy under both disciplines", scale);
    report.add_table("disciplines", &t);
    report.add_run(run_record("callee_early", &callee_early));
    report.add_run(run_record("callee_lazy", &callee_lazy));
    report.add_run(run_record("caller_early", &caller_early));
    report.add_run(run_record("caller_lazy", &caller_lazy));
    report.note("Paper: lazy speeds up cc 91%, gcc 60%; caller-save lazy fastest (55%).");
    report.emit();
}
