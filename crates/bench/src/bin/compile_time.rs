//! §4 compile-time share — "register allocation accounts for an average
//! of 7% of overall compile time."

use lesgs_bench::report::Report;
use lesgs_compiler::{compile_timed, CompilerConfig};
use lesgs_suite::all_benchmarks;
use lesgs_suite::programs::Scale;
use lesgs_suite::tables::{frac_pct, Table};

fn main() {
    let cfg = CompilerConfig::default();
    let reps = 25;
    let mut t = Table::new(vec![
        "benchmark".into(),
        "frontend µs".into(),
        "allocation µs".into(),
        "codegen µs".into(),
        "alloc share".into(),
    ]);
    let mut shares = Vec::new();
    for b in all_benchmarks() {
        // Take the best of several repetitions to damp noise.
        let mut best: Option<lesgs_compiler::PhaseTimes> = None;
        for _ in 0..reps {
            let (_, times) = compile_timed(b.source(Scale::Standard), &cfg)
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            if best.is_none_or(|b| times.total() < b.total()) {
                best = Some(times);
            }
        }
        let times = best.expect("at least one rep");
        shares.push(times.allocation_fraction());
        t.row(vec![
            b.name.to_owned(),
            times.frontend.as_micros().to_string(),
            times.allocation.as_micros().to_string(),
            times.codegen.as_micros().to_string(),
            frac_pct(times.allocation_fraction()),
        ]);
    }
    let avg = shares.iter().sum::<f64>() / shares.len() as f64;
    println!("§4: register allocation share of compile time (best of {reps} reps)");
    println!("{t}");
    println!(
        "Average allocation share: {} (paper: ~7% of overall compile time).",
        frac_pct(avg)
    );

    let mut report = Report::new(
        "compile_time",
        "Allocation share of compile time",
        Scale::Standard,
    );
    report.add_table("phase_times", &t);
    report.note(&format!(
        "Average allocation share: {} (paper: ~7%).",
        frac_pct(avg)
    ));
    report.emit();
}
