//! Table 4 — tak(18,12,6): the paper compares Chez Scheme (lazy saves,
//! caller-save registers) against cc -O3 and gcc -O3 (early saves,
//! callee-save registers), normalized to the C compiler.
//!
//! The C compilers are simulated by the early-callee-save configuration
//! of our own code generator — Tables 4/5 isolate the *save
//! discipline*, and using one backend isolates exactly that variable.

use lesgs_bench::report::{run_record, Report};
use lesgs_bench::{callee_save_config, run_benchmark, scale_from_args};
use lesgs_core::config::SaveStrategy;
use lesgs_core::AllocConfig;
use lesgs_suite::programs::benchmark;
use lesgs_suite::tables::{pct, Table};

fn main() {
    let scale = scale_from_args();
    let tak = benchmark("tak").expect("tak exists");

    // "cc -O3": callee-save registers, saves in the prologue.
    let cc = run_benchmark(&tak, scale, &callee_save_config(SaveStrategy::Early));
    // "gcc -O3": same discipline (a second early-callee-save compiler);
    // the paper found the two C compilers within 5% of each other.
    let gcc = &cc;
    // "Chez Scheme": lazy saves, caller-save registers.
    let chez = run_benchmark(&tak, scale, &AllocConfig::paper_default());

    assert_eq!(cc.value, chez.value, "all configurations must agree");

    let base = cc.stats.cycles as f64;
    let speedup = |cycles: u64| 100.0 * (base / cycles as f64 - 1.0);

    let mut t = Table::new(vec![
        "compiler".into(),
        "model".into(),
        "cycles".into(),
        "speedup vs cc".into(),
    ]);
    t.row(vec![
        "cc -O3 (simulated)".into(),
        "early callee-save".into(),
        cc.stats.cycles.to_string(),
        pct(speedup(cc.stats.cycles)),
    ]);
    t.row(vec![
        "gcc -O3 (simulated)".into(),
        "early callee-save".into(),
        gcc.stats.cycles.to_string(),
        pct(speedup(gcc.stats.cycles)),
    ]);
    t.row(vec![
        "Chez Scheme (this allocator)".into(),
        "lazy caller-save".into(),
        chez.stats.cycles.to_string(),
        pct(speedup(chez.stats.cycles)),
    ]);

    println!("Table 4: tak under C-like vs lazy/caller-save models ({scale:?} scale)");
    println!("{t}");
    println!("Paper: cc 0%, gcc 5%, Chez Scheme 14% speedup over cc.");
    println!(
        "Expected shape: the lazy caller-save model beats the early\n\
         callee-save (C) model on this call-intensive benchmark."
    );

    let mut report = Report::new("table4", "tak: C-like vs lazy/caller-save models", scale);
    report.add_table("compilers", &t);
    report.add_run(run_record("early_callee_save", &cc));
    report.add_run(run_record("paper_default", &chez));
    report.note("Paper: cc 0%, gcc 5%, Chez Scheme 14% speedup over cc.");
    report.emit();
}
