//! Figure 2 — eager vs lazy restore placement.
//!
//! The paper implemented both strategies and found that eager restores
//! run just as fast: "the reduced effect of memory latency offsets the
//! cost of unnecessary restores." This harness runs the suite under
//! both strategies and reports restore counts, stall cycles, and total
//! cycles.

use lesgs_bench::report::Report;
use lesgs_bench::{lazy_restore_config, mean, run_benchmark, scale_from_args};
use lesgs_core::AllocConfig;
use lesgs_suite::all_benchmarks;
use lesgs_suite::tables::Table;

fn main() {
    let scale = scale_from_args();
    let eager_cfg = AllocConfig::paper_default();
    let lazy_cfg = lazy_restore_config();

    let mut t = Table::new(vec![
        "benchmark".into(),
        "eager restores".into(),
        "lazy restores".into(),
        "eager stalls".into(),
        "lazy stalls".into(),
        "eager cycles".into(),
        "lazy cycles".into(),
        "lazy/eager".into(),
    ]);
    let mut ratios = Vec::new();
    for b in all_benchmarks() {
        let eager = run_benchmark(&b, scale, &eager_cfg);
        let lazy = run_benchmark(&b, scale, &lazy_cfg);
        assert_eq!(eager.value, lazy.value, "{}", b.name);
        let ratio = lazy.stats.cycles as f64 / eager.stats.cycles as f64;
        ratios.push(ratio);
        t.row(vec![
            b.name.to_owned(),
            eager.stats.restores().to_string(),
            lazy.stats.restores().to_string(),
            eager.stats.stall_cycles.to_string(),
            lazy.stats.stall_cycles.to_string(),
            eager.stats.cycles.to_string(),
            lazy.stats.cycles.to_string(),
            format!("{ratio:.3}"),
        ]);
    }
    println!("Figure 2 companion: eager vs lazy restore placement ({scale:?} scale)");
    println!("{t}");
    println!(
        "Mean lazy/eager cycle ratio: {:.3} (1.0 = equal).\n\
         Paper: \"the eager approach produced code that ran just as fast\";\n\
         lazy executes fewer restores but its loads sit next to their uses\n\
         and stall, while eager loads issue right after the call.",
        mean(&ratios)
    );

    let mut report = Report::new("figure2", "Eager vs lazy restore placement", scale);
    report.add_table("restores", &t);
    report.note(&format!(
        "Mean lazy/eager cycle ratio: {:.3}. Paper: eager runs just as fast.",
        mean(&ratios)
    ));
    report.emit();
}
