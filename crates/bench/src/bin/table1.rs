//! Table 1 — benchmark descriptions (our suite's analogue).

use lesgs_bench::report::Report;
use lesgs_suite::tables::Table;
use lesgs_suite::{all_benchmarks, Scale};

fn main() {
    let mut t = Table::new(vec![
        "benchmark".into(),
        "lines".into(),
        "description".into(),
    ]);
    for b in all_benchmarks() {
        let lines = b
            .standard
            .lines()
            .filter(|l| !l.trim().is_empty())
            .count()
            .to_string();
        t.row(vec![b.name.to_owned(), lines, b.description.to_owned()]);
    }
    println!("Table 1: benchmark suite");
    println!("{t}");
    println!(
        "The paper's large programs (Chez Scheme compiler, DDD, Similix,\n\
         SoftScheme) cannot be run here; the Gabriel-style kernels above\n\
         plus the extra call-heavy workloads stand in (see DESIGN.md)."
    );

    let mut report = Report::new("table1", "Benchmark suite", Scale::Standard);
    report.add_table("benchmarks", &t);
    report.note("Gabriel-style kernels stand in for the paper's large programs.");
    report.emit();
}
