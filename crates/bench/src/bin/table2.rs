//! Table 2 — dynamic call-graph summary.
//!
//! For every benchmark, the fraction of procedure activations in each
//! of the four classes: syntactic leaf, non-syntactic leaf,
//! non-syntactic internal, syntactic internal. The paper's headline:
//! syntactic leaves account for under one third of activations, but
//! *effective* leaves (the two leaf classes) for over two thirds.

use lesgs_bench::report::Report;
use lesgs_bench::{mean, run_benchmark, scale_from_args};
use lesgs_core::AllocConfig;
use lesgs_suite::tables::{frac_pct, Table};
use lesgs_suite::{all_benchmarks, programs::Scale};
use lesgs_vm::ActivationClass;

fn main() {
    let scale = scale_from_args();
    let cfg = AllocConfig::paper_default();
    let mut table = Table::new(vec![
        "benchmark".into(),
        "calls".into(),
        "syn leaf".into(),
        "non-syn leaf".into(),
        "non-syn int".into(),
        "syn int".into(),
        "eff leaf".into(),
    ]);
    let mut class_avgs: Vec<Vec<f64>> = vec![Vec::new(); 4];
    let mut eff = Vec::new();
    for b in all_benchmarks() {
        let run = run_benchmark(&b, scale, &cfg);
        let mut cells = vec![b.name.to_owned(), run.stats.total_activations().to_string()];
        for (i, class) in ActivationClass::ALL.iter().enumerate() {
            let f = run.stats.activation_fraction(*class);
            class_avgs[i].push(f);
            cells.push(frac_pct(f));
        }
        let e = run.stats.effective_leaf_fraction();
        eff.push(e);
        cells.push(frac_pct(e));
        table.row(cells);
    }
    let mut avg = vec!["Average".to_owned(), String::new()];
    avg.extend(class_avgs.iter().map(|xs| frac_pct(mean(xs))));
    avg.push(frac_pct(mean(&eff)));
    table.row(avg);

    println!("Table 2: dynamic call graph summary ({scale:?} scale)");
    println!("{table}");
    println!("Paper: syntactic leaves < 1/3 of activations; effective leaves > 2/3.");
    println!(
        "Here: syntactic leaves = {}, effective leaves = {}.",
        frac_pct(mean(&class_avgs[0])),
        frac_pct(mean(&eff)),
    );
    let _ = Scale::Standard;

    let mut report = Report::new("table2", "Dynamic call graph summary", scale);
    report.add_table("activation_classes", &table);
    report.note("Paper: syntactic leaves < 1/3 of activations; effective leaves > 2/3.");
    report.emit();
}
