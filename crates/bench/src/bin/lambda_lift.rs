//! §6 ablation — selective lambda lifting.
//!
//! The paper leaves lambda lifting as future work, citing [13, 9] and
//! warning that it "can easily result in net performance decreases."
//! Our selective pass only lifts non-escaping `letrec` groups whose
//! lifted arity still fits the argument registers, so it can only
//! remove closure allocations and `cp` traffic.

use lesgs_bench::report::Report;
use lesgs_bench::{mean, scale_from_args};
use lesgs_compiler::{run_source, CompilerConfig};
use lesgs_suite::all_benchmarks;
use lesgs_suite::tables::Table;

fn main() {
    let scale = scale_from_args();
    let mut t = Table::new(vec![
        "benchmark".into(),
        "closures off".into(),
        "closures on".into(),
        "cycles off".into(),
        "cycles on".into(),
        "improvement".into(),
    ]);
    let mut improvements = Vec::new();
    for b in all_benchmarks() {
        let src = b.source(scale);
        let off = run_source(src, &CompilerConfig::default())
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let on = run_source(
            src,
            &CompilerConfig {
                lambda_lift: true,
                ..CompilerConfig::default()
            },
        )
        .unwrap_or_else(|e| panic!("{} (lifted): {e}", b.name));
        assert_eq!(off.value, on.value, "{}", b.name);
        let imp = 100.0 * (off.stats.cycles as f64 / on.stats.cycles as f64 - 1.0);
        improvements.push(imp);
        t.row(vec![
            b.name.to_owned(),
            off.stats.closures_allocated.to_string(),
            on.stats.closures_allocated.to_string(),
            off.stats.cycles.to_string(),
            on.stats.cycles.to_string(),
            format!("{imp:+.1}%"),
        ]);
    }
    println!("§6 ablation: selective lambda lifting ({scale:?} scale)");
    println!("{t}");
    println!(
        "Mean improvement: {:+.1}%. Benchmarks whose loops capture enclosing\n\
         variables (prelude loops, named lets) lose their closures; programs\n\
         that were already closure-free are untouched, so the pass never\n\
         regresses — the \"appropriate set of heuristics\" the paper asks for.",
        mean(&improvements)
    );

    let mut report = Report::new("lambda_lift", "Selective lambda lifting ablation", scale);
    report.add_table("lifting", &t);
    report.note(&format!("Mean improvement: {:+.1}%.", mean(&improvements)));
    report.emit();
}
