//! Figure 1 — the derived `S_t`/`S_f` equations for `not`, `and`, and
//! `or`, demonstrated on concrete expressions and cross-checked against
//! their `if`-expansions (the full machine-checked proof is the
//! property suite in `lesgs-core::toy`).

use lesgs_bench::report::Report;
use lesgs_core::toy::{figure1, s_revised, save_set, Toy};
use lesgs_ir::machine::arg_reg;
use lesgs_ir::RegSet;
use lesgs_suite::tables::Table;
use lesgs_suite::Scale;

fn show(table: &mut Table, name: &str, derived: (RegSet, RegSet), expanded: &Toy) {
    let direct = s_revised(expanded);
    println!(
        "{name:<22} S_t = {:<12} S_f = {:<12} (if-expansion: S_t = {}, S_f = {})",
        derived.0.to_string(),
        derived.1.to_string(),
        direct.0,
        direct.1
    );
    assert_eq!(
        derived, direct,
        "Figure 1 equation must match the expansion"
    );
    table.row(vec![
        name.to_owned(),
        derived.0.to_string(),
        derived.1.to_string(),
    ]);
}

fn main() {
    let live: RegSet = [arg_reg(0), arg_reg(1)].into_iter().collect();
    let x = Toy::Var(arg_reg(0));
    let call = Toy::call(live.iter());

    println!("Figure 1: derived save-placement equations (checked against if-expansions)\n");

    let mut table = Table::new(vec!["form".into(), "S_t".into(), "S_f".into()]);

    let e = Toy::seq(call.clone(), x.clone());
    show(
        &mut table,
        "(not E)",
        figure1::s_not(&e),
        &Toy::not(e.clone()),
    );

    let a = Toy::if_(x.clone(), call.clone(), Toy::False);
    let b = call.clone();
    show(
        &mut table,
        "(and E1 E2)",
        figure1::s_and(&a, &b),
        &Toy::and(a.clone(), b.clone()),
    );

    let c = Toy::if_(x.clone(), Toy::True, call.clone());
    show(
        &mut table,
        "(or E1 E2)",
        figure1::s_or(&c, &x),
        &Toy::or(c.clone(), x.clone()),
    );

    println!("\nThe paper's §2.1.2 worked example:");
    let inner = Toy::if_(x.clone(), call.clone(), Toy::False);
    let outer = Toy::if_(inner.clone(), Toy::Var(arg_reg(1)), call.clone());
    println!("  A = (if (if x call false) y call)");
    println!(
        "  inner save set = {} (nothing saved around the inner if)",
        save_set(&inner)
    );
    println!(
        "  outer save set = {} (all live registers, as required)",
        save_set(&outer)
    );
    assert_eq!(save_set(&inner), RegSet::EMPTY);
    assert_eq!(save_set(&outer), live);
    println!("\nAll Figure 1 equations verified.");

    let mut report = Report::new(
        "figure1",
        "Derived save-placement equations",
        Scale::Standard,
    );
    report.add_table("equations", &table);
    report.note("Each derived (S_t, S_f) pair matches its if-expansion.");
    report.emit();
}
