//! `bench-report` — machine-readable results for the whole suite.
//!
//! Runs every suite benchmark under the no-register baseline and the
//! full-optimization (paper-default) configuration and writes one JSON
//! document in the shared report schema (see `lesgs_bench::report` and
//! OBSERVABILITY.md) to `BENCH_report.json`:
//!
//! ```text
//! cargo run --release -p lesgs-bench --bin bench-report            # standard scale
//! cargo run --release -p lesgs-bench --bin bench-report -- --small # CI-fast subset
//! cargo run --release -p lesgs-bench --bin bench-report -- --out=path.json
//! ```
//!
//! The `runs` array holds one structured record per benchmark ×
//! configuration with the full `vm.*`/`alloc.*` counter sets; the
//! `comparisons` table summarizes the headline stack-reference
//! reduction and speedup of full optimization over the baseline.

use lesgs_bench::report::{run_record, Report};
use lesgs_bench::{mean, run_benchmark, scale_from_args};
use lesgs_core::AllocConfig;
use lesgs_suite::all_benchmarks;
use lesgs_suite::measure::Measurement;
use lesgs_suite::tables::{pct, Table};

fn out_path() -> String {
    for a in std::env::args() {
        if let Some(p) = a.strip_prefix("--out=") {
            return p.to_owned();
        }
    }
    "BENCH_report.json".to_owned()
}

fn main() {
    let scale = scale_from_args();
    let path = out_path();

    let mut report = Report::new("bench-report", "Full-suite benchmark report", scale);
    let mut table = Table::new(vec![
        "benchmark".into(),
        "base stack refs".into(),
        "opt stack refs".into(),
        "stack-ref reduction".into(),
        "base cycles".into(),
        "opt cycles".into(),
        "speedup".into(),
    ]);
    let mut reductions = Vec::new();
    let mut speedups = Vec::new();

    for b in all_benchmarks() {
        let base = run_benchmark(&b, scale, &AllocConfig::baseline());
        let opt = run_benchmark(&b, scale, &AllocConfig::paper_default());
        assert_eq!(base.value, opt.value, "{}: configs must agree", b.name);
        let m = Measurement::compare(&base, &opt);
        reductions.push(m.stack_ref_reduction());
        speedups.push(m.speedup_percent());
        table.row(vec![
            b.name.to_owned(),
            m.base_stack_refs.to_string(),
            m.opt_stack_refs.to_string(),
            pct(m.stack_ref_reduction()),
            m.base_cycles.to_string(),
            m.opt_cycles.to_string(),
            pct(m.speedup_percent()),
        ]);
        report.add_run(run_record("baseline", &base));
        report.add_run(run_record("paper_default", &opt));
        eprintln!("{}: done", b.name);
    }
    table.row(vec![
        "Average".into(),
        String::new(),
        String::new(),
        pct(mean(&reductions)),
        String::new(),
        String::new(),
        pct(mean(&speedups)),
    ]);
    report.add_table("comparisons", &table);
    report.note(
        "Full optimization (lazy saves, eager restores, greedy shuffling, six \
         argument registers) vs the no-register baseline.",
    );

    println!("{table}");
    std::fs::write(&path, report.to_json().pretty()).unwrap_or_else(|e| panic!("{path}: {e}"));
    println!("wrote {path}");
}
