//! `bench-report` — machine-readable results for the whole suite.
//!
//! Runs every suite benchmark under the no-register baseline and the
//! full-optimization (paper-default) configuration and writes one JSON
//! document in the shared report schema (see `lesgs_bench::report` and
//! OBSERVABILITY.md) to `BENCH_report.json`:
//!
//! ```text
//! cargo run --release -p lesgs-bench --bin bench-report            # standard scale
//! cargo run --release -p lesgs-bench --bin bench-report -- --small # CI-fast subset
//! cargo run --release -p lesgs-bench --bin bench-report -- --jobs 4
//! cargo run --release -p lesgs-bench --bin bench-report -- --out=path.json
//! cargo run --release -p lesgs-bench --bin bench-report -- --check baseline.json
//! ```
//!
//! The `runs` array holds one structured record per benchmark ×
//! configuration with the full `vm.*`/`alloc.*` counter sets; the
//! `comparisons` table summarizes the headline stack-reference
//! reduction and speedup of full optimization over the baseline, and
//! the `dispatch`/`dispatch_throughput` tables record what pre-decoding
//! did to the code and how much faster the decoded engine retires it.
//! `--jobs <n>` fans the benchmarks across `n` workers; everything in
//! the document except the wall-clock tables (`timing`,
//! `dispatch_throughput`) is byte-identical whatever the job count.
//!
//! `--check <baseline>` is the CI perf-regression gate: instead of
//! writing a file, it builds the report and compares its deterministic
//! fields (everything but the wall-clock tables) against the committed
//! baseline, exiting 1 with the first divergent line on drift. Pass
//! `--out=` as well to also write the fresh report.

use lesgs_bench::check::check_reports;
use lesgs_bench::scale_from_args;
use lesgs_bench::suite_report::build_suite_report;
use lesgs_suite::all_benchmarks;

fn out_path() -> Option<String> {
    std::env::args().find_map(|a| a.strip_prefix("--out=").map(str::to_owned))
}

fn check_path() -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--check" {
            match args.next() {
                Some(p) => return Some(p),
                None => {
                    eprintln!("bench-report: --check requires a baseline path");
                    std::process::exit(2);
                }
            }
        }
    }
    None
}

fn jobs_from_args() -> usize {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--jobs" {
            let jobs = args
                .next()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n > 0);
            match jobs {
                Some(n) => return n,
                None => {
                    eprintln!("bench-report: --jobs requires a number >= 1");
                    std::process::exit(2);
                }
            }
        }
    }
    1
}

fn main() {
    let scale = scale_from_args();
    let jobs = jobs_from_args();
    let check = check_path();
    // In --check mode nothing is written unless --out= asks for it.
    let path = match (&check, out_path()) {
        (_, Some(p)) => Some(p),
        (None, None) => Some("BENCH_report.json".to_owned()),
        (Some(_), None) => None,
    };

    let built = build_suite_report(all_benchmarks(), scale, jobs, |name| {
        eprintln!("{name}: done");
    });
    if jobs > 1 {
        eprintln!("bench-report: exec: {}", built.stats.summary());
    }

    println!("{}", built.comparisons);
    if let Some(path) = &path {
        std::fs::write(path, built.report.to_json().pretty())
            .unwrap_or_else(|e| panic!("{path}: {e}"));
        println!("wrote {path}");
    }

    if let Some(baseline_path) = check {
        let text = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("{baseline_path}: {e}"));
        let baseline = lesgs_metrics::parse_json(&text)
            .unwrap_or_else(|e| panic!("{baseline_path}: not valid JSON: {e}"));
        match check_reports(&baseline, &built.report.to_json()) {
            Ok(()) => println!("perf gate: deterministic fields match {baseline_path}"),
            Err(diff) => {
                eprintln!("perf gate: report drifted from {baseline_path}\n{diff}");
                std::process::exit(1);
            }
        }
    }
}
