//! `bench-report` — machine-readable results for the whole suite.
//!
//! Runs every suite benchmark under the no-register baseline and the
//! full-optimization (paper-default) configuration and writes one JSON
//! document in the shared report schema (see `lesgs_bench::report` and
//! OBSERVABILITY.md) to `BENCH_report.json`:
//!
//! ```text
//! cargo run --release -p lesgs-bench --bin bench-report            # standard scale
//! cargo run --release -p lesgs-bench --bin bench-report -- --small # CI-fast subset
//! cargo run --release -p lesgs-bench --bin bench-report -- --jobs 4
//! cargo run --release -p lesgs-bench --bin bench-report -- --out=path.json
//! ```
//!
//! The `runs` array holds one structured record per benchmark ×
//! configuration with the full `vm.*`/`alloc.*` counter sets; the
//! `comparisons` table summarizes the headline stack-reference
//! reduction and speedup of full optimization over the baseline.
//! `--jobs <n>` fans the benchmarks across `n` workers; everything in
//! the document except the `timing` table — which records the
//! sequential-vs-parallel wall-time comparison — is byte-identical
//! whatever the job count.

use lesgs_bench::scale_from_args;
use lesgs_bench::suite_report::build_suite_report;
use lesgs_suite::all_benchmarks;

fn out_path() -> String {
    for a in std::env::args() {
        if let Some(p) = a.strip_prefix("--out=") {
            return p.to_owned();
        }
    }
    "BENCH_report.json".to_owned()
}

fn jobs_from_args() -> usize {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--jobs" {
            let jobs = args
                .next()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n > 0);
            match jobs {
                Some(n) => return n,
                None => {
                    eprintln!("bench-report: --jobs requires a number >= 1");
                    std::process::exit(2);
                }
            }
        }
    }
    1
}

fn main() {
    let scale = scale_from_args();
    let jobs = jobs_from_args();
    let path = out_path();

    let built = build_suite_report(all_benchmarks(), scale, jobs, |name| {
        eprintln!("{name}: done");
    });
    if jobs > 1 {
        eprintln!("bench-report: exec: {}", built.stats.summary());
    }

    println!("{}", built.comparisons);
    std::fs::write(&path, built.report.to_json().pretty())
        .unwrap_or_else(|e| panic!("{path}: {e}"));
    println!("wrote {path}");
}
