//! Cost-model ablation — how the eager-vs-lazy restore decision depends
//! on memory latency.
//!
//! The paper's §2.2 finding ("the reduced effect of memory latency
//! offsets the cost of unnecessary restores") is a statement about a
//! particular machine. This harness sweeps the load latency of the cost
//! model: the latency-dependent part of the eager-vs-lazy gap grows
//! monotonically with the latency, isolating exactly the effect the
//! paper describes. (Lazy also carries a latency-independent structural
//! cost here — region-exit restores at save-region boundaries, Figure
//! 2c — so eager leads even at zero latency.)

use lesgs_bench::report::Report;
use lesgs_bench::{geometric_mean, lazy_restore_config, scale_from_args};
use lesgs_core::AllocConfig;
use lesgs_suite::all_benchmarks;
use lesgs_suite::measure::measure_with_cost;
use lesgs_suite::tables::Table;
use lesgs_vm::CostModel;

fn main() {
    let scale = scale_from_args();
    let mut t = Table::new(vec![
        "load latency".into(),
        "lazy/eager cycle ratio".into(),
        "winner".into(),
    ]);
    for latency in [0u64, 1, 2, 3, 5, 8] {
        let cost = CostModel {
            load_latency: latency,
            ..CostModel::alpha_like()
        };
        let mut ratios = Vec::new();
        for b in all_benchmarks() {
            let eager = measure_with_cost(&b, scale, &AllocConfig::paper_default(), cost)
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            let lazy = measure_with_cost(&b, scale, &lazy_restore_config(), cost)
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            ratios.push(lazy.stats.cycles as f64 / eager.stats.cycles as f64);
        }
        let ratio = geometric_mean(&ratios);
        t.row(vec![
            latency.to_string(),
            format!("{ratio:.3}"),
            if ratio < 0.999 {
                "lazy".into()
            } else if ratio > 1.001 {
                "eager".into()
            } else {
                "tie".into()
            },
        ]);
    }
    println!("Restore-strategy gap vs load latency ({scale:?} scale)");
    println!("{t}");
    println!(
        "The gap widens monotonically with load latency: eager's early\n\
         loads hide exactly the latency the lazy placement pays for at\n\
         each use — the §2.2 effect, isolated. The strategy decision is\n\
         a property of the memory system, as the paper argues."
    );

    let mut report = Report::new(
        "latency_ablation",
        "Restore-strategy gap vs load latency",
        scale,
    );
    report.add_table("latency_sweep", &t);
    report.note("The eager-vs-lazy gap grows monotonically with load latency (§2.2).");
    report.emit();
}
