//! Parallel construction of the full-suite benchmark report.
//!
//! [`build_suite_report`] is the library form of the `bench-report`
//! binary: it runs every given benchmark under the no-register baseline
//! and the paper-default configuration — fanning the benchmarks across
//! a [`lesgs_exec`] worker pool — and merges the results **in benchmark
//! order** into the shared report schema. Every table, run record, and
//! note except the wall-clock tables ([`TIMING_TABLE`],
//! [`DISPATCH_THROUGHPUT_TABLE`], [`SERVICE_THROUGHPUT_TABLE`]) is
//! byte-identical whatever the job count; the wall-clock tables (fixed
//! shape, timing-dependent values) record the sequential-vs-parallel
//! comparison, the classic-vs-decoded dispatch throughput, and the
//! batch-service replay throughput for the current run. The report also
//! replays a seeded compile-and-run workload through the [`lesgs_svc`]
//! batch service; its cache accounting ([`SERVICE_CACHE_TABLE`]) is
//! deterministic and gated.

use std::time::Instant;

use lesgs_compiler::{compile, CompilerConfig};
use lesgs_core::config::ShuffleStrategy;
use lesgs_core::stats::ShuffleStats;
use lesgs_core::AllocConfig;
use lesgs_exec::{map_ordered, PoolConfig, PoolStats};
use lesgs_metrics::{ratio, Histogram, Registry};
use lesgs_suite::measure::Measurement;
use lesgs_suite::programs::Benchmark;
use lesgs_suite::tables::{frac_pct, pct, Table};
use lesgs_suite::Scale;
use lesgs_svc::loadgen::WorkloadConfig;
use lesgs_svc::{BatchStats, Request, Service, ServiceConfig};
use lesgs_vm::{
    ClassicMachine, CostModel, DecodeStats, DispatchRunStats, Machine, FUSION_TABLE, TRIPLE_TABLE,
};

use crate::report::{run_record, Report};
use crate::{mean, run_benchmark};

/// Name of the sequential-vs-parallel wall-clock table — one of the
/// tables a determinism comparison must ignore (values are
/// timing-dependent; the shape is not).
pub const TIMING_TABLE: &str = "timing";

/// Name of the deterministic per-benchmark decode/fusion statistics
/// table. Covered by the perf-regression gate: fusion counts only move
/// when codegen or the fusion catalogue changes.
pub const DISPATCH_TABLE: &str = "dispatch";

/// Name of the classic-vs-decoded throughput table — the other
/// wall-clock table a determinism comparison must ignore.
pub const DISPATCH_THROUGHPUT_TABLE: &str = "dispatch_throughput";

/// Name of the deterministic runtime fusion/inline-cache table: per
/// benchmark, how often each enabled superinstruction actually fired
/// on the decoded engine and how stable every closure-call site's
/// callee was (inline-cache hits/misses/hit rate). Pure counts from a
/// deterministic run, so the perf-regression gate covers it.
pub const DISPATCH_FUSION_TABLE: &str = "dispatch_fusion";

/// Name of the deterministic speculative-dispatch accounting table:
/// per benchmark, how often the decoded engine's speculative
/// inline-cache fast path fired (`fast hits`), how often its closure
/// guard failed, and how many sites were demoted to the observational
/// slow path. Pure counts from a deterministic run, so the
/// perf-regression gate covers it.
pub const SPECULATION_TABLE: &str = "speculation";

/// Name of the deterministic three-way shuffle-strategy table:
/// paper-greedy vs. the exhaustive optimum vs. optimal shuffle code
/// with permutation instructions, per benchmark. Static compile-time
/// statistics, so the perf-regression gate covers it.
pub const SHUFFLE_STRATEGIES_TABLE: &str = "shuffle_strategies";

/// Name of the deterministic service-cache accounting table: the
/// batch compile-and-run service replays a fixed seeded workload, and
/// every counter (requests, hits, misses, evictions) is a pure
/// function of that workload, so the perf-regression gate covers it.
pub const SERVICE_CACHE_TABLE: &str = "service_cache";

/// Name of the service throughput/latency table for the same workload
/// — wall-clock values, excluded from the perf-regression gate.
pub const SERVICE_THROUGHPUT_TABLE: &str = "service_throughput";

/// A built suite report plus the pool accounting behind it.
#[derive(Debug, Clone)]
pub struct SuiteReport {
    /// The full report (comparisons table, per-run records, timing).
    pub report: Report,
    /// The human-readable comparisons table, for printing.
    pub comparisons: Table,
    /// Worker-pool accounting for the benchmark fan-out.
    pub stats: PoolStats,
}

/// The pool the suite runs on: wide-stack workers marked for inline
/// interpreter evaluation, like the fuzzer's (compilation recurses over
/// program structure, and oracle-style harnesses share these workers).
fn suite_pool(jobs: usize) -> PoolConfig {
    PoolConfig {
        workers: jobs.max(1),
        stack_bytes: lesgs_interp::wide_stack_bytes(),
        name: "lesgs-bench".to_owned(),
        worker_init: Some(lesgs_interp::mark_wide_stack),
    }
}

/// Runs `benchmarks` at `scale` on `jobs` workers and builds the
/// `bench-report` document. `progress` is called once per benchmark,
/// in order, as results merge. Apart from the [`TIMING_TABLE`], the
/// output is byte-identical for every `jobs` value.
///
/// # Panics
///
/// Panics when a benchmark fails to run or a worker job panics —
/// harnesses have no useful way to continue.
pub fn build_suite_report(
    benchmarks: Vec<Benchmark>,
    scale: Scale,
    jobs: usize,
    mut progress: impl FnMut(&str),
) -> SuiteReport {
    // Dispatch timing runs serially and first, before the worker pool
    // touches the heap: the classic-vs-decoded ratio is a wall-clock
    // measurement, and both concurrent jobs and a suite-worn allocator
    // skew it.
    let dispatches: Vec<(String, DispatchMeasurement)> = benchmarks
        .iter()
        .map(|b| (b.name.to_owned(), measure_dispatch(b, scale)))
        .collect();

    // The service workload also runs before the benchmark fan-out so
    // its throughput numbers see a quiet machine. Its cache counters
    // are worker-count-invariant by construction, so only the
    // SERVICE_THROUGHPUT_TABLE values are wall-clock-dependent.
    let service = measure_service(scale);

    let outcome = map_ordered(&suite_pool(jobs), benchmarks, |_, b| {
        let base = run_benchmark(&b, scale, &AllocConfig::baseline());
        let opt = run_benchmark(&b, scale, &AllocConfig::paper_default());
        let permi = permi_shuffle_stats(&b, scale);
        (b, base, opt, permi)
    });

    let mut report = Report::new("bench-report", "Full-suite benchmark report", scale);
    let mut table = Table::new(vec![
        "benchmark".into(),
        "base stack refs".into(),
        "opt stack refs".into(),
        "stack-ref reduction".into(),
        "base cycles".into(),
        "opt cycles".into(),
        "speedup".into(),
    ]);
    let mut reductions = Vec::new();
    let mut speedups = Vec::new();
    let mut strategies = Vec::new();

    for slot in outcome.results {
        let (b, base, opt, permi) = slot.unwrap_or_else(|p| panic!("benchmark job panicked: {p}"));
        assert_eq!(base.value, opt.value, "{}: configs must agree", b.name);
        let m = Measurement::compare(&base, &opt);
        reductions.push(m.stack_ref_reduction());
        speedups.push(m.speedup_percent());
        table.row(vec![
            b.name.to_owned(),
            m.base_stack_refs.to_string(),
            m.opt_stack_refs.to_string(),
            pct(m.stack_ref_reduction()),
            m.base_cycles.to_string(),
            m.opt_cycles.to_string(),
            pct(m.speedup_percent()),
        ]);
        report.add_run(run_record("baseline", &base));
        report.add_run(run_record("paper_default", &opt));
        strategies.push((b.name.to_owned(), opt.shuffle, permi));
        progress(b.name);
    }
    table.row(vec![
        "Average".into(),
        String::new(),
        String::new(),
        pct(mean(&reductions)),
        String::new(),
        String::new(),
        pct(mean(&speedups)),
    ]);
    report.add_table("comparisons", &table);
    report.note(
        "Full optimization (lazy saves, eager restores, greedy shuffling, six \
         argument registers) vs the no-register baseline.",
    );
    report.add_table(SHUFFLE_STRATEGIES_TABLE, &strategies_table(&strategies));
    report.note(
        "Shuffle strategies compares, per benchmark, the temporaries of the \
         paper's greedy algorithm, the exhaustive optimum over argument \
         orderings, and optimal shuffle code with permutation instructions \
         (swap/permi), plus the permutation instructions emitted and the \
         argument moves they subsume.",
    );
    report.add_table(DISPATCH_TABLE, &dispatch_table(&dispatches));
    report.add_table(DISPATCH_FUSION_TABLE, &dispatch_fusion_table(&dispatches));
    report.add_table(SPECULATION_TABLE, &speculation_table(&dispatches));
    report.add_table(
        DISPATCH_THROUGHPUT_TABLE,
        &dispatch_throughput_table(&dispatches),
    );
    report.note(
        "Dispatch throughput compares the classic per-function interpreter \
         against the pre-decoded threaded dispatch loop on the paper-default \
         configuration; both engines observed identical counters and values \
         on every benchmark in this report.",
    );
    report.note(
        "Dispatch fusion reports, per benchmark, how often each entry of the \
         measured superinstruction table (crates/vm/src/fusion_table.rs, \
         regenerated by lesgs-fusegen) fired on the decoded engine — pair \
         and triple entries alike — and the monomorphic inline-cache \
         accounting for closure-call sites.",
    );
    report.note(
        "Speculation reports the speculative inline-cache dispatch \
         accounting: fast-path hits that jumped straight to the cached \
         callee's decoded code, closure-guard failures, and sites demoted \
         to the observational slow path. Observable vm.* counters are \
         byte-identical with speculation off; only these bookkeeping \
         counters move.",
    );
    report.add_table(SERVICE_CACHE_TABLE, &service_cache_table(&service));
    report.add_table(
        SERVICE_THROUGHPUT_TABLE,
        &service_throughput_table(&service),
    );
    report.note(
        "The service tables replay a fixed seeded compile-and-run workload \
         (lesgs-svc loadgen) through the batch service with its \
         content-keyed LRU program cache. Cache accounting is a pure \
         function of the workload (gated); throughput and latency are \
         wall-clock for the current machine (not gated). Reproduce with \
         the lesgs-load binary — see EXPERIMENTS.md.",
    );
    report.add_table(TIMING_TABLE, &timing_table(jobs, &outcome.stats));

    SuiteReport {
        report,
        comparisons: table,
        stats: outcome.stats,
    }
}

/// Compiles `b` under the paper-default configuration with
/// [`ShuffleStrategy::OptimalPermi`] and collects the static shuffle
/// statistics — under that strategy `greedy_temps` counts the
/// temporaries the permutation-aware planner actually used.
fn permi_shuffle_stats(b: &Benchmark, scale: Scale) -> ShuffleStats {
    let config = CompilerConfig {
        alloc: AllocConfig {
            shuffle: ShuffleStrategy::OptimalPermi,
            ..AllocConfig::paper_default()
        },
        ..CompilerConfig::default()
    };
    compile(b.source(scale), &config)
        .unwrap_or_else(|e| panic!("{}: permi compile failed: {e}", b.name))
        .shuffle_stats()
}

/// The three-way shuffle-strategy comparison (one row per benchmark
/// plus a total row): greedy temporaries, the exhaustive optimum,
/// the permutation-aware strategy's temporaries, and the `swap`/`permi`
/// instructions it emitted with the moves they subsume.
fn strategies_table(strategies: &[(String, ShuffleStats, ShuffleStats)]) -> Table {
    let mut t = Table::new(vec![
        "benchmark".into(),
        "call sites".into(),
        "greedy temps".into(),
        "optimal temps".into(),
        "permi temps".into(),
        "perm ops".into(),
        "perm moves".into(),
    ]);
    let (mut total_greedy, mut total_permi) = (ShuffleStats::default(), ShuffleStats::default());
    let add = |acc: &mut ShuffleStats, s: &ShuffleStats| {
        acc.call_sites += s.call_sites;
        acc.greedy_temps += s.greedy_temps;
        acc.optimal_temps += s.optimal_temps;
        acc.perm_ops += s.perm_ops;
        acc.perm_moves += s.perm_moves;
    };
    for (name, greedy, permi) in strategies {
        add(&mut total_greedy, greedy);
        add(&mut total_permi, permi);
        t.row(vec![
            name.clone(),
            greedy.call_sites.to_string(),
            greedy.greedy_temps.to_string(),
            greedy.optimal_temps.to_string(),
            permi.greedy_temps.to_string(),
            permi.perm_ops.to_string(),
            permi.perm_moves.to_string(),
        ]);
    }
    t.row(vec![
        "Total".into(),
        total_greedy.call_sites.to_string(),
        total_greedy.greedy_temps.to_string(),
        total_greedy.optimal_temps.to_string(),
        total_permi.greedy_temps.to_string(),
        total_permi.perm_ops.to_string(),
        total_permi.perm_moves.to_string(),
    ]);
    t
}

/// The batch service replayed over a fixed seeded workload: the
/// deterministic cache accounting plus the wall-clock throughput and
/// latency of the replay.
struct ServiceMeasurement {
    workload: WorkloadConfig,
    cache_capacity: usize,
    workers: usize,
    compile_requests: u64,
    run_requests: u64,
    totals: BatchStats,
    latency: Histogram,
    wall_ns: f64,
}

/// The service workload per report scale. Small keeps test-time replay
/// fast; standard matches the published EXPERIMENTS.md numbers. The
/// worker count is fixed (independent of the report's `--jobs`): the
/// cache counters are worker-invariant anyway, and a fixed pool keeps
/// the throughput values comparable across report runs.
fn service_workload(scale: Scale) -> (WorkloadConfig, usize) {
    match scale {
        Scale::Small => (
            WorkloadConfig {
                programs: 16,
                requests: 600,
                ..WorkloadConfig::default()
            },
            12,
        ),
        Scale::Standard => (
            WorkloadConfig {
                programs: 96,
                requests: 20_000,
                ..WorkloadConfig::default()
            },
            64,
        ),
    }
}

/// Replays the scale's seeded workload through a fresh service in
/// batches of 256 and collects both sides of the measurement. The
/// request stream, and therefore every cache counter, is a pure
/// function of `scale`.
fn measure_service(scale: Scale) -> ServiceMeasurement {
    let (workload, cache_capacity) = service_workload(scale);
    let workers = 4;
    let pool = lesgs_svc::loadgen::programs(&workload);
    let stream = lesgs_svc::loadgen::requests(&workload, &pool);
    let mut service = Service::new(ServiceConfig {
        workers,
        cache_capacity,
        ..ServiceConfig::default()
    });
    let mut reg = Registry::new();
    let mut totals = BatchStats::default();
    let start = Instant::now();
    for batch in stream.chunks(256) {
        let (_, stats) = service.process_batch(batch, &mut reg);
        totals.merge(&stats);
    }
    let wall_ns = start.elapsed().as_nanos() as f64;
    assert_eq!(totals.errors, 0, "service workload programs must all run");
    let compile_requests = stream
        .iter()
        .filter(|r| matches!(r, Request::Compile { .. }))
        .count() as u64;
    ServiceMeasurement {
        workload,
        cache_capacity,
        workers,
        compile_requests,
        run_requests: stream.len() as u64 - compile_requests,
        totals,
        latency: reg
            .histogram("svc.request_latency_ns")
            .copied()
            .unwrap_or_default(),
        wall_ns,
    }
}

/// The deterministic service-cache accounting table. Every value is a
/// pure function of the seeded workload and the cache capacity, so the
/// perf-regression gate covers it: a hit-rate or eviction drift means
/// the cache policy, the content keys, or the workload changed.
fn service_cache_table(m: &ServiceMeasurement) -> Table {
    let mut t = Table::new(vec!["metric".into(), "value".into()]);
    t.row(vec!["requests".into(), m.totals.requests.to_string()]);
    t.row(vec!["programs".into(), m.workload.programs.to_string()]);
    t.row(vec![
        "compile requests".into(),
        m.compile_requests.to_string(),
    ]);
    t.row(vec!["run requests".into(), m.run_requests.to_string()]);
    t.row(vec!["cache capacity".into(), m.cache_capacity.to_string()]);
    t.row(vec!["cache hits".into(), m.totals.hits.to_string()]);
    t.row(vec!["cache misses".into(), m.totals.misses.to_string()]);
    t.row(vec!["evictions".into(), m.totals.evictions.to_string()]);
    t.row(vec!["hit rate".into(), pct(100.0 * m.totals.hit_rate())]);
    t.row(vec!["errors".into(), m.totals.errors.to_string()]);
    t
}

/// Service throughput and latency for the same replay — wall-clock
/// values, excluded from the perf-regression gate. Shape is fixed;
/// only the values vary run to run.
fn service_throughput_table(m: &ServiceMeasurement) -> Table {
    let per_sec = ratio(m.totals.requests as f64 * 1e9, m.wall_ns, 0.0);
    let mut t = Table::new(vec!["metric".into(), "value".into()]);
    t.row(vec!["workers".into(), m.workers.to_string()]);
    t.row(vec!["wall (ms)".into(), format!("{:.1}", m.wall_ns / 1e6)]);
    t.row(vec!["throughput (req/s)".into(), format!("{per_sec:.0}")]);
    t.row(vec![
        "latency mean (us)".into(),
        format!("{:.1}", m.latency.mean() / 1e3),
    ]);
    t.row(vec![
        "latency max (us)".into(),
        format!("{:.1}", m.latency.max / 1e3),
    ]);
    t
}

/// One benchmark's classic-vs-decoded dispatch comparison: the static
/// decode statistics (deterministic) plus the wall time each engine
/// took to retire the same instruction stream.
struct DispatchMeasurement {
    stats: DecodeStats,
    /// Runtime fusion/IC accounting from the (deterministic) decoded
    /// warm-up run.
    dispatch: DispatchRunStats,
    instructions: u64,
    classic_ns: f64,
    decoded_ns: f64,
}

/// Compiles `b` once under the paper-default configuration and runs it
/// on both engines, timing each. Every report build doubles as a
/// differential check: the engines must agree on the final value and on
/// every [`lesgs_vm::RunStats`] counter, or the build panics.
///
/// Timing methodology: one untimed warm-up run per engine (which also
/// feeds the differential assertions), then [`TIMED_RUNS`] rounds in
/// which the two engines are timed back to back, keeping the minimum
/// per engine. The warm-up pays one-off costs (page-in, branch-predictor
/// training) outside the measurement; interleaving exposes both engines
/// to the same machine conditions, and min-of-N rejects scheduler and
/// hypervisor-steal noise without averaging it in.
const TIMED_RUNS: usize = 5;

fn measure_dispatch(b: &Benchmark, scale: Scale) -> DispatchMeasurement {
    let config = CompilerConfig {
        alloc: AllocConfig::paper_default(),
        cost: CostModel::alpha_like(),
        fuel: 4_000_000_000,
        ..CompilerConfig::default()
    };
    let compiled = compile(b.source(scale), &config)
        .unwrap_or_else(|e| panic!("{}: compile failed: {e}", b.name));
    let run_classic = || {
        ClassicMachine::new(&compiled.vm, config.cost)
            .with_fuel(config.fuel)
            .run()
            .unwrap_or_else(|e| panic!("{}: classic run failed: {e}", b.name))
    };
    let run_decoded = || {
        Machine::from_decoded(&compiled.decoded, config.cost)
            .with_fuel(config.fuel)
            .run()
            .unwrap_or_else(|e| panic!("{}: decoded run failed: {e}", b.name))
    };
    let classic = run_classic();
    let decoded = run_decoded();
    assert_eq!(
        classic.value, decoded.value,
        "{}: engines must agree on the result",
        b.name
    );
    assert_eq!(
        classic.stats, decoded.stats,
        "{}: counted events must be dispatch-invariant",
        b.name
    );
    let time_one = |run: &dyn Fn()| {
        let start = Instant::now();
        run();
        start.elapsed().as_nanos() as f64
    };
    let mut classic_ns = f64::INFINITY;
    let mut decoded_ns = f64::INFINITY;
    for _ in 0..TIMED_RUNS {
        classic_ns = classic_ns.min(time_one(&|| {
            run_classic();
        }));
        decoded_ns = decoded_ns.min(time_one(&|| {
            run_decoded();
        }));
    }
    DispatchMeasurement {
        stats: compiled.decoded.stats(),
        dispatch: decoded.dispatch.clone(),
        instructions: decoded.stats.instructions,
        classic_ns,
        decoded_ns,
    }
}

/// The deterministic decode/fusion statistics table (one row per
/// benchmark plus a total row).
fn dispatch_table(dispatches: &[(String, DispatchMeasurement)]) -> Table {
    // The column set follows the generated fusion table, so a
    // regenerated catalogue reshapes this table (and the perf gate
    // sees it as the schema change it is).
    let mut header = vec![
        "benchmark".to_string(),
        "source instrs".into(),
        "decoded ops".into(),
        "fused pairs".into(),
        "fused triples".into(),
    ];
    header.extend(FUSION_TABLE.iter().map(|e| e.kind.key().replace('_', "+")));
    header.extend(TRIPLE_TABLE.iter().map(|e| e.kind.key().replace('_', "+")));
    let mut t = Table::new(header);
    let mut total = DecodeStats::default();
    let row = |name: &str, s: &DecodeStats| {
        let mut cells = vec![
            name.to_owned(),
            s.source_instructions.to_string(),
            s.decoded_ops.to_string(),
            s.fused_pairs.to_string(),
            s.fused_triples.to_string(),
        ];
        cells.extend(FUSION_TABLE.iter().map(|e| s.fused(e.kind).to_string()));
        cells.extend(TRIPLE_TABLE.iter().map(|e| s.fused3(e.kind).to_string()));
        cells
    };
    for (name, d) in dispatches {
        let s = d.stats;
        total.source_instructions += s.source_instructions;
        total.decoded_ops += s.decoded_ops;
        total.fused_pairs += s.fused_pairs;
        total.fused_triples += s.fused_triples;
        for (acc, n) in total.fused_by_kind.iter_mut().zip(s.fused_by_kind) {
            *acc += n;
        }
        for (acc, n) in total.fused_by_triple.iter_mut().zip(s.fused_by_triple) {
            *acc += n;
        }
        t.row(row(name, &s));
    }
    t.row(row("Total", &total));
    t
}

/// The deterministic runtime fusion/inline-cache table: how often each
/// enabled superinstruction fired on the decoded engine, and the
/// closure-call inline-cache accounting, per benchmark.
fn dispatch_fusion_table(dispatches: &[(String, DispatchMeasurement)]) -> Table {
    let mut header = vec!["benchmark".to_string()];
    header.extend(
        FUSION_TABLE
            .iter()
            .map(|e| format!("{} fired", e.kind.key().replace('_', "+"))),
    );
    header.extend(
        TRIPLE_TABLE
            .iter()
            .map(|e| format!("{} fired", e.kind.key().replace('_', "+"))),
    );
    header.extend([
        "ic hits".to_string(),
        "ic misses".into(),
        "ic hit rate".into(),
    ]);
    let mut t = Table::new(header);
    let mut total = DispatchRunStats::default();
    let row = |name: &str, s: &DispatchRunStats| {
        let mut cells = vec![name.to_owned()];
        cells.extend(FUSION_TABLE.iter().map(|e| s.fused(e.kind).to_string()));
        cells.extend(TRIPLE_TABLE.iter().map(|e| s.fused3(e.kind).to_string()));
        cells.extend([
            s.ic_hits.to_string(),
            s.ic_misses.to_string(),
            frac_pct(s.ic_hit_rate()),
        ]);
        cells
    };
    for (name, d) in dispatches {
        total.ic_hits += d.dispatch.ic_hits;
        total.ic_misses += d.dispatch.ic_misses;
        for (acc, n) in total.fused_exec.iter_mut().zip(d.dispatch.fused_exec) {
            *acc += n;
        }
        for (acc, n) in total.fused_exec3.iter_mut().zip(d.dispatch.fused_exec3) {
            *acc += n;
        }
        t.row(row(name, &d.dispatch));
    }
    t.row(row("Total", &total));
    t
}

/// The deterministic speculative-dispatch accounting table (one row per
/// benchmark plus a total row): fast-path hits, closure-guard failures,
/// and demotions from the decoded engine's warm-up run. The warm-up
/// runs with speculation on (the engine default), so closure-heavy
/// benchmarks show nonzero fast hits here while every observable
/// counter stays byte-identical to the classic engine.
fn speculation_table(dispatches: &[(String, DispatchMeasurement)]) -> Table {
    let mut t = Table::new(vec![
        "benchmark".into(),
        "spec fast hits".into(),
        "guard fails".into(),
        "demotions".into(),
    ]);
    let mut total = DispatchRunStats::default();
    let row = |name: &str, s: &DispatchRunStats| {
        vec![
            name.to_owned(),
            s.spec_fast_hits.to_string(),
            s.spec_guard_fails.to_string(),
            s.spec_demotions.to_string(),
        ]
    };
    for (name, d) in dispatches {
        total.spec_fast_hits += d.dispatch.spec_fast_hits;
        total.spec_guard_fails += d.dispatch.spec_guard_fails;
        total.spec_demotions += d.dispatch.spec_demotions;
        t.row(row(name, &d.dispatch));
    }
    t.row(row("Total", &total));
    t
}

/// Instructions retired per wall-clock second on each engine, per
/// benchmark, with an aggregate row computed from the summed totals.
/// Wall-clock values — excluded from the perf-regression gate.
fn dispatch_throughput_table(dispatches: &[(String, DispatchMeasurement)]) -> Table {
    let mops = |instructions: u64, ns: f64| {
        let per_sec = ratio(instructions as f64 * 1e9, ns, 0.0);
        format!("{:.1}", per_sec / 1e6)
    };
    let mut t = Table::new(vec![
        "benchmark".into(),
        "instructions".into(),
        "classic (Mops/s)".into(),
        "decoded (Mops/s)".into(),
        "speedup".into(),
    ]);
    let (mut instr_total, mut classic_total, mut decoded_total) = (0u64, 0.0f64, 0.0f64);
    for (name, d) in dispatches {
        instr_total += d.instructions;
        classic_total += d.classic_ns;
        decoded_total += d.decoded_ns;
        t.row(vec![
            name.clone(),
            d.instructions.to_string(),
            mops(d.instructions, d.classic_ns),
            mops(d.instructions, d.decoded_ns),
            format!("{:.2}x", ratio(d.classic_ns, d.decoded_ns, 0.0)),
        ]);
    }
    t.row(vec![
        "Total".into(),
        instr_total.to_string(),
        mops(instr_total, classic_total),
        mops(instr_total, decoded_total),
        format!("{:.2}x", ratio(classic_total, decoded_total, 0.0)),
    ]);
    t
}

/// The sequential-vs-parallel wall-time comparison for one pool run.
/// "Sequential-equivalent" is the sum of per-benchmark job times — what
/// one worker would have spent — against the pool's actual wall time.
/// Row labels and shape are fixed; only the values vary run to run.
/// Times are reported in microseconds: small-scale suite runs finish in
/// well under a millisecond per benchmark, which the old millisecond
/// rendering rounded to an unreadable "0.0".
fn timing_table(jobs: usize, stats: &PoolStats) -> Table {
    let seq_us = stats.job_run.sum / 1e3;
    let wall_us = stats.wall_ns / 1e3;
    // `ratio` guards the idle-pool case (zero wall time) with 0.00x
    // rather than a NaN/inf leaking into the report.
    let speedup = ratio(stats.job_run.sum, stats.wall_ns, 0.0);
    let mut t = Table::new(vec!["metric".into(), "value".into()]);
    t.row(vec!["jobs".into(), jobs.to_string()]);
    t.row(vec!["workers".into(), stats.workers.to_string()]);
    t.row(vec![
        "sequential-equivalent (us)".into(),
        format!("{seq_us:.1}"),
    ]);
    t.row(vec!["parallel wall (us)".into(), format!("{wall_us:.1}")]);
    t.row(vec!["speedup".into(), format!("{speedup:.2}x")]);
    t.row(vec![
        "worker utilization".into(),
        pct(stats.utilization() * 100.0),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use lesgs_suite::all_benchmarks;

    /// Strips the wall-clock tables so the rest of the document can be
    /// compared byte-for-byte across job counts — the same projection
    /// the perf-regression gate uses.
    fn deterministic(report: &Report) -> String {
        crate::check::deterministic_projection(&report.to_json()).pretty()
    }

    #[test]
    fn parallel_report_is_identical_to_sequential_modulo_timing() {
        let benchmarks: Vec<_> = all_benchmarks().into_iter().take(4).collect();
        let seq = build_suite_report(benchmarks.clone(), Scale::Small, 1, |_| {});
        let par = build_suite_report(benchmarks, Scale::Small, 4, |_| {});
        assert_eq!(deterministic(&seq.report), deterministic(&par.report));
        assert_eq!(
            format!("{}", seq.comparisons),
            format!("{}", par.comparisons)
        );
        assert_eq!(par.stats.workers, 4);
        assert_eq!(par.stats.panicked, 0);
    }

    #[test]
    fn timing_table_shape_is_fixed() {
        let a = timing_table(1, &PoolStats::new(1));
        let b = timing_table(4, &PoolStats::new(4));
        assert_eq!(a.headers(), b.headers());
        assert_eq!(a.rows().len(), b.rows().len());
        for (ra, rb) in a.rows().iter().zip(b.rows()) {
            assert_eq!(ra[0], rb[0], "metric labels must not vary");
        }
        assert!(
            a.headers()
                .iter()
                .chain(a.rows().iter().flatten())
                .all(|c| !c.contains("(ms)")),
            "timing is reported in microseconds"
        );
    }

    #[test]
    fn timing_table_guards_zero_wall_time() {
        // A pool that recorded no wall time (degenerate, but possible
        // on a coarse clock) must not emit NaN or inf.
        let t = timing_table(1, &PoolStats::new(1));
        let speedup = &t.rows()[4];
        assert_eq!(speedup[0], "speedup");
        assert_eq!(speedup[1], "0.00x");
    }

    #[test]
    fn per_benchmark_tables_have_total_rows() {
        let benchmarks: Vec<_> = all_benchmarks().into_iter().take(2).collect();
        let built = build_suite_report(benchmarks, Scale::Small, 1, |_| {});
        let json = built.report.to_json();
        let tables = json.get("tables").and_then(|t| t.as_array()).unwrap();
        for name in [
            DISPATCH_TABLE,
            DISPATCH_FUSION_TABLE,
            DISPATCH_THROUGHPUT_TABLE,
            SPECULATION_TABLE,
            SHUFFLE_STRATEGIES_TABLE,
        ] {
            let table = tables
                .iter()
                .find(|t| t.get("name").and_then(|n| n.as_str()) == Some(name))
                .unwrap_or_else(|| panic!("report carries the {name} table"));
            let rows = table.get("rows").and_then(|r| r.as_array()).unwrap();
            assert_eq!(rows.len(), 3, "{name}: 2 benchmarks + total");
            let last = rows[2].as_array().unwrap();
            assert_eq!(last[0].as_str(), Some("Total"));
        }
    }

    #[test]
    fn service_cache_table_is_deterministic_and_sums() {
        let a = measure_service(Scale::Small);
        let b = measure_service(Scale::Small);
        // The accounting side is a pure function of the scale's seeded
        // workload — only the wall-clock side may differ between runs.
        assert_eq!(
            format!("{}", service_cache_table(&a)),
            format!("{}", service_cache_table(&b))
        );
        assert_eq!(a.totals.requests, a.compile_requests + a.run_requests);
        assert_eq!(a.totals.hits + a.totals.misses, a.totals.requests);
        assert!(a.totals.hits > 0, "skewed workload must hit the cache");
        assert!(
            a.totals.evictions > 0,
            "pool larger than the cache must evict"
        );
    }

    #[test]
    fn service_throughput_table_shape_is_fixed() {
        let zero = ServiceMeasurement {
            workload: WorkloadConfig::default(),
            cache_capacity: 0,
            workers: 1,
            compile_requests: 0,
            run_requests: 0,
            totals: BatchStats::default(),
            latency: Histogram::default(),
            wall_ns: 0.0,
        };
        let live = measure_service(Scale::Small);
        let (a, b) = (
            service_throughput_table(&zero),
            service_throughput_table(&live),
        );
        assert_eq!(a.headers(), b.headers());
        assert_eq!(a.rows().len(), b.rows().len());
        for (ra, rb) in a.rows().iter().zip(b.rows()) {
            assert_eq!(ra[0], rb[0], "metric labels must not vary");
        }
        // The zero-wall degenerate case must not leak NaN/inf.
        assert_eq!(a.rows()[2][1], "0");
    }

    #[test]
    fn progress_reports_benchmarks_in_order() {
        let benchmarks: Vec<_> = all_benchmarks().into_iter().take(3).collect();
        let expected: Vec<_> = benchmarks.iter().map(|b| b.name.to_owned()).collect();
        let mut seen = Vec::new();
        build_suite_report(benchmarks, Scale::Small, 2, |name| {
            seen.push(name.to_owned());
        });
        assert_eq!(seen, expected);
    }
}
