//! Parallel construction of the full-suite benchmark report.
//!
//! [`build_suite_report`] is the library form of the `bench-report`
//! binary: it runs every given benchmark under the no-register baseline
//! and the paper-default configuration — fanning the benchmarks across
//! a [`lesgs_exec`] worker pool — and merges the results **in benchmark
//! order** into the shared report schema. Every table, run record, and
//! note except the `timing` table is byte-identical whatever the job
//! count; the `timing` table (same shape, wall-clock values) records
//! the sequential-vs-parallel comparison for the current run.

use lesgs_core::AllocConfig;
use lesgs_exec::{map_ordered, PoolConfig, PoolStats};
use lesgs_suite::measure::Measurement;
use lesgs_suite::programs::Benchmark;
use lesgs_suite::tables::{pct, Table};
use lesgs_suite::Scale;

use crate::report::{run_record, Report};
use crate::{mean, run_benchmark};

/// Name of the wall-clock table inside the report — the one table a
/// determinism comparison must ignore (values are timing-dependent;
/// its shape is not).
pub const TIMING_TABLE: &str = "timing";

/// A built suite report plus the pool accounting behind it.
#[derive(Debug, Clone)]
pub struct SuiteReport {
    /// The full report (comparisons table, per-run records, timing).
    pub report: Report,
    /// The human-readable comparisons table, for printing.
    pub comparisons: Table,
    /// Worker-pool accounting for the benchmark fan-out.
    pub stats: PoolStats,
}

/// The pool the suite runs on: wide-stack workers marked for inline
/// interpreter evaluation, like the fuzzer's (compilation recurses over
/// program structure, and oracle-style harnesses share these workers).
fn suite_pool(jobs: usize) -> PoolConfig {
    PoolConfig {
        workers: jobs.max(1),
        stack_bytes: lesgs_interp::wide_stack_bytes(),
        name: "lesgs-bench".to_owned(),
        worker_init: Some(lesgs_interp::mark_wide_stack),
    }
}

/// Runs `benchmarks` at `scale` on `jobs` workers and builds the
/// `bench-report` document. `progress` is called once per benchmark,
/// in order, as results merge. Apart from the [`TIMING_TABLE`], the
/// output is byte-identical for every `jobs` value.
///
/// # Panics
///
/// Panics when a benchmark fails to run or a worker job panics —
/// harnesses have no useful way to continue.
pub fn build_suite_report(
    benchmarks: Vec<Benchmark>,
    scale: Scale,
    jobs: usize,
    mut progress: impl FnMut(&str),
) -> SuiteReport {
    let outcome = map_ordered(&suite_pool(jobs), benchmarks, |_, b| {
        let base = run_benchmark(&b, scale, &AllocConfig::baseline());
        let opt = run_benchmark(&b, scale, &AllocConfig::paper_default());
        (b, base, opt)
    });

    let mut report = Report::new("bench-report", "Full-suite benchmark report", scale);
    let mut table = Table::new(vec![
        "benchmark".into(),
        "base stack refs".into(),
        "opt stack refs".into(),
        "stack-ref reduction".into(),
        "base cycles".into(),
        "opt cycles".into(),
        "speedup".into(),
    ]);
    let mut reductions = Vec::new();
    let mut speedups = Vec::new();

    for slot in outcome.results {
        let (b, base, opt) = slot.unwrap_or_else(|p| panic!("benchmark job panicked: {p}"));
        assert_eq!(base.value, opt.value, "{}: configs must agree", b.name);
        let m = Measurement::compare(&base, &opt);
        reductions.push(m.stack_ref_reduction());
        speedups.push(m.speedup_percent());
        table.row(vec![
            b.name.to_owned(),
            m.base_stack_refs.to_string(),
            m.opt_stack_refs.to_string(),
            pct(m.stack_ref_reduction()),
            m.base_cycles.to_string(),
            m.opt_cycles.to_string(),
            pct(m.speedup_percent()),
        ]);
        report.add_run(run_record("baseline", &base));
        report.add_run(run_record("paper_default", &opt));
        progress(b.name);
    }
    table.row(vec![
        "Average".into(),
        String::new(),
        String::new(),
        pct(mean(&reductions)),
        String::new(),
        String::new(),
        pct(mean(&speedups)),
    ]);
    report.add_table("comparisons", &table);
    report.note(
        "Full optimization (lazy saves, eager restores, greedy shuffling, six \
         argument registers) vs the no-register baseline.",
    );
    report.add_table(TIMING_TABLE, &timing_table(jobs, &outcome.stats));

    SuiteReport {
        report,
        comparisons: table,
        stats: outcome.stats,
    }
}

/// The sequential-vs-parallel wall-time comparison for one pool run.
/// "Sequential-equivalent" is the sum of per-benchmark job times — what
/// one worker would have spent — against the pool's actual wall time.
/// Row labels and shape are fixed; only the values vary run to run.
fn timing_table(jobs: usize, stats: &PoolStats) -> Table {
    let seq_ms = stats.job_run.sum / 1e6;
    let wall_ms = stats.wall_ns / 1e6;
    let speedup = lesgs_metrics::ratio(stats.job_run.sum, stats.wall_ns, 0.0);
    let mut t = Table::new(vec!["metric".into(), "value".into()]);
    t.row(vec!["jobs".into(), jobs.to_string()]);
    t.row(vec!["workers".into(), stats.workers.to_string()]);
    t.row(vec![
        "sequential-equivalent (ms)".into(),
        format!("{seq_ms:.1}"),
    ]);
    t.row(vec!["parallel wall (ms)".into(), format!("{wall_ms:.1}")]);
    t.row(vec!["speedup".into(), format!("{speedup:.2}x")]);
    t.row(vec![
        "worker utilization".into(),
        pct(stats.utilization() * 100.0),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use lesgs_metrics::Json;
    use lesgs_suite::all_benchmarks;

    /// Strips the one wall-clock table so the rest of the document can
    /// be compared byte-for-byte across job counts.
    fn without_timing(report: &Report) -> String {
        let json = report.to_json();
        let fields = json.as_object().expect("report is an object");
        let filtered = fields.iter().map(|(k, v)| {
            if k == "tables" {
                let kept = v
                    .as_array()
                    .expect("tables is an array")
                    .iter()
                    .filter(|t| t.get("name").and_then(|n| n.as_str()) != Some(TIMING_TABLE))
                    .cloned();
                (k.as_str(), Json::array(kept))
            } else {
                (k.as_str(), v.clone())
            }
        });
        Json::object(filtered).pretty()
    }

    #[test]
    fn parallel_report_is_identical_to_sequential_modulo_timing() {
        let benchmarks: Vec<_> = all_benchmarks().into_iter().take(4).collect();
        let seq = build_suite_report(benchmarks.clone(), Scale::Small, 1, |_| {});
        let par = build_suite_report(benchmarks, Scale::Small, 4, |_| {});
        assert_eq!(without_timing(&seq.report), without_timing(&par.report));
        assert_eq!(
            format!("{}", seq.comparisons),
            format!("{}", par.comparisons)
        );
        assert_eq!(par.stats.workers, 4);
        assert_eq!(par.stats.panicked, 0);
    }

    #[test]
    fn timing_table_shape_is_fixed() {
        let a = timing_table(1, &PoolStats::new(1));
        let b = timing_table(4, &PoolStats::new(4));
        assert_eq!(a.headers(), b.headers());
        assert_eq!(a.rows().len(), b.rows().len());
        for (ra, rb) in a.rows().iter().zip(b.rows()) {
            assert_eq!(ra[0], rb[0], "metric labels must not vary");
        }
    }

    #[test]
    fn progress_reports_benchmarks_in_order() {
        let benchmarks: Vec<_> = all_benchmarks().into_iter().take(3).collect();
        let expected: Vec<_> = benchmarks.iter().map(|b| b.name.to_owned()).collect();
        let mut seen = Vec::new();
        build_suite_report(benchmarks, Scale::Small, 2, |name| {
            seen.push(name.to_owned());
        });
        assert_eq!(seen, expected);
    }
}
