//! The shared JSON report schema emitted by every experiment harness.
//!
//! Each binary in `src/bin/` prints its human-readable table as before
//! and *additionally* writes the same data as a JSON document when
//! `--json` (default file `<experiment>_report.json`) or
//! `--json=<path>` is passed. The `bench-report` binary aggregates
//! structured per-run records for the whole suite into
//! `BENCH_report.json`. The schema is documented in OBSERVABILITY.md
//! ("Benchmark report schema").
//!
//! Layout of a report document:
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "tool": "lesgs-bench",
//!   "experiment": "table3",
//!   "title": "...",
//!   "scale": "standard",
//!   "tables": [ {"name": "...", "columns": [...], "rows": [[...]]} ],
//!   "runs": [ {"benchmark": "tak", "config": "paper_default",
//!              "value": "7", "metrics": {"counters": {...},
//!              "gauges": {...}}} ],
//!   "notes": ["..."]
//! }
//! ```
//!
//! `tables` mirrors the rendered text tables cell-for-cell (all cells
//! are strings, exactly as printed). `runs` carries the raw counters a
//! downstream tool would want instead of re-parsing formatted cells;
//! it is only populated by harnesses that deal in whole benchmark runs.

use lesgs_metrics::{Json, Registry};
use lesgs_suite::tables::Table;
use lesgs_suite::{BenchmarkRun, Scale};

/// Version of the report document layout. Bump on breaking changes to
/// field names or nesting (adding fields is not breaking).
pub const SCHEMA_VERSION: u64 = 1;

/// One experiment's results in the shared schema.
#[derive(Debug, Clone)]
pub struct Report {
    experiment: String,
    title: String,
    scale: String,
    tables: Vec<(String, Vec<String>, Vec<Vec<String>>)>,
    runs: Vec<Json>,
    notes: Vec<String>,
}

impl Report {
    /// Starts a report for the named experiment (the binary name, e.g.
    /// `"table3"`).
    pub fn new(experiment: &str, title: &str, scale: Scale) -> Report {
        Report {
            experiment: experiment.to_owned(),
            title: title.to_owned(),
            scale: scale_name(scale).to_owned(),
            tables: Vec::new(),
            runs: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Adds a rendered table under `name` (cells kept verbatim).
    pub fn add_table(&mut self, name: &str, table: &Table) {
        self.tables.push((
            name.to_owned(),
            table.headers().to_vec(),
            table.rows().to_vec(),
        ));
    }

    /// Adds a structured per-run record (see [`run_record`]).
    pub fn add_run(&mut self, record: Json) {
        self.runs.push(record);
    }

    /// Appends a free-form note (paper numbers, expected shapes).
    pub fn note(&mut self, text: &str) {
        self.notes.push(text.to_owned());
    }

    /// Serializes the report.
    pub fn to_json(&self) -> Json {
        let tables = self
            .tables
            .iter()
            .map(|(name, columns, rows)| {
                Json::object([
                    ("name", Json::from(name.as_str())),
                    (
                        "columns",
                        Json::array(columns.iter().map(|c| Json::from(c.as_str()))),
                    ),
                    (
                        "rows",
                        Json::array(
                            rows.iter()
                                .map(|r| Json::array(r.iter().map(|c| Json::from(c.as_str())))),
                        ),
                    ),
                ])
            })
            .collect::<Vec<_>>();
        Json::object([
            ("schema_version", Json::UInt(SCHEMA_VERSION)),
            ("tool", Json::from("lesgs-bench")),
            ("experiment", Json::from(self.experiment.as_str())),
            ("title", Json::from(self.title.as_str())),
            ("scale", Json::from(self.scale.as_str())),
            ("tables", Json::array(tables)),
            ("runs", Json::array(self.runs.iter().cloned())),
            (
                "notes",
                Json::array(self.notes.iter().map(|n| Json::from(n.as_str()))),
            ),
        ])
    }

    /// Honors the conventional `--json[=path]` flag: bare `--json`
    /// writes `<experiment>_report.json` in the working directory;
    /// `--json=<path>` writes to the given file. The human-readable
    /// tables stay on stdout either way. Without the flag this is a
    /// no-op, so every harness calls it unconditionally.
    ///
    /// # Panics
    ///
    /// Panics when the output file cannot be written — a harness has
    /// no useful way to continue.
    pub fn emit(&self) {
        let Some(path) = self.json_destination() else {
            return;
        };
        std::fs::write(&path, self.to_json().pretty()).unwrap_or_else(|e| panic!("{path}: {e}"));
        eprintln!("wrote {path}");
    }

    /// The file `--json[=path]` asked for, if any.
    fn json_destination(&self) -> Option<String> {
        for a in std::env::args() {
            if a == "--json" {
                return Some(format!("{}_report.json", self.experiment));
            }
            if let Some(path) = a.strip_prefix("--json=") {
                return Some(path.to_owned());
            }
        }
        None
    }
}

/// Stable lower-case name for a scale.
pub fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Small => "small",
        Scale::Standard => "standard",
    }
}

/// Builds the structured record for one benchmark run under one named
/// configuration: the full `vm.*` and `alloc.*` counter/gauge sets
/// from the metrics registry, plus the program's final value.
/// Deterministic (no wall times), so records are golden-testable.
pub fn run_record(config: &str, run: &BenchmarkRun) -> Json {
    let mut reg = Registry::new();
    run.stats.record(&mut reg);
    run.shuffle.record(&mut reg);
    Json::object([
        ("benchmark", Json::from(run.name.as_str())),
        ("config", Json::from(config)),
        ("value", Json::from(run.value.as_str())),
        ("metrics", reg.to_json(false)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use lesgs_core::AllocConfig;
    use lesgs_metrics::parse_json;
    use lesgs_suite::programs::benchmark;

    #[test]
    fn report_round_trips_through_the_parser() {
        let mut t = Table::new(vec!["benchmark".into(), "refs".into()]);
        t.row(vec!["tak".into(), "123".into()]);
        let mut r = Report::new("table3", "Save strategies", Scale::Small);
        r.add_table("main", &t);
        r.note("paper: lazy 72%/43%");
        let text = r.to_json().pretty();
        let doc = parse_json(&text).expect("valid JSON");
        assert_eq!(doc.get("schema_version").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(
            doc.get("experiment").and_then(|v| v.as_str()),
            Some("table3")
        );
        assert_eq!(doc.get("scale").and_then(|v| v.as_str()), Some("small"));
        let tables = doc
            .get("tables")
            .and_then(|t| t.as_array())
            .expect("tables");
        assert_eq!(tables.len(), 1);
        assert_eq!(
            tables[0]
                .get("columns")
                .and_then(|c| c.as_array())
                .map(|c| c.len()),
            Some(2)
        );
    }

    #[test]
    fn run_record_is_deterministic() {
        let b = benchmark("tak").expect("tak exists");
        let cfg = AllocConfig::paper_default();
        let a = lesgs_suite::measure(&b, Scale::Small, &cfg).expect("runs");
        let b2 = lesgs_suite::measure(&b, Scale::Small, &cfg).expect("runs");
        assert_eq!(
            run_record("paper_default", &a).pretty(),
            run_record("paper_default", &b2).pretty()
        );
        let rec = run_record("paper_default", &a);
        let counters = rec
            .get("metrics")
            .and_then(|m| m.get("counters"))
            .expect("counters");
        assert!(counters.get("vm.instructions").and_then(|v| v.as_u64()) > Some(0));
        assert!(counters.get("alloc.call_sites").is_some());
    }
}
