//! A minimal wall-clock benchmark harness.
//!
//! The workspace builds in offline environments where `criterion`
//! cannot be fetched, so the benches run on this dependency-free
//! stand-in: warm up, time a fixed batch of iterations a few times,
//! report the best and median per-iteration cost. No statistics beyond
//! that — the benches exist to compare configurations, and min/median
//! over batches is stable enough for that.

use std::hint::black_box;
use std::time::Instant;

/// Number of timed batches per benchmark.
const BATCHES: usize = 7;
/// Target wall-clock time per batch.
const BATCH_TARGET_NANOS: u128 = 40_000_000;

/// A named group of benchmarks, printed as a section.
pub struct Group {
    name: String,
}

/// Creates a benchmark group.
pub fn group(name: &str) -> Group {
    println!("\n== {name} ==");
    Group {
        name: name.to_owned(),
    }
}

impl Group {
    /// Times `f`, printing per-iteration cost under `id`.
    pub fn bench<T>(&mut self, id: &str, mut f: impl FnMut() -> T) {
        // Warm up and size the batch so one batch lands near the
        // target duration.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().as_nanos().max(1);
        let iters = (BATCH_TARGET_NANOS / once).clamp(1, 1_000_000) as usize;

        let mut per_iter: Vec<u128> = (0..BATCHES)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                t.elapsed().as_nanos() / iters as u128
            })
            .collect();
        per_iter.sort_unstable();
        println!(
            "{}/{id}: best {} ns/iter, median {} ns/iter ({iters} iters/batch)",
            self.name,
            per_iter[0],
            per_iter[BATCHES / 2]
        );
    }
}
