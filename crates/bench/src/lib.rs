//! Shared machinery for the experiment harnesses.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper; see DESIGN.md's experiment index. This library holds the
//! common runners.

pub mod check;
pub mod harness;
pub mod report;
pub mod suite_report;

use lesgs_core::config::{Discipline, RestoreStrategy, SaveStrategy};
use lesgs_core::AllocConfig;
use lesgs_suite::{measure, programs, BenchmarkRun, Scale};

/// Parses the conventional `--small` flag used by every harness.
pub fn scale_from_args() -> Scale {
    if std::env::args().any(|a| a == "--small") {
        Scale::Small
    } else {
        Scale::Standard
    }
}

/// The three save strategies of Table 3 with their paper names.
pub fn save_strategies() -> [(&'static str, SaveStrategy); 3] {
    [
        ("lazy", SaveStrategy::Lazy),
        ("early", SaveStrategy::Early),
        ("late", SaveStrategy::Late),
    ]
}

/// Standard configurations used across the harnesses.
pub fn config_with_save(save: SaveStrategy) -> AllocConfig {
    AllocConfig {
        save,
        ..AllocConfig::paper_default()
    }
}

/// The callee-save configuration modelling the C compilers of
/// Tables 4/5.
pub fn callee_save_config(save: SaveStrategy) -> AllocConfig {
    AllocConfig {
        discipline: Discipline::CalleeSave,
        save,
        ..AllocConfig::paper_default()
    }
}

/// Lazy restores for the Figure 2 comparison.
pub fn lazy_restore_config() -> AllocConfig {
    AllocConfig {
        restore: RestoreStrategy::Lazy,
        ..AllocConfig::paper_default()
    }
}

/// Runs one benchmark, aborting the harness on failure.
pub fn run_benchmark(bench: &programs::Benchmark, scale: Scale, cfg: &AllocConfig) -> BenchmarkRun {
    measure(bench, scale, cfg).unwrap_or_else(|e| panic!("benchmark {} failed: {e}", bench.name))
}

/// Geometric-mean helper for averaging ratios.
pub fn geometric_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Arithmetic mean.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means() {
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn configs_differ() {
        assert_ne!(
            config_with_save(SaveStrategy::Lazy).save,
            config_with_save(SaveStrategy::Early).save
        );
        assert_eq!(
            callee_save_config(SaveStrategy::Lazy).discipline,
            Discipline::CalleeSave
        );
        assert_eq!(lazy_restore_config().restore, RestoreStrategy::Lazy);
    }
}
