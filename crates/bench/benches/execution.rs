//! Benches for simulated execution: the wall-clock cost of running
//! benchmarks on the instrumented VM under each save strategy (the
//! simulator analogue of Table 3's measurement loop).
//!
//! Gated behind the `bench-harness` feature; run with
//! `cargo bench -p lesgs-bench --features bench-harness`.

use lesgs_bench::harness;
use lesgs_compiler::{compile, CompilerConfig};
use lesgs_core::config::SaveStrategy;
use lesgs_core::AllocConfig;
use lesgs_suite::programs::{benchmark, Scale};
use lesgs_vm::{ClassicMachine, CostModel, Machine};

fn bench_vm() {
    let mut group = harness::group("vm-execution");
    for name in ["tak", "queens"] {
        let b = benchmark(name).expect("benchmark exists");
        for (label, save) in [
            ("lazy", SaveStrategy::Lazy),
            ("early", SaveStrategy::Early),
            ("late", SaveStrategy::Late),
        ] {
            let cfg = CompilerConfig {
                alloc: AllocConfig {
                    save,
                    ..AllocConfig::paper_default()
                },
                ..CompilerConfig::default()
            };
            let compiled = compile(b.source(Scale::Small), &cfg).expect("compiles");
            group.bench(&format!("{label}/{name}"), || {
                Machine::new(&compiled.vm, CostModel::alpha_like())
                    .run()
                    .expect("runs")
            });
        }
    }
}

fn bench_baseline_vs_six() {
    let mut group = harness::group("vm-baseline-vs-six-registers");
    let b = benchmark("tak").expect("benchmark exists");
    for (label, alloc) in [
        ("baseline", AllocConfig::baseline()),
        ("six-registers", AllocConfig::paper_default()),
    ] {
        let cfg = CompilerConfig {
            alloc,
            ..CompilerConfig::default()
        };
        let compiled = compile(b.source(Scale::Small), &cfg).expect("compiles");
        group.bench(label, || {
            Machine::new(&compiled.vm, CostModel::alpha_like())
                .run()
                .expect("runs")
        });
    }
}

fn bench_dispatch() {
    let mut group = harness::group("vm-classic-vs-decoded");
    for name in ["tak", "queens"] {
        let b = benchmark(name).expect("benchmark exists");
        let cfg = CompilerConfig {
            alloc: AllocConfig::paper_default(),
            ..CompilerConfig::default()
        };
        let compiled = compile(b.source(Scale::Small), &cfg).expect("compiles");
        group.bench(&format!("classic/{name}"), || {
            ClassicMachine::new(&compiled.vm, CostModel::alpha_like())
                .run()
                .expect("runs")
        });
        // Decode once outside the timed loop, like `Compiled::run`.
        group.bench(&format!("decoded/{name}"), || {
            Machine::from_decoded(&compiled.decoded, CostModel::alpha_like())
                .run()
                .expect("runs")
        });
    }
}

fn main() {
    bench_vm();
    bench_baseline_vs_six();
    bench_dispatch();
}
