//! Criterion benches for simulated execution: the wall-clock cost of
//! running benchmarks on the instrumented VM under each save strategy
//! (the simulator analogue of Table 3's measurement loop).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lesgs_compiler::{compile, CompilerConfig};
use lesgs_core::config::SaveStrategy;
use lesgs_core::AllocConfig;
use lesgs_suite::programs::{benchmark, Scale};
use lesgs_vm::{CostModel, Machine};

fn bench_vm(c: &mut Criterion) {
    let mut group = c.benchmark_group("vm-execution");
    group.sample_size(20);
    for name in ["tak", "queens"] {
        let b = benchmark(name).expect("benchmark exists");
        for (label, save) in [
            ("lazy", SaveStrategy::Lazy),
            ("early", SaveStrategy::Early),
            ("late", SaveStrategy::Late),
        ] {
            let cfg = CompilerConfig {
                alloc: AllocConfig { save, ..AllocConfig::paper_default() },
                ..CompilerConfig::default()
            };
            let compiled =
                compile(b.source(Scale::Small), &cfg).expect("compiles");
            group.bench_with_input(
                BenchmarkId::new(label, name),
                &compiled,
                |bencher, compiled| {
                    bencher.iter(|| {
                        Machine::new(&compiled.vm, CostModel::alpha_like())
                            .run()
                            .expect("runs")
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_baseline_vs_six(c: &mut Criterion) {
    let mut group = c.benchmark_group("vm-baseline-vs-six-registers");
    group.sample_size(20);
    let b = benchmark("tak").expect("benchmark exists");
    for (label, alloc) in [
        ("baseline", AllocConfig::baseline()),
        ("six-registers", AllocConfig::paper_default()),
    ] {
        let cfg = CompilerConfig { alloc, ..CompilerConfig::default() };
        let compiled = compile(b.source(Scale::Small), &cfg).expect("compiles");
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &compiled,
            |bencher, compiled| {
                bencher.iter(|| {
                    Machine::new(&compiled.vm, CostModel::alpha_like())
                        .run()
                        .expect("runs")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_vm, bench_baseline_vs_six);
criterion_main!(benches);
