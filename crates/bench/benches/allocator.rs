//! Criterion benches for the allocator's hot kernels: the two linear
//! passes (§3), greedy vs exhaustive shuffling (§3.1), and full
//! compilation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lesgs_core::alloc::ArgRef;
use lesgs_core::config::SaveStrategy;
use lesgs_core::shuffle::{self, NodeSpec, Problem, Target};
use lesgs_core::{allocate_program, AllocConfig};
use lesgs_frontend::pipeline;
use lesgs_ir::machine::arg_reg;
use lesgs_ir::{lower_program, RegSet};
use lesgs_suite::programs::{benchmark, Scale};

fn bench_passes(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocation-passes");
    for name in ["tak", "deriv", "queens"] {
        let b = benchmark(name).expect("benchmark exists");
        let ir = lower_program(
            &pipeline::front_to_closed(b.source(Scale::Standard)).expect("compiles"),
        );
        for (label, save) in [
            ("lazy", SaveStrategy::Lazy),
            ("early", SaveStrategy::Early),
            ("late", SaveStrategy::Late),
        ] {
            let cfg = AllocConfig { save, ..AllocConfig::paper_default() };
            group.bench_with_input(
                BenchmarkId::new(label, name),
                &ir,
                |bencher, ir| bencher.iter(|| allocate_program(ir, &cfg)),
            );
        }
    }
    group.finish();
}

fn swap_heavy_problem(n: usize) -> Problem {
    // Rotation: every argument reads its neighbour's register.
    Problem {
        nodes: (0..n)
            .map(|i| NodeSpec {
                arg: ArgRef::Arg(i as u16),
                target: Target::Reg(arg_reg(i)),
                reads_regs: RegSet::single(arg_reg((i + 1) % n)),
                reads_params: 0,
                complex: false,
            })
            .collect(),
        temp_regs: RegSet::EMPTY,
    }
}

fn bench_shuffle(c: &mut Criterion) {
    let mut group = c.benchmark_group("shuffle");
    for n in [3usize, 6] {
        let p = swap_heavy_problem(n);
        group.bench_with_input(BenchmarkId::new("greedy", n), &p, |b, p| {
            b.iter(|| shuffle::greedy(p))
        });
        group.bench_with_input(
            BenchmarkId::new("optimal-exhaustive", n),
            &p,
            |b, p| b.iter(|| shuffle::optimal_temp_count(p)),
        );
        group.bench_with_input(BenchmarkId::new("fixed-order", n), &p, |b, p| {
            b.iter(|| shuffle::fixed_order(p))
        });
    }
    group.finish();
}

fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("full-compile");
    for name in ["tak", "dderiv", "takr"] {
        let b = benchmark(name).expect("benchmark exists");
        let src = b.source(Scale::Standard).to_owned();
        group.bench_with_input(BenchmarkId::from_parameter(name), &src, |bencher, src| {
            bencher.iter(|| {
                lesgs_compiler::compile(src, &lesgs_compiler::CompilerConfig::default())
                    .expect("compiles")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_passes, bench_shuffle, bench_compile);
criterion_main!(benches);
