//! Benches for the allocator's hot kernels: the two linear passes
//! (§3), greedy vs exhaustive shuffling (§3.1), and full compilation.
//!
//! Gated behind the `bench-harness` feature; run with
//! `cargo bench -p lesgs-bench --features bench-harness`.

use lesgs_bench::harness;
use lesgs_core::alloc::ArgRef;
use lesgs_core::config::SaveStrategy;
use lesgs_core::shuffle::{self, NodeSpec, Problem, Target};
use lesgs_core::{allocate_program, AllocConfig};
use lesgs_frontend::pipeline;
use lesgs_ir::machine::arg_reg;
use lesgs_ir::{lower_program, RegSet};
use lesgs_suite::programs::{benchmark, Scale};

fn bench_passes() {
    let mut group = harness::group("allocation-passes");
    for name in ["tak", "deriv", "queens"] {
        let b = benchmark(name).expect("benchmark exists");
        let ir =
            lower_program(&pipeline::front_to_closed(b.source(Scale::Standard)).expect("compiles"));
        for (label, save) in [
            ("lazy", SaveStrategy::Lazy),
            ("early", SaveStrategy::Early),
            ("late", SaveStrategy::Late),
        ] {
            let cfg = AllocConfig {
                save,
                ..AllocConfig::paper_default()
            };
            group.bench(&format!("{label}/{name}"), || allocate_program(&ir, &cfg));
        }
    }
}

fn swap_heavy_problem(n: usize) -> Problem {
    // Rotation: every argument reads its neighbour's register.
    Problem {
        nodes: (0..n)
            .map(|i| NodeSpec {
                arg: ArgRef::Arg(i as u16),
                target: Target::Reg(arg_reg(i)),
                reads_regs: RegSet::single(arg_reg((i + 1) % n)),
                reads_params: 0,
                complex: false,
            })
            .collect(),
        temp_regs: RegSet::EMPTY,
    }
}

fn bench_shuffle() {
    let mut group = harness::group("shuffle");
    for n in [3usize, 6] {
        let p = swap_heavy_problem(n);
        group.bench(&format!("greedy/{n}"), || shuffle::greedy(&p));
        group.bench(&format!("optimal-exhaustive/{n}"), || {
            shuffle::optimal_temp_count(&p)
        });
        group.bench(&format!("fixed-order/{n}"), || shuffle::fixed_order(&p));
    }
}

fn bench_compile() {
    let mut group = harness::group("full-compile");
    for name in ["tak", "dderiv", "takr"] {
        let b = benchmark(name).expect("benchmark exists");
        let src = b.source(Scale::Standard).to_owned();
        group.bench(name, || {
            lesgs_compiler::compile(&src, &lesgs_compiler::CompilerConfig::default())
                .expect("compiles")
        });
    }
}

fn main() {
    bench_passes();
    bench_shuffle();
    bench_compile();
}
