//! `lesgs-load` — deterministic load generator for the batch
//! compile-and-run service.
//!
//! ```text
//! lesgs-load [options]
//!
//! options:
//!   --requests <n>    total requests to replay        (default 1000)
//!   --programs <n>    distinct programs in the pool   (default 24)
//!   --seed <n>        workload seed                   (default 0x5e71ce00)
//!   --jobs <n>        service worker threads          (default 4)
//!   --batch <n>       requests per service batch      (default 256)
//!   --cache-cap <n>   program-cache capacity, 0=off   (default 64)
//!   --check           verify every run response is byte-identical to
//!                     direct (uncached) execution and that the cache
//!                     actually hit; exit 1 on any violation
//!   --json            print the summary as JSON on stdout
//! ```
//!
//! The workload (program pool and request sequence) is a pure
//! function of `--requests/--programs/--seed`, so any two runs replay
//! the same stream; `--jobs` changes only wall-clock time. Repro
//! commands for the published numbers live in EXPERIMENTS.md; metric
//! names in OBSERVABILITY.md.

use std::process::ExitCode;
use std::time::Instant;

use lesgs_engine::Engine;
use lesgs_metrics::{Json, Registry};
use lesgs_svc::loadgen::{programs, requests, WorkloadConfig};
use lesgs_svc::{batch_guarantees_hits, BatchStats, Request, Response, Service, ServiceConfig};

struct Options {
    workload: WorkloadConfig,
    jobs: usize,
    batch: usize,
    cache_cap: usize,
    check: bool,
    json: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        workload: WorkloadConfig::default(),
        jobs: 4,
        batch: 256,
        cache_cap: 64,
        check: false,
        json: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |what: &str| -> Result<usize, String> {
            args.next()
                .ok_or_else(|| format!("{what} requires a value"))?
                .parse()
                .map_err(|_| format!("{what} requires a number"))
        };
        match a.as_str() {
            "--requests" => opts.workload.requests = value("--requests")?,
            "--programs" => opts.workload.programs = value("--programs")?.max(1),
            "--seed" => opts.workload.seed = value("--seed")? as u64,
            "--jobs" => opts.jobs = value("--jobs")?.max(1),
            "--batch" => opts.batch = value("--batch")?.max(1),
            "--cache-cap" => opts.cache_cap = value("--cache-cap")?,
            "--check" => opts.check = true,
            "--json" => opts.json = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: lesgs-load [--requests <n>] [--programs <n>] [--seed <n>]\n\
                     \x20                 [--jobs <n>] [--batch <n>] [--cache-cap <n>]\n\
                     \x20                 [--check] [--json]"
                );
                std::process::exit(2);
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(opts)
}

/// Verifies every run response against direct (engine-only, uncached)
/// execution of the same source. Returns the number of mismatches.
fn check_responses(
    engine: &Engine,
    stream: &[Request],
    responses: &[Response],
    pool: &[String],
) -> usize {
    // One direct execution per distinct program, not per request.
    let direct: Vec<_> = pool.iter().map(|src| engine.run(src)).collect();
    let index_of = |source: &str| {
        pool.iter()
            .position(|p| p == source)
            .expect("pooled source")
    };
    let mut mismatches = 0;
    for (req, resp) in stream.iter().zip(responses) {
        let expect = &direct[index_of(req.source())];
        let ok = match (req, resp, expect) {
            (Request::Compile { .. }, Response::Compiled { .. }, Ok(_)) => true,
            (Request::Run { .. }, Response::Ran { outcome, .. }, Ok(want)) => {
                outcome.as_ref() == want
            }
            (_, Response::Failed { message, .. }, Err(want)) => *message == want.to_string(),
            _ => false,
        };
        if !ok {
            mismatches += 1;
            if mismatches <= 5 {
                eprintln!("lesgs-load: mismatch\n  request:  {req:?}\n  response: {resp:?}");
            }
        }
    }
    mismatches
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("lesgs-load: {e}");
            return ExitCode::from(2);
        }
    };

    let pool = programs(&opts.workload);
    let stream = requests(&opts.workload, &pool);
    let mut service = Service::new(ServiceConfig {
        workers: opts.jobs,
        cache_capacity: opts.cache_cap,
        ..ServiceConfig::default()
    });

    let mut reg = Registry::new();
    let mut totals = BatchStats::default();
    let mut responses: Vec<Response> = Vec::with_capacity(stream.len());
    let t0 = Instant::now();
    for batch in stream.chunks(opts.batch) {
        let (rs, stats) = service.process_batch(batch, &mut reg);
        responses.extend(rs);
        totals.merge(&stats);
    }
    let wall_s = t0.elapsed().as_secs_f64();

    let latency = reg
        .histogram("svc.request_latency_ns")
        .copied()
        .unwrap_or_default();
    let throughput = if wall_s > 0.0 {
        totals.requests as f64 / wall_s
    } else {
        0.0
    };

    if opts.json {
        let doc = Json::object([
            ("schema_version", Json::UInt(1)),
            ("tool", Json::from("lesgs-load")),
            ("requests", Json::UInt(totals.requests)),
            ("programs", Json::UInt(opts.workload.programs as u64)),
            ("seed", Json::UInt(opts.workload.seed)),
            ("jobs", Json::UInt(opts.jobs as u64)),
            ("batch", Json::UInt(opts.batch as u64)),
            ("cache_capacity", Json::UInt(opts.cache_cap as u64)),
            ("hits", Json::UInt(totals.hits)),
            ("misses", Json::UInt(totals.misses)),
            ("evictions", Json::UInt(totals.evictions)),
            ("errors", Json::UInt(totals.errors)),
            ("hit_rate", Json::Num(totals.hit_rate())),
            ("wall_s", Json::Num(wall_s)),
            ("requests_per_s", Json::Num(throughput)),
            ("latency_mean_ns", Json::Num(latency.mean())),
            ("latency_max_ns", Json::Num(latency.max)),
        ]);
        println!("{}", doc.pretty());
    } else {
        println!(
            "{} requests ({} programs, seed {:#x}) in {:.2}s on {} workers",
            totals.requests, opts.workload.programs, opts.workload.seed, wall_s, opts.jobs
        );
        println!(
            "  throughput: {throughput:.0} req/s   latency mean {:.1}µs max {:.1}µs",
            latency.mean() / 1e3,
            latency.max / 1e3
        );
        println!(
            "  cache: {} hits / {} misses ({:.1}% hit rate), {} evictions, capacity {}",
            totals.hits,
            totals.misses,
            100.0 * totals.hit_rate(),
            totals.evictions,
            opts.cache_cap
        );
        if totals.errors > 0 {
            println!("  errors: {}", totals.errors);
        }
    }

    if opts.check {
        let mismatches = check_responses(service.engine(), &stream, &responses, &pool);
        if mismatches > 0 {
            eprintln!(
                "lesgs-load: check FAILED: {mismatches} responses differ from direct execution"
            );
            return ExitCode::FAILURE;
        }
        if totals.errors > 0 {
            eprintln!(
                "lesgs-load: check FAILED: {} requests errored",
                totals.errors
            );
            return ExitCode::FAILURE;
        }
        // "Cache never hit" is only a failure when the workload makes
        // hits inevitable. Two sufficient conditions: a batch chunk
        // repeats a content key (within-batch coalescing hits
        // regardless of capacity, even `--cache-cap 0`), or the cache
        // can hold the whole pool and the stream repeats a key at all
        // (nothing can be evicted, so the repeat must hit). An
        // all-unique mix, or cap 0 with no in-batch repeats, can
        // legitimately finish with zero hits.
        let engine = service.engine();
        let in_batch_repeat = stream
            .chunks(opts.batch)
            .any(|batch| batch_guarantees_hits(engine, batch));
        let distinct: std::collections::HashSet<u64> = stream
            .iter()
            .map(|r| engine.content_key(r.source()))
            .collect();
        let stream_repeats = distinct.len() < stream.len();
        let hits_guaranteed =
            in_batch_repeat || (opts.cache_cap >= distinct.len() && stream_repeats);
        if hits_guaranteed && totals.hits == 0 {
            eprintln!("lesgs-load: check FAILED: workload guarantees hits but cache never hit");
            return ExitCode::FAILURE;
        }
        if !hits_guaranteed {
            eprintln!(
                "lesgs-load: check: hit assertion skipped (workload cannot guarantee hits: \
                 {} distinct programs, cache capacity {})",
                distinct.len(),
                opts.cache_cap
            );
        }
        eprintln!(
            "lesgs-load: check ok — {} responses byte-identical to direct execution, hit rate {:.1}%",
            responses.len(),
            100.0 * totals.hit_rate()
        );
    }
    ExitCode::SUCCESS
}
