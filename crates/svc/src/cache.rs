//! The content-keyed compiled-program cache.
//!
//! Keys are content hashes ([`lesgs_engine::Engine::content_key`]:
//! source text + allocator-configuration fingerprint), so the same
//! text compiled under two configurations occupies two slots and a
//! textual duplicate always hits. Eviction is least-recently-used
//! with a deterministic tie-break, so a replayed workload produces
//! the same hit/miss/eviction sequence on every run — the property
//! the bench report's `service_cache` table and the CI smoke step
//! gate on.

use std::collections::HashMap;
use std::sync::Arc;

use lesgs_engine::CompiledProgram;

struct Entry {
    program: Arc<CompiledProgram>,
    /// Logical access time: the cache's tick counter at the last hit
    /// or insert. Logical, not wall-clock, so eviction order is a
    /// pure function of the request sequence.
    last_used: u64,
}

/// An LRU cache of compiled programs keyed by content hash.
///
/// A capacity of zero disables caching: every lookup misses and
/// nothing is stored (useful as a load-generator baseline).
pub struct ProgramCache {
    capacity: usize,
    tick: u64,
    map: HashMap<u64, Entry>,
}

impl ProgramCache {
    /// An empty cache holding at most `capacity` programs.
    pub fn new(capacity: usize) -> ProgramCache {
        ProgramCache {
            capacity,
            tick: 0,
            map: HashMap::new(),
        }
    }

    /// Number of programs currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured maximum (0 = caching disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether `key` is resident (does not touch recency).
    pub fn contains(&self, key: u64) -> bool {
        self.map.contains_key(&key)
    }

    /// Looks up `key`, marking it most-recently-used on a hit.
    pub fn get(&mut self, key: u64) -> Option<Arc<CompiledProgram>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(&key).map(|e| {
            e.last_used = tick;
            Arc::clone(&e.program)
        })
    }

    /// Inserts `program` under `key`, evicting least-recently-used
    /// entries while over capacity. Returns how many were evicted.
    ///
    /// Every touch gets a distinct tick, so recency never ties and
    /// the victim choice is a pure function of the access sequence.
    pub fn insert(&mut self, key: u64, program: Arc<CompiledProgram>) -> usize {
        if self.capacity == 0 {
            return 0;
        }
        self.tick += 1;
        self.map.insert(
            key,
            Entry {
                program,
                last_used: self.tick,
            },
        );
        let mut evicted = 0;
        while self.map.len() > self.capacity {
            let victim = self
                .map
                .iter()
                .map(|(&k, e)| (e.last_used, k))
                .min()
                .expect("over-capacity cache is non-empty")
                .1;
            self.map.remove(&victim);
            evicted += 1;
        }
        evicted
    }

    /// Drops every entry (capacity unchanged).
    pub fn clear(&mut self) {
        self.map.clear();
        self.tick = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lesgs_engine::Engine;

    fn program(n: i64) -> Arc<CompiledProgram> {
        Arc::new(Engine::new().compile(&format!("(+ {n} 1)")).unwrap())
    }

    #[test]
    fn evicts_least_recently_used_first() {
        let mut cache = ProgramCache::new(2);
        assert_eq!(cache.insert(1, program(1)), 0);
        assert_eq!(cache.insert(2, program(2)), 0);
        assert!(cache.get(1).is_some()); // 2 is now the LRU entry
        assert_eq!(cache.insert(3, program(3)), 1);
        assert!(cache.contains(1) && cache.contains(3) && !cache.contains(2));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = ProgramCache::new(0);
        assert_eq!(cache.insert(1, program(1)), 0);
        assert!(cache.is_empty());
        assert!(cache.get(1).is_none());
    }

    #[test]
    fn reinserting_an_existing_key_does_not_grow_the_cache() {
        let mut cache = ProgramCache::new(2);
        cache.insert(1, program(1));
        cache.insert(1, program(10));
        cache.insert(2, program(2));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.insert(3, program(3)), 1);
        assert!(!cache.contains(1), "key 1 was least recently used");
    }
}
