#![warn(missing_docs)]
//! The batch compile-and-run service.
//!
//! A [`Service`] owns an [`Engine`], a content-keyed
//! [`ProgramCache`], and a worker-pool configuration, and processes
//! batches of mixed [`Request::Compile`]/[`Request::Run`] requests:
//!
//! 1. **Classify** (sequential): each request's content key is looked
//!    up; a resident key is a *hit*, the first request for an absent
//!    key is a *miss*, and later requests for the same key within the
//!    batch coalesce onto that miss's compilation as hits.
//! 2. **Compile** (parallel): the misses — one compilation per
//!    distinct key — fan out over the [`lesgs_exec`] worker pool.
//! 3. **Admit** (sequential): compiled programs enter the cache in
//!    classification order, evicting LRU entries over capacity.
//! 4. **Execute** (parallel): run requests fan out over the pool;
//!    results return in submission order.
//!
//! Because classification and admission are sequential and eviction
//! is logical-time LRU, the responses **and** every `svc.*` counter
//! are a pure function of the request sequence — worker count only
//! changes wall-clock time. That is what lets the bench report gate
//! on the `service_cache` table and CI assert byte-identical outputs.
//!
//! Metric names are documented in OBSERVABILITY.md; the `svc.*`
//! section is the reference for everything recorded here.

pub mod cache;
pub mod loadgen;

pub use cache::ProgramCache;

use std::collections::HashMap;
use std::sync::Arc;

use lesgs_engine::{CompiledProgram, Engine, VmOutcome};
use lesgs_exec::{map_ordered, PoolConfig, PoolStats};
use lesgs_metrics::Registry;

/// Service settings: the engine configuration plus pool and cache
/// sizing.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Compiler + execution configuration for the embedded engine.
    pub compiler: lesgs_engine::CompilerConfig,
    /// Worker threads for the compile and execute phases.
    pub workers: usize,
    /// Compiled-program cache capacity (0 disables caching).
    pub cache_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            compiler: lesgs_engine::CompilerConfig::default(),
            workers: 4,
            cache_capacity: 64,
        }
    }
}

/// One unit of work for the service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Compile (and cache) the program; don't run it.
    Compile {
        /// Scheme source text.
        source: String,
    },
    /// Compile if not cached, then execute.
    Run {
        /// Scheme source text.
        source: String,
    },
}

impl Request {
    /// The request's source text.
    pub fn source(&self) -> &str {
        match self {
            Request::Compile { source } | Request::Run { source } => source,
        }
    }
}

/// One request's result, in submission order.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A [`Request::Compile`] completed.
    Compiled {
        /// Content key the program is cached under.
        key: u64,
        /// Total instruction count of the compiled program.
        code_size: usize,
        /// True when the program was already resident (or coalesced
        /// onto an earlier request in the batch).
        cached: bool,
    },
    /// A [`Request::Run`] completed.
    Ran {
        /// Content key the program is cached under.
        key: u64,
        /// Value, output, and `RunStats` — byte-identical to direct
        /// execution of the same source. Boxed so a batch of mostly
        /// `Compiled`/`Failed` responses stays compact.
        outcome: Box<VmOutcome>,
        /// True when compilation was skipped thanks to the cache.
        cached: bool,
    },
    /// The request failed (compile error, runtime error, or a
    /// panicked worker job).
    Failed {
        /// Content key of the failing source.
        key: u64,
        /// Rendered error.
        message: String,
    },
}

impl Response {
    /// True for [`Response::Failed`].
    pub fn is_failure(&self) -> bool {
        matches!(self, Response::Failed { .. })
    }

    /// True when the response was served without a fresh compilation.
    pub fn was_cached(&self) -> bool {
        matches!(
            self,
            Response::Compiled { cached: true, .. } | Response::Ran { cached: true, .. }
        )
    }
}

/// Deterministic accounting for one [`Service::process_batch`] call.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchStats {
    /// Requests processed.
    pub requests: u64,
    /// Requests answered from the cache (including within-batch
    /// coalescing).
    pub hits: u64,
    /// Requests that triggered a compilation.
    pub misses: u64,
    /// Programs evicted while admitting this batch's compilations.
    pub evictions: u64,
    /// Requests that ended in [`Response::Failed`].
    pub errors: u64,
}

impl BatchStats {
    /// Hits as a fraction of requests (0 when the batch was empty).
    pub fn hit_rate(&self) -> f64 {
        lesgs_metrics::ratio(self.hits as f64, self.requests as f64, 0.0)
    }

    /// Folds another batch's accounting into this one.
    pub fn merge(&mut self, other: &BatchStats) {
        self.requests += other.requests;
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.errors += other.errors;
    }
}

/// True when processing `requests` as **one batch** must produce at
/// least one cache hit, no matter how the cache is configured:
/// within-batch coalescing (phase 1 of [`Service::process_batch`])
/// turns every repeated content key into a hit even with
/// `cache_capacity` 0, because the duplicate rides the first
/// occurrence's compilation rather than the cache proper.
///
/// The load generator's `--check` mode uses this to decide whether
/// "no hits at all" is a failure or simply what the workload implies
/// (an all-unique mix, or caching disabled with no in-batch repeats).
pub fn batch_guarantees_hits(engine: &Engine, requests: &[Request]) -> bool {
    let mut seen = std::collections::HashSet::new();
    requests
        .iter()
        .any(|r| !seen.insert(engine.content_key(r.source())))
}

/// The batch compile-and-run service.
pub struct Service {
    engine: Engine,
    cache: ProgramCache,
    pool: PoolConfig,
}

impl Service {
    /// A service with the given configuration and an empty cache.
    pub fn new(config: ServiceConfig) -> Service {
        Service {
            engine: Engine::with_config(config.compiler),
            cache: ProgramCache::new(config.cache_capacity),
            pool: PoolConfig {
                name: "lesgs-svc".to_owned(),
                ..PoolConfig::with_workers(config.workers)
            },
        }
    }

    /// The embedded engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The program cache (primarily for inspection in tests).
    pub fn cache(&self) -> &ProgramCache {
        &self.cache
    }

    /// Processes a batch of requests, returning one response per
    /// request in submission order and recording `svc.*` metrics
    /// into `reg`.
    ///
    /// Responses and [`BatchStats`] are deterministic in the request
    /// sequence (see the module docs); only the latency histograms
    /// carry wall-clock time.
    pub fn process_batch(
        &mut self,
        requests: &[Request],
        reg: &mut Registry,
    ) -> (Vec<Response>, BatchStats) {
        let mut stats = BatchStats {
            requests: requests.len() as u64,
            ..BatchStats::default()
        };

        // Phase 1 — classify. `pending` maps each missing key to its
        // slot in the compile fan-out, in first-occurrence order.
        // Resident programs are pinned (`Arc`) right here so this
        // batch's own admissions can never evict a program a request
        // ahead of them was already promised.
        let keys: Vec<u64> = requests
            .iter()
            .map(|r| self.engine.content_key(r.source()))
            .collect();
        let mut pending: Vec<(u64, String)> = Vec::new();
        let mut pending_slot: HashMap<u64, usize> = HashMap::new();
        let mut was_hit: Vec<bool> = Vec::with_capacity(requests.len());
        let mut resident: Vec<Option<Arc<CompiledProgram>>> = Vec::with_capacity(requests.len());
        for (req, &key) in requests.iter().zip(&keys) {
            let pinned = self.cache.get(key);
            let hit = pinned.is_some() || pending_slot.contains_key(&key);
            was_hit.push(hit);
            resident.push(pinned);
            if hit {
                stats.hits += 1;
            } else {
                stats.misses += 1;
                pending_slot.insert(key, pending.len());
                pending.push((key, req.source().to_owned()));
            }
        }

        // Phase 2 — compile the misses in parallel.
        let engine = &self.engine;
        let sources: Vec<String> = pending.iter().map(|(_, s)| s.clone()).collect();
        let compile_out = map_ordered(&self.pool, sources, |_, src| engine.compile(&src));
        let mut pool_stats = compile_out.stats;

        // Phase 3 — admit in classification order. Failures are not
        // cached; reattempting them is a fresh miss in a later batch.
        let mut compiled: HashMap<u64, Result<Arc<CompiledProgram>, String>> = HashMap::new();
        for ((key, _), job) in pending.iter().zip(compile_out.results) {
            let entry = match job {
                Ok(Ok(program)) => {
                    let program = Arc::new(program);
                    stats.evictions += self.cache.insert(*key, Arc::clone(&program)) as u64;
                    Ok(program)
                }
                Ok(Err(e)) => Err(e.to_string()),
                Err(panic) => Err(panic.to_string()),
            };
            compiled.insert(*key, entry);
        }

        // Phase 4 — resolve every request; run requests fan out.
        let mut resident = resident.into_iter();
        let mut program_for = |key: u64| -> Result<Arc<CompiledProgram>, String> {
            let pinned = resident.next().expect("one pin slot per request");
            match pinned {
                Some(program) => Ok(program),
                None => compiled
                    .get(&key)
                    .expect("missing keys were all scheduled")
                    .clone(),
            }
        };
        enum Slot {
            Done(Response),
            Running { key: u64, cached: bool, job: usize },
        }
        let mut run_jobs: Vec<Arc<CompiledProgram>> = Vec::new();
        let mut slots: Vec<Slot> = Vec::with_capacity(requests.len());
        for ((req, &key), &cached) in requests.iter().zip(&keys).zip(&was_hit) {
            match program_for(key) {
                Err(message) => slots.push(Slot::Done(Response::Failed { key, message })),
                Ok(program) => match req {
                    Request::Compile { .. } => slots.push(Slot::Done(Response::Compiled {
                        key,
                        code_size: program.code_size(),
                        cached,
                    })),
                    Request::Run { .. } => {
                        slots.push(Slot::Running {
                            key,
                            cached,
                            job: run_jobs.len(),
                        });
                        run_jobs.push(program);
                    }
                },
            }
        }
        let run_out = map_ordered(&self.pool, run_jobs, |_, program| engine.execute(&program));
        pool_stats.merge(&run_out.stats);
        let mut run_results: Vec<Option<_>> = run_out.results.into_iter().map(Some).collect();

        let responses: Vec<Response> = slots
            .into_iter()
            .map(|slot| match slot {
                Slot::Done(r) => r,
                Slot::Running { key, cached, job } => {
                    match run_results[job].take().expect("one slot per job") {
                        Ok(Ok(outcome)) => Response::Ran {
                            key,
                            outcome: Box::new(outcome),
                            cached,
                        },
                        Ok(Err(e)) => Response::Failed {
                            key,
                            message: e.to_string(),
                        },
                        Err(panic) => Response::Failed {
                            key,
                            message: panic.to_string(),
                        },
                    }
                }
            })
            .collect();
        stats.errors = responses.iter().filter(|r| r.is_failure()).count() as u64;

        self.record(&stats, &pool_stats, requests, reg);
        (responses, stats)
    }

    /// Records the batch under the `svc.*` namespace (the complete
    /// name reference lives in OBSERVABILITY.md).
    fn record(
        &self,
        stats: &BatchStats,
        pool: &PoolStats,
        requests: &[Request],
        reg: &mut Registry,
    ) {
        reg.inc("svc.requests", stats.requests);
        reg.inc(
            "svc.compile_requests",
            requests
                .iter()
                .filter(|r| matches!(r, Request::Compile { .. }))
                .count() as u64,
        );
        reg.inc(
            "svc.run_requests",
            requests
                .iter()
                .filter(|r| matches!(r, Request::Run { .. }))
                .count() as u64,
        );
        reg.inc("svc.cache.hits", stats.hits);
        reg.inc("svc.cache.misses", stats.misses);
        reg.inc("svc.cache.evictions", stats.evictions);
        reg.inc("svc.errors", stats.errors);
        reg.set_gauge("svc.cache.size", self.cache.len() as f64);
        reg.set_gauge("svc.cache.capacity", self.cache.capacity() as f64);
        reg.observe_summary("svc.queue_wait_ns", &pool.queue_wait);
        reg.observe_summary("svc.request_latency_ns", &pool.job_run);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(source: &str) -> Request {
        Request::Run {
            source: source.to_owned(),
        }
    }

    fn compile(source: &str) -> Request {
        Request::Compile {
            source: source.to_owned(),
        }
    }

    #[test]
    fn duplicate_sources_hit_the_cache() {
        let mut svc = Service::new(ServiceConfig::default());
        let mut reg = Registry::new();
        let batch = vec![run("(+ 1 2)"), run("(+ 1 2)"), run("(* 2 3)")];
        let (responses, stats) = svc.process_batch(&batch, &mut reg);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.hits, 1);
        assert!(responses[1].was_cached());
        assert!(!responses[0].was_cached());
        match (&responses[0], &responses[1]) {
            (Response::Ran { outcome: a, .. }, Response::Ran { outcome: b, .. }) => {
                assert_eq!(a, b)
            }
            other => panic!("expected two runs, got {other:?}"),
        }
        // A second batch of the same requests is all hits.
        let (_, stats) = svc.process_batch(&batch, &mut reg);
        assert_eq!((stats.hits, stats.misses), (3, 0));
        assert_eq!(reg.counter("svc.cache.hits"), 4);
        assert_eq!(reg.counter("svc.cache.misses"), 2);
    }

    #[test]
    fn outcomes_match_direct_execution() {
        let mut svc = Service::new(ServiceConfig::default());
        let mut reg = Registry::new();
        let src = "(define (f n) (if (zero? n) 0 (+ 2 (f (- n 1))))) (display (f 5)) (f 10)";
        let (responses, _) = svc.process_batch(&[run(src), run(src)], &mut reg);
        let direct = Engine::new().run(src).unwrap();
        for r in &responses {
            match r {
                Response::Ran { outcome, .. } => assert_eq!(**outcome, direct),
                other => panic!("expected a run, got {other:?}"),
            }
        }
    }

    #[test]
    fn results_and_counters_are_independent_of_worker_count() {
        let programs: Vec<String> = (0..12).map(|i| format!("(* {i} (+ {i} 1))")).collect();
        let batch: Vec<Request> = (0..40)
            .map(|i| run(&programs[(i * i) % programs.len()]))
            .collect();
        let outputs: Vec<_> = [1usize, 4]
            .iter()
            .map(|&workers| {
                let mut svc = Service::new(ServiceConfig {
                    workers,
                    cache_capacity: 8,
                    ..ServiceConfig::default()
                });
                let mut reg = Registry::new();
                let (responses, stats) = svc.process_batch(&batch, &mut reg);
                (
                    responses,
                    stats.hits,
                    stats.misses,
                    stats.evictions,
                    reg.counter("svc.cache.evictions"),
                )
            })
            .collect();
        assert_eq!(outputs[0], outputs[1]);
    }

    #[test]
    fn compile_requests_cache_without_running() {
        let mut svc = Service::new(ServiceConfig::default());
        let mut reg = Registry::new();
        let (responses, stats) =
            svc.process_batch(&[compile("(+ 40 2)"), run("(+ 40 2)")], &mut reg);
        assert_eq!(stats.misses, 1);
        assert!(matches!(
            responses[0],
            Response::Compiled { cached: false, .. }
        ));
        match &responses[1] {
            Response::Ran {
                outcome, cached, ..
            } => {
                assert!(*cached, "run coalesced onto the compile request");
                assert_eq!(outcome.value, "42");
            }
            other => panic!("expected a run, got {other:?}"),
        }
        assert_eq!(reg.counter("svc.compile_requests"), 1);
        assert_eq!(reg.counter("svc.run_requests"), 1);
    }

    #[test]
    fn failures_are_reported_not_cached() {
        let mut svc = Service::new(ServiceConfig::default());
        let mut reg = Registry::new();
        let (responses, stats) =
            svc.process_batch(&[run("(undefined-proc 1)"), run("(+ 1 2)")], &mut reg);
        assert!(responses[0].is_failure());
        assert!(!responses[1].is_failure());
        assert_eq!(stats.errors, 1);
        assert_eq!(svc.cache().len(), 1, "only the good program is cached");
        // The failing source misses again next batch (not cached).
        let (_, stats) = svc.process_batch(&[run("(undefined-proc 1)")], &mut reg);
        assert_eq!(stats.misses, 1);
        assert_eq!(reg.counter("svc.errors"), 2);
    }

    #[test]
    fn eviction_is_lru_over_batches() {
        let mut svc = Service::new(ServiceConfig {
            cache_capacity: 2,
            ..ServiceConfig::default()
        });
        let mut reg = Registry::new();
        svc.process_batch(&[run("(+ 0 1)"), run("(+ 0 2)")], &mut reg);
        // Touch the first program, then overflow: the second evicts.
        svc.process_batch(&[run("(+ 0 1)"), run("(+ 0 3)")], &mut reg);
        let (_, stats) = svc.process_batch(&[run("(+ 0 1)")], &mut reg);
        assert_eq!(stats.hits, 1, "recently-used program survived eviction");
        let (_, stats) = svc.process_batch(&[run("(+ 0 2)")], &mut reg);
        assert_eq!(stats.misses, 1, "least-recently-used program was evicted");
        assert_eq!(reg.counter("svc.cache.evictions"), 2);
    }
}
