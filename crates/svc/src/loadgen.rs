//! Deterministic workload generation for the load-generator binary
//! and the bench report's service tables.
//!
//! A workload is a pool of distinct parametric programs plus a
//! request sequence drawn from it with a skewed (quadratic) index
//! distribution, so a small hot set dominates — the regime a
//! compiled-program cache exists for. Everything is a pure function
//! of [`WorkloadConfig`], so two runs with the same config replay the
//! identical request stream (the property `lesgs-load --check` and
//! the bench gate rely on).

use lesgs_testkit::Rng;

use crate::Request;

/// Workload shape: how many programs, how many requests, and the
/// seed that fixes both.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Distinct programs in the pool.
    pub programs: usize,
    /// Total requests to generate.
    pub requests: usize,
    /// Seed for program constants and request selection.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> WorkloadConfig {
        WorkloadConfig {
            programs: 24,
            requests: 1_000,
            seed: 0x5e71_ce00,
        }
    }
}

/// Renders program `i` of the pool: one of six shapes, with the
/// index and seeded constants baked into the source so every program
/// is textually (and semantically) distinct.
fn program(i: usize, rng: &mut Rng) -> String {
    let a = rng.range_i64(2, 9);
    let b = rng.range_i64(10, 40);
    match i % 6 {
        // Non-tail recursion: exercises saves/restores.
        0 => format!("(define (f{i} n) (if (zero? n) {a} (+ {a} (f{i} (- n 1))))) (f{i} {b})"),
        // Tail-recursive accumulation: register shuffling at calls.
        1 => format!(
            "(define (loop{i} n acc) (if (zero? n) acc (loop{i} (- n 1) (+ acc {a})))) \
             (loop{i} {b} {i})"
        ),
        // List construction and higher-order traversal.
        2 => format!(
            "(define (iota n) (if (zero? n) '() (cons n (iota (- n 1))))) \
             (length (map (lambda (x) (* x {a})) (iota {b})))"
        ),
        // Mutual recursion: cross-function save placement.
        3 => format!(
            "(define (ev{i} n) (if (zero? n) #t (od{i} (- n 1)))) \
             (define (od{i} n) (if (zero? n) #f (ev{i} (- n 1)))) \
             (if (ev{i} {b}) {a} (- {a}))"
        ),
        // Vector workload with output.
        4 => format!(
            "(define v (make-vector {a} {i})) \
             (vector-set! v 1 {b}) \
             (display (vector-ref v 1)) (newline) \
             (+ (vector-ref v 0) (vector-ref v 1))"
        ),
        // Many-argument calls: the greedy shuffler's home turf.
        _ => format!(
            "(define (g{i} a b c d e f) (+ a (- b (* c (+ d (- e f)))))) \
             (g{i} {a} {b} {i} 3 2 1)"
        ),
    }
}

/// The workload's program pool, in index order.
pub fn programs(cfg: &WorkloadConfig) -> Vec<String> {
    let mut rng = Rng::new(cfg.seed);
    (0..cfg.programs.max(1))
        .map(|i| program(i, &mut rng))
        .collect()
}

/// The request sequence: mixed compile/run (1 in 8 requests is a
/// bare [`Request::Compile`]) over a quadratically skewed program
/// choice, so low-index programs repeat often and the tail is cold.
pub fn requests(cfg: &WorkloadConfig, pool: &[String]) -> Vec<Request> {
    let mut rng = Rng::new(cfg.seed ^ 0x9e37_79b9);
    let n = pool.len();
    (0..cfg.requests)
        .map(|_| {
            // Squaring a uniform fraction concentrates mass near zero:
            // P(index < m) = √(m/n), so the first few programs carry
            // most of the traffic.
            let x = rng.below(n * n);
            let source = pool[((x * x) / (n * n * n)).min(n - 1)].clone();
            if rng.chance(1, 8) {
                Request::Compile { source }
            } else {
                Request::Run { source }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic() {
        let cfg = WorkloadConfig::default();
        let a = programs(&cfg);
        let b = programs(&cfg);
        assert_eq!(a, b);
        assert_eq!(requests(&cfg, &a), requests(&cfg, &b));
    }

    #[test]
    fn programs_are_distinct() {
        let cfg = WorkloadConfig {
            programs: 96,
            ..WorkloadConfig::default()
        };
        let pool = programs(&cfg);
        let unique: std::collections::HashSet<&String> = pool.iter().collect();
        assert_eq!(unique.len(), pool.len());
    }

    #[test]
    fn every_program_compiles_and_runs() {
        let cfg = WorkloadConfig {
            programs: 12,
            ..WorkloadConfig::default()
        };
        let engine = lesgs_engine::Engine::new();
        for (i, src) in programs(&cfg).iter().enumerate() {
            engine
                .run(src)
                .unwrap_or_else(|e| panic!("program {i} failed: {e}\n{src}"));
        }
    }

    #[test]
    fn selection_is_skewed_toward_low_indices() {
        let cfg = WorkloadConfig {
            programs: 24,
            requests: 2_000,
            ..WorkloadConfig::default()
        };
        let pool = programs(&cfg);
        let reqs = requests(&cfg, &pool);
        let hot = reqs
            .iter()
            .filter(|r| pool[..4].iter().any(|p| p == r.source()))
            .count();
        // 4 of 24 programs uniformly would draw ~17%; the skew should
        // push the hottest four well past a third of all traffic.
        assert!(
            hot * 3 > reqs.len(),
            "hot set drew only {hot}/{}",
            reqs.len()
        );
        let compiles = reqs
            .iter()
            .filter(|r| matches!(r, Request::Compile { .. }))
            .count();
        assert!(compiles > 0, "mixed workload includes compile requests");
    }
}
