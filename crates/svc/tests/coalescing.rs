//! Within-batch coalescing and the load generator's hit assertion.
//!
//! Phase 1 of `Service::process_batch` coalesces every repeated
//! content key within one batch onto the first occurrence's
//! compilation, *independent of cache capacity*. These tests pin that
//! contract (1 compile + N−1 hits for in-batch duplicates, invariant
//! under worker count) and the two `lesgs-load --check` edge cases it
//! implies: `--cache-cap 0` with duplicates still hits, and an
//! all-unique mix with zero hits is not a failure.

use std::process::Command;

use lesgs_metrics::Registry;
use lesgs_svc::{batch_guarantees_hits, Request, Response, Service, ServiceConfig};

fn run(source: &str) -> Request {
    Request::Run {
        source: source.to_owned(),
    }
}

/// In-batch duplicates coalesce even with caching disabled: one
/// compilation, every duplicate a hit, nothing retained afterwards.
#[test]
fn cache_cap_zero_still_coalesces_within_batch() {
    let mut svc = Service::new(ServiceConfig {
        cache_capacity: 0,
        ..ServiceConfig::default()
    });
    let mut reg = Registry::new();
    let batch = vec![run("(+ 1 2)"), run("(+ 1 2)"), run("(+ 1 2)")];
    assert!(batch_guarantees_hits(svc.engine(), &batch));
    let (responses, stats) = svc.process_batch(&batch, &mut reg);
    assert_eq!((stats.misses, stats.hits), (1, 2));
    assert!(!responses[0].was_cached());
    assert!(responses[1].was_cached() && responses[2].was_cached());
    assert!(svc.cache().is_empty(), "capacity 0 must retain nothing");
    // The next batch recompiles: the coalesced hit never touched the
    // (disabled) cache proper.
    let (_, stats) = svc.process_batch(&[run("(+ 1 2)")], &mut reg);
    assert_eq!((stats.misses, stats.hits), (1, 0));
}

/// An all-unique batch cannot hit, and `batch_guarantees_hits` says
/// so — the condition the load generator's check mode keys off.
#[test]
fn all_unique_batch_guarantees_nothing_and_hits_nothing() {
    let mut svc = Service::new(ServiceConfig::default());
    let mut reg = Registry::new();
    let batch: Vec<Request> = (0..6).map(|i| run(&format!("(+ {i} 1)"))).collect();
    assert!(!batch_guarantees_hits(svc.engine(), &batch));
    let (responses, stats) = svc.process_batch(&batch, &mut reg);
    assert_eq!((stats.hits, stats.misses), (0, 6));
    assert!(responses.iter().all(|r| !r.was_cached()));
    assert_eq!(stats.errors, 0);
}

/// Satellite audit: within-batch coalescing is exactly "one compile
/// plus N−1 hits per distinct duplicated source", and the whole
/// accounting is invariant under worker count (compilation fans out,
/// classification does not).
#[test]
fn coalescing_is_one_compile_per_key_for_any_worker_count() {
    // 3 distinct programs × 4 copies each, interleaved.
    let programs: Vec<String> = (0..3).map(|i| format!("(* {i} (+ {i} 2))")).collect();
    let batch: Vec<Request> = (0..12).map(|i| run(&programs[i % 3])).collect();
    let outputs: Vec<_> = [1usize, 2, 8]
        .iter()
        .map(|&workers| {
            let mut svc = Service::new(ServiceConfig {
                workers,
                cache_capacity: 0,
                ..ServiceConfig::default()
            });
            let mut reg = Registry::new();
            let (responses, stats) = svc.process_batch(&batch, &mut reg);
            assert_eq!(stats.misses, 3, "one compile per distinct key");
            assert_eq!(stats.hits, 9, "every duplicate coalesced");
            (
                responses,
                stats.hits,
                stats.misses,
                reg.counter("svc.cache.hits"),
                reg.counter("svc.cache.misses"),
            )
        })
        .collect();
    assert_eq!(outputs[0], outputs[1]);
    assert_eq!(outputs[0], outputs[2]);
    // Duplicates return the very outcome their coalesce target
    // computed.
    match (&outputs[0].0[0], &outputs[0].0[3]) {
        (Response::Ran { outcome: a, .. }, Response::Ran { outcome: b, .. }) => assert_eq!(a, b),
        other => panic!("expected runs, got {other:?}"),
    }
}

fn lesgs_load(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_lesgs-load"))
        .args(args)
        .output()
        .expect("spawn lesgs-load")
}

/// `--check` with caching disabled: the skewed default workload has
/// in-batch duplicates, so coalescing still produces hits and the
/// check passes (previously the hit assertion was skipped entirely at
/// cap 0; now it is *stronger* there, not absent).
#[test]
fn load_check_passes_with_cache_disabled() {
    let out = lesgs_load(&[
        "--requests",
        "200",
        "--programs",
        "8",
        "--batch",
        "64",
        "--cache-cap",
        "0",
        "--jobs",
        "2",
        "--check",
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "lesgs-load failed:\n{stderr}");
    assert!(stderr.contains("check ok"), "unexpected stderr:\n{stderr}");
}

/// `--check` on a workload that cannot hit (a single request) must
/// not fail on "cache never hit" — the spurious failure this PR
/// fixes. The assertion is skipped with an explanation instead.
#[test]
fn load_check_tolerates_workload_that_cannot_hit() {
    let out = lesgs_load(&["--requests", "1", "--cache-cap", "64", "--check"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "lesgs-load failed:\n{stderr}");
    assert!(
        stderr.contains("hit assertion skipped"),
        "unexpected stderr:\n{stderr}"
    );
}
