//! The end-to-end lesgs compiler driver.
//!
//! Ties the pipeline together — reader → frontend → closure conversion
//! → IR → register allocation → code generation → VM — under a single
//! [`CompilerConfig`], and provides the differential-testing entry
//! points used throughout the test suite.
//!
//! # Examples
//!
//! ```
//! use lesgs_compiler::{compile, run_source, CompilerConfig};
//!
//! let cfg = CompilerConfig::default();
//! let out = run_source("(define (sq x) (* x x)) (sq 7)", &cfg).unwrap();
//! assert_eq!(out.value, "49");
//!
//! let compiled = compile("(+ 1 2)", &cfg).unwrap();
//! assert!(compiled.vm.code_size() > 0);
//! ```

use std::time::{Duration, Instant};

use lesgs_core::{driver::allocate_program_observed, AllocConfig, AllocatedProgram};
use lesgs_frontend::pipeline;
use lesgs_ir::{lower_program, Program};
use lesgs_metrics::{ratio, Registry};
use lesgs_vm::{CostModel, DecodedProgram, Machine, VmOutcome, VmProgram};

/// Complete compiler + execution configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompilerConfig {
    /// Register allocator configuration.
    pub alloc: AllocConfig,
    /// VM cost model.
    pub cost: CostModel,
    /// VM instruction budget (0 = default).
    pub fuel: u64,
    /// Poison callee frames (catches reads of never-written slots).
    pub poison: bool,
    /// Apply selective lambda lifting before closure conversion (§6).
    pub lambda_lift: bool,
    /// Disable the backend peephole optimizer (on by default; the flag
    /// exists for the ablation harness).
    pub no_peephole: bool,
    /// Disable IR constant folding (on by default).
    pub no_fold: bool,
    /// Disable speculative inline-cache dispatch (on by default; the
    /// flag backs the CI speculation-differential gate and the
    /// `lesgsc --no-speculation` switch).
    pub no_speculation: bool,
    /// Log pass boundaries (compile time) and call events (run time)
    /// to stderr — the `lesgsc --trace` switch.
    pub trace: bool,
}

impl CompilerConfig {
    /// The paper's configuration with a given allocator setup.
    pub fn with_alloc(alloc: AllocConfig) -> CompilerConfig {
        CompilerConfig {
            alloc,
            ..CompilerConfig::default()
        }
    }
}

/// A compilation failure (frontend errors).
#[derive(Debug, Clone, PartialEq)]
pub struct CompileError {
    /// Description.
    pub message: String,
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "compile error: {}", self.message)
    }
}

impl std::error::Error for CompileError {}

/// The output of compilation: every intermediate stage is kept so
/// experiments can inspect them.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The IR after closure conversion and lowering.
    pub ir: Program,
    /// The allocator's output.
    pub allocated: AllocatedProgram,
    /// Executable VM code.
    pub vm: VmProgram,
    /// The pre-decoded form the dispatch loop executes (built once at
    /// compile time; every [`Compiled::run`] reuses it).
    pub decoded: DecodedProgram,
}

impl Compiled {
    /// Runs the compiled program.
    ///
    /// # Errors
    ///
    /// VM runtime errors or budget exhaustion.
    pub fn run(&self, config: &CompilerConfig) -> Result<VmOutcome, lesgs_vm::VmError> {
        let mut m = Machine::from_decoded(&self.decoded, config.cost)
            .with_poison(config.poison)
            .with_trace(config.trace)
            .with_speculation(!config.no_speculation);
        if config.fuel > 0 {
            m = m.with_fuel(config.fuel);
        }
        m.run()
    }

    /// Static shuffle/save statistics (§3.1 numbers).
    pub fn shuffle_stats(&self) -> lesgs_core::stats::ShuffleStats {
        lesgs_core::stats::collect(&self.allocated)
    }
}

/// Per-phase compile times, for the §4 compile-time measurement
/// ("register allocation accounts for an average of 7% of overall
/// compile time").
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimes {
    /// Reader + frontend passes + closure conversion + lowering.
    pub frontend: Duration,
    /// Register allocation (both passes).
    pub allocation: Duration,
    /// Code generation and linking.
    pub codegen: Duration,
}

impl PhaseTimes {
    /// Total compile time.
    pub fn total(&self) -> Duration {
        self.frontend + self.allocation + self.codegen
    }

    /// Fraction of compile time spent in register allocation (`0.0`
    /// when nothing was timed).
    pub fn allocation_fraction(&self) -> f64 {
        ratio(
            self.allocation.as_secs_f64(),
            self.total().as_secs_f64(),
            0.0,
        )
    }
}

/// Compiles `src`, timing each phase.
///
/// # Errors
///
/// Returns [`CompileError`] on any frontend failure.
pub fn compile_timed(
    src: &str,
    config: &CompilerConfig,
) -> Result<(Compiled, PhaseTimes), CompileError> {
    compile_observed(src, config, &mut Registry::new())
}

/// The compilation prefix shared by every allocator configuration:
/// reader, frontend passes, closure conversion, lowering, and IR
/// folding. None of those passes look at the allocator, so drivers
/// that sweep a program across a configuration matrix (the
/// differential oracle, the ablation harnesses) compute this **once
/// per program** and reuse it for every configuration via
/// [`compile_back_observed`].
///
/// The prefix *does* depend on the frontend-relevant corner of
/// [`CompilerConfig`]: `lambda_lift` (and, when lifting, the argument
/// register count it sizes against) and `no_fold`. Callers sharing one
/// prefix across configurations must hold those fixed — as every
/// matrix driver in the workspace does.
#[derive(Debug, Clone)]
pub struct FrontendIr {
    /// The IR after closure conversion, lowering, and folding.
    pub ir: Program,
    /// Wall time spent producing it (the [`PhaseTimes::frontend`]
    /// component of any compile finished from this prefix).
    pub frontend_time: Duration,
}

/// Runs the config-independent compilation prefix (see [`FrontendIr`])
/// with full observability: the `frontend.*` and `ir.*` instruments
/// plus the `phase.frontend` span.
///
/// # Errors
///
/// Returns [`CompileError`] on any frontend failure.
pub fn compile_front_observed(
    src: &str,
    config: &CompilerConfig,
    reg: &mut Registry,
) -> Result<FrontendIr, CompileError> {
    reg.set_trace(config.trace);
    let t0 = Instant::now();
    let frontend_span = reg.start_span("phase.frontend");
    let lift = config
        .lambda_lift
        .then(|| lesgs_frontend::lift::LiftOptions {
            max_params: config.alloc.machine.num_arg_regs.max(1),
        });
    let closed = pipeline::front_to_closed_observed(src, lift, reg).map_err(|e| CompileError {
        message: e.to_string(),
    })?;
    let mut ir = reg.time("pass.lower", || lower_program(&closed));
    reg.inc(
        "ir.nodes",
        ir.funcs.iter().map(|f| f.body.size()).sum::<usize>() as u64,
    );
    if !config.no_fold {
        reg.time("pass.fold", || lesgs_ir::fold::fold_program(&mut ir));
    }
    reg.inc(
        "ir.nodes_final",
        ir.funcs.iter().map(|f| f.body.size()).sum::<usize>() as u64,
    );
    reg.inc("ir.funcs", ir.funcs.len() as u64);
    reg.end_span(frontend_span);
    Ok(FrontendIr {
        ir,
        frontend_time: t0.elapsed(),
    })
}

/// Finishes a compilation from a shared prefix: register allocation
/// and code generation under `config`, with the `alloc.*` /
/// `codegen.*` instruments and `phase.*` spans recorded into `reg`.
/// Infallible — only the frontend can reject a program.
pub fn compile_back_observed(
    front: &FrontendIr,
    config: &CompilerConfig,
    reg: &mut Registry,
) -> (Compiled, PhaseTimes) {
    reg.set_trace(config.trace);
    let mut times = PhaseTimes {
        frontend: front.frontend_time,
        ..PhaseTimes::default()
    };

    let t1 = Instant::now();
    let alloc_span = reg.start_span("phase.alloc");
    let allocated = allocate_program_observed(&front.ir, &config.alloc, reg);
    reg.end_span(alloc_span);
    times.allocation = t1.elapsed();

    let t2 = Instant::now();
    let codegen_span = reg.start_span("phase.codegen");
    let vm = lesgs_codegen::compile_program_observed(&allocated, !config.no_peephole, reg);
    reg.end_span(codegen_span);
    times.codegen = t2.elapsed();

    // Pre-decode for the dispatch loop. The vm.dispatch.* counters are
    // *static* load-time facts (decoded ops, fusion hits) — run-time
    // vm.* counters keep their pre-decoding key set untouched.
    let decode_span = reg.start_span("vm.dispatch.decode");
    let decoded = DecodedProgram::decode(&vm);
    reg.end_span(decode_span);
    decoded.stats().record(reg);

    reg.set_gauge("compile.alloc_fraction", times.allocation_fraction());
    (
        Compiled {
            ir: front.ir.clone(),
            allocated,
            vm,
            decoded,
        },
        times,
    )
}

/// Compiles `src` with full observability: every pipeline pass records
/// wall time and size metrics into `reg` (the `pass.*`, `frontend.*`,
/// `ir.*`, `alloc.*`, and `codegen.*` instruments of OBSERVABILITY.md)
/// plus the coarse `phase.*` spans behind [`PhaseTimes`]. With
/// `config.trace`, every completed span also logs a `trace:` line.
///
/// This is the engine behind `lesgsc --profile`; [`compile_timed`] is
/// the same code with a throwaway registry. It is literally
/// [`compile_front_observed`] followed by [`compile_back_observed`] —
/// matrix drivers call the halves directly to share the prefix across
/// configurations.
///
/// # Errors
///
/// Returns [`CompileError`] on any frontend failure.
pub fn compile_observed(
    src: &str,
    config: &CompilerConfig,
    reg: &mut Registry,
) -> Result<(Compiled, PhaseTimes), CompileError> {
    let front = compile_front_observed(src, config, reg)?;
    Ok(compile_back_observed(&front, config, reg))
}

/// Compiles `src` under `config`.
///
/// # Errors
///
/// Returns [`CompileError`] on any frontend failure.
pub fn compile(src: &str, config: &CompilerConfig) -> Result<Compiled, CompileError> {
    compile_timed(src, config).map(|(c, _)| c)
}

/// Compiles and runs `src`.
///
/// # Errors
///
/// Compile errors or VM runtime errors (both stringified).
pub fn run_source(src: &str, config: &CompilerConfig) -> Result<VmOutcome, CompileError> {
    let compiled = compile(src, config)?;
    compiled.run(config).map_err(|e| CompileError {
        message: e.to_string(),
    })
}

/// The failure class of a [`differential_check_detailed`] run.
///
/// Fuel exhaustion is deliberately its own variant: a timeout (in the
/// oracle or in one configuration) says nothing about correctness and
/// must never be reported as a miscompile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffKind {
    /// The reference interpreter rejected or failed the program; the
    /// compiled configurations were never consulted.
    OracleError {
        /// The interpreter's error.
        message: String,
    },
    /// A step/instruction budget ran out before an answer was reached.
    FuelExhausted,
    /// The compiler rejected the program under one configuration.
    CompileError {
        /// The compile error.
        message: String,
    },
    /// The bytecode verifier rejected the generated code.
    VerifyFailed {
        /// All verifier complaints, rendered.
        errors: Vec<String>,
    },
    /// The VM failed at runtime where the oracle succeeded.
    VmError {
        /// The VM error.
        message: String,
    },
    /// Both backends ran to completion but disagreed.
    Mismatch {
        /// VM final value.
        value: String,
        /// VM output.
        output: String,
        /// Interpreter final value.
        oracle_value: String,
        /// Interpreter output.
        oracle_output: String,
    },
}

/// A [`differential_check_detailed`] failure: what went wrong, and under
/// which allocator configuration (if any single one is to blame).
#[derive(Debug, Clone)]
pub struct DiffFailure {
    /// The offending configuration; `None` when the oracle itself
    /// failed before any configuration ran.
    pub config: Option<AllocConfig>,
    /// Failure class.
    pub kind: DiffKind,
}

impl DiffFailure {
    /// True when this failure is evidence of a compiler bug — anything
    /// except an oracle failure (bad input program) or fuel exhaustion
    /// (bad budget).
    pub fn is_miscompile(&self) -> bool {
        !matches!(
            self.kind,
            DiffKind::OracleError { .. } | DiffKind::FuelExhausted
        )
    }
}

impl std::fmt::Display for DiffFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let cfg = |f: &mut std::fmt::Formatter<'_>| match &self.config {
            Some(c) => write!(f, "{c:?}: "),
            None => Ok(()),
        };
        match &self.kind {
            DiffKind::OracleError { message } => write!(f, "oracle failed: {message}"),
            DiffKind::FuelExhausted => {
                cfg(f)?;
                write!(f, "fuel exhausted (a timeout, not an outcome mismatch)")
            }
            DiffKind::CompileError { message } => {
                cfg(f)?;
                write!(f, "{message}")
            }
            DiffKind::VerifyFailed { errors } => {
                cfg(f)?;
                write!(f, "bytecode verification failed:\n{}", errors.join("\n"))
            }
            DiffKind::VmError { message } => {
                cfg(f)?;
                write!(f, "{message}")
            }
            DiffKind::Mismatch {
                value,
                output,
                oracle_value,
                oracle_output,
            } => {
                cfg(f)?;
                if value != oracle_value {
                    write!(f, "value {value} != oracle {oracle_value}")
                } else {
                    write!(f, "output {output:?} != oracle {oracle_output:?}")
                }
            }
        }
    }
}

/// Runs `src` through the reference interpreter and through the
/// compiler under every given allocator configuration, checking that
/// the bytecode verifies ([`lesgs_vm::verify_bytecode`]) and that
/// value and output agree everywhere — reporting failures as structured
/// [`DiffFailure`]s so drivers can distinguish timeouts from
/// miscompiles.
///
/// # Errors
///
/// Returns the first failure, tagged with the offending configuration.
pub fn differential_check_detailed(
    src: &str,
    configs: &[AllocConfig],
    fuel: u64,
) -> Result<(), DiffFailure> {
    differential_check_jobs(src, configs, fuel, 1, false)
}

/// Runs the oracle, then judges one already-compiled configuration
/// against it.
fn judge_config(
    front: &FrontendIr,
    oracle: &lesgs_interp::Outcome,
    alloc: &AllocConfig,
    fuel: u64,
    no_speculation: bool,
) -> Result<(), DiffFailure> {
    let fail = |kind: DiffKind| DiffFailure {
        config: Some(*alloc),
        kind,
    };
    let config = CompilerConfig {
        alloc: *alloc,
        poison: true,
        fuel,
        no_speculation,
        ..CompilerConfig::default()
    };
    let (compiled, _times) = compile_back_observed(front, &config, &mut Registry::new());
    let verify_errors = lesgs_vm::verify_bytecode(&compiled.vm);
    if !verify_errors.is_empty() {
        return Err(fail(DiffKind::VerifyFailed {
            errors: verify_errors.iter().map(ToString::to_string).collect(),
        }));
    }
    let out = compiled.run(&config).map_err(|e| {
        fail(if e.is_fuel_exhausted() {
            DiffKind::FuelExhausted
        } else {
            DiffKind::VmError {
                message: e.to_string(),
            }
        })
    })?;
    if out.value != oracle.value || out.output != oracle.output {
        return Err(fail(DiffKind::Mismatch {
            value: out.value,
            output: out.output,
            oracle_value: oracle.value.clone(),
            oracle_output: oracle.output.clone(),
        }));
    }
    Ok(())
}

/// [`differential_check_detailed`] with the configuration matrix
/// fanned out over a `lesgs-exec` worker pool. The verdict is
/// **deterministic and identical to the sequential check**: the
/// reported failure is always the first one in matrix order, no
/// matter which configuration finished first. `jobs <= 1` runs the
/// plain sequential loop (which also short-circuits at the first
/// failure instead of finishing the matrix).
///
/// # Errors
///
/// Returns the first failure in matrix order, tagged with the
/// offending configuration.
pub fn differential_check_parallel(
    src: &str,
    configs: &[AllocConfig],
    fuel: u64,
    jobs: usize,
) -> Result<(), DiffFailure> {
    differential_check_jobs(src, configs, fuel, jobs, false)
}

/// [`differential_check_parallel`] with speculative inline-cache
/// dispatch forced off in every judged configuration — the second leg
/// of the CI speculation-differential gate. The verdict must be
/// identical to the speculating run on every program; a divergence is
/// a speculation bug.
///
/// # Errors
///
/// Returns the first failure in matrix order, tagged with the
/// offending configuration.
pub fn differential_check_parallel_spec(
    src: &str,
    configs: &[AllocConfig],
    fuel: u64,
    jobs: usize,
    no_speculation: bool,
) -> Result<(), DiffFailure> {
    differential_check_jobs(src, configs, fuel, jobs, no_speculation)
}

fn differential_check_jobs(
    src: &str,
    configs: &[AllocConfig],
    fuel: u64,
    jobs: usize,
    no_speculation: bool,
) -> Result<(), DiffFailure> {
    let oracle = match lesgs_interp::run_source(src, fuel) {
        Ok(o) => o,
        Err(e) => {
            return Err(DiffFailure {
                config: None,
                kind: if e.is_fuel_exhausted() {
                    DiffKind::FuelExhausted
                } else {
                    DiffKind::OracleError {
                        message: e.to_string(),
                    }
                },
            })
        }
    };
    if configs.is_empty() {
        return Ok(());
    }
    // The reader and the full frontend are config-independent: run
    // them once per program instead of once per configuration. A
    // frontend rejection is attributed to the first configuration,
    // exactly as when each configuration recompiled from scratch.
    let front = match compile_front_observed(src, &CompilerConfig::default(), &mut Registry::new())
    {
        Ok(front) => front,
        Err(e) => {
            return Err(DiffFailure {
                config: configs.first().copied(),
                kind: DiffKind::CompileError {
                    message: e.to_string(),
                },
            })
        }
    };
    if jobs <= 1 {
        for alloc in configs {
            judge_config(&front, &oracle, alloc, fuel, no_speculation)?;
        }
        return Ok(());
    }
    let pool = lesgs_exec::PoolConfig {
        name: "lesgs-diff".to_owned(),
        ..lesgs_exec::PoolConfig::with_workers(jobs)
    };
    let out = lesgs_exec::map_ordered(&pool, configs.to_vec(), |_i, alloc| {
        judge_config(&front, &oracle, &alloc, fuel, no_speculation)
    });
    for (alloc, result) in configs.iter().zip(out.results) {
        // A panic inside a configuration's compile/run is a compiler
        // bug; re-raise it on the caller like the sequential loop
        // would, now labelled with the configuration.
        result.unwrap_or_else(|p| panic!("{alloc:?}: {p}"))?;
    }
    Ok(())
}

/// [`differential_check_detailed`] with failures rendered to strings
/// (the historical interface most tests use).
///
/// # Errors
///
/// Returns a description of the first disagreement or failure,
/// including the offending [`AllocConfig`]; fuel exhaustion is
/// explicitly marked as a timeout rather than a mismatch.
pub fn differential_check(src: &str, configs: &[AllocConfig], fuel: u64) -> Result<(), String> {
    differential_check_detailed(src, configs, fuel).map_err(|e| e.to_string())
}

/// The full matrix of allocator configurations exercised by the
/// differential tests: {lazy, early, late} × {eager, lazy} × register
/// counts × shuffling strategies, plus the callee-save discipline.
pub fn config_matrix() -> Vec<AllocConfig> {
    use lesgs_core::config::{Discipline, RestoreStrategy, SaveStrategy, ShuffleStrategy};
    let mut out = Vec::new();
    for save in [SaveStrategy::Lazy, SaveStrategy::Early, SaveStrategy::Late] {
        for restore in [RestoreStrategy::Eager, RestoreStrategy::Lazy] {
            for c in [0, 2, 6] {
                out.push(AllocConfig {
                    save,
                    restore,
                    machine: lesgs_ir::MachineConfig::with_arg_regs(c),
                    ..AllocConfig::default()
                });
            }
        }
    }
    out.push(AllocConfig {
        shuffle: ShuffleStrategy::FixedOrder,
        ..AllocConfig::default()
    });
    out.push(AllocConfig {
        shuffle: ShuffleStrategy::OptimalPermi,
        ..AllocConfig::default()
    });
    for save in [SaveStrategy::Lazy, SaveStrategy::Early] {
        out.push(AllocConfig {
            discipline: Discipline::CalleeSave,
            save,
            ..AllocConfig::default()
        });
    }
    out.push(AllocConfig {
        branch_prediction: true,
        ..AllocConfig::default()
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke() {
        let out = run_source("(+ 40 2)", &CompilerConfig::default()).unwrap();
        assert_eq!(out.value, "42");
    }

    #[test]
    fn differential_small_programs() {
        let programs = [
            "(define (fact n) (if (zero? n) 1 (* n (fact (- n 1))))) (fact 8)",
            "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) (fib 10)",
            "(map (lambda (x) (* x x)) '(1 2 3 4))",
            "(let loop ((i 0) (acc '())) (if (= i 5) (reverse acc) (loop (+ i 1) (cons i acc))))",
            "(define (tak x y z)
               (if (not (< y x)) z
                   (tak (tak (- x 1) y z) (tak (- y 1) z x) (tak (- z 1) x y))))
             (tak 8 4 2)",
            "(define v (make-vector 5 0))
             (let loop ((i 0)) (when (< i 5) (vector-set! v i (* i i)) (loop (+ i 1))))
             (vector->list v)",
            "(display \"hello\") (newline) (write '(a \"b\" #\\c)) 'done",
            "(define counter (let ((n 0)) (lambda () (set! n (+ n 1)) n)))
             (counter) (counter) (+ (counter) 10)",
            "(filter odd? (iota 10))",
            "(assq 'c '((a 1) (b 2) (c 3)))",
        ];
        for src in programs {
            differential_check(src, &config_matrix(), 10_000_000)
                .unwrap_or_else(|e| panic!("{e}\nsrc={src}"));
        }
    }

    #[test]
    fn fuel_exhaustion_is_a_timeout_not_a_mismatch() {
        // An infinite loop exhausts the oracle's budget before any
        // configuration runs: the failure must say "timeout", carry no
        // config, and not count as a miscompile.
        let src = "(define (spin) (spin)) (spin)";
        let e = differential_check_detailed(src, &config_matrix(), 10_000).unwrap_err();
        assert_eq!(e.kind, DiffKind::FuelExhausted, "{e}");
        assert!(e.config.is_none());
        assert!(!e.is_miscompile());
        assert!(e.to_string().contains("timeout, not an outcome mismatch"));
    }

    #[test]
    fn vm_fuel_exhaustion_names_the_config_but_is_still_a_timeout() {
        // The VM spends more instructions than the interpreter spends
        // steps (moves, saves, shuffles), so some budget lets the
        // oracle finish while a configuration times out. That failure
        // must carry the config yet still not count as a miscompile.
        let src = "(define (f a b c d e g) (+ a b c d e g))
                   (+ (f 1 2 3 4 5 6) (f 6 5 4 3 2 1))";
        let cfg = AllocConfig::paper_default();
        let mut seen_vm_timeout = false;
        for fuel in 1..2_000u64 {
            match differential_check_detailed(src, std::slice::from_ref(&cfg), fuel) {
                Ok(()) => break,
                Err(e) => {
                    assert_eq!(e.kind, DiffKind::FuelExhausted, "fuel {fuel}: {e}");
                    assert!(!e.is_miscompile());
                    if e.config.is_some() {
                        seen_vm_timeout = true;
                        assert!(
                            e.to_string().contains("AllocConfig"),
                            "config missing from: {e}"
                        );
                    }
                }
            }
        }
        assert!(seen_vm_timeout, "no budget made only the VM time out");
    }

    #[test]
    fn mismatch_rendering_names_the_offending_config() {
        let e = DiffFailure {
            config: Some(AllocConfig::paper_default()),
            kind: DiffKind::Mismatch {
                value: "1".to_owned(),
                output: String::new(),
                oracle_value: "2".to_owned(),
                oracle_output: String::new(),
            },
        };
        assert!(e.is_miscompile());
        let s = e.to_string();
        assert!(s.contains("AllocConfig"), "{s}");
        assert!(s.contains("value 1 != oracle 2"), "{s}");
    }

    #[test]
    fn compile_error_reported() {
        assert!(compile("(unbound-fn 1)", &CompilerConfig::default()).is_err());
        assert!(compile("(((", &CompilerConfig::default()).is_err());
    }

    #[test]
    fn runtime_error_reported() {
        let e = run_source("(car 5)", &CompilerConfig::default()).unwrap_err();
        assert!(e.message.contains("pair"), "{e}");
    }

    #[test]
    fn phase_times_recorded() {
        let (_, times) =
            compile_timed("(define (f x) (+ x 1)) (f 1)", &CompilerConfig::default()).unwrap();
        assert!(times.total() > Duration::ZERO);
        assert!(times.allocation_fraction() >= 0.0);
        assert!(times.allocation_fraction() <= 1.0);
    }

    #[test]
    fn lambda_lifting_preserves_semantics() {
        let programs = [
            "(define (f a) (let loop ((i 0)) (if (= i a) i (loop (+ i 1))))) (f 9)",
            "(define (f a b)
               (let loop ((i 0) (acc 0))
                 (if (= i a) acc (loop (+ i 1) (+ acc (* b i))))))
             (f 5 2)",
            "(define (g x) (* x 3))
             (define (f a)
               (letrec ((even2? (lambda (n) (if (zero? n) (g a) (odd2? (- n 1)))))
                        (odd2? (lambda (n) (even2? (- n 1)))))
                 (even2? 6)))
             (f 7)",
            "(map (lambda (x) (let loop ((i x)) (if (zero? i) x (loop (- i 1)))))
                  '(1 2 3))",
        ];
        for src in programs {
            let oracle = lesgs_interp::run_source(src, 10_000_000).unwrap();
            for alloc in config_matrix() {
                let cfg = CompilerConfig {
                    alloc,
                    lambda_lift: true,
                    poison: true,
                    ..CompilerConfig::default()
                };
                let out = run_source(src, &cfg).unwrap_or_else(|e| panic!("{alloc:?}: {e}\n{src}"));
                assert_eq!(out.value, oracle.value, "{alloc:?}\n{src}");
            }
        }
    }

    #[test]
    fn lambda_lifting_removes_closures() {
        let src = "(define (f a) (let loop ((i 0)) (if (= i a) i (loop (+ i 1))))) (f 50)";
        let plain = run_source(src, &CompilerConfig::default()).unwrap();
        let lifted = run_source(
            src,
            &CompilerConfig {
                lambda_lift: true,
                ..CompilerConfig::default()
            },
        )
        .unwrap();
        assert_eq!(plain.value, lifted.value);
        assert!(
            lifted.stats.closures_allocated < plain.stats.closures_allocated,
            "lifting must eliminate the loop closure: {} vs {}",
            lifted.stats.closures_allocated,
            plain.stats.closures_allocated
        );
    }

    #[test]
    fn shared_prefix_compiles_identical_bytecode_per_config() {
        // The differential driver compiles the config-independent
        // prefix once per program; the result must be bit-for-bit the
        // bytecode the old per-config full compile produced, for every
        // configuration of the matrix.
        let src = "(define (tak x y z)
                     (if (not (< y x)) z
                         (tak (tak (- x 1) y z) (tak (- y 1) z x) (tak (- z 1) x y))))
                   (define (sum lst) (if (null? lst) 0 (+ (car lst) (sum (cdr lst)))))
                   (display (tak 6 3 1)) (sum '(1 2 3 4 5))";
        let front =
            compile_front_observed(src, &CompilerConfig::default(), &mut Registry::new()).unwrap();
        for alloc in config_matrix() {
            let config = CompilerConfig {
                alloc,
                poison: true,
                ..CompilerConfig::default()
            };
            let whole = compile(src, &config).unwrap();
            let (split, _) = compile_back_observed(&front, &config, &mut Registry::new());
            assert_eq!(
                whole.vm.disassemble(),
                split.vm.disassemble(),
                "{alloc:?}: split compile diverged"
            );
            assert_eq!(
                format!("{:?}", whole.vm),
                format!("{:?}", split.vm),
                "{alloc:?}: constants/entry diverged"
            );
        }
    }

    #[test]
    fn parallel_differential_matches_sequential_verdicts() {
        // A clean program: both agree on Ok.
        let ok = "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) (fib 9)";
        differential_check_parallel(ok, &config_matrix(), 10_000_000, 4).unwrap();

        // An oracle timeout: both report FuelExhausted with no config.
        let spin = "(define (spin) (spin)) (spin)";
        let seq = differential_check_detailed(spin, &config_matrix(), 10_000).unwrap_err();
        let par = differential_check_parallel(spin, &config_matrix(), 10_000, 4).unwrap_err();
        assert_eq!(format!("{seq:?}"), format!("{par:?}"));
    }

    #[test]
    fn parallel_differential_reports_first_failure_in_matrix_order() {
        // Pick a budget where the oracle finishes but the VM times out
        // under at least one configuration; the parallel check must
        // then name exactly the configuration the sequential
        // short-circuiting loop names, regardless of completion order.
        let src = "(define (f a b c d e g) (+ a b c d e g))
                   (+ (f 1 2 3 4 5 6) (f 6 5 4 3 2 1))";
        let matrix = config_matrix();
        let mut compared = 0;
        for fuel in (50..2_000u64).step_by(50) {
            let seq = differential_check_detailed(src, &matrix, fuel);
            let par = differential_check_parallel(src, &matrix, fuel, 4);
            match (seq, par) {
                (Ok(()), Ok(())) => break,
                (Err(a), Err(b)) => {
                    assert_eq!(format!("{a:?}"), format!("{b:?}"), "fuel {fuel}");
                    compared += 1;
                }
                (a, b) => panic!("fuel {fuel}: sequential {a:?} vs parallel {b:?}"),
            }
        }
        assert!(compared > 0, "no budget produced a failure to compare");
    }

    #[test]
    fn verifier_passes_on_compiled_programs() {
        let compiled = compile(
            "(define (tak x y z)
               (if (not (< y x)) z
                   (tak (tak (- x 1) y z) (tak (- y 1) z x) (tak (- z 1) x y))))
             (tak 12 6 3)",
            &CompilerConfig::default(),
        )
        .unwrap();
        let errors = lesgs_core::verify::verify_program(&compiled.allocated);
        assert!(errors.is_empty(), "{errors:?}");
    }
}
