//! End-to-end tests of the `lesgsc` command-line driver.

use std::process::Command;

fn lesgsc(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_lesgsc"))
        .args(args)
        .output()
        .expect("lesgsc runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn run_evaluates_expressions() {
    let (stdout, _, ok) = lesgsc(&["run", "-e", "(+ 40 2)"]);
    assert!(ok);
    assert_eq!(stdout.trim(), "42");
}

#[test]
fn run_prints_program_output_before_value() {
    let (stdout, _, ok) = lesgsc(&["run", "-e", "(display \"hi\") (newline) 'done"]);
    assert!(ok);
    assert_eq!(stdout, "hi\ndone\n");
}

#[test]
fn stats_reports_instrumentation() {
    let (_, stderr, ok) = lesgsc(&[
        "stats",
        "-e",
        "(define (f n) (if (zero? n) 0 (+ 1 (f (- n 1))))) (f 5)",
    ]);
    assert!(ok);
    for field in ["cycles:", "saves:", "restores:", "stack refs:", "shuffle:"] {
        assert!(stderr.contains(field), "missing {field} in {stderr}");
    }
}

#[test]
fn dis_produces_a_listing() {
    let (stdout, _, ok) = lesgsc(&["dis", "-e", "(+ 1 2)"]);
    assert!(ok);
    assert!(stdout.contains("halt"), "{stdout}");
    assert!(stdout.contains("main"), "{stdout}");
}

#[test]
fn strategy_flags_are_honored() {
    // Early saves produce more save-slot stores than lazy on factorial.
    let saves = |flags: &[&str]| {
        let mut args = vec!["stats"];
        args.extend_from_slice(flags);
        args.extend_from_slice(&[
            "-e",
            "(define (f n) (if (zero? n) 1 (* n (f (- n 1))))) (f 10)",
        ]);
        let (_, stderr, ok) = lesgsc(&args);
        assert!(ok, "{stderr}");
        stderr
            .lines()
            .find(|l| l.starts_with("saves:"))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|n| n.parse::<u64>().ok())
            .expect("saves line")
    };
    let lazy = saves(&["--save", "lazy"]);
    let early = saves(&["--save", "early"]);
    assert!(lazy < early, "lazy {lazy} < early {early}");
}

#[test]
fn interp_subcommand_matches_run() {
    let src = "(length (map (lambda (x) (* x x)) '(1 2 3)))";
    let (a, _, ok1) = lesgsc(&["run", "-e", src]);
    let (b, _, ok2) = lesgsc(&["interp", "-e", src]);
    assert!(ok1 && ok2);
    assert_eq!(a, b);
}

#[test]
fn check_accepts_good_programs() {
    let (stdout, _, ok) = lesgsc(&["check", "-e", "(define (sq x) (* x x)) (sq 9)"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("agree"), "{stdout}");
}

#[test]
fn errors_exit_nonzero() {
    let (_, stderr, ok) = lesgsc(&["run", "-e", "(car 5)"]);
    assert!(!ok);
    assert!(stderr.contains("pair"), "{stderr}");
    let (_, stderr, ok) = lesgsc(&["run", "-e", "(undefined-proc)"]);
    assert!(!ok);
    assert!(stderr.contains("unbound"), "{stderr}");
}

#[test]
fn bad_flags_exit_with_usage_code() {
    let (_, stderr, ok) = lesgsc(&["run", "--save", "bogus", "-e", "1"]);
    assert!(!ok);
    assert!(stderr.contains("save strategy"), "{stderr}");
}
