//! Bounded generative differential smoke test.
//!
//! A small deterministic campaign of generated programs must pass the
//! full oracle (bytecode verification plus interpreter/VM agreement
//! under every configuration). Any find prints its shrunk repro and
//! the exact command to replay it.

use lesgs_fuzz::{run_fuzz, FuzzOptions};

#[test]
fn bounded_campaign_finds_no_miscompiles() {
    let opts = FuzzOptions {
        seed: 0xC0_4411E5,
        cases: 40,
        ..Default::default()
    };
    let report = run_fuzz(&opts);
    assert_eq!(report.cases, opts.cases);
    if !report.finds.is_empty() {
        let mut msg = String::new();
        for find in &report.finds {
            msg.push_str(&format!(
                "{}\n  repro: {}\n{}\n",
                find.failure,
                find.repro_command(&opts),
                find.shrunk
            ));
        }
        panic!("{} miscompile(s) found:\n{msg}", report.finds.len());
    }
}
