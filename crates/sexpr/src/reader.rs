//! Recursive-descent reader turning tokens into [`Datum`] trees.

use std::fmt;

use crate::datum::Datum;
use crate::lexer::{LexError, Lexer, Token, TokenKind};

/// An error produced while parsing S-expressions.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// 1-based line number where the error occurred, if known.
    pub line: Option<usize>,
}

impl ParseError {
    fn new(message: impl Into<String>, line: Option<usize>) -> ParseError {
        ParseError {
            message: message.into(),
            line,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(line) => write!(f, "parse error on line {line}: {}", self.message),
            None => write!(f, "parse error: {}", self.message),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> ParseError {
        ParseError::new(e.message, Some(e.line))
    }
}

struct Reader<'a> {
    tokens: std::iter::Peekable<Lexer<'a>>,
}

impl<'a> Reader<'a> {
    fn next_token(&mut self) -> Result<Option<Token>, ParseError> {
        self.tokens.next().transpose().map_err(ParseError::from)
    }

    fn require_token(&mut self, context: &str) -> Result<Token, ParseError> {
        self.next_token()?
            .ok_or_else(|| ParseError::new(format!("unexpected end of input {context}"), None))
    }

    fn read_datum(&mut self, tok: Token) -> Result<Datum, ParseError> {
        let line = tok.line;
        match tok.kind {
            TokenKind::Fixnum(n) => Ok(Datum::Fixnum(n)),
            TokenKind::Bool(b) => Ok(Datum::Bool(b)),
            TokenKind::Char(c) => Ok(Datum::Char(c)),
            TokenKind::Str(s) => Ok(Datum::Str(s)),
            TokenKind::Symbol(s) => Ok(Datum::Symbol(s)),
            TokenKind::LParen => self.read_list(line),
            TokenKind::VecOpen => {
                let items = self.read_until_close(line)?;
                Ok(Datum::Vector(items))
            }
            TokenKind::Quote => self.read_prefixed("quote", line),
            TokenKind::Quasiquote => self.read_prefixed("quasiquote", line),
            TokenKind::Unquote => self.read_prefixed("unquote", line),
            TokenKind::RParen => Err(ParseError::new("unexpected `)`", Some(line))),
            TokenKind::Dot => Err(ParseError::new("unexpected `.`", Some(line))),
        }
    }

    fn read_prefixed(&mut self, head: &str, _line: usize) -> Result<Datum, ParseError> {
        let tok = self.require_token(&format!("after `{head}` shorthand"))?;
        let inner = self.read_datum(tok)?;
        Ok(Datum::List(vec![Datum::symbol(head), inner]))
    }

    fn read_until_close(&mut self, open_line: usize) -> Result<Vec<Datum>, ParseError> {
        let mut items = Vec::new();
        loop {
            let tok = self.next_token()?.ok_or_else(|| {
                ParseError::new(format!("unclosed list opened on line {open_line}"), None)
            })?;
            if tok.kind == TokenKind::RParen {
                return Ok(items);
            }
            items.push(self.read_datum(tok)?);
        }
    }

    fn read_list(&mut self, open_line: usize) -> Result<Datum, ParseError> {
        let mut items = Vec::new();
        loop {
            let tok = self.next_token()?.ok_or_else(|| {
                ParseError::new(format!("unclosed list opened on line {open_line}"), None)
            })?;
            match tok.kind {
                TokenKind::RParen => return Ok(Datum::List(items)),
                TokenKind::Dot => {
                    if items.is_empty() {
                        return Err(ParseError::new(
                            "`.` requires at least one preceding element",
                            Some(tok.line),
                        ));
                    }
                    let tail_tok = self.require_token("after `.`")?;
                    let tail = self.read_datum(tail_tok)?;
                    let close = self.require_token("after dotted tail")?;
                    if close.kind != TokenKind::RParen {
                        return Err(ParseError::new(
                            "expected `)` after dotted tail",
                            Some(close.line),
                        ));
                    }
                    // Normalize `(a b . (c d))` to the proper list `(a b c d)`.
                    return Ok(match tail {
                        Datum::List(rest) => {
                            items.extend(rest);
                            Datum::List(items)
                        }
                        Datum::Improper(rest, end) => {
                            items.extend(rest);
                            Datum::Improper(items, end)
                        }
                        atom => Datum::Improper(items, Box::new(atom)),
                    });
                }
                _ => items.push(self.read_datum(tok)?),
            }
        }
    }
}

/// Parses every datum in `src`.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input: unbalanced parentheses,
/// misplaced dots, bad literals, or lexical errors.
///
/// # Examples
///
/// ```
/// use lesgs_sexpr::parse;
/// let data = parse("(a (b)) 42")?;
/// assert_eq!(data.len(), 2);
/// # Ok::<(), lesgs_sexpr::ParseError>(())
/// ```
pub fn parse(src: &str) -> Result<Vec<Datum>, ParseError> {
    let mut reader = Reader {
        tokens: Lexer::new(src).peekable(),
    };
    let mut out = Vec::new();
    while let Some(tok) = reader.next_token()? {
        out.push(reader.read_datum(tok)?);
    }
    Ok(out)
}

/// Parses exactly one datum from `src`.
///
/// # Errors
///
/// Returns a [`ParseError`] if `src` holds zero or more than one datum,
/// or on any malformed input.
///
/// # Examples
///
/// ```
/// use lesgs_sexpr::parse_one;
/// let d = parse_one("'(1 2)")?;
/// assert_eq!(d.to_string(), "(quote (1 2))");
/// # Ok::<(), lesgs_sexpr::ParseError>(())
/// ```
pub fn parse_one(src: &str) -> Result<Datum, ParseError> {
    let data = parse(src)?;
    match <[Datum; 1]>::try_from(data) {
        Ok([d]) => Ok(d),
        Err(data) => Err(ParseError::new(
            format!("expected exactly one datum, found {}", data.len()),
            None,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &str) -> String {
        parse_one(src).unwrap().to_string()
    }

    #[test]
    fn atoms() {
        assert_eq!(roundtrip("42"), "42");
        assert_eq!(roundtrip("#t"), "#t");
        assert_eq!(roundtrip("foo"), "foo");
        assert_eq!(roundtrip("\"hi\""), "\"hi\"");
    }

    #[test]
    fn lists() {
        assert_eq!(roundtrip("(a b (c d) ())"), "(a b (c d) ())");
        assert_eq!(roundtrip("[a b]"), "(a b)");
        assert_eq!(roundtrip("#(1 2 3)"), "#(1 2 3)");
    }

    #[test]
    fn dotted() {
        assert_eq!(roundtrip("(a . b)"), "(a . b)");
        assert_eq!(roundtrip("(a b . c)"), "(a b . c)");
        // Dotted pair with list tail normalizes to a proper list.
        assert_eq!(roundtrip("(a . (b c))"), "(a b c)");
        assert_eq!(roundtrip("(a . (b . c))"), "(a b . c)");
    }

    #[test]
    fn quoting() {
        assert_eq!(roundtrip("'x"), "(quote x)");
        assert_eq!(roundtrip("`x"), "(quasiquote x)");
        assert_eq!(roundtrip(",x"), "(unquote x)");
        assert_eq!(roundtrip("''x"), "(quote (quote x))");
        assert_eq!(roundtrip("'(1 . 2)"), "(quote (1 . 2))");
    }

    #[test]
    fn multiple_data() {
        let data = parse("1 2 3").unwrap();
        assert_eq!(data.len(), 3);
        assert!(parse_one("1 2").is_err());
        assert!(parse_one("").is_err());
    }

    #[test]
    fn errors() {
        assert!(parse("(a").is_err());
        assert!(parse(")").is_err());
        assert!(parse("(.)").is_err());
        assert!(parse("(a .)").is_err());
        assert!(parse("(a . b c)").is_err());
        assert!(parse("'").is_err());
    }

    #[test]
    fn comments_ignored() {
        let data = parse("; header\n(a) ; trailing\n").unwrap();
        assert_eq!(data.len(), 1);
    }
}
