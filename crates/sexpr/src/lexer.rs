//! Tokenizer for the mini-Scheme surface syntax.

use std::fmt;

/// The kind of a lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// `(` or `[`
    LParen,
    /// `)` or `]`
    RParen,
    /// `#(`
    VecOpen,
    /// `'`
    Quote,
    /// `` ` ``
    Quasiquote,
    /// `,`
    Unquote,
    /// `.` used in dotted pairs
    Dot,
    /// An integer literal.
    Fixnum(i64),
    /// `#t` / `#f`
    Bool(bool),
    /// A character literal.
    Char(char),
    /// A string literal (unescaped contents).
    Str(String),
    /// A symbol.
    Symbol(String),
}

/// A token together with its byte offset in the source.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What was recognized.
    pub kind: TokenKind,
    /// Byte offset of the first character of the token.
    pub offset: usize,
    /// 1-based line number for diagnostics.
    pub line: usize,
}

/// A lexical error: unexpected character, bad literal, or unterminated
/// string.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Human-readable description.
    pub message: String,
    /// 1-based line number.
    pub line: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// An iterator producing [`Token`]s from source text.
///
/// # Examples
///
/// ```
/// use lesgs_sexpr::{Lexer, TokenKind};
///
/// let toks: Vec<_> = Lexer::new("(add 1)").collect::<Result<_, _>>().unwrap();
/// assert_eq!(toks[0].kind, TokenKind::LParen);
/// assert_eq!(toks[1].kind, TokenKind::Symbol("add".into()));
/// assert_eq!(toks[2].kind, TokenKind::Fixnum(1));
/// ```
#[derive(Debug, Clone)]
pub struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

fn is_delimiter(b: u8) -> bool {
    b.is_ascii_whitespace() || matches!(b, b'(' | b')' | b'[' | b']' | b'"' | b';')
}

fn is_symbol_char(b: u8) -> bool {
    !is_delimiter(b) && !matches!(b, b'\'' | b'`' | b',')
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `src`.
    pub fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b';') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    fn err(&self, message: impl Into<String>) -> LexError {
        LexError {
            message: message.into(),
            line: self.line,
        }
    }

    fn take_symbol_text(&mut self) -> &'a str {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if !is_symbol_char(b) {
                break;
            }
            self.bump();
        }
        &self.src[start..self.pos]
    }

    fn lex_string(&mut self) -> Result<TokenKind, LexError> {
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string literal")),
                Some(b'"') => return Ok(TokenKind::Str(out)),
                Some(b'\\') => match self.bump() {
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'"') => out.push('"'),
                    Some(c) => {
                        return Err(self.err(format!("unknown string escape `\\{}`", c as char)))
                    }
                    None => return Err(self.err("unterminated string escape")),
                },
                Some(b) => out.push(b as char),
            }
        }
    }

    fn lex_hash(&mut self) -> Result<TokenKind, LexError> {
        match self.bump() {
            Some(b't') => Ok(TokenKind::Bool(true)),
            Some(b'f') => Ok(TokenKind::Bool(false)),
            Some(b'(') => Ok(TokenKind::VecOpen),
            Some(b'\\') => {
                let text = self.take_symbol_text();
                match text {
                    "space" => Ok(TokenKind::Char(' ')),
                    "newline" => Ok(TokenKind::Char('\n')),
                    "tab" => Ok(TokenKind::Char('\t')),
                    t if t.chars().count() == 1 => {
                        Ok(TokenKind::Char(t.chars().next().expect("one char")))
                    }
                    // `#\(` and friends: the delimiter is not part of a
                    // symbol, so take one raw byte.
                    "" => match self.bump() {
                        Some(b) => Ok(TokenKind::Char(b as char)),
                        None => Err(self.err("unterminated character literal")),
                    },
                    t => Err(self.err(format!("unknown character name `{t}`"))),
                }
            }
            other => Err(self.err(format!("unknown `#` syntax: {other:?}"))),
        }
    }

    fn lex_atom(&mut self) -> Result<TokenKind, LexError> {
        let text = self.take_symbol_text();
        debug_assert!(!text.is_empty());
        if text == "." {
            return Ok(TokenKind::Dot);
        }
        let digits = text.strip_prefix(['-', '+']).unwrap_or(text);
        let numeric = !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit());
        if numeric {
            text.parse::<i64>()
                .map(TokenKind::Fixnum)
                .map_err(|_| self.err(format!("bad number literal `{text}`")))
        } else {
            Ok(TokenKind::Symbol(text.to_owned()))
        }
    }
}

impl<'a> Iterator for Lexer<'a> {
    type Item = Result<Token, LexError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.skip_trivia();
        let offset = self.pos;
        let line = self.line;
        let b = self.peek()?;
        let kind = match b {
            b'(' | b'[' => {
                self.bump();
                Ok(TokenKind::LParen)
            }
            b')' | b']' => {
                self.bump();
                Ok(TokenKind::RParen)
            }
            b'\'' => {
                self.bump();
                Ok(TokenKind::Quote)
            }
            b'`' => {
                self.bump();
                Ok(TokenKind::Quasiquote)
            }
            b',' => {
                self.bump();
                Ok(TokenKind::Unquote)
            }
            b'"' => {
                self.bump();
                self.lex_string()
            }
            b'#' => {
                self.bump();
                self.lex_hash()
            }
            _ => self.lex_atom(),
        };
        Some(kind.map(|kind| Token { kind, offset, line }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .collect::<Result<Vec<_>, _>>()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn numbers_and_symbols() {
        assert_eq!(
            kinds("x -12 +34 - + 1+"),
            vec![
                TokenKind::Symbol("x".into()),
                TokenKind::Fixnum(-12),
                TokenKind::Fixnum(34),
                TokenKind::Symbol("-".into()),
                TokenKind::Symbol("+".into()),
                TokenKind::Symbol("1+".into()),
            ]
        );
    }

    #[test]
    fn punctuation() {
        assert_eq!(
            kinds("()[]'`, ."),
            vec![
                TokenKind::LParen,
                TokenKind::RParen,
                TokenKind::LParen,
                TokenKind::RParen,
                TokenKind::Quote,
                TokenKind::Quasiquote,
                TokenKind::Unquote,
                TokenKind::Dot,
            ]
        );
    }

    #[test]
    fn hash_syntax() {
        assert_eq!(
            kinds("#t #f #(1) #\\a #\\space"),
            vec![
                TokenKind::Bool(true),
                TokenKind::Bool(false),
                TokenKind::VecOpen,
                TokenKind::Fixnum(1),
                TokenKind::RParen,
                TokenKind::Char('a'),
                TokenKind::Char(' '),
            ]
        );
    }

    #[test]
    fn strings() {
        assert_eq!(
            kinds(r#""a\nb" "q\"q""#),
            vec![TokenKind::Str("a\nb".into()), TokenKind::Str("q\"q".into()),]
        );
    }

    #[test]
    fn comments_and_lines() {
        let toks: Vec<_> = Lexer::new("a ; hi\nb")
            .collect::<Result<Vec<_>, _>>()
            .unwrap();
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
    }

    #[test]
    fn bad_inputs() {
        assert!(Lexer::new("\"abc").next().unwrap().is_err());
        assert!(Lexer::new("#q").next().unwrap().is_err());
        // An out-of-range fixnum is a lex error, not a symbol.
        assert!(Lexer::new("99999999999999999999").next().unwrap().is_err());
        // Digit-leading symbols such as `1+` are allowed.
        assert_eq!(kinds("1+"), vec![TokenKind::Symbol("1+".into())]);
    }
}
