//! S-expression reader and printer for the lesgs mini-Scheme.
//!
//! This crate is the textual substrate of the reproduction: benchmark
//! programs and examples are written in a small Scheme dialect, and every
//! later stage of the pipeline starts from the [`Datum`] values produced
//! here.
//!
//! # Examples
//!
//! ```
//! use lesgs_sexpr::{parse, Datum};
//!
//! let data = parse("(+ 1 2) ; a comment\n#t").unwrap();
//! assert_eq!(data.len(), 2);
//! assert_eq!(data[1], Datum::Bool(true));
//! assert_eq!(data[0].to_string(), "(+ 1 2)");
//! ```

mod datum;
mod lexer;
mod reader;

pub use datum::Datum;
pub use lexer::{Lexer, Token, TokenKind};
pub use reader::{parse, parse_one, ParseError};
