//! The [`Datum`] tree produced by the reader.

use std::fmt;

/// A single parsed S-expression.
///
/// Proper lists are represented directly as [`Datum::List`]; improper
/// (dotted) lists keep the trailing element in the second field of
/// [`Datum::Improper`]. Quoting sugar (`'x`, `` `x ``, `,x`) is expanded
/// by the reader into `(quote x)` etc., so later passes never see it.
///
/// # Examples
///
/// ```
/// use lesgs_sexpr::Datum;
///
/// let d = Datum::List(vec![Datum::symbol("f"), Datum::Fixnum(1)]);
/// assert_eq!(d.to_string(), "(f 1)");
/// assert!(d.as_slice().is_some());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Datum {
    /// A signed 62-bit-safe integer literal (`42`, `-7`).
    Fixnum(i64),
    /// A boolean literal (`#t`, `#f`).
    Bool(bool),
    /// A symbol (`foo`, `set!`, `+`).
    Symbol(String),
    /// A string literal (`"abc"`).
    Str(String),
    /// A character literal (`#\a`, `#\newline`, `#\space`).
    Char(char),
    /// A proper list `(a b c)`, including the empty list `()`.
    List(Vec<Datum>),
    /// An improper list `(a b . c)`; the vector is non-empty.
    Improper(Vec<Datum>, Box<Datum>),
    /// A vector literal `#(a b c)`.
    Vector(Vec<Datum>),
}

impl Datum {
    /// Builds a symbol datum from anything string-like.
    ///
    /// ```
    /// use lesgs_sexpr::Datum;
    /// assert_eq!(Datum::symbol("x").to_string(), "x");
    /// ```
    pub fn symbol(name: impl Into<String>) -> Datum {
        Datum::Symbol(name.into())
    }

    /// Returns the empty list `()`.
    pub fn nil() -> Datum {
        Datum::List(Vec::new())
    }

    /// Returns the symbol name if this datum is a symbol.
    pub fn as_symbol(&self) -> Option<&str> {
        match self {
            Datum::Symbol(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the elements if this datum is a proper list.
    pub fn as_slice(&self) -> Option<&[Datum]> {
        match self {
            Datum::List(items) => Some(items),
            _ => None,
        }
    }

    /// True if this datum is a proper list whose head is the given symbol.
    ///
    /// ```
    /// use lesgs_sexpr::parse_one;
    /// let d = parse_one("(if a b c)").unwrap();
    /// assert!(d.is_form("if"));
    /// assert!(!d.is_form("cond"));
    /// ```
    pub fn is_form(&self, head: &str) -> bool {
        matches!(self.as_slice(),
                 Some([first, ..]) if first.as_symbol() == Some(head))
    }

    /// Wraps this datum in `(quote _)`.
    pub fn quoted(self) -> Datum {
        Datum::List(vec![Datum::symbol("quote"), self])
    }
}

impl From<i64> for Datum {
    fn from(n: i64) -> Datum {
        Datum::Fixnum(n)
    }
}

impl From<bool> for Datum {
    fn from(b: bool) -> Datum {
        Datum::Bool(b)
    }
}

fn write_char(c: char, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match c {
        ' ' => write!(f, "#\\space"),
        '\n' => write!(f, "#\\newline"),
        '\t' => write!(f, "#\\tab"),
        c => write!(f, "#\\{c}"),
    }
}

fn write_string(s: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

impl fmt::Display for Datum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Datum::Fixnum(n) => write!(f, "{n}"),
            Datum::Bool(true) => write!(f, "#t"),
            Datum::Bool(false) => write!(f, "#f"),
            Datum::Symbol(s) => write!(f, "{s}"),
            Datum::Str(s) => write_string(s, f),
            Datum::Char(c) => write_char(*c, f),
            Datum::List(items) => {
                write!(f, "(")?;
                for (i, d) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{d}")?;
                }
                write!(f, ")")
            }
            Datum::Improper(items, tail) => {
                write!(f, "(")?;
                for (i, d) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{d}")?;
                }
                write!(f, " . {tail})")
            }
            Datum::Vector(items) => {
                write!(f, "#(")?;
                for (i, d) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{d}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_atoms() {
        assert_eq!(Datum::Fixnum(-3).to_string(), "-3");
        assert_eq!(Datum::Bool(true).to_string(), "#t");
        assert_eq!(Datum::Bool(false).to_string(), "#f");
        assert_eq!(Datum::symbol("car").to_string(), "car");
        assert_eq!(Datum::Char('a').to_string(), "#\\a");
        assert_eq!(Datum::Char(' ').to_string(), "#\\space");
        assert_eq!(Datum::Str("a\"b".into()).to_string(), "\"a\\\"b\"");
    }

    #[test]
    fn display_lists() {
        let d = Datum::List(vec![Datum::symbol("a"), Datum::nil()]);
        assert_eq!(d.to_string(), "(a ())");
        let imp = Datum::Improper(vec![Datum::Fixnum(1)], Box::new(Datum::Fixnum(2)));
        assert_eq!(imp.to_string(), "(1 . 2)");
        let v = Datum::Vector(vec![Datum::Fixnum(1), Datum::Fixnum(2)]);
        assert_eq!(v.to_string(), "#(1 2)");
    }

    #[test]
    fn helpers() {
        assert_eq!(Datum::symbol("x").as_symbol(), Some("x"));
        assert_eq!(Datum::Fixnum(1).as_symbol(), None);
        assert!(Datum::nil().as_slice().unwrap().is_empty());
        assert_eq!(Datum::Fixnum(7).quoted().to_string(), "(quote 7)");
    }

    #[test]
    fn conversions() {
        assert_eq!(Datum::from(3i64), Datum::Fixnum(3));
        assert_eq!(Datum::from(true), Datum::Bool(true));
    }
}
