//! Peephole optimization over linear VM code.
//!
//! Three conservative, branch-target-aware rewrites:
//!
//! 1. **Self-move elimination** — `mov r, r` disappears.
//! 2. **Store-load forwarding** — a `StackLoad` immediately following a
//!    `StackStore` of the same slot becomes a register move (the parked
//!    value is still in its source register). This collapses the
//!    store/reload pairs the code generator's temp discipline produces.
//! 3. **Jump-to-next elimination** — a `Jump` targeting the following
//!    instruction disappears.
//!
//! A rewrite never crosses a branch target: control entering mid-pattern
//! must observe the unoptimized effect. After rewriting, the code is
//! compacted and every branch target remapped.

use std::collections::HashSet;

use lesgs_vm::{Instr, VmFunc};

/// Instruction indices that some branch can jump to.
fn branch_targets(code: &[Instr]) -> HashSet<u32> {
    let mut targets = HashSet::new();
    for i in code {
        match i {
            Instr::Jump { target }
            | Instr::BranchFalse { target, .. }
            | Instr::BranchTrue { target, .. } => {
                targets.insert(*target);
            }
            _ => {}
        }
    }
    targets
}

/// Applies one peephole pass to `func`; returns the number of
/// instructions removed or simplified.
#[allow(clippy::needless_range_loop)] // the window scan is index-driven
pub fn peephole(func: &mut VmFunc) -> usize {
    let targets = branch_targets(&func.code);
    let n = func.code.len();
    let mut changed = 0usize;
    // `keep[i]` = false marks a deletion; rewrites happen in place.
    let mut keep = vec![true; n];

    for i in 0..n {
        match &func.code[i] {
            // 1. Self-moves.
            Instr::Mov { dst, src } if dst == src && !targets.contains(&(i as u32)) => {
                keep[i] = false;
                changed += 1;
            }
            // 3. Jump to the immediately following instruction.
            Instr::Jump { target }
                if *target == (i + 1) as u32 && !targets.contains(&(i as u32)) =>
            {
                keep[i] = false;
                changed += 1;
            }
            _ => {}
        }
        // 2. Store-load forwarding (needs a window of two).
        if i + 1 < n && !targets.contains(&((i + 1) as u32)) {
            if let (
                Instr::StackStore { slot: s1, src, .. },
                Instr::StackLoad { dst, slot: s2, .. },
            ) = (&func.code[i], &func.code[i + 1])
            {
                if s1 == s2 && keep[i] {
                    let (src, dst) = (*src, *dst);
                    func.code[i + 1] = Instr::Mov { dst, src };
                    changed += 1;
                }
            }
        }
    }

    // Compact and remap branch targets.
    if keep.iter().all(|k| *k) {
        // Still may have in-place rewrites; handle self-moves created
        // by forwarding in the next pass.
        return changed;
    }
    let mut new_index = vec![0u32; n + 1];
    let mut next = 0u32;
    for i in 0..n {
        new_index[i] = next;
        if keep[i] {
            next += 1;
        }
    }
    new_index[n] = next;
    let mut code = Vec::with_capacity(next as usize);
    for (i, ins) in func.code.drain(..).enumerate() {
        if !keep[i] {
            continue;
        }
        code.push(match ins {
            Instr::Jump { target } => Instr::Jump {
                target: new_index[target as usize],
            },
            Instr::BranchFalse {
                src,
                target,
                likely,
            } => Instr::BranchFalse {
                src,
                target: new_index[target as usize],
                likely,
            },
            Instr::BranchTrue {
                src,
                target,
                likely,
            } => Instr::BranchTrue {
                src,
                target: new_index[target as usize],
                likely,
            },
            other => other,
        });
    }
    func.code = code;
    changed
}

/// Runs [`peephole`] to a fixed point (forwarding can expose
/// self-moves, whose deletion can expose jumps-to-next).
pub fn peephole_to_fixpoint(func: &mut VmFunc) -> usize {
    let mut total = 0;
    loop {
        let changed = peephole(func);
        total += changed;
        if changed == 0 {
            return total;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lesgs_frontend::FuncId;
    use lesgs_ir::machine::{arg_reg, RV};
    use lesgs_vm::{Imm, SlotClass};

    fn func(code: Vec<Instr>) -> VmFunc {
        VmFunc {
            id: FuncId(0),
            name: "test".into(),
            code,
            frame_size: 4,
            n_incoming: 0,
            syntactic_leaf: true,
            call_inevitable: false,
        }
    }

    #[test]
    fn removes_self_moves() {
        let mut f = func(vec![
            Instr::Mov { dst: RV, src: RV },
            Instr::LoadImm {
                dst: RV,
                imm: Imm::Fixnum(1),
            },
            Instr::Halt,
        ]);
        assert!(peephole_to_fixpoint(&mut f) >= 1);
        assert_eq!(f.code.len(), 2);
    }

    #[test]
    fn forwards_store_load() {
        let a0 = arg_reg(0);
        let mut f = func(vec![
            Instr::StackStore {
                slot: 2,
                src: a0,
                class: SlotClass::Temp,
            },
            Instr::StackLoad {
                dst: RV,
                slot: 2,
                class: SlotClass::Temp,
            },
            Instr::Halt,
        ]);
        peephole_to_fixpoint(&mut f);
        assert_eq!(f.code[1], Instr::Mov { dst: RV, src: a0 });
        // The store stays: a later load from another site may need it.
        assert!(matches!(f.code[0], Instr::StackStore { .. }));
    }

    #[test]
    fn forwarding_to_same_register_vanishes() {
        let a0 = arg_reg(0);
        let mut f = func(vec![
            Instr::StackStore {
                slot: 2,
                src: a0,
                class: SlotClass::Temp,
            },
            Instr::StackLoad {
                dst: a0,
                slot: 2,
                class: SlotClass::Temp,
            },
            Instr::Halt,
        ]);
        peephole_to_fixpoint(&mut f);
        assert_eq!(f.code.len(), 2, "{:?}", f.code);
    }

    #[test]
    fn does_not_forward_across_branch_targets() {
        let a0 = arg_reg(0);
        let mut f = func(vec![
            Instr::BranchFalse {
                src: a0,
                target: 2,
                likely: None,
            },
            Instr::StackStore {
                slot: 2,
                src: a0,
                class: SlotClass::Temp,
            },
            // Index 2 is a branch target: the load must survive.
            Instr::StackLoad {
                dst: RV,
                slot: 2,
                class: SlotClass::Temp,
            },
            Instr::Halt,
        ]);
        peephole_to_fixpoint(&mut f);
        assert!(matches!(f.code[2], Instr::StackLoad { .. }), "{:?}", f.code);
    }

    #[test]
    fn removes_jump_to_next_and_remaps() {
        let a0 = arg_reg(0);
        let mut f = func(vec![
            Instr::BranchFalse {
                src: a0,
                target: 3,
                likely: None,
            },
            Instr::Jump { target: 2 }, // jump to next: dead
            Instr::LoadImm {
                dst: RV,
                imm: Imm::Fixnum(1),
            },
            Instr::Halt,
        ]);
        peephole_to_fixpoint(&mut f);
        assert_eq!(f.code.len(), 3);
        // The branch target shifted from 3 to 2.
        assert_eq!(
            f.code[0],
            Instr::BranchFalse {
                src: a0,
                target: 2,
                likely: None
            }
        );
    }

    #[test]
    fn fixpoint_chains_rewrites() {
        let a0 = arg_reg(0);
        // store; load into same reg -> mov a0,a0 -> deleted entirely.
        let mut f = func(vec![
            Instr::StackStore {
                slot: 0,
                src: a0,
                class: SlotClass::Temp,
            },
            Instr::StackLoad {
                dst: a0,
                slot: 0,
                class: SlotClass::Temp,
            },
            Instr::Jump { target: 3 },
            Instr::Halt,
        ]);
        peephole_to_fixpoint(&mut f);
        assert_eq!(
            f.code,
            vec![
                Instr::StackStore {
                    slot: 0,
                    src: a0,
                    class: SlotClass::Temp
                },
                Instr::Halt,
            ]
        );
    }
}
