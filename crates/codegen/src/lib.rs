//! Code generation: allocated IR → VM instructions.
//!
//! The code generator walks the allocator's output ([`AExpr`]) once per
//! function, performing the *local* register allocation the paper
//! attributes to the code generator ("Other registers are used for
//! local register allocation", §1): expression operands live in scratch
//! registers, partial results that must survive a call go to frame
//! temporaries, and the return value always travels in `rv`.
//!
//! The frame's temporary region grows with a simple stack discipline; a
//! high-water mark finalizes the frame size, after which outgoing
//! argument offsets and call frame advances are patched.

pub mod peephole;

use lesgs_core::alloc::{
    ACallee, AExpr, AllocatedFunc, AllocatedProgram, ArgRef, Dest, Home, Slot, Step, TempLoc,
};
use lesgs_core::frame::FrameLayout;
use lesgs_frontend::{Const, FuncId, Prim};
use lesgs_ir::machine::{scratch_reg, NUM_SCRATCH, RV};
use lesgs_ir::{Reg, RegSet};
use lesgs_vm::{CallTarget, Imm, Instr, SlotClass, VmFunc, VmProgram};

/// A code-generation failure (should not happen for allocator output;
/// kept as an error for robustness).
#[derive(Debug, Clone, PartialEq)]
pub struct CodegenError {
    /// Description.
    pub message: String,
}

impl std::fmt::Display for CodegenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "codegen error: {}", self.message)
    }
}

impl std::error::Error for CodegenError {}

#[derive(Debug, Clone, Copy)]
enum PatchKind {
    /// `StackStore`/`StackLoad` slot = frame_size + i.
    OutSlot(u32),
    /// `Call` frame_advance = frame_size.
    FrameAdvance,
    /// Branch/jump target = label position.
    Label(u32),
}

struct Emitter<'a> {
    func: &'a AllocatedFunc,
    code: Vec<Instr>,
    layout: FrameLayout,
    temp_sp: u32,
    scratch_free: Vec<Reg>,
    patches: Vec<(usize, PatchKind)>,
    labels: Vec<Option<u32>>,
    constants: &'a mut Vec<Const>,
}

/// True if the subtree contains a non-tail call (its value would not
/// survive in a register).
fn contains_call(e: &AExpr) -> bool {
    let mut found = false;
    e.visit(&mut |n| {
        if let AExpr::Call(c) = n {
            if !c.tail {
                found = true;
            }
        }
    });
    found
}

fn imm_of(c: &Const) -> Option<Imm> {
    match c {
        Const::Fixnum(n) => Some(Imm::Fixnum(*n)),
        Const::Bool(b) => Some(Imm::Bool(*b)),
        Const::Char(c) => Some(Imm::Char(*c)),
        Const::Nil => Some(Imm::Nil),
        Const::Void => Some(Imm::Void),
        Const::Str(_) | Const::Symbol(_) | Const::Datum(_) => None,
    }
}

impl Emitter<'_> {
    fn emit(&mut self, i: Instr) -> usize {
        self.code.push(i);
        self.code.len() - 1
    }

    fn new_label(&mut self) -> u32 {
        self.labels.push(None);
        (self.labels.len() - 1) as u32
    }

    fn place_label(&mut self, l: u32) {
        self.labels[l as usize] = Some(self.code.len() as u32);
    }

    fn const_idx(&mut self, c: &Const) -> u32 {
        if let Some(i) = self.constants.iter().position(|x| x == c) {
            return i as u32;
        }
        self.constants.push(c.clone());
        (self.constants.len() - 1) as u32
    }

    fn alloc_scratch(&mut self) -> Option<Reg> {
        self.scratch_free.pop()
    }

    fn release_scratch(&mut self, r: Reg) {
        self.scratch_free.push(r);
    }

    fn temp_push(&mut self) -> u32 {
        let t = self.temp_sp;
        self.temp_sp += 1;
        self.layout.n_temps = self.layout.n_temps.max(self.temp_sp);
        t
    }

    fn temp_offset(&self, i: u32) -> u32 {
        self.layout.n_incoming + self.layout.save_regs.len() as u32 + self.layout.n_spills + i
    }

    fn slot_offset(&self, s: Slot) -> u32 {
        match s {
            Slot::Temp(i) => self.temp_offset(i),
            other => self.layout.offset(other),
        }
    }

    fn slot_class(s: Slot) -> SlotClass {
        match s {
            Slot::Param(_) => SlotClass::Param,
            Slot::Save(_) => SlotClass::Save,
            Slot::Spill(_) => SlotClass::Spill,
            Slot::Temp(_) => SlotClass::Temp,
        }
    }

    fn emit_saves(&mut self, regs: RegSet) {
        for r in regs.iter() {
            let slot = self.layout.offset(Slot::Save(r));
            self.emit(Instr::StackStore {
                slot,
                src: r,
                class: SlotClass::Save,
            });
        }
    }

    fn emit_restores(&mut self, regs: RegSet) {
        for r in regs.iter() {
            let slot = self.layout.offset(Slot::Save(r));
            self.emit(Instr::StackLoad {
                dst: r,
                slot,
                class: SlotClass::Save,
            });
        }
    }

    /// Gathers a *leaf* expression (constant, home read, free-variable
    /// read) into a register; returns the register and whether it is a
    /// scratch to release. Register homes are borrowed with no code.
    ///
    /// Non-leaf values must flow through `value_to_rv` instead — that
    /// is what keeps scratch pressure bounded: leaves never recurse, so
    /// the handful of scratches allocated at any gather point (at most
    /// `arity ≤ 3`, plus at most one held by an enclosing context)
    /// always fits the four scratch registers.
    ///
    /// # Panics
    ///
    /// Panics on a non-leaf argument or scratch exhaustion — both
    /// indicate a violated invariant, not a user error.
    fn operand(&mut self, e: &AExpr) -> (Reg, bool) {
        assert!(Self::is_leaf(e), "operand() requires a leaf expression");
        if let AExpr::ReadHome(Home::Reg(r)) = e {
            return (*r, false);
        }
        let s = self
            .alloc_scratch()
            .expect("scratch invariant: bounded gather pressure");
        self.expr(e, s);
        (s, true)
    }

    /// Evaluates an arbitrary expression into a register the caller
    /// must consume before compiling anything else: leaves borrow or
    /// use a scratch, everything else goes through `rv`.
    fn value_to_rv(&mut self, e: &AExpr) -> (Reg, bool) {
        if Self::is_leaf(e) {
            self.operand(e)
        } else {
            self.expr(e, RV);
            (RV, false)
        }
    }

    /// True for expressions whose evaluation touches no scratch state
    /// and has no effects, so it can be deferred to operand-gather time.
    fn is_leaf(e: &AExpr) -> bool {
        matches!(
            e,
            AExpr::Const(_) | AExpr::ReadHome(_) | AExpr::FreeRef(_) | AExpr::Global(_)
        )
    }

    /// Compiles a primitive application.
    ///
    /// Discipline: no scratch register is held across a recursive
    /// compile. Non-leaf arguments evaluate through `rv` into frame
    /// temporaries; leaf arguments are deferred and gathered at the
    /// end, unless a later argument contains a call (which would
    /// clobber the registers the leaf reads — those leaves are parked
    /// in temporaries like everything else). The final gather needs at
    /// most `arity ≤ 3` scratches with at most one held by an enclosing
    /// context, within the four available.
    fn primapp(&mut self, p: Prim, args: &[AExpr], dst: Reg) {
        let n = args.len();
        let later_calls: Vec<bool> = (0..n)
            .map(|i| args[i + 1..].iter().any(contains_call))
            .collect();
        let temp_base = self.temp_sp;
        enum Loc<'e> {
            Temp(u32),
            Deferred(&'e AExpr),
        }
        let mut locs: Vec<Loc<'_>> = Vec::with_capacity(n);
        for (i, a) in args.iter().enumerate() {
            if Self::is_leaf(a) && !later_calls[i] {
                locs.push(Loc::Deferred(a));
            } else {
                let t = self.temp_push();
                self.expr(a, RV);
                let slot = self.temp_offset(t);
                self.emit(Instr::StackStore {
                    slot,
                    src: RV,
                    class: SlotClass::Temp,
                });
                locs.push(Loc::Temp(t));
            }
        }
        // Gather all operands into registers.
        let mut regs: Vec<Reg> = Vec::with_capacity(n);
        let mut to_release: Vec<Reg> = Vec::new();
        for loc in &locs {
            match loc {
                Loc::Temp(t) => {
                    let r = self
                        .alloc_scratch()
                        .expect("gather needs at most arity scratches");
                    let slot = self.temp_offset(*t);
                    self.emit(Instr::StackLoad {
                        dst: r,
                        slot,
                        class: SlotClass::Temp,
                    });
                    to_release.push(r);
                    regs.push(r);
                }
                Loc::Deferred(e) => {
                    let (r, scratch) = self.operand(e);
                    if scratch {
                        to_release.push(r);
                    }
                    regs.push(r);
                }
            }
        }
        self.emit(Instr::Prim {
            op: p,
            dst,
            args: regs,
        });
        for r in to_release {
            self.release_scratch(r);
        }
        self.temp_sp = temp_base;
    }

    fn store_to_dest(&mut self, src: Reg, dst: &Dest, plan_temp_base: u32) {
        match dst {
            Dest::Reg(r) => {
                if *r != src {
                    self.emit(Instr::Mov { dst: *r, src });
                }
            }
            Dest::Out(j) => {
                let idx = self.emit(Instr::StackStore {
                    slot: u32::MAX,
                    src,
                    class: SlotClass::OutArg,
                });
                self.patches.push((idx, PatchKind::OutSlot(*j)));
            }
            Dest::Param(i) => {
                self.emit(Instr::StackStore {
                    slot: *i,
                    src,
                    class: SlotClass::OutArg,
                });
            }
            Dest::Temp(TempLoc::Reg(r)) => {
                if *r != src {
                    self.emit(Instr::Mov { dst: *r, src });
                }
            }
            Dest::Temp(TempLoc::Frame(k)) => {
                let slot = self.temp_offset(plan_temp_base + k);
                self.emit(Instr::StackStore {
                    slot,
                    src,
                    class: SlotClass::Temp,
                });
            }
        }
    }

    fn call(&mut self, node: &lesgs_core::alloc::CallNode, dst: Reg) {
        // Reserve this plan's frame temporaries for its whole duration:
        // nested calls inside complex arguments allocate above them.
        let plan_temp_base = self.temp_sp;
        self.temp_sp += node.plan.frame_temps;
        self.layout.n_temps = self.layout.n_temps.max(self.temp_sp);

        for step in &node.plan.steps {
            match step {
                Step::Eval { arg, dst: d } => {
                    let expr: &AExpr = match arg {
                        ArgRef::Arg(i) => &node.args[*i as usize],
                        ArgRef::Closure => node.closure.as_deref().expect("closure present"),
                    };
                    match d {
                        Dest::Reg(r) | Dest::Temp(TempLoc::Reg(r)) => {
                            self.expr(expr, *r);
                        }
                        other => {
                            let (r, scratch) = self.value_to_rv(expr);
                            self.store_to_dest(r, other, plan_temp_base);
                            if scratch {
                                self.release_scratch(r);
                            }
                        }
                    }
                }
                Step::Permute { regs, perm, .. } => {
                    // A two-register permutation is always a swap; wider
                    // ones need the general permi encoding.
                    if let [a, b] = regs[..] {
                        self.emit(Instr::Swap { a, b });
                    } else {
                        self.emit(Instr::Permi {
                            regs: regs.clone(),
                            perm: perm.clone(),
                        });
                    }
                }
                Step::Move { from, dst: d } => match from {
                    TempLoc::Reg(r) => self.store_to_dest(*r, d, plan_temp_base),
                    TempLoc::Frame(k) => {
                        let slot = self.temp_offset(plan_temp_base + k);
                        match d {
                            Dest::Reg(r) | Dest::Temp(TempLoc::Reg(r)) => {
                                self.emit(Instr::StackLoad {
                                    dst: *r,
                                    slot,
                                    class: SlotClass::Temp,
                                });
                            }
                            other => {
                                let s = self.alloc_scratch().expect("scratch invariant");
                                self.emit(Instr::StackLoad {
                                    dst: s,
                                    slot,
                                    class: SlotClass::Temp,
                                });
                                self.store_to_dest(s, other, plan_temp_base);
                                self.release_scratch(s);
                            }
                        }
                    }
                },
            }
        }

        let target = match node.callee {
            ACallee::Direct(f) | ACallee::KnownClosure(f) => CallTarget::Func(f),
            ACallee::Computed => CallTarget::ClosureCp,
        };
        if node.tail {
            // Restores (e.g. ret) sit between the shuffle and the jump.
            self.emit_restores(node.restore);
            // Stack arguments were built in the outgoing area; copy
            // them down to the parameter slots of the reused frame now
            // that nothing else will be read from it.
            let n_stack = node
                .plan
                .steps
                .iter()
                .filter_map(|st| match st {
                    Step::Eval {
                        dst: Dest::Out(j), ..
                    }
                    | Step::Move {
                        dst: Dest::Out(j), ..
                    } => Some(j + 1),
                    _ => None,
                })
                .max()
                .unwrap_or(0);
            for i in 0..n_stack {
                let s = self.alloc_scratch().expect("scratch invariant");
                let idx = self.emit(Instr::StackLoad {
                    dst: s,
                    slot: u32::MAX,
                    class: SlotClass::OutArg,
                });
                self.patches.push((idx, PatchKind::OutSlot(i)));
                self.emit(Instr::StackStore {
                    slot: i,
                    src: s,
                    class: SlotClass::OutArg,
                });
                self.release_scratch(s);
            }
            self.emit(Instr::TailCall { target });
            // Control never returns; dst is left untouched.
        } else {
            let idx = self.emit(Instr::Call {
                target,
                frame_advance: u32::MAX,
            });
            self.patches.push((idx, PatchKind::FrameAdvance));
            self.emit_restores(node.restore);
            if dst != RV {
                self.emit(Instr::Mov { dst, src: RV });
            }
        }
        self.temp_sp = plan_temp_base;
    }

    /// Compiles `e`, leaving its value in `dst`.
    fn expr(&mut self, e: &AExpr, dst: Reg) {
        match e {
            AExpr::Const(c) => match imm_of(c) {
                Some(imm) => {
                    self.emit(Instr::LoadImm { dst, imm });
                }
                None => {
                    let idx = self.const_idx(c);
                    self.emit(Instr::LoadConst { dst, idx });
                }
            },
            AExpr::ReadHome(Home::Reg(r)) => {
                if *r != dst {
                    self.emit(Instr::Mov { dst, src: *r });
                }
            }
            AExpr::ReadHome(Home::Slot(s)) => {
                let slot = self.slot_offset(*s);
                self.emit(Instr::StackLoad {
                    dst,
                    slot,
                    class: Self::slot_class(*s),
                });
            }
            AExpr::FreeRef(i) => {
                self.emit(Instr::LoadFree { dst, index: *i });
            }
            AExpr::Global(g) => {
                self.emit(Instr::LoadGlobal { dst, index: *g });
            }
            AExpr::GlobalSet { index, value } => {
                let (r, scratch) = self.value_to_rv(value);
                self.emit(Instr::StoreGlobal {
                    index: *index,
                    src: r,
                });
                if scratch {
                    self.release_scratch(r);
                }
                self.emit(Instr::LoadImm {
                    dst,
                    imm: Imm::Void,
                });
            }
            AExpr::If {
                cond,
                then,
                els,
                predict,
            } => {
                let (c, scratch) = self.value_to_rv(cond);
                let taken_label = self.new_label();
                let end_label = self.new_label();
                // §6 static prediction is realized as branch layout:
                // when the else path is predicted likely, swap the
                // branches so it falls through.
                let swap = *predict == Some(false);
                let likely = predict.map(|_| true);
                let idx = if swap {
                    self.emit(Instr::BranchTrue {
                        src: c,
                        target: u32::MAX,
                        likely,
                    })
                } else {
                    self.emit(Instr::BranchFalse {
                        src: c,
                        target: u32::MAX,
                        likely,
                    })
                };
                self.patches.push((idx, PatchKind::Label(taken_label)));
                if scratch {
                    self.release_scratch(c);
                }
                let (inline, out_of_line): (&AExpr, &AExpr) =
                    if swap { (els, then) } else { (then, els) };
                self.expr(inline, dst);
                let jidx = self.emit(Instr::Jump { target: u32::MAX });
                self.patches.push((jidx, PatchKind::Label(end_label)));
                self.place_label(taken_label);
                self.expr(out_of_line, dst);
                self.place_label(end_label);
            }
            AExpr::Seq(es) => {
                let (last, init) = es.split_last().expect("non-empty seq");
                for e in init {
                    self.expr(e, RV); // effect position
                }
                self.expr(last, dst);
            }
            AExpr::Bind { home, rhs, body } => {
                match home {
                    Home::Reg(r) => self.expr(rhs, *r),
                    Home::Slot(s) => {
                        let (r, scratch) = self.value_to_rv(rhs);
                        let slot = self.slot_offset(*s);
                        self.emit(Instr::StackStore {
                            slot,
                            src: r,
                            class: Self::slot_class(*s),
                        });
                        if scratch {
                            self.release_scratch(r);
                        }
                    }
                }
                self.expr(body, dst);
            }
            AExpr::PrimApp(p, args) => self.primapp(*p, args, dst),
            AExpr::Save {
                regs,
                exit_restore,
                body,
                ..
            } => {
                self.emit_saves(*regs);
                if exit_restore.is_empty() {
                    self.expr(body, dst);
                } else {
                    // The exit restores write registers after the body
                    // value exists; route the value through rv (never
                    // restored) so a restore cannot clobber it, then
                    // move it to its destination last.
                    self.expr(body, RV);
                    self.emit_restores(*exit_restore);
                    if dst != RV {
                        self.emit(Instr::Mov { dst, src: RV });
                    }
                }
            }
            AExpr::RestoreRegs(regs) => {
                self.emit_restores(*regs);
                self.emit(Instr::LoadImm {
                    dst,
                    imm: Imm::Void,
                });
            }
            AExpr::RegMove { src, dst: d } => {
                self.emit(Instr::Mov { dst: *d, src: *src });
                self.emit(Instr::LoadImm {
                    dst,
                    imm: Imm::Void,
                });
            }
            AExpr::Call(node) => self.call(node, dst),
            AExpr::MakeClosure { func, free } => {
                let clo = self.alloc_scratch().unwrap_or(dst);
                self.emit(Instr::AllocClosure {
                    dst: clo,
                    func: *func,
                    n_free: free.len() as u32,
                });
                for (i, f) in free.iter().enumerate() {
                    let (r, scratch) = if Self::is_leaf(f) {
                        self.operand(f)
                    } else {
                        self.expr(f, RV);
                        (RV, false)
                    };
                    self.emit(Instr::ClosureSlotSet {
                        clo,
                        index: i as u32,
                        src: r,
                    });
                    if scratch {
                        self.release_scratch(r);
                    }
                }
                if clo != dst {
                    self.emit(Instr::Mov { dst, src: clo });
                    self.release_scratch(clo);
                }
            }
            AExpr::ClosureSet { clo, index, value } => {
                // Closure conversion emits leaves here; fall back to a
                // frame temporary if that ever changes.
                let temp_base = self.temp_sp;
                let (c, cs) = if Self::is_leaf(clo) {
                    self.operand(clo)
                } else {
                    let t = self.temp_push();
                    self.expr(clo, RV);
                    let slot = self.temp_offset(t);
                    self.emit(Instr::StackStore {
                        slot,
                        src: RV,
                        class: SlotClass::Temp,
                    });
                    let s = self.alloc_scratch().expect("scratch invariant");
                    self.emit(Instr::StackLoad {
                        dst: s,
                        slot,
                        class: SlotClass::Temp,
                    });
                    (s, true)
                };
                let (v, vs) = if Self::is_leaf(value) {
                    self.operand(value)
                } else {
                    self.expr(value, RV);
                    (RV, false)
                };
                self.emit(Instr::ClosureSlotSet {
                    clo: c,
                    index: *index,
                    src: v,
                });
                if vs {
                    self.release_scratch(v);
                }
                if cs {
                    self.release_scratch(c);
                }
                self.temp_sp = temp_base;
                self.emit(Instr::LoadImm {
                    dst,
                    imm: Imm::Void,
                });
            }
        }
    }

    fn finish(mut self) -> VmFunc {
        self.emit(Instr::Return);
        let frame_size = self.layout.size();
        for (idx, patch) in &self.patches {
            match patch {
                PatchKind::OutSlot(j) => match &mut self.code[*idx] {
                    Instr::StackStore { slot, .. } | Instr::StackLoad { slot, .. } => {
                        *slot = frame_size + j
                    }
                    _ => unreachable!("out-slot patch on non-stack instruction"),
                },
                PatchKind::FrameAdvance => {
                    if let Instr::Call { frame_advance, .. } = &mut self.code[*idx] {
                        *frame_advance = frame_size;
                    }
                }
                PatchKind::Label(l) => {
                    let target = self.labels[*l as usize].expect("label placed");
                    match &mut self.code[*idx] {
                        Instr::Jump { target: t }
                        | Instr::BranchFalse { target: t, .. }
                        | Instr::BranchTrue { target: t, .. } => *t = target,
                        _ => unreachable!("label patch on non-branch"),
                    }
                }
            }
        }
        VmFunc {
            id: self.func.id,
            name: self.func.name.clone(),
            code: self.code,
            frame_size,
            n_incoming: self.layout.n_incoming,
            syntactic_leaf: self.func.syntactic_leaf,
            call_inevitable: self.func.call_inevitable,
        }
    }
}

fn compile_func(func: &AllocatedFunc, constants: &mut Vec<Const>) -> VmFunc {
    let mut e = Emitter {
        func,
        code: Vec::new(),
        layout: func.frame.clone(),
        temp_sp: 0,
        scratch_free: (0..NUM_SCRATCH).map(scratch_reg).collect(),
        patches: Vec::new(),
        labels: Vec::new(),
        constants,
    };
    e.expr(&func.body, RV);
    e.finish()
}

/// Compiles an allocated program to VM code, appending a bootstrap
/// entry function that calls `main` and halts.
///
/// # Examples
///
/// ```
/// use lesgs_codegen::compile_program;
/// use lesgs_core::{allocate_program, AllocConfig};
/// use lesgs_frontend::pipeline;
/// use lesgs_ir::lower_program;
///
/// let ir = lower_program(&pipeline::front_to_closed("(+ 40 2)").unwrap());
/// let allocated = allocate_program(&ir, &AllocConfig::paper_default());
/// let vm = compile_program(&allocated);
/// assert!(vm.code_size() > 0);
/// ```
pub fn compile_program(program: &AllocatedProgram) -> VmProgram {
    compile_program_opts(program, true)
}

/// Compiles with explicit control over the peephole optimizer (used by
/// the ablation harness).
pub fn compile_program_opts(program: &AllocatedProgram, run_peephole: bool) -> VmProgram {
    compile_program_observed(program, run_peephole, &mut lesgs_metrics::Registry::new())
}

/// Like [`compile_program_opts`], timing emission and peephole
/// optimization per function (`pass.emit`, `pass.peephole`) and
/// recording the size counters `codegen.funcs`,
/// `codegen.instrs_emitted` (before peephole), `codegen.instrs`
/// (final), and `codegen.instrs_removed` into `reg`.
pub fn compile_program_observed(
    program: &AllocatedProgram,
    run_peephole: bool,
    reg: &mut lesgs_metrics::Registry,
) -> VmProgram {
    let mut constants = Vec::new();
    let mut funcs: Vec<VmFunc> = program
        .funcs
        .iter()
        .map(|f| {
            let mut vf = reg.time("pass.emit", || compile_func(f, &mut constants));
            reg.inc("codegen.instrs_emitted", vf.code.len() as u64);
            if run_peephole {
                let before = vf.code.len() as u64;
                reg.time("pass.peephole", || peephole::peephole_to_fixpoint(&mut vf));
                reg.inc(
                    "codegen.instrs_removed",
                    before.saturating_sub(vf.code.len() as u64),
                );
            }
            reg.inc("codegen.instrs", vf.code.len() as u64);
            vf
        })
        .collect();
    reg.inc("codegen.funcs", funcs.len() as u64);
    let entry_id = FuncId(funcs.len() as u32);
    funcs.push(VmFunc {
        id: entry_id,
        name: "%entry".to_owned(),
        code: vec![
            Instr::Call {
                target: CallTarget::Func(program.main),
                frame_advance: 0,
            },
            Instr::Halt,
        ],
        frame_size: 0,
        n_incoming: 0,
        syntactic_leaf: false,
        call_inevitable: true,
    });
    VmProgram {
        funcs,
        entry: entry_id,
        constants,
        n_globals: program.n_globals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lesgs_core::{allocate_program, AllocConfig};
    use lesgs_frontend::pipeline;
    use lesgs_ir::lower_program;
    use lesgs_vm::{CostModel, Machine};

    fn run(src: &str, cfg: &AllocConfig) -> lesgs_vm::VmOutcome {
        let ir = lower_program(&pipeline::front_to_closed(src).unwrap());
        let allocated = allocate_program(&ir, cfg);
        let vm = compile_program(&allocated);
        Machine::new(&vm, CostModel::alpha_like())
            .with_poison(true)
            .run()
            .unwrap_or_else(|e| panic!("{e}\n{}", vm.disassemble()))
    }

    fn value(src: &str) -> String {
        run(src, &AllocConfig::paper_default()).value
    }

    #[test]
    fn constants_and_arithmetic() {
        assert_eq!(value("42"), "42");
        assert_eq!(value("(+ 1 2)"), "3");
        assert_eq!(value("(* (+ 1 2) (- 10 4))"), "18");
    }

    #[test]
    fn direct_calls() {
        assert_eq!(value("(define (f x) (+ x 1)) (f 41)"), "42");
        assert_eq!(value("(define (add a b) (+ a b)) (add 40 2)"), "42");
    }

    #[test]
    fn recursion() {
        assert_eq!(
            value("(define (fact n) (if (zero? n) 1 (* n (fact (- n 1))))) (fact 10)"),
            "3628800"
        );
        assert_eq!(
            value("(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) (fib 15)"),
            "610"
        );
    }

    #[test]
    fn tail_loops() {
        assert_eq!(
            value("(let loop ((i 0) (acc 0)) (if (= i 100) acc (loop (+ i 1) (+ acc i))))"),
            "4950"
        );
    }

    #[test]
    fn closures() {
        assert_eq!(
            value("(define (adder n) (lambda (x) (+ x n))) ((adder 3) 4)"),
            "7"
        );
        assert_eq!(
            value(
                "(define (compose f g) (lambda (x) (f (g x))))
                   ((compose (lambda (a) (* a 2)) (lambda (b) (+ b 1))) 5)"
            ),
            "12"
        );
    }

    #[test]
    fn data_structures() {
        assert_eq!(value("(car (cons 1 2))"), "1");
        assert_eq!(value("(length (list 1 2 3 4))"), "4");
        assert_eq!(value("(append '(1 2) '(3))"), "(1 2 3)");
        assert_eq!(
            value("(let ((v (make-vector 3 0))) (vector-set! v 1 7) (vector-ref v 1))"),
            "7"
        );
    }

    #[test]
    fn output() {
        let out = run(
            "(display 1) (display 'x) (newline) 0",
            &AllocConfig::paper_default(),
        );
        assert_eq!(out.output, "1x\n");
    }

    #[test]
    fn all_configs_agree_on_fib() {
        use lesgs_core::config::{RestoreStrategy, SaveStrategy};
        let src = "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) (fib 12)";
        for save in [SaveStrategy::Lazy, SaveStrategy::Early, SaveStrategy::Late] {
            for restore in [RestoreStrategy::Eager, RestoreStrategy::Lazy] {
                for c in [0, 1, 3, 6] {
                    let cfg = AllocConfig {
                        save,
                        restore,
                        machine: lesgs_ir::MachineConfig::with_arg_regs(c),
                        ..AllocConfig::paper_default()
                    };
                    let out = run(src, &cfg);
                    assert_eq!(out.value, "144", "save={save:?} restore={restore:?} c={c}");
                }
            }
        }
    }

    #[test]
    fn swap_shuffle_executes() {
        assert_eq!(
            value("(define (f a b) (if (zero? a) b (f (- a 1) (+ b a)))) (f 3 0)"),
            "6"
        );
        // True swap.
        assert_eq!(
            value(
                "(define (g a b n) (if (zero? n) (- a b) (g b a (- n 1))))
                   (g 10 4 3)"
            ),
            "-6"
        );
    }

    #[test]
    fn stack_args_beyond_register_count() {
        let cfg = AllocConfig {
            machine: lesgs_ir::MachineConfig::with_arg_regs(2),
            ..AllocConfig::paper_default()
        };
        let out = run("(define (f a b c d) (+ (+ a b) (+ c d))) (f 1 2 3 4)", &cfg);
        assert_eq!(out.value, "10");
        // c and d traveled on the stack.
        assert!(out.stats.stack_refs() > 0);
    }

    #[test]
    fn baseline_uses_many_more_stack_refs() {
        let src = "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) (fib 12)";
        let base = run(src, &AllocConfig::baseline());
        let six = run(src, &AllocConfig::paper_default());
        // fib's partial sums must cross calls whatever the register
        // count, so the reduction is smaller than leaf-heavy programs.
        assert!(
            base.stats.stack_refs() as f64 > 1.5 * six.stats.stack_refs() as f64,
            "baseline {} vs six-reg {}",
            base.stats.stack_refs(),
            six.stats.stack_refs()
        );
        assert!(base.stats.cycles > six.stats.cycles);
    }
}
