//! The core abstract syntax shared by all frontend passes.
//!
//! [`Expr`] is generic over the variable representation `V`: the
//! desugarer produces `Expr<String>` (source names) and the renamer
//! produces `Expr<VarId>` (unique ids). Primitive applications only
//! appear after renaming.

use std::fmt;

use lesgs_sexpr::Datum;

use crate::prim::Prim;

/// A self-evaluating constant.
#[derive(Debug, Clone, PartialEq)]
pub enum Const {
    /// An integer.
    Fixnum(i64),
    /// `#t` / `#f`.
    Bool(bool),
    /// A character.
    Char(char),
    /// A string literal.
    Str(String),
    /// The empty list `'()`.
    Nil,
    /// The unspecified value.
    Void,
    /// A quoted symbol.
    Symbol(String),
    /// Quoted structured data (lists and vectors), built once at
    /// program start and shared.
    Datum(Datum),
}

impl Const {
    /// The boolean interpretation: everything except `#f` is true.
    pub fn is_truthy(&self) -> bool {
        !matches!(self, Const::Bool(false))
    }
}

impl fmt::Display for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Const::Fixnum(n) => write!(f, "{n}"),
            Const::Bool(true) => write!(f, "#t"),
            Const::Bool(false) => write!(f, "#f"),
            Const::Char(c) => write!(f, "{}", Datum::Char(*c)),
            Const::Str(s) => write!(f, "{}", Datum::Str(s.clone())),
            Const::Nil => write!(f, "'()"),
            Const::Void => write!(f, "#<void>"),
            Const::Symbol(s) => write!(f, "'{s}"),
            Const::Datum(d) => write!(f, "'{d}"),
        }
    }
}

/// A lambda abstraction with fixed arity.
#[derive(Debug, Clone, PartialEq)]
pub struct Lambda<V> {
    /// Formal parameters, left to right.
    pub params: Vec<V>,
    /// The body (a single expression after desugaring).
    pub body: Box<Expr<V>>,
    /// Source name when the lambda came from a `define` or a named
    /// binding; used for diagnostics and activation statistics.
    pub name: Option<String>,
}

/// A core-language expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr<V> {
    /// A constant.
    Const(Const),
    /// A variable reference.
    Var(V),
    /// A top-level global location (value defines live here, not in
    /// closures — mirroring Chez's global cells).
    Global(u32),
    /// An assignment; eliminated by assignment conversion.
    Set(V, Box<Expr<V>>),
    /// Assignment to a global location (initialization and `set!` of
    /// top-level defines).
    GlobalSet(u32, Box<Expr<V>>),
    /// `(if c t e)`.
    If(Box<Expr<V>>, Box<Expr<V>>, Box<Expr<V>>),
    /// `(begin e ...)`, at least one subexpression.
    Seq(Vec<Expr<V>>),
    /// An anonymous procedure.
    Lambda(Lambda<V>),
    /// Parallel `let`.
    Let(Vec<(V, Expr<V>)>, Box<Expr<V>>),
    /// `letrec` restricted to lambda right-hand sides, enabling direct
    /// calls to local recursive procedures.
    Letrec(Vec<(V, Lambda<V>)>, Box<Expr<V>>),
    /// A procedure call.
    App(Box<Expr<V>>, Vec<Expr<V>>),
    /// A fully-resolved primitive application (post-rename only).
    PrimApp(Prim, Vec<Expr<V>>),
}

impl<V> Expr<V> {
    /// Wraps `exprs` in a `Seq`, collapsing the single-element case.
    ///
    /// # Panics
    ///
    /// Panics if `exprs` is empty.
    pub fn seq(mut exprs: Vec<Expr<V>>) -> Expr<V> {
        assert!(!exprs.is_empty(), "Seq requires at least one expression");
        if exprs.len() == 1 {
            exprs.pop().expect("one element")
        } else {
            Expr::Seq(exprs)
        }
    }

    /// True if the expression is a constant `#f`.
    pub fn is_false(&self) -> bool {
        matches!(self, Expr::Const(Const::Bool(false)))
    }

    /// Counts AST nodes (used in tests and statistics).
    pub fn size(&self) -> usize {
        let children: usize = match self {
            Expr::Const(_) | Expr::Var(_) | Expr::Global(_) => 0,
            Expr::Set(_, e) | Expr::GlobalSet(_, e) => e.size(),
            Expr::If(c, t, e) => c.size() + t.size() + e.size(),
            Expr::Seq(es) => es.iter().map(Expr::size).sum(),
            Expr::Lambda(l) => l.body.size(),
            Expr::Let(bs, b) => bs.iter().map(|(_, e)| e.size()).sum::<usize>() + b.size(),
            Expr::Letrec(bs, b) => bs.iter().map(|(_, l)| l.body.size()).sum::<usize>() + b.size(),
            Expr::App(f, args) => f.size() + args.iter().map(Expr::size).sum::<usize>(),
            Expr::PrimApp(_, args) => args.iter().map(Expr::size).sum(),
        };
        children + 1
    }
}

fn fmt_lambda<V: fmt::Display>(l: &Lambda<V>, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "(lambda (")?;
    for (i, p) in l.params.iter().enumerate() {
        if i > 0 {
            write!(f, " ")?;
        }
        write!(f, "{p}")?;
    }
    write!(f, ") {})", l.body)
}

impl<V: fmt::Display> fmt::Display for Expr<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(c) => write!(f, "{c}"),
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Global(g) => write!(f, "(global {g})"),
            Expr::Set(v, e) => write!(f, "(set! {v} {e})"),
            Expr::GlobalSet(g, e) => write!(f, "(global-set! {g} {e})"),
            Expr::If(c, t, e) => write!(f, "(if {c} {t} {e})"),
            Expr::Seq(es) => {
                write!(f, "(begin")?;
                for e in es {
                    write!(f, " {e}")?;
                }
                write!(f, ")")
            }
            Expr::Lambda(l) => fmt_lambda(l, f),
            Expr::Let(bs, b) => {
                write!(f, "(let (")?;
                for (i, (v, e)) in bs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "({v} {e})")?;
                }
                write!(f, ") {b})")
            }
            Expr::Letrec(bs, b) => {
                write!(f, "(letrec (")?;
                for (i, (v, l)) in bs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "({v} ")?;
                    fmt_lambda(l, f)?;
                    write!(f, ")")?;
                }
                write!(f, ") {b})")
            }
            Expr::App(head, args) => {
                write!(f, "({head}")?;
                for a in args {
                    write!(f, " {a}")?;
                }
                write!(f, ")")
            }
            Expr::PrimApp(p, args) => {
                write!(f, "(%{p}")?;
                for a in args {
                    write!(f, " {a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(name: &str) -> Expr<String> {
        Expr::Var(name.to_owned())
    }

    #[test]
    fn seq_collapses_singletons() {
        let e = Expr::<String>::seq(vec![var("x")]);
        assert_eq!(e, var("x"));
        let e = Expr::<String>::seq(vec![var("x"), var("y")]);
        assert!(matches!(e, Expr::Seq(_)));
    }

    #[test]
    #[should_panic(expected = "at least one expression")]
    fn seq_rejects_empty() {
        let _ = Expr::<String>::seq(vec![]);
    }

    #[test]
    fn display_forms() {
        let e: Expr<String> = Expr::If(
            Box::new(var("a")),
            Box::new(Expr::Const(Const::Fixnum(1))),
            Box::new(Expr::PrimApp(Prim::Add, vec![var("b"), var("c")])),
        );
        assert_eq!(e.to_string(), "(if a 1 (%+ b c))");
    }

    #[test]
    fn size_counts_nodes() {
        let e: Expr<String> = Expr::App(
            Box::new(var("f")),
            vec![var("x"), Expr::Const(Const::Fixnum(1))],
        );
        assert_eq!(e.size(), 4);
    }

    #[test]
    fn const_truthiness() {
        assert!(Const::Fixnum(0).is_truthy());
        assert!(Const::Bool(true).is_truthy());
        assert!(!Const::Bool(false).is_truthy());
        assert!(Const::Nil.is_truthy());
    }
}
