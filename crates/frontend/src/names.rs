//! Unique variable identifiers and the name interner.

use std::fmt;

/// A unique identifier for a bound variable, assigned during alpha
/// renaming.
///
/// Every binding site in the program gets a fresh `VarId`; the original
/// source name is kept in an [`Interner`] for diagnostics and printing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

impl VarId {
    /// Index into per-program side tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Maps [`VarId`]s back to their source names.
///
/// # Examples
///
/// ```
/// use lesgs_frontend::Interner;
///
/// let mut names = Interner::new();
/// let x = names.fresh("x");
/// let x2 = names.fresh("x");
/// assert_ne!(x, x2);
/// assert_eq!(names.name(x), "x");
/// assert_eq!(names.pretty(x2), "x.1");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Interner {
    names: Vec<String>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Allocates a fresh [`VarId`] remembering `name` as its source name.
    pub fn fresh(&mut self, name: impl Into<String>) -> VarId {
        let id = VarId(u32::try_from(self.names.len()).expect("too many variables"));
        self.names.push(name.into());
        id
    }

    /// The source name of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this interner.
    pub fn name(&self, id: VarId) -> &str {
        &self.names[id.index()]
    }

    /// A unique, human-readable rendering: the source name, suffixed
    /// with the id when another variable with the same name exists
    /// earlier in the table.
    pub fn pretty(&self, id: VarId) -> String {
        let name = self.name(id);
        let first = self.names.iter().position(|n| n == name);
        if first == Some(id.index()) {
            name.to_owned()
        } else {
            format!("{name}.{}", id.0)
        }
    }

    /// Number of variables allocated so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no variables have been allocated.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_ids_are_unique() {
        let mut i = Interner::new();
        let a = i.fresh("a");
        let b = i.fresh("a");
        let c = i.fresh("c");
        assert_ne!(a, b);
        assert_eq!(i.len(), 3);
        assert_eq!(i.name(a), "a");
        assert_eq!(i.name(b), "a");
        assert_eq!(i.name(c), "c");
    }

    #[test]
    fn pretty_disambiguates() {
        let mut i = Interner::new();
        let a = i.fresh("x");
        let b = i.fresh("x");
        assert_eq!(i.pretty(a), "x");
        assert_eq!(i.pretty(b), "x.1");
    }

    #[test]
    fn display() {
        assert_eq!(VarId(7).to_string(), "v7");
    }
}
