//! Expansion of derived forms into the core language.
//!
//! Handles `quote`, `if`, `begin`, `lambda`, `let` (incl. named),
//! `let*`, `letrec`, `cond`, `and`, `or`, `when`, `unless`, `do`,
//! `set!`, internal `define`s, and the variadic constructors `list` and
//! `vector`.

use std::fmt;

use lesgs_sexpr::Datum;

use crate::ast::{Const, Expr, Lambda};

/// An error found while expanding a derived form.
#[derive(Debug, Clone, PartialEq)]
pub struct DesugarError {
    /// Human-readable description including the offending form.
    pub message: String,
}

impl DesugarError {
    fn new(message: impl Into<String>) -> DesugarError {
        DesugarError {
            message: message.into(),
        }
    }
}

impl fmt::Display for DesugarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "desugar error: {}", self.message)
    }
}

impl std::error::Error for DesugarError {}

type Result<T> = std::result::Result<T, DesugarError>;

/// A surface expression with source names.
pub type SurfaceExpr = Expr<String>;

fn err<T>(msg: impl Into<String>) -> Result<T> {
    Err(DesugarError::new(msg))
}

fn expect_symbol(d: &Datum, what: &str) -> Result<String> {
    d.as_symbol()
        .map(str::to_owned)
        .ok_or_else(|| DesugarError::new(format!("expected {what}, found `{d}`")))
}

fn quote_to_expr(d: &Datum) -> SurfaceExpr {
    match d {
        Datum::Fixnum(n) => Expr::Const(Const::Fixnum(*n)),
        Datum::Bool(b) => Expr::Const(Const::Bool(*b)),
        Datum::Char(c) => Expr::Const(Const::Char(*c)),
        Datum::Str(s) => Expr::Const(Const::Str(s.clone())),
        Datum::Symbol(s) => Expr::Const(Const::Symbol(s.clone())),
        Datum::List(items) if items.is_empty() => Expr::Const(Const::Nil),
        other => Expr::Const(Const::Datum(other.clone())),
    }
}

/// Splits a `define` form into `(name, expression)`, expanding the
/// `(define (f args...) body...)` procedure shorthand.
pub fn split_define(form: &[Datum]) -> Result<(String, SurfaceExpr)> {
    match form {
        [_, Datum::Symbol(name), rhs] => Ok((name.clone(), expr(rhs)?)),
        [_, Datum::Symbol(name)] => Ok((name.clone(), Expr::Const(Const::Void))),
        [_, Datum::List(header), rest @ ..] if !rest.is_empty() => {
            let [name_d, params @ ..] = header.as_slice() else {
                return err("malformed define header");
            };
            let name = expect_symbol(name_d, "procedure name")?;
            let params = params
                .iter()
                .map(|p| expect_symbol(p, "parameter name"))
                .collect::<Result<Vec<_>>>()?;
            let lam = Lambda {
                params,
                body: Box::new(body(rest)?),
                name: Some(name.clone()),
            };
            Ok((name, Expr::Lambda(lam)))
        }
        [_, Datum::Improper(_, _), ..] => err("rest (variadic) parameters are not supported"),
        _ => err(format!("malformed define: {}", Datum::List(form.to_vec()))),
    }
}

/// Expands the body of a `lambda`, `let`, …: leading internal
/// `define`s become a `letrec` (they must all define procedures).
pub fn body(forms: &[Datum]) -> Result<SurfaceExpr> {
    if forms.is_empty() {
        return err("empty body");
    }
    let n_defs = forms.iter().take_while(|f| f.is_form("define")).count();
    let (defs, exprs) = forms.split_at(n_defs);
    if exprs.iter().any(|f| f.is_form("define")) {
        return err("internal defines must precede body expressions");
    }
    let rest = Expr::seq(exprs.iter().map(expr).collect::<Result<Vec<_>>>()?);
    if defs.is_empty() {
        return Ok(rest);
    }
    let mut bindings = Vec::with_capacity(defs.len());
    for d in defs {
        let items = d.as_slice().expect("define form is a list");
        let (name, rhs) = split_define(items)?;
        match rhs {
            Expr::Lambda(l) => bindings.push((name, l)),
            _ => {
                return err(format!(
                    "internal define of `{name}` must define a procedure"
                ))
            }
        }
    }
    let names: Vec<String> = bindings.iter().map(|(n, _)| n.clone()).collect();
    if forms.iter().any(|d| datum_assigns_any(d, &names)) {
        return err("set! of an internally defined procedure is not supported");
    }
    Ok(Expr::Letrec(bindings, Box::new(rest)))
}

fn binding_pairs(d: &Datum) -> Result<Vec<(String, SurfaceExpr)>> {
    let items = d
        .as_slice()
        .ok_or_else(|| DesugarError::new(format!("expected bindings, found `{d}`")))?;
    items
        .iter()
        .map(|b| match b.as_slice() {
            Some([name, init]) => Ok((expect_symbol(name, "binding name")?, expr(init)?)),
            _ => err(format!("malformed binding `{b}`")),
        })
        .collect()
}

fn lambda_form(rest: &[Datum]) -> Result<SurfaceExpr> {
    let [params_d, body_forms @ ..] = rest else {
        return err("malformed lambda");
    };
    let params = match params_d {
        Datum::List(ps) => ps
            .iter()
            .map(|p| expect_symbol(p, "parameter name"))
            .collect::<Result<Vec<_>>>()?,
        Datum::Symbol(_) | Datum::Improper(..) => {
            return err("rest (variadic) parameters are not supported")
        }
        other => return err(format!("malformed parameter list `{other}`")),
    };
    Ok(Expr::Lambda(Lambda {
        params,
        body: Box::new(body(body_forms)?),
        name: None,
    }))
}

fn let_form(rest: &[Datum]) -> Result<SurfaceExpr> {
    match rest {
        // Named let: (let loop ((v init) ...) body ...)
        [Datum::Symbol(name), bindings_d, body_forms @ ..] => {
            let bindings = binding_pairs(bindings_d)?;
            let (params, inits): (Vec<_>, Vec<_>) = bindings.into_iter().unzip();
            let lam = Lambda {
                params,
                body: Box::new(body(body_forms)?),
                name: Some(name.clone()),
            };
            Ok(Expr::Letrec(
                vec![(name.clone(), lam)],
                Box::new(Expr::App(Box::new(Expr::Var(name.clone())), inits)),
            ))
        }
        [bindings_d, body_forms @ ..] if !body_forms.is_empty() => {
            let bindings = binding_pairs(bindings_d)?;
            Ok(Expr::Let(bindings, Box::new(body(body_forms)?)))
        }
        _ => err("malformed let"),
    }
}

fn let_star_form(rest: &[Datum]) -> Result<SurfaceExpr> {
    let [bindings_d, body_forms @ ..] = rest else {
        return err("malformed let*");
    };
    let bindings = binding_pairs(bindings_d)?;
    let mut result = body(body_forms)?;
    for (name, init) in bindings.into_iter().rev() {
        result = Expr::Let(vec![(name, init)], Box::new(result));
    }
    Ok(result)
}

/// Conservative datum-level scan: does `d` contain `(set! name ...)`
/// for any of `names`? Shadowing is ignored, so this may over-report,
/// which only costs the direct-call optimization, never correctness.
fn datum_assigns_any(d: &Datum, names: &[String]) -> bool {
    match d {
        Datum::List(items) => {
            if let [head, Datum::Symbol(target), ..] = items.as_slice() {
                if head.as_symbol() == Some("set!") && names.contains(target) {
                    return true;
                }
            }
            items.iter().any(|i| datum_assigns_any(i, names))
        }
        _ => false,
    }
}

fn letrec_form(rest: &[Datum]) -> Result<SurfaceExpr> {
    let [bindings_d, body_forms @ ..] = rest else {
        return err("malformed letrec");
    };
    let bindings = binding_pairs(bindings_d)?;
    let inner = body(body_forms)?;
    let names: Vec<String> = bindings.iter().map(|(n, _)| n.clone()).collect();
    let assigned = rest.iter().any(|d| datum_assigns_any(d, &names));
    let all_lambdas = !assigned && bindings.iter().all(|(_, e)| matches!(e, Expr::Lambda(_)));
    if all_lambdas {
        let bindings = bindings
            .into_iter()
            .map(|(name, e)| match e {
                Expr::Lambda(mut l) => {
                    l.name.get_or_insert_with(|| name.clone());
                    (name, l)
                }
                _ => unreachable!("checked all_lambdas"),
            })
            .collect();
        Ok(Expr::Letrec(bindings, Box::new(inner)))
    } else {
        // General letrec: bind all names to #f, then assign in order.
        // Assignment conversion will box the names.
        let names: Vec<String> = bindings.iter().map(|(n, _)| n.clone()).collect();
        let mut seq: Vec<SurfaceExpr> = bindings
            .into_iter()
            .map(|(n, e)| Expr::Set(n, Box::new(e)))
            .collect();
        seq.push(inner);
        Ok(Expr::Let(
            names
                .into_iter()
                .map(|n| (n, Expr::Const(Const::Bool(false))))
                .collect(),
            Box::new(Expr::seq(seq)),
        ))
    }
}

fn cond_form(rest: &[Datum]) -> Result<SurfaceExpr> {
    let mut result = Expr::Const(Const::Void);
    for clause in rest.iter().rev() {
        let Some(items) = clause.as_slice() else {
            return err(format!("malformed cond clause `{clause}`"));
        };
        match items {
            [] => return err("empty cond clause"),
            [Datum::Symbol(s), actions @ ..] if s == "else" => {
                if actions.is_empty() {
                    return err("empty else clause");
                }
                result = Expr::seq(actions.iter().map(expr).collect::<Result<Vec<_>>>()?);
            }
            [test] => {
                // (cond (e) rest...) => (or e rest...)
                result = or2(expr(test)?, result);
            }
            [test, actions @ ..] => {
                result = Expr::If(
                    Box::new(expr(test)?),
                    Box::new(Expr::seq(
                        actions.iter().map(expr).collect::<Result<Vec<_>>>()?,
                    )),
                    Box::new(result),
                );
            }
        }
    }
    Ok(result)
}

/// `(or a b)` modeled as `(let ((t a)) (if t t b))` per §2.1.2 of the
/// paper (short-circuit booleans are `if` expressions).
fn or2(a: SurfaceExpr, b: SurfaceExpr) -> SurfaceExpr {
    // Fresh-ish temporary; the renamer handles shadowing correctly, and
    // `%or` cannot be captured because it is not a legal source symbol
    // from user code perspective (we still rename it hygienically).
    let tmp = "%or-tmp".to_owned();
    Expr::Let(
        vec![(tmp.clone(), a)],
        Box::new(Expr::If(
            Box::new(Expr::Var(tmp.clone())),
            Box::new(Expr::Var(tmp)),
            Box::new(b),
        )),
    )
}

fn and_form(rest: &[Datum]) -> Result<SurfaceExpr> {
    match rest {
        [] => Ok(Expr::Const(Const::Bool(true))),
        [single] => expr(single),
        [first, more @ ..] => Ok(Expr::If(
            Box::new(expr(first)?),
            Box::new(and_form(more)?),
            Box::new(Expr::Const(Const::Bool(false))),
        )),
    }
}

fn or_form(rest: &[Datum]) -> Result<SurfaceExpr> {
    match rest {
        [] => Ok(Expr::Const(Const::Bool(false))),
        [single] => expr(single),
        [first, more @ ..] => Ok(or2(expr(first)?, or_form(more)?)),
    }
}

fn do_form(rest: &[Datum]) -> Result<SurfaceExpr> {
    let [specs_d, exit_d, commands @ ..] = rest else {
        return err("malformed do");
    };
    let Some(specs) = specs_d.as_slice() else {
        return err("malformed do bindings");
    };
    let mut params = Vec::new();
    let mut inits = Vec::new();
    let mut steps = Vec::new();
    for spec in specs {
        match spec.as_slice() {
            Some([name, init]) => {
                let name = expect_symbol(name, "do variable")?;
                inits.push(expr(init)?);
                steps.push(Expr::Var(name.clone()));
                params.push(name);
            }
            Some([name, init, step]) => {
                params.push(expect_symbol(name, "do variable")?);
                inits.push(expr(init)?);
                steps.push(expr(step)?);
            }
            _ => return err(format!("malformed do spec `{spec}`")),
        }
    }
    let Some([test, results @ ..]) = exit_d.as_slice() else {
        return err("malformed do exit clause");
    };
    let result = if results.is_empty() {
        Expr::Const(Const::Void)
    } else {
        Expr::seq(results.iter().map(expr).collect::<Result<Vec<_>>>()?)
    };
    let loop_name = "%do-loop".to_owned();
    let mut loop_body: Vec<SurfaceExpr> = commands.iter().map(expr).collect::<Result<Vec<_>>>()?;
    loop_body.push(Expr::App(Box::new(Expr::Var(loop_name.clone())), steps));
    let lam = Lambda {
        params,
        body: Box::new(Expr::If(
            Box::new(expr(test)?),
            Box::new(result),
            Box::new(Expr::seq(loop_body)),
        )),
        name: Some(loop_name.clone()),
    };
    Ok(Expr::Letrec(
        vec![(loop_name.clone(), lam)],
        Box::new(Expr::App(Box::new(Expr::Var(loop_name)), inits)),
    ))
}

fn list_form(rest: &[Datum]) -> Result<SurfaceExpr> {
    let mut result = Expr::Const(Const::Nil);
    for item in rest.iter().rev() {
        result = Expr::App(
            Box::new(Expr::Var("cons".to_owned())),
            vec![expr(item)?, result],
        );
    }
    Ok(result)
}

fn vector_form(rest: &[Datum]) -> Result<SurfaceExpr> {
    // (vector e1 ... en) =>
    // (let ((%v (make-vector n))) (vector-set! %v 0 e1) ... %v)
    let tmp = "%vec-tmp".to_owned();
    let n = rest.len() as i64;
    let mut seq = Vec::with_capacity(rest.len() + 1);
    for (i, item) in rest.iter().enumerate() {
        seq.push(Expr::App(
            Box::new(Expr::Var("vector-set!".to_owned())),
            vec![
                Expr::Var(tmp.clone()),
                Expr::Const(Const::Fixnum(i as i64)),
                expr(item)?,
            ],
        ));
    }
    seq.push(Expr::Var(tmp.clone()));
    Ok(Expr::Let(
        vec![(
            tmp,
            Expr::App(
                Box::new(Expr::Var("make-vector".to_owned())),
                vec![Expr::Const(Const::Fixnum(n))],
            ),
        )],
        Box::new(Expr::seq(seq)),
    ))
}

/// Desugars one expression datum into the core language.
///
/// # Errors
///
/// Returns a [`DesugarError`] for malformed special forms, unsupported
/// features (variadic lambdas, `quasiquote`, `call/cc`), and misplaced
/// `define`s.
///
/// # Examples
///
/// ```
/// use lesgs_frontend::desugar::expr;
/// use lesgs_sexpr::parse_one;
///
/// let e = expr(&parse_one("(when a b)").unwrap()).unwrap();
/// assert_eq!(e.to_string(), "(if a b #<void>)");
/// ```
pub fn expr(d: &Datum) -> Result<SurfaceExpr> {
    match d {
        Datum::Fixnum(n) => Ok(Expr::Const(Const::Fixnum(*n))),
        Datum::Bool(b) => Ok(Expr::Const(Const::Bool(*b))),
        Datum::Char(c) => Ok(Expr::Const(Const::Char(*c))),
        Datum::Str(s) => Ok(Expr::Const(Const::Str(s.clone()))),
        Datum::Symbol(s) => Ok(Expr::Var(s.clone())),
        Datum::Vector(_) => Ok(quote_to_expr(d)),
        Datum::Improper(..) => err(format!("unexpected dotted list `{d}`")),
        Datum::List(items) => {
            let [head, rest @ ..] = items.as_slice() else {
                return err("empty application `()`");
            };
            if let Some(sym) = head.as_symbol() {
                match sym {
                    "quote" => {
                        let [q] = rest else {
                            return err("malformed quote");
                        };
                        return Ok(quote_to_expr(q));
                    }
                    "if" => {
                        return match rest {
                            [c, t] => Ok(Expr::If(
                                Box::new(expr(c)?),
                                Box::new(expr(t)?),
                                Box::new(Expr::Const(Const::Void)),
                            )),
                            [c, t, e] => Ok(Expr::If(
                                Box::new(expr(c)?),
                                Box::new(expr(t)?),
                                Box::new(expr(e)?),
                            )),
                            _ => err("malformed if"),
                        };
                    }
                    "begin" => {
                        return if rest.is_empty() {
                            Ok(Expr::Const(Const::Void))
                        } else {
                            Ok(Expr::seq(
                                rest.iter().map(expr).collect::<Result<Vec<_>>>()?,
                            ))
                        };
                    }
                    "set!" => {
                        let [name, rhs] = rest else {
                            return err("malformed set!");
                        };
                        let name = expect_symbol(name, "set! target")?;
                        return Ok(Expr::Set(name, Box::new(expr(rhs)?)));
                    }
                    "lambda" => return lambda_form(rest),
                    "let" => return let_form(rest),
                    "let*" => return let_star_form(rest),
                    "letrec" | "letrec*" => return letrec_form(rest),
                    "cond" => return cond_form(rest),
                    "and" => return and_form(rest),
                    "or" => return or_form(rest),
                    "when" => {
                        let [test, actions @ ..] = rest else {
                            return err("malformed when");
                        };
                        if actions.is_empty() {
                            return err("malformed when");
                        }
                        return Ok(Expr::If(
                            Box::new(expr(test)?),
                            Box::new(Expr::seq(
                                actions.iter().map(expr).collect::<Result<Vec<_>>>()?,
                            )),
                            Box::new(Expr::Const(Const::Void)),
                        ));
                    }
                    "unless" => {
                        let [test, actions @ ..] = rest else {
                            return err("malformed unless");
                        };
                        if actions.is_empty() {
                            return err("malformed unless");
                        }
                        return Ok(Expr::If(
                            Box::new(expr(test)?),
                            Box::new(Expr::Const(Const::Void)),
                            Box::new(Expr::seq(
                                actions.iter().map(expr).collect::<Result<Vec<_>>>()?,
                            )),
                        ));
                    }
                    "do" => return do_form(rest),
                    "list" => return list_form(rest),
                    "vector" => return vector_form(rest),
                    "define" => {
                        return err("define is only allowed at top level or at the start of a body")
                    }
                    "quasiquote" | "unquote" => {
                        return err("quasiquote is not supported; use quote and cons")
                    }
                    "call/cc" | "call-with-current-continuation" => {
                        return err("first-class continuations are not supported")
                    }
                    "case" => return err("case is not supported; use cond"),
                    _ => {}
                }
            }
            // Ordinary application.
            let head = expr(head)?;
            let args = rest.iter().map(expr).collect::<Result<Vec<_>>>()?;
            Ok(Expr::App(Box::new(head), args))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lesgs_sexpr::parse_one;

    fn de(src: &str) -> String {
        expr(&parse_one(src).unwrap()).unwrap().to_string()
    }

    fn de_err(src: &str) -> DesugarError {
        expr(&parse_one(src).unwrap()).unwrap_err()
    }

    #[test]
    fn atoms_and_quotes() {
        assert_eq!(de("42"), "42");
        assert_eq!(de("#f"), "#f");
        assert_eq!(de("'sym"), "'sym");
        assert_eq!(de("'()"), "'()");
        assert_eq!(de("'(1 2)"), "'(1 2)");
        assert_eq!(de("\"s\""), "\"s\"");
    }

    #[test]
    fn if_fills_missing_else() {
        assert_eq!(de("(if a b)"), "(if a b #<void>)");
        assert_eq!(de("(if a b c)"), "(if a b c)");
    }

    #[test]
    fn and_or_expand_to_ifs() {
        assert_eq!(de("(and)"), "#t");
        assert_eq!(de("(or)"), "#f");
        assert_eq!(de("(and a b)"), "(if a b #f)");
        assert_eq!(de("(or a b)"), "(let ((%or-tmp a)) (if %or-tmp %or-tmp b))");
    }

    #[test]
    fn named_let_becomes_letrec() {
        let s = de("(let loop ((i 0)) (loop i))");
        assert!(s.starts_with("(letrec ((loop (lambda (i)"), "{s}");
        assert!(s.ends_with("(loop 0))"), "{s}");
    }

    #[test]
    fn let_star_nests() {
        assert_eq!(
            de("(let* ((a 1) (b a)) b)"),
            "(let ((a 1)) (let ((b a)) b))"
        );
    }

    #[test]
    fn letrec_value_rhs_uses_set() {
        let s = de("(letrec ((x 1) (f (lambda () x))) x)");
        assert!(s.starts_with("(let ((x #f) (f #f))"), "{s}");
        assert!(s.contains("(set! x 1)"), "{s}");
    }

    #[test]
    fn cond_chains() {
        assert_eq!(de("(cond (a 1) (else 2))"), "(if a 1 2)");
        assert_eq!(de("(cond (a 1) (b 2))"), "(if a 1 (if b 2 #<void>))");
        // Test-only clause goes through `or`.
        assert!(de("(cond (a) (else 2))").contains("%or-tmp"));
    }

    #[test]
    fn do_loops() {
        let s = de("(do ((i 0 (+ i 1))) ((= i 10) i) (f i))");
        assert!(s.contains("%do-loop"), "{s}");
        assert!(s.contains("(f i)"), "{s}");
    }

    #[test]
    fn do_without_step_keeps_variable() {
        // (v init) with no step re-binds the same value each iteration.
        let s = de("(do ((i 0 (+ i 1)) (k 5)) ((= i k) k))");
        assert!(s.contains("(%do-loop (+ i 1) k)"), "{s}");
    }

    #[test]
    fn do_without_result_yields_void() {
        let s = de("(do ((i 0 (+ i 1))) ((= i 3)))");
        assert!(s.contains("#<void>"), "{s}");
    }

    #[test]
    fn list_and_vector_expand() {
        assert_eq!(de("(list 1 2)"), "(cons 1 (cons 2 '()))");
        let v = de("(vector 1 2)");
        assert!(v.contains("make-vector"), "{v}");
        assert!(v.contains("vector-set!"), "{v}");
    }

    #[test]
    fn internal_defines() {
        let s = de("(lambda (x) (define (f y) y) (f x))");
        assert!(s.contains("letrec"), "{s}");
    }

    #[test]
    fn errors() {
        assert!(de_err("()").message.contains("empty application"));
        assert!(de_err("(lambda args 1)").message.contains("variadic"));
        assert!(de_err("(define x 1)").message.contains("top level"));
        assert!(de_err("(call/cc f)").message.contains("continuations"));
        assert!(de_err("(lambda (x) (define y 1) y)")
            .message
            .contains("procedure"));
    }

    #[test]
    fn define_split() {
        let d = parse_one("(define (f a b) (+ a b))").unwrap();
        let (name, e) = split_define(d.as_slice().unwrap()).unwrap();
        assert_eq!(name, "f");
        assert!(matches!(e, Expr::Lambda(_)));
        let d = parse_one("(define x 42)").unwrap();
        let (name, e) = split_define(d.as_slice().unwrap()).unwrap();
        assert_eq!(name, "x");
        assert_eq!(e, Expr::Const(Const::Fixnum(42)));
    }
}
