//! Convenience drivers running the full frontend.
//!
//! Every driver is a thin wrapper over [`front_to_closed_observed`],
//! the instrumented pipeline that times each pass and counts AST sizes
//! into a [`lesgs_metrics::Registry`] (see OBSERVABILITY.md for the
//! instrument names). The plain entry points run the same code with a
//! throwaway registry.

use lesgs_metrics::Registry;

use crate::assignconv;
use crate::ast::Expr;
use crate::closure::{self, ClosedProgram};
use crate::lift::LiftOptions;
use crate::names::{Interner, VarId};
use crate::program::SurfaceProgram;
use crate::rename::Renamer;
use crate::FrontError;

/// Runs the frontend through renaming and assignment conversion,
/// returning the assembled core expression and the interner.
///
/// # Errors
///
/// Returns [`FrontError`] on parse, desugar, or scoping failures.
///
/// # Examples
///
/// ```
/// use lesgs_frontend::pipeline::front_to_core;
/// let (expr, _names) = front_to_core("(+ 1 2)").unwrap();
/// assert_eq!(expr.to_string(), "(%+ 1 2)");
/// ```
pub fn front_to_core(src: &str) -> Result<(Expr<VarId>, Interner), FrontError> {
    let (e, i, _) = front_to_core_full(src)?;
    Ok((e, i))
}

/// Like [`front_to_core`], also returning the number of global
/// locations the program uses.
///
/// # Errors
///
/// Returns [`FrontError`] on parse, desugar, or scoping failures.
pub fn front_to_core_full(src: &str) -> Result<(Expr<VarId>, Interner, u32), FrontError> {
    front_to_core_observed(src, None, &mut Registry::new())
}

/// Runs the full frontend, producing a closure-converted program.
///
/// # Errors
///
/// Returns [`FrontError`] on parse, desugar, or scoping failures.
pub fn front_to_closed(src: &str) -> Result<ClosedProgram, FrontError> {
    front_to_closed_observed(src, None, &mut Registry::new())
}

/// Like [`front_to_closed`], with selective lambda lifting (§6)
/// applied before closure conversion.
///
/// # Errors
///
/// Returns [`FrontError`] on parse, desugar, or scoping failures.
pub fn front_to_closed_lifted(
    src: &str,
    options: LiftOptions,
) -> Result<ClosedProgram, FrontError> {
    front_to_closed_observed(src, Some(options), &mut Registry::new())
}

/// The instrumented frontend pipeline.
///
/// Each pass runs under a span recorded in `reg` (`pass.parse`,
/// `pass.rename`, `pass.assignconv`, `pass.lift` when lifting,
/// `pass.closure` — each as a `<name>.wall_ns` histogram), together
/// with the size counters `frontend.ast_nodes_in` (core AST after
/// renaming), `frontend.ast_nodes_out` (after assignment conversion
/// and lifting), and `frontend.funcs` (closure-converted functions).
///
/// # Errors
///
/// Returns [`FrontError`] on parse, desugar, or scoping failures.
pub fn front_to_closed_observed(
    src: &str,
    lift: Option<LiftOptions>,
    reg: &mut Registry,
) -> Result<ClosedProgram, FrontError> {
    let (core, interner, n_globals) = front_to_core_observed(src, lift, reg)?;
    let closed = reg.time("pass.closure", || {
        closure::close_program(&core, interner, n_globals)
    });
    reg.inc("frontend.funcs", closed.funcs.len() as u64);
    Ok(closed)
}

fn front_to_core_observed(
    src: &str,
    lift: Option<LiftOptions>,
    reg: &mut Registry,
) -> Result<(Expr<VarId>, Interner, u32), FrontError> {
    let program = reg.time("pass.parse", || SurfaceProgram::from_source(src))?;
    let (assembled, globals) = program.assemble();
    let mut renamer = Renamer::new();
    renamer.set_globals(&globals);
    let renamed = reg.time("pass.rename", || renamer.rename(&assembled))?;
    reg.inc("frontend.ast_nodes_in", renamed.size() as u64);
    let mut converted = reg.time("pass.assignconv", || {
        assignconv::convert(&renamed, &mut renamer.interner)
    });
    debug_assert!(assignconv::is_assignment_free(&converted));
    let mut interner = renamer.interner;
    if let Some(options) = lift {
        reg.time("pass.lift", || {
            crate::lift::lift(&mut converted, &mut interner, options)
        });
    }
    reg.inc("frontend.ast_nodes_out", converted.size() as u64);
    Ok((converted, interner, globals.len() as u32))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_smoke() {
        let p = front_to_closed(
            "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))
             (fib 10)",
        )
        .unwrap();
        assert!(p.funcs.iter().any(|f| f.name == "fib"));
    }

    #[test]
    fn parse_error_propagates() {
        assert!(matches!(
            front_to_core("(unclosed"),
            Err(FrontError::Parse(_))
        ));
    }

    #[test]
    fn unbound_error_propagates() {
        assert!(matches!(
            front_to_core("(frobnicate 1)"),
            Err(FrontError::Rename(_))
        ));
    }

    #[test]
    fn prelude_functions_available() {
        let p = front_to_closed("(length (list 1 2 3))").unwrap();
        assert!(p.funcs.iter().any(|f| f.name == "length"));
    }

    #[test]
    fn observed_pipeline_records_passes_and_sizes() {
        let mut reg = Registry::new();
        let p = front_to_closed_observed("(define (f x) (+ x 1)) (f 41)", None, &mut reg).unwrap();
        assert!(p.funcs.iter().any(|f| f.name == "f"));
        for pass in [
            "pass.parse",
            "pass.rename",
            "pass.assignconv",
            "pass.closure",
        ] {
            let h = reg
                .histogram(&format!("{pass}.wall_ns"))
                .unwrap_or_else(|| panic!("missing {pass}"));
            assert_eq!(h.count, 1, "{pass}");
        }
        assert!(reg.counter("frontend.ast_nodes_in") > 0);
        assert!(reg.counter("frontend.ast_nodes_out") > 0);
        assert!(reg.counter("frontend.funcs") >= 2, "f + main");
        assert!(
            reg.histogram("pass.lift.wall_ns").is_none(),
            "no lifting requested"
        );
    }

    #[test]
    fn observed_matches_plain_pipeline() {
        let src = "(define (g x) (* x 3)) (g 5)";
        let plain = front_to_closed(src).unwrap();
        let observed = front_to_closed_observed(src, None, &mut Registry::new()).unwrap();
        assert_eq!(plain.funcs.len(), observed.funcs.len());
        assert_eq!(plain.n_globals, observed.n_globals);
    }
}
