//! Convenience drivers running the full frontend.

use crate::assignconv;
use crate::ast::Expr;
use crate::closure::{self, ClosedProgram};
use crate::names::{Interner, VarId};
use crate::program::SurfaceProgram;
use crate::rename::Renamer;
use crate::FrontError;

/// Runs the frontend through renaming and assignment conversion,
/// returning the assembled core expression and the interner.
///
/// # Errors
///
/// Returns [`FrontError`] on parse, desugar, or scoping failures.
///
/// # Examples
///
/// ```
/// use lesgs_frontend::pipeline::front_to_core;
/// let (expr, _names) = front_to_core("(+ 1 2)").unwrap();
/// assert_eq!(expr.to_string(), "(%+ 1 2)");
/// ```
pub fn front_to_core(src: &str) -> Result<(Expr<VarId>, Interner), FrontError> {
    let (e, i, _) = front_to_core_full(src)?;
    Ok((e, i))
}

/// Like [`front_to_core`], also returning the number of global
/// locations the program uses.
///
/// # Errors
///
/// Returns [`FrontError`] on parse, desugar, or scoping failures.
pub fn front_to_core_full(src: &str) -> Result<(Expr<VarId>, Interner, u32), FrontError> {
    let program = SurfaceProgram::from_source(src)?;
    let (assembled, globals) = program.assemble();
    let mut renamer = Renamer::new();
    renamer.set_globals(&globals);
    let renamed = renamer.rename(&assembled)?;
    let converted = assignconv::convert(&renamed, &mut renamer.interner);
    debug_assert!(assignconv::is_assignment_free(&converted));
    Ok((converted, renamer.interner, globals.len() as u32))
}

/// Runs the full frontend, producing a closure-converted program.
///
/// # Errors
///
/// Returns [`FrontError`] on parse, desugar, or scoping failures.
pub fn front_to_closed(src: &str) -> Result<ClosedProgram, FrontError> {
    let (core, interner, n_globals) = front_to_core_full(src)?;
    Ok(closure::close_program(&core, interner, n_globals))
}

/// Like [`front_to_closed`], with selective lambda lifting (§6)
/// applied before closure conversion.
///
/// # Errors
///
/// Returns [`FrontError`] on parse, desugar, or scoping failures.
pub fn front_to_closed_lifted(
    src: &str,
    options: crate::lift::LiftOptions,
) -> Result<ClosedProgram, FrontError> {
    let (mut core, mut interner, n_globals) = front_to_core_full(src)?;
    crate::lift::lift(&mut core, &mut interner, options);
    Ok(closure::close_program(&core, interner, n_globals))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_smoke() {
        let p = front_to_closed(
            "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))
             (fib 10)",
        )
        .unwrap();
        assert!(p.funcs.iter().any(|f| f.name == "fib"));
    }

    #[test]
    fn parse_error_propagates() {
        assert!(matches!(
            front_to_core("(unclosed"),
            Err(FrontError::Parse(_))
        ));
    }

    #[test]
    fn unbound_error_propagates() {
        assert!(matches!(
            front_to_core("(frobnicate 1)"),
            Err(FrontError::Rename(_))
        ));
    }

    #[test]
    fn prelude_functions_available() {
        let p = front_to_closed("(length (list 1 2 3))").unwrap();
        assert!(p.funcs.iter().any(|f| f.name == "length"));
    }
}
