//! Top-level program assembly.
//!
//! A program is a sequence of top-level `define`s and expressions. We
//! assemble it into a single core expression:
//!
//! ```text
//! (let ((v1 #f) ... )                ; value defines (and set! targets)
//!   (letrec ((f1 (lambda ...)) ...)  ; procedure defines
//!     (begin (set! v1 e1) ... main ...)))
//! ```
//!
//! Procedure defines stay in a `letrec` so calls to them can be direct;
//! value defines are initialized in source order through `set!` (and
//! thus boxed by assignment conversion), which mirrors Scheme top-level
//! semantics closely enough for the benchmark suite.
//!
//! The standard prelude (list and vector utilities written in
//! mini-Scheme) is appended automatically; unused prelude definitions
//! are pruned by a reachability pass so they do not distort static
//! statistics.

use std::collections::{HashMap, HashSet};

use lesgs_sexpr::{parse, Datum};

use crate::ast::{Const, Expr, Lambda};
use crate::desugar::{self, SurfaceExpr};
use crate::FrontError;

/// The standard library, written in the source language itself.
pub const PRELUDE: &str = r#"
(define (caar p) (car (car p)))
(define (cadr p) (car (cdr p)))
(define (cdar p) (cdr (car p)))
(define (cddr p) (cdr (cdr p)))
(define (caddr p) (car (cddr p)))
(define (cdadr p) (cdr (car (cdr p))))
(define (cddar p) (cdr (cdr (car p))))
(define (caadr p) (car (car (cdr p))))
(define (cdddr p) (cdr (cddr p)))
(define (cadddr p) (car (cdddr p)))
(define (length l)
  (let loop ((l l) (n 0))
    (if (null? l) n (loop (cdr l) (+ n 1)))))
(define (append a b)
  (if (null? a) b (cons (car a) (append (cdr a) b))))
(define (reverse l)
  (let loop ((l l) (acc '()))
    (if (null? l) acc (loop (cdr l) (cons (car l) acc)))))
(define (list-tail l k)
  (if (zero? k) l (list-tail (cdr l) (- k 1))))
(define (list-ref l k) (car (list-tail l k)))
(define (last-pair l)
  (if (null? (cdr l)) l (last-pair (cdr l))))
(define (list-copy l)
  (if (null? l) '() (cons (car l) (list-copy (cdr l)))))
(define (memq x l)
  (cond ((null? l) #f)
        ((eq? x (car l)) l)
        (else (memq x (cdr l)))))
(define (memv x l)
  (cond ((null? l) #f)
        ((eqv? x (car l)) l)
        (else (memv x (cdr l)))))
(define (member x l)
  (cond ((null? l) #f)
        ((equal? x (car l)) l)
        (else (member x (cdr l)))))
(define (assq x l)
  (cond ((null? l) #f)
        ((eq? x (car (car l))) (car l))
        (else (assq x (cdr l)))))
(define (assv x l)
  (cond ((null? l) #f)
        ((eqv? x (car (car l))) (car l))
        (else (assv x (cdr l)))))
(define (assoc x l)
  (cond ((null? l) #f)
        ((equal? x (car (car l))) (car l))
        (else (assoc x (cdr l)))))
(define (map f l)
  (if (null? l) '() (cons (f (car l)) (map f (cdr l)))))
(define (map2 f l1 l2)
  (if (null? l1)
      '()
      (cons (f (car l1) (car l2)) (map2 f (cdr l1) (cdr l2)))))
(define (for-each f l)
  (if (null? l)
      (void)
      (begin (f (car l)) (for-each f (cdr l)))))
(define (fold-left f init l)
  (if (null? l) init (fold-left f (f init (car l)) (cdr l))))
(define (fold-right f init l)
  (if (null? l) init (f (car l) (fold-right f init (cdr l)))))
(define (filter p l)
  (cond ((null? l) '())
        ((p (car l)) (cons (car l) (filter p (cdr l))))
        (else (filter p (cdr l)))))
(define (iota n)
  (let loop ((i (- n 1)) (acc '()))
    (if (negative? i) acc (loop (- i 1) (cons i acc)))))
(define (expt b e)
  (if (zero? e) 1 (* b (expt b (- e 1)))))
(define (gcd a b)
  (if (zero? b) (abs a) (gcd b (remainder a b))))
(define (vector-fill! v x)
  (let loop ((i 0))
    (if (< i (vector-length v))
        (begin (vector-set! v i x) (loop (+ i 1)))
        (void))))
(define (vector->list v)
  (let loop ((i (- (vector-length v) 1)) (acc '()))
    (if (negative? i) acc (loop (- i 1) (cons (vector-ref v i) acc)))))
(define (list->vector l)
  (let ((v (make-vector (length l))))
    (let loop ((l l) (i 0))
      (if (null? l)
          v
          (begin (vector-set! v i (car l)) (loop (cdr l) (+ i 1)))))))
"#;

/// A parsed top-level program before renaming.
#[derive(Debug, Clone)]
pub struct SurfaceProgram {
    /// Top-level `define`s in source order.
    pub defines: Vec<(String, SurfaceExpr)>,
    /// Remaining top-level expressions in source order.
    pub mains: Vec<SurfaceExpr>,
    /// Names that appear as `set!` targets anywhere in the user source;
    /// defines of these names cannot live in the `letrec`.
    pub set_targets: HashSet<String>,
}

fn collect_set_targets(d: &Datum, out: &mut HashSet<String>) {
    if let Datum::List(items) = d {
        if let [head, Datum::Symbol(target), ..] = items.as_slice() {
            if head.as_symbol() == Some("set!") {
                out.insert(target.clone());
            }
        }
        for item in items {
            collect_set_targets(item, out);
        }
    }
}

/// Free source names of a surface expression (binders respected).
pub fn free_names(e: &SurfaceExpr, bound: &mut Vec<String>, out: &mut HashSet<String>) {
    match e {
        Expr::Const(_) | Expr::Global(_) => {}
        Expr::Var(n) => {
            if !bound.contains(n) {
                out.insert(n.clone());
            }
        }
        Expr::Set(n, rhs) => {
            if !bound.contains(n) {
                out.insert(n.clone());
            }
            free_names(rhs, bound, out);
        }
        Expr::GlobalSet(_, rhs) => free_names(rhs, bound, out),
        Expr::If(c, t, el) => {
            free_names(c, bound, out);
            free_names(t, bound, out);
            free_names(el, bound, out);
        }
        Expr::Seq(es) => {
            for e in es {
                free_names(e, bound, out);
            }
        }
        Expr::Lambda(l) => {
            let depth = bound.len();
            bound.extend(l.params.iter().cloned());
            free_names(&l.body, bound, out);
            bound.truncate(depth);
        }
        Expr::Let(bs, body) => {
            for (_, rhs) in bs {
                free_names(rhs, bound, out);
            }
            let depth = bound.len();
            bound.extend(bs.iter().map(|(n, _)| n.clone()));
            free_names(body, bound, out);
            bound.truncate(depth);
        }
        Expr::Letrec(bs, body) => {
            let depth = bound.len();
            bound.extend(bs.iter().map(|(n, _)| n.clone()));
            for (_, l) in bs {
                let d2 = bound.len();
                bound.extend(l.params.iter().cloned());
                free_names(&l.body, bound, out);
                bound.truncate(d2);
            }
            free_names(body, bound, out);
            bound.truncate(depth);
        }
        Expr::App(f, args) => {
            free_names(f, bound, out);
            for a in args {
                free_names(a, bound, out);
            }
        }
        Expr::PrimApp(_, args) => {
            for a in args {
                free_names(a, bound, out);
            }
        }
    }
}

fn free_names_of(e: &SurfaceExpr) -> HashSet<String> {
    let mut out = HashSet::new();
    free_names(e, &mut Vec::new(), &mut out);
    out
}

impl SurfaceProgram {
    /// Parses and desugars a program from source text. The standard
    /// prelude is appended; user definitions shadow prelude ones.
    ///
    /// # Errors
    ///
    /// Returns [`FrontError`] on reader or desugaring failures.
    pub fn from_source(src: &str) -> Result<SurfaceProgram, FrontError> {
        let user_forms = parse(src).map_err(|e| FrontError::Parse(e.to_string()))?;
        let prelude_forms = parse(PRELUDE).expect("prelude parses");

        let mut set_targets = HashSet::new();
        for d in &user_forms {
            collect_set_targets(d, &mut set_targets);
        }

        let mut defines: Vec<(String, SurfaceExpr)> = Vec::new();
        let mut mains = Vec::new();
        let mut user_defined: HashSet<String> = HashSet::new();

        for form in &user_forms {
            if form.is_form("define") {
                let items = form.as_slice().expect("define is a list");
                let (name, rhs) = desugar::split_define(items)?;
                user_defined.insert(name.clone());
                defines.push((name, rhs));
            } else {
                mains.push(desugar::expr(form)?);
            }
        }

        // Prune prelude definitions not transitively reachable from the
        // user program.
        let mut prelude_defs: Vec<(String, SurfaceExpr)> = Vec::new();
        let mut prelude_index: HashMap<String, usize> = HashMap::new();
        for form in &prelude_forms {
            let items = form.as_slice().expect("prelude form is a list");
            let (name, rhs) = desugar::split_define(items)?;
            if user_defined.contains(&name) {
                continue; // user definition shadows the prelude
            }
            prelude_index.insert(name.clone(), prelude_defs.len());
            prelude_defs.push((name, rhs));
        }

        let mut wanted: Vec<String> = Vec::new();
        let mut seen: HashSet<String> = HashSet::new();
        let enqueue =
            |names: HashSet<String>, wanted: &mut Vec<String>, seen: &mut HashSet<String>| {
                for n in names {
                    if prelude_index.contains_key(&n) && seen.insert(n.clone()) {
                        wanted.push(n);
                    }
                }
            };
        for (_, rhs) in &defines {
            enqueue(free_names_of(rhs), &mut wanted, &mut seen);
        }
        for m in &mains {
            enqueue(free_names_of(m), &mut wanted, &mut seen);
        }
        let mut i = 0;
        while i < wanted.len() {
            let idx = prelude_index[&wanted[i]];
            let names = free_names_of(&prelude_defs[idx].1);
            enqueue(names, &mut wanted, &mut seen);
            i += 1;
        }

        // Keep prelude order for determinism, prepending before user code.
        let mut all_defines: Vec<(String, SurfaceExpr)> = prelude_defs
            .into_iter()
            .filter(|(n, _)| seen.contains(n))
            .collect();
        all_defines.extend(defines);

        if mains.is_empty() {
            mains.push(Expr::Const(Const::Void));
        }

        Ok(SurfaceProgram {
            defines: all_defines,
            mains,
            set_targets,
        })
    }

    /// Assembles the program into one core expression plus the list of
    /// global names (top-level value defines and `set!` targets), in
    /// slot order. Globals live in dedicated locations rather than in
    /// boxed cells captured by closures, mirroring Chez's global cells.
    pub fn assemble(&self) -> (SurfaceExpr, Vec<String>) {
        let mut fun_defs: Vec<(String, Lambda<String>)> = Vec::new();
        let mut val_defs: Vec<(String, SurfaceExpr)> = Vec::new();
        for (name, rhs) in &self.defines {
            match rhs {
                Expr::Lambda(l) if !self.set_targets.contains(name) => {
                    let mut l = l.clone();
                    l.name.get_or_insert_with(|| name.clone());
                    fun_defs.push((name.clone(), l));
                }
                _ => val_defs.push((name.clone(), rhs.clone())),
            }
        }

        let globals: Vec<String> = val_defs.iter().map(|(n, _)| n.clone()).collect();
        let mut seq: Vec<SurfaceExpr> = val_defs
            .iter()
            .map(|(n, rhs)| Expr::Set(n.clone(), Box::new(rhs.clone())))
            .collect();
        seq.extend(self.mains.iter().cloned());
        let mut body = Expr::seq(seq);

        if !fun_defs.is_empty() {
            body = Expr::Letrec(fun_defs, Box::new(body));
        }
        (body, globals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_program() {
        let p = SurfaceProgram::from_source("(define (f x) x) (f 1)").unwrap();
        let (e, _) = p.assemble();
        let s = e.to_string();
        assert!(s.contains("letrec"), "{s}");
        assert!(s.contains("(f 1)"), "{s}");
    }

    #[test]
    fn value_defines_are_initialized_in_order() {
        let p = SurfaceProgram::from_source("(define a 1) (define b 2) (+ a b)").unwrap();
        let s = p.assemble().0.to_string();
        let ia = s.find("(set! a 1)").unwrap();
        let ib = s.find("(set! b 2)").unwrap();
        assert!(ia < ib, "{s}");
    }

    #[test]
    fn set_function_demotes_to_value() {
        let p = SurfaceProgram::from_source("(define (f) 1) (set! f (lambda () 2)) (f)").unwrap();
        let s = p.assemble().0.to_string();
        assert!(s.contains("(set! f (lambda"), "{s}");
        assert!(!s.contains("letrec ((f"), "{s}");
    }

    #[test]
    fn prelude_is_pruned() {
        let p = SurfaceProgram::from_source("(length '(1 2))").unwrap();
        let names: Vec<&str> = p.defines.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"length"));
        assert!(!names.contains(&"assoc"));
    }

    #[test]
    fn prelude_transitive_dependencies() {
        // list-ref depends on list-tail.
        let p = SurfaceProgram::from_source("(list-ref '(1 2 3) 1)").unwrap();
        let names: Vec<&str> = p.defines.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"list-ref"));
        assert!(names.contains(&"list-tail"));
    }

    #[test]
    fn user_shadows_prelude() {
        let p = SurfaceProgram::from_source("(define (length l) 42) (length '())").unwrap();
        let count = p.defines.iter().filter(|(n, _)| n == "length").count();
        assert_eq!(count, 1);
    }

    #[test]
    fn value_defines_become_globals() {
        let p = SurfaceProgram::from_source("(define a 1) (define (f) a) (define b 2) (+ (f) b)")
            .unwrap();
        let (_, globals) = p.assemble();
        assert_eq!(globals, vec!["a".to_owned(), "b".to_owned()]);
    }

    #[test]
    fn set_function_define_is_global() {
        let p = SurfaceProgram::from_source("(define (f) 1) (set! f (lambda () 2)) (f)").unwrap();
        let (_, globals) = p.assemble();
        assert_eq!(globals, vec!["f".to_owned()]);
    }

    #[test]
    fn empty_program_yields_void_main() {
        let p = SurfaceProgram::from_source("").unwrap();
        assert_eq!(p.mains.len(), 1);
    }
}
