//! Closure conversion: from lexically-scoped lambdas to a first-order
//! program.
//!
//! Every lambda becomes a [`ClosedFunc`] whose body refers to captured
//! variables through an explicit free list (`FreeRef` indices resolved
//! via the closure-pointer register at run time, mirroring the paper's
//! run-time model).
//!
//! `letrec`-bound procedures are analyzed as a group:
//!
//! * procedures with no captured variables that are only used in
//!   operator position compile to **direct calls** with no closure at
//!   all (typical for top-level defines);
//! * procedures that capture variables or escape as values get heap
//!   closures; mutually recursive closures are created with placeholder
//!   slots and backpatched (`ClosureSet`).

use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;

use crate::ast::{Const, Expr, Lambda};
use crate::names::{Interner, VarId};
use crate::prim::Prim;

/// Identifies a first-order function in a [`ClosedProgram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(pub u32);

impl FuncId {
    /// Index into [`ClosedProgram::funcs`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// How a call site reaches its target.
#[derive(Debug, Clone, PartialEq)]
pub enum Callee {
    /// A known function with no closure: a plain jump/call to a label.
    Direct(FuncId),
    /// A known function whose closure (for its free variables) is the
    /// given expression; the code label is still static.
    KnownClosure(FuncId, Box<CExpr>),
    /// An unknown procedure value; both code and environment come from
    /// the closure object.
    Computed(Box<CExpr>),
}

/// A closure-converted expression.
#[derive(Debug, Clone, PartialEq)]
pub enum CExpr {
    /// A constant.
    Const(Const),
    /// A parameter or let-bound variable of the current function.
    Local(VarId),
    /// The `i`-th captured variable, read through the closure pointer.
    FreeRef(u32),
    /// A top-level global location.
    Global(u32),
    /// Assignment to a global location.
    GlobalSet(u32, Box<CExpr>),
    /// Two-way conditional.
    If(Box<CExpr>, Box<CExpr>, Box<CExpr>),
    /// Sequencing; at least one expression.
    Seq(Vec<CExpr>),
    /// A single local binding.
    Let(VarId, Box<CExpr>, Box<CExpr>),
    /// Primitive application.
    PrimApp(Prim, Vec<CExpr>),
    /// A procedure call. `tail` is true when the call is in tail
    /// position (a jump in the paper's model, not a call).
    Call {
        /// Call target.
        callee: Callee,
        /// Argument expressions, unevaluated and unordered — the
        /// allocator's greedy shuffler picks the order.
        args: Vec<CExpr>,
        /// Tail position flag.
        tail: bool,
    },
    /// Heap-allocates a closure for `func`, capturing the given values
    /// (which line up with the function's free list).
    MakeClosure {
        /// Target function.
        func: FuncId,
        /// Captured values in free-list order.
        free: Vec<CExpr>,
    },
    /// Backpatches slot `index` of a closure (used to tie recursive
    /// knots among mutually recursive closures).
    ClosureSet {
        /// Expression yielding the closure to patch.
        clo: Box<CExpr>,
        /// Slot index in the closure's free list.
        index: u32,
        /// New value for the slot.
        value: Box<CExpr>,
    },
}

/// A first-order function produced by closure conversion.
#[derive(Debug, Clone)]
pub struct ClosedFunc {
    /// This function's id (equal to its index in the program).
    pub id: FuncId,
    /// Diagnostic name.
    pub name: String,
    /// Parameters, left to right.
    pub params: Vec<VarId>,
    /// Captured variables, in `FreeRef` index order.
    pub free: Vec<VarId>,
    /// The body, with `tail` flags set.
    pub body: CExpr,
}

impl ClosedFunc {
    /// True if the function captures nothing and therefore needs no
    /// closure object.
    pub fn is_closed(&self) -> bool {
        self.free.is_empty()
    }
}

/// A complete closure-converted program.
#[derive(Debug, Clone)]
pub struct ClosedProgram {
    /// All functions; `FuncId(i)` is `funcs[i]`.
    pub funcs: Vec<ClosedFunc>,
    /// The entry function (zero parameters, no free variables).
    pub main: FuncId,
    /// Variable names for diagnostics.
    pub interner: Interner,
    /// Number of top-level global locations.
    pub n_globals: u32,
}

impl ClosedProgram {
    /// Looks up a function by id.
    pub fn func(&self, id: FuncId) -> &ClosedFunc {
        &self.funcs[id.index()]
    }
}

/// Computes the free variables of `e` in deterministic order.
pub fn free_vars(e: &Expr<VarId>) -> BTreeSet<VarId> {
    fn walk(e: &Expr<VarId>, bound: &mut HashSet<VarId>, out: &mut BTreeSet<VarId>) {
        match e {
            Expr::Const(_) | Expr::Global(_) => {}
            Expr::Var(v) => {
                if !bound.contains(v) {
                    out.insert(*v);
                }
            }
            Expr::Set(v, rhs) => {
                if !bound.contains(v) {
                    out.insert(*v);
                }
                walk(rhs, bound, out);
            }
            Expr::GlobalSet(_, rhs) => walk(rhs, bound, out),
            Expr::If(c, t, el) => {
                walk(c, bound, out);
                walk(t, bound, out);
                walk(el, bound, out);
            }
            Expr::Seq(es) => es.iter().for_each(|e| walk(e, bound, out)),
            Expr::Lambda(l) => {
                let added: Vec<VarId> = l
                    .params
                    .iter()
                    .filter(|p| bound.insert(**p))
                    .copied()
                    .collect();
                walk(&l.body, bound, out);
                for p in added {
                    bound.remove(&p);
                }
            }
            Expr::Let(bs, b) => {
                for (_, rhs) in bs {
                    walk(rhs, bound, out);
                }
                let added: Vec<VarId> = bs
                    .iter()
                    .filter(|(v, _)| bound.insert(*v))
                    .map(|(v, _)| *v)
                    .collect();
                walk(b, bound, out);
                for v in added {
                    bound.remove(&v);
                }
            }
            Expr::Letrec(bs, b) => {
                let added: Vec<VarId> = bs
                    .iter()
                    .filter(|(v, _)| bound.insert(*v))
                    .map(|(v, _)| *v)
                    .collect();
                for (_, l) in bs {
                    walk(&Expr::Lambda(l.clone()), bound, out);
                }
                walk(b, bound, out);
                for v in added {
                    bound.remove(&v);
                }
            }
            Expr::App(f, args) => {
                walk(f, bound, out);
                args.iter().for_each(|a| walk(a, bound, out));
            }
            Expr::PrimApp(_, args) => args.iter().for_each(|a| walk(a, bound, out)),
        }
    }
    let mut out = BTreeSet::new();
    walk(e, &mut HashSet::new(), &mut out);
    out
}

/// Collects value-position and operator-position references to `names`.
fn reference_kinds(
    e: &Expr<VarId>,
    names: &HashSet<VarId>,
    operator: &mut HashSet<VarId>,
    value: &mut HashSet<VarId>,
) {
    match e {
        Expr::Const(_) | Expr::Global(_) => {}
        Expr::Var(v) => {
            if names.contains(v) {
                value.insert(*v);
            }
        }
        Expr::Set(_, rhs) | Expr::GlobalSet(_, rhs) => reference_kinds(rhs, names, operator, value),
        Expr::If(c, t, el) => {
            reference_kinds(c, names, operator, value);
            reference_kinds(t, names, operator, value);
            reference_kinds(el, names, operator, value);
        }
        Expr::Seq(es) => es
            .iter()
            .for_each(|e| reference_kinds(e, names, operator, value)),
        Expr::Lambda(l) => reference_kinds(&l.body, names, operator, value),
        Expr::Let(bs, b) => {
            bs.iter()
                .for_each(|(_, rhs)| reference_kinds(rhs, names, operator, value));
            reference_kinds(b, names, operator, value);
        }
        Expr::Letrec(bs, b) => {
            bs.iter()
                .for_each(|(_, l)| reference_kinds(&l.body, names, operator, value));
            reference_kinds(b, names, operator, value);
        }
        Expr::App(f, args) => {
            match f.as_ref() {
                Expr::Var(v) if names.contains(v) => {
                    operator.insert(*v);
                }
                other => reference_kinds(other, names, operator, value),
            }
            args.iter()
                .for_each(|a| reference_kinds(a, names, operator, value));
        }
        Expr::PrimApp(_, args) => args
            .iter()
            .for_each(|a| reference_kinds(a, names, operator, value)),
    }
}

/// How a known (letrec-bound) procedure is reached.
#[derive(Debug, Clone, Copy)]
struct KnownBinding {
    func: FuncId,
    /// The local variable holding the procedure's closure, when it has
    /// one; `None` means pure direct calls.
    closure_var: Option<VarId>,
}

struct Convert<'a> {
    funcs: Vec<Option<ClosedFunc>>,
    known: HashMap<VarId, KnownBinding>,
    interner: &'a mut Interner,
}

/// Per-function conversion context tracking locals and captures.
struct FnCtx {
    locals: HashSet<VarId>,
    free_map: HashMap<VarId, u32>,
    free_list: Vec<VarId>,
}

impl FnCtx {
    fn new(params: &[VarId]) -> FnCtx {
        FnCtx {
            locals: params.iter().copied().collect(),
            free_map: HashMap::new(),
            free_list: Vec::new(),
        }
    }

    fn resolve(&mut self, v: VarId) -> CExpr {
        if self.locals.contains(&v) {
            CExpr::Local(v)
        } else {
            let idx = *self.free_map.entry(v).or_insert_with(|| {
                self.free_list.push(v);
                (self.free_list.len() - 1) as u32
            });
            CExpr::FreeRef(idx)
        }
    }
}

impl Convert<'_> {
    fn fresh_func_id(&mut self) -> FuncId {
        let id = FuncId(self.funcs.len() as u32);
        self.funcs.push(None);
        id
    }

    /// Converts a lambda into a function; returns its id and free list.
    fn convert_function(&mut self, id: FuncId, name: String, lam: &Lambda<VarId>) -> Vec<VarId> {
        let mut ctx = FnCtx::new(&lam.params);
        let body = self.convert(&lam.body, &mut ctx, true);
        let free = ctx.free_list.clone();
        self.funcs[id.index()] = Some(ClosedFunc {
            id,
            name,
            params: lam.params.clone(),
            free: free.clone(),
            body,
        });
        free
    }

    fn convert_letrec(
        &mut self,
        bindings: &[(VarId, Lambda<VarId>)],
        body: &Expr<VarId>,
        ctx: &mut FnCtx,
        tail: bool,
    ) -> CExpr {
        let group: HashSet<VarId> = bindings.iter().map(|(v, _)| *v).collect();

        // --- analysis -------------------------------------------------
        let mut operator_refs = HashSet::new();
        let mut value_refs = HashSet::new();
        for (_, l) in bindings {
            reference_kinds(&l.body, &group, &mut operator_refs, &mut value_refs);
        }
        reference_kinds(body, &group, &mut operator_refs, &mut value_refs);

        // needs_closure fixpoint: seed with escaping-or-capturing
        // procedures, propagate to everything that references them.
        let mut needs: HashMap<VarId, bool> = HashMap::new();
        let mut outer_free: HashMap<VarId, BTreeSet<VarId>> = HashMap::new();
        for (v, l) in bindings {
            let mut fv = free_vars(&Expr::Lambda(l.clone()));
            // Neither group members nor enclosing *direct* procedures
            // are real captures: a direct call needs no environment.
            // (References to enclosing procedures that do have closures
            // stay: their closure variable must be captured.)
            fv.retain(|x| {
                !group.contains(x)
                    && !matches!(
                        self.known.get(x),
                        Some(KnownBinding {
                            closure_var: None,
                            ..
                        })
                    )
            });
            let seed = !fv.is_empty() || value_refs.contains(v);
            outer_free.insert(*v, fv);
            needs.insert(*v, seed);
        }
        // refs_in[i] = brothers referenced from i's body (any position).
        let mut refs_in: HashMap<VarId, BTreeSet<VarId>> = HashMap::new();
        for (v, l) in bindings {
            let mut op = HashSet::new();
            let mut val = HashSet::new();
            reference_kinds(&l.body, &group, &mut op, &mut val);
            let all: BTreeSet<VarId> = op.union(&val).copied().collect();
            refs_in.insert(*v, all);
        }
        loop {
            let mut changed = false;
            for (v, _) in bindings {
                if needs[v] {
                    continue;
                }
                if refs_in[v].iter().any(|b| needs[b]) {
                    needs.insert(*v, true);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        // --- register known bindings -----------------------------------
        let mut ids: HashMap<VarId, FuncId> = HashMap::new();
        let mut clo_vars: HashMap<VarId, VarId> = HashMap::new();
        for (v, _) in bindings {
            let id = self.fresh_func_id();
            ids.insert(*v, id);
            let closure_var = if needs[v] {
                let cv = self
                    .interner
                    .fresh(format!("{}%clo", self.interner.name(*v)));
                clo_vars.insert(*v, cv);
                Some(cv)
            } else {
                None
            };
            self.known.insert(
                *v,
                KnownBinding {
                    func: id,
                    closure_var,
                },
            );
        }

        // --- convert the group's bodies --------------------------------
        // Inside the lambdas, references to a brother's closure variable
        // resolve through the normal capture machinery because the
        // closure variables are locals of the *enclosing* function.
        let mut free_lists: HashMap<VarId, Vec<VarId>> = HashMap::new();
        for (v, l) in bindings {
            let name = l
                .name
                .clone()
                .unwrap_or_else(|| self.interner.name(*v).to_owned());
            let free = self.convert_function(ids[v], name, l);
            free_lists.insert(*v, free);
        }

        // --- emit closure creation + backpatching ----------------------
        let clo_var_set: HashSet<VarId> = clo_vars.values().copied().collect();
        let mut patches: Vec<(VarId, u32, VarId)> = Vec::new(); // (clo, slot, brother clo)
        let mut creations: Vec<(VarId, CExpr)> = Vec::new();
        for (v, _) in bindings {
            if !needs[v] {
                continue;
            }
            let cv = clo_vars[v];
            let mut free_values = Vec::new();
            for (slot, fv) in free_lists[v].iter().enumerate() {
                if clo_var_set.contains(fv) {
                    // Brother closure: placeholder now, patch below.
                    free_values.push(CExpr::Const(Const::Void));
                    patches.push((cv, slot as u32, *fv));
                } else {
                    free_values.push(ctx.resolve(*fv));
                }
            }
            creations.push((
                cv,
                CExpr::MakeClosure {
                    func: ids[v],
                    free: free_values,
                },
            ));
            ctx.locals.insert(cv);
        }

        let converted_body = self.convert(body, ctx, tail);

        let mut seq = Vec::new();
        for (cv, slot, brother) in patches {
            seq.push(CExpr::ClosureSet {
                clo: Box::new(CExpr::Local(cv)),
                index: slot,
                value: Box::new(CExpr::Local(brother)),
            });
        }
        seq.push(converted_body);
        let mut result = CExpr::Seq(seq);
        if let CExpr::Seq(s) = &result {
            if s.len() == 1 {
                result = s[0].clone();
            }
        }
        for (cv, mk) in creations.into_iter().rev() {
            result = CExpr::Let(cv, Box::new(mk), Box::new(result));
        }
        result
    }

    fn convert(&mut self, e: &Expr<VarId>, ctx: &mut FnCtx, tail: bool) -> CExpr {
        match e {
            Expr::Const(c) => CExpr::Const(c.clone()),
            Expr::Var(v) => {
                if let Some(k) = self.known.get(v).copied() {
                    // A known procedure escaping as a value: use its
                    // closure (the analysis guarantees it has one).
                    let cv = k
                        .closure_var
                        .expect("escaping known procedure must have a closure");
                    ctx.resolve(cv)
                } else {
                    ctx.resolve(*v)
                }
            }
            Expr::Global(g) => CExpr::Global(*g),
            Expr::GlobalSet(g, rhs) => {
                CExpr::GlobalSet(*g, Box::new(self.convert(rhs, ctx, false)))
            }
            Expr::Set(..) => {
                unreachable!("assignment conversion must run before closure conversion")
            }
            Expr::If(c, t, el) => CExpr::If(
                Box::new(self.convert(c, ctx, false)),
                Box::new(self.convert(t, ctx, tail)),
                Box::new(self.convert(el, ctx, tail)),
            ),
            Expr::Seq(es) => {
                let n = es.len();
                CExpr::Seq(
                    es.iter()
                        .enumerate()
                        .map(|(i, e)| self.convert(e, ctx, tail && i + 1 == n))
                        .collect(),
                )
            }
            Expr::Lambda(l) => {
                let id = self.fresh_func_id();
                let name = l.name.clone().unwrap_or_else(|| format!("lambda@{id}"));
                let free = self.convert_function(id, name, l);
                let free_values = free.iter().map(|v| ctx.resolve(*v)).collect();
                CExpr::MakeClosure {
                    func: id,
                    free: free_values,
                }
            }
            Expr::Let(bs, b) => {
                // Parallel by construction: after alpha renaming no RHS
                // can see a sibling, so nested single lets are
                // equivalent.
                let rhss: Vec<CExpr> = bs
                    .iter()
                    .map(|(_, rhs)| self.convert(rhs, ctx, false))
                    .collect();
                for (v, _) in bs {
                    ctx.locals.insert(*v);
                }
                let body = self.convert(b, ctx, tail);
                bs.iter().zip(rhss).rev().fold(body, |acc, ((v, _), rhs)| {
                    CExpr::Let(*v, Box::new(rhs), Box::new(acc))
                })
            }
            Expr::Letrec(bs, b) => self.convert_letrec(bs, b, ctx, tail),
            Expr::App(f, args) => {
                // Immediate application of a lambda: beta-reduce to let.
                if let Expr::Lambda(l) = f.as_ref() {
                    if l.params.len() == args.len() {
                        let let_expr = Expr::Let(
                            l.params.iter().copied().zip(args.iter().cloned()).collect(),
                            l.body.clone(),
                        );
                        return self.convert(&let_expr, ctx, tail);
                    }
                }
                let callee = match f.as_ref() {
                    Expr::Var(v) => match self.known.get(v).copied() {
                        Some(KnownBinding {
                            func,
                            closure_var: None,
                        }) => Callee::Direct(func),
                        Some(KnownBinding {
                            func,
                            closure_var: Some(cv),
                        }) => Callee::KnownClosure(func, Box::new(ctx.resolve(cv))),
                        None => Callee::Computed(Box::new(ctx.resolve(*v))),
                    },
                    other => Callee::Computed(Box::new(self.convert(other, ctx, false))),
                };
                CExpr::Call {
                    callee,
                    args: args.iter().map(|a| self.convert(a, ctx, false)).collect(),
                    tail,
                }
            }
            Expr::PrimApp(p, args) => CExpr::PrimApp(
                *p,
                args.iter().map(|a| self.convert(a, ctx, false)).collect(),
            ),
        }
    }
}

/// Closure-converts a whole program (the assembled, assignment-free
/// core expression).
///
/// # Panics
///
/// Panics if `e` still contains assignments (run
/// [`assignconv`](crate::assignconv) first) or free variables.
pub fn close_program(e: &Expr<VarId>, mut interner: Interner, n_globals: u32) -> ClosedProgram {
    assert!(free_vars(e).is_empty(), "program expression must be closed");
    let mut c = Convert {
        funcs: Vec::new(),
        known: HashMap::new(),
        interner: &mut interner,
    };
    let main_id = c.fresh_func_id();
    let main_lambda = Lambda {
        params: Vec::new(),
        body: Box::new(e.clone()),
        name: Some("main".to_owned()),
    };
    let free = c.convert_function(main_id, "main".to_owned(), &main_lambda);
    assert!(free.is_empty(), "main cannot capture");
    let funcs = c
        .funcs
        .into_iter()
        .map(|f| f.expect("every allocated function is filled"))
        .collect();
    ClosedProgram {
        funcs,
        main: main_id,
        interner,
        n_globals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline;

    fn close(src: &str) -> ClosedProgram {
        pipeline::front_to_closed(src).unwrap()
    }

    fn find<'a>(p: &'a ClosedProgram, name: &str) -> &'a ClosedFunc {
        p.funcs
            .iter()
            .find(|f| f.name == name)
            .unwrap_or_else(|| panic!("no function named {name}"))
    }

    fn count_calls(e: &CExpr, pred: &mut dyn FnMut(&Callee, bool)) {
        match e {
            CExpr::Const(_) | CExpr::Local(_) | CExpr::FreeRef(_) | CExpr::Global(_) => {}
            CExpr::GlobalSet(_, rhs) => count_calls(rhs, pred),
            CExpr::If(c, t, el) => {
                count_calls(c, pred);
                count_calls(t, pred);
                count_calls(el, pred);
            }
            CExpr::Seq(es) => es.iter().for_each(|e| count_calls(e, pred)),
            CExpr::Let(_, r, b) => {
                count_calls(r, pred);
                count_calls(b, pred);
            }
            CExpr::PrimApp(_, args) => args.iter().for_each(|a| count_calls(a, pred)),
            CExpr::Call { callee, args, tail } => {
                pred(callee, *tail);
                if let Callee::Computed(e) | Callee::KnownClosure(_, e) = callee {
                    count_calls(e, pred);
                }
                args.iter().for_each(|a| count_calls(a, pred));
            }
            CExpr::MakeClosure { free, .. } => free.iter().for_each(|f| count_calls(f, pred)),
            CExpr::ClosureSet { clo, value, .. } => {
                count_calls(clo, pred);
                count_calls(value, pred);
            }
        }
    }

    #[test]
    fn top_level_defines_become_direct_calls() {
        let p = close("(define (f x) (+ x 1)) (f 41)");
        let f = find(&p, "f");
        assert!(f.is_closed());
        let main = p.func(p.main);
        let mut directs = 0;
        count_calls(&main.body, &mut |c, _| {
            if matches!(c, Callee::Direct(_)) {
                directs += 1;
            }
        });
        assert_eq!(directs, 1);
    }

    #[test]
    fn capturing_loop_gets_closure() {
        let p = close("(define (f a) (let loop ((i 0)) (if (= i a) i (loop (+ i 1))))) (f 3)");
        let loop_fn = find(&p, "loop");
        assert!(!loop_fn.is_closed(), "loop captures `a`");
        let f = find(&p, "f");
        let mut known_closure = 0;
        count_calls(&f.body, &mut |c, _| {
            if matches!(c, Callee::KnownClosure(..)) {
                known_closure += 1;
            }
        });
        assert!(known_closure >= 1);
    }

    #[test]
    fn escaping_procedure_gets_closure() {
        let p = close("(define (apply1 f x) (f x)) (define (g y) y) (apply1 g 5)");
        let g = find(&p, "g");
        assert!(g.is_closed(), "g captures nothing");
        // g escapes as a value, so main must build a closure for it.
        let main = p.func(p.main);
        let mut makes = 0;
        fn walk(e: &CExpr, makes: &mut usize) {
            match e {
                CExpr::MakeClosure { .. } => *makes += 1,
                CExpr::If(a, b, c) => {
                    walk(a, makes);
                    walk(b, makes);
                    walk(c, makes);
                }
                CExpr::Seq(es) => es.iter().for_each(|e| walk(e, makes)),
                CExpr::Let(_, r, b) => {
                    walk(r, makes);
                    walk(b, makes);
                }
                CExpr::PrimApp(_, args) => args.iter().for_each(|a| walk(a, makes)),
                CExpr::Call { args, callee, .. } => {
                    if let Callee::Computed(e) | Callee::KnownClosure(_, e) = callee {
                        walk(e, makes);
                    }
                    args.iter().for_each(|a| walk(a, makes));
                }
                CExpr::ClosureSet { clo, value, .. } => {
                    walk(clo, makes);
                    walk(value, makes);
                }
                _ => {}
            }
        }
        walk(&main.body, &mut makes);
        assert!(makes >= 1, "closure for g must be allocated");
    }

    #[test]
    fn mutual_recursion_direct_when_closed() {
        let p = close(
            "(define (even2? n) (if (zero? n) #t (odd2? (- n 1))))
             (define (odd2? n) (if (zero? n) #f (even2? (- n 1))))
             (even2? 10)",
        );
        assert!(find(&p, "even2?").is_closed());
        assert!(find(&p, "odd2?").is_closed());
    }

    #[test]
    fn mutual_recursion_with_capture_backpatches() {
        let p = close(
            "(define (f k)
               (letrec ((ping (lambda (n) (if (zero? n) k (pong (- n 1)))))
                        (pong (lambda (n) (ping n))))
                 (ping 4)))
             (f 7)",
        );
        // ping captures k (outer) and pong; pong captures ping.
        let ping = find(&p, "ping");
        assert!(!ping.is_closed());
        let f = find(&p, "f");
        let mut saw_patch = false;
        fn walk(e: &CExpr, saw: &mut bool) {
            match e {
                CExpr::ClosureSet { .. } => *saw = true,
                CExpr::If(a, b, c) => {
                    walk(a, saw);
                    walk(b, saw);
                    walk(c, saw);
                }
                CExpr::Seq(es) => es.iter().for_each(|e| walk(e, saw)),
                CExpr::Let(_, r, b) => {
                    walk(r, saw);
                    walk(b, saw);
                }
                _ => {}
            }
        }
        walk(&f.body, &mut saw_patch);
        assert!(saw_patch, "mutual closures require backpatching");
    }

    #[test]
    fn tail_positions_marked() {
        let p = close("(define (f n) (if (zero? n) 0 (f (- n 1)))) (f 5)");
        let f = find(&p, "f");
        let mut tails = Vec::new();
        count_calls(&f.body, &mut |_, t| tails.push(t));
        assert_eq!(tails, vec![true], "self call is a tail call");
        let main = p.func(p.main);
        let mut main_tails = Vec::new();
        count_calls(&main.body, &mut |_, t| main_tails.push(t));
        assert_eq!(main_tails, vec![true], "final call in main is tail");
    }

    #[test]
    fn non_tail_marked() {
        let p = close("(define (f n) (if (zero? n) 0 (+ 1 (f (- n 1))))) (f 5)");
        let f = find(&p, "f");
        let mut tails = Vec::new();
        count_calls(&f.body, &mut |_, t| tails.push(t));
        assert_eq!(tails, vec![false]);
    }

    #[test]
    fn immediate_lambda_application_is_let() {
        let p = close("((lambda (x) (+ x 1)) 41)");
        // No closure should be allocated for the immediate lambda.
        assert_eq!(
            p.funcs.len(),
            1,
            "only main exists: {:?}",
            p.funcs.iter().map(|f| &f.name).collect::<Vec<_>>()
        );
    }

    #[test]
    fn anonymous_lambda_as_value() {
        let p = close("(define (call f) (f 1)) (call (lambda (x) (* x 2)))");
        assert!(p.funcs.iter().any(|f| f.name.starts_with("lambda@")));
        let call = find(&p, "call");
        let mut computed = 0;
        count_calls(&call.body, &mut |c, _| {
            if matches!(c, Callee::Computed(_)) {
                computed += 1;
            }
        });
        assert_eq!(computed, 1);
    }

    #[test]
    fn free_vars_basic() {
        use crate::desugar;
        use crate::rename::Renamer;
        use lesgs_sexpr::parse_one;
        let surface = desugar::expr(&parse_one("(lambda (x) (+ x y))").unwrap()).unwrap();
        let mut r = Renamer::new();
        let y = r.bind("y");
        let renamed = r.rename(&surface).unwrap();
        let fv = free_vars(&renamed);
        assert_eq!(fv.into_iter().collect::<Vec<_>>(), vec![y]);
    }
}
