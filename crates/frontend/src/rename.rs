//! Alpha renaming and primitive resolution.
//!
//! Every binding gets a fresh [`VarId`]. References to unbound names
//! are resolved against the primitive table: in operator position they
//! become [`Expr::PrimApp`] (with variadic surface forms expanded to
//! fixed arity), elsewhere they are eta-expanded into lambdas so
//! primitives remain first-class.

use std::collections::HashMap;
use std::fmt;

use crate::ast::{Const, Expr, Lambda};
use crate::names::{Interner, VarId};
use crate::prim::{Prim, PrimArity};

/// A scoping error.
#[derive(Debug, Clone, PartialEq)]
pub struct RenameError {
    /// Human-readable description.
    pub message: String,
}

impl RenameError {
    fn new(message: impl Into<String>) -> RenameError {
        RenameError {
            message: message.into(),
        }
    }
}

impl fmt::Display for RenameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rename error: {}", self.message)
    }
}

impl std::error::Error for RenameError {}

type Result<T> = std::result::Result<T, RenameError>;

/// The renamer state: the interner allocating ids plus the current
/// lexical environment.
#[derive(Debug, Default)]
pub struct Renamer {
    /// Allocates fresh ids and remembers source names.
    pub interner: Interner,
    env: HashMap<String, Vec<VarId>>,
    globals: HashMap<String, u32>,
}

impl Renamer {
    /// Creates a renamer with an empty environment.
    pub fn new() -> Renamer {
        Renamer::default()
    }

    /// Registers the top-level global names (slot = list position).
    /// Unbound references to these names become [`Expr::Global`] /
    /// [`Expr::GlobalSet`]; lexical bindings still shadow them.
    pub fn set_globals(&mut self, names: &[String]) {
        self.globals = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i as u32))
            .collect();
    }

    /// Binds `name`, shadowing any previous binding, and returns its id.
    pub fn bind(&mut self, name: &str) -> VarId {
        let id = self.interner.fresh(name);
        self.env.entry(name.to_owned()).or_default().push(id);
        id
    }

    fn unbind(&mut self, name: &str) {
        let stack = self.env.get_mut(name).expect("unbind of unbound name");
        stack.pop().expect("unbind of empty stack");
        if stack.is_empty() {
            self.env.remove(name);
        }
    }

    /// Current binding of `name`, if any.
    pub fn lookup(&self, name: &str) -> Option<VarId> {
        self.env.get(name).and_then(|s| s.last()).copied()
    }

    fn check_distinct(names: &[&String], what: &str) -> Result<()> {
        for (i, n) in names.iter().enumerate() {
            if names[..i].contains(n) {
                return Err(RenameError::new(format!("duplicate {what} `{n}`")));
            }
        }
        Ok(())
    }

    fn rename_lambda(&mut self, lam: &Lambda<String>) -> Result<Lambda<VarId>> {
        let param_names: Vec<&String> = lam.params.iter().collect();
        Self::check_distinct(&param_names, "parameter")?;
        let params: Vec<VarId> = lam.params.iter().map(|p| self.bind(p)).collect();
        let body = self.rename(&lam.body);
        for p in &lam.params {
            self.unbind(p);
        }
        Ok(Lambda {
            params,
            body: Box::new(body?),
            name: lam.name.clone(),
        })
    }

    /// Expands a surface primitive application to fixed arity.
    fn prim_app(
        &mut self,
        prim: Prim,
        arity: PrimArity,
        name: &str,
        args: Vec<Expr<VarId>>,
    ) -> Result<Expr<VarId>> {
        match arity {
            PrimArity::Fixed(_) if name == "make-vector" && args.len() == 2 => {
                Ok(Expr::PrimApp(Prim::MakeVectorFill, args))
            }
            PrimArity::Fixed(n) => {
                if args.len() != n as usize {
                    return Err(RenameError::new(format!(
                        "`{name}` expects {n} argument(s), got {}",
                        args.len()
                    )));
                }
                Ok(Expr::PrimApp(prim, args))
            }
            PrimArity::FoldLeft { identity } => {
                let mut it = args.into_iter();
                let first = it.next().unwrap_or(Expr::Const(Const::Fixnum(identity)));
                Ok(it.fold(first, |acc, a| Expr::PrimApp(prim, vec![acc, a])))
            }
            PrimArity::SubLike => match args.len() {
                0 => Err(RenameError::new("`-` expects at least one argument")),
                1 => Ok(Expr::PrimApp(
                    prim,
                    vec![
                        Expr::Const(Const::Fixnum(0)),
                        args.into_iter().next().expect("one arg"),
                    ],
                )),
                _ => {
                    let mut it = args.into_iter();
                    let first = it.next().expect("nonempty");
                    Ok(it.fold(first, |acc, a| Expr::PrimApp(prim, vec![acc, a])))
                }
            },
            PrimArity::Chain => {
                if args.len() < 2 {
                    return Err(RenameError::new(format!(
                        "`{name}` expects at least two arguments"
                    )));
                }
                if args.len() == 2 {
                    return Ok(Expr::PrimApp(prim, args));
                }
                // (< a b c) => (let ((t0 a) (t1 b) (t2 c))
                //                (if (< t0 t1) (< t1 t2) #f))
                // Bind all operands first to preserve left-to-right
                // evaluation exactly once.
                let temps: Vec<VarId> = (0..args.len())
                    .map(|i| self.interner.fresh(format!("%cmp{i}")))
                    .collect();
                let mut cond = Expr::PrimApp(
                    prim,
                    vec![
                        Expr::Var(temps[args.len() - 2]),
                        Expr::Var(temps[args.len() - 1]),
                    ],
                );
                for w in (0..args.len() - 2).rev() {
                    cond = Expr::If(
                        Box::new(Expr::PrimApp(
                            prim,
                            vec![Expr::Var(temps[w]), Expr::Var(temps[w + 1])],
                        )),
                        Box::new(cond),
                        Box::new(Expr::Const(Const::Bool(false))),
                    );
                }
                Ok(Expr::Let(
                    temps.into_iter().zip(args).collect(),
                    Box::new(cond),
                ))
            }
        }
    }

    /// Eta-expands a primitive used as a value: `car` becomes
    /// `(lambda (p) (car p))`.
    fn eta_expand(&mut self, prim: Prim, arity: PrimArity) -> Expr<VarId> {
        let n = match arity {
            PrimArity::Fixed(n) => n as usize,
            // Variadic primitives close over their binary form.
            PrimArity::FoldLeft { .. } | PrimArity::SubLike | PrimArity::Chain => 2,
        };
        let params: Vec<VarId> = (0..n)
            .map(|i| self.interner.fresh(format!("%eta{i}")))
            .collect();
        Expr::Lambda(Lambda {
            params: params.clone(),
            body: Box::new(Expr::PrimApp(
                prim,
                params.into_iter().map(Expr::Var).collect(),
            )),
            name: Some(prim.name().to_owned()),
        })
    }

    /// Renames an expression.
    ///
    /// # Errors
    ///
    /// Returns a [`RenameError`] on unbound variables, duplicate
    /// bindings, primitive arity mismatches, or `set!` of a primitive.
    pub fn rename(&mut self, e: &Expr<String>) -> Result<Expr<VarId>> {
        match e {
            Expr::Const(c) => Ok(Expr::Const(c.clone())),
            Expr::Var(name) => match self.lookup(name) {
                Some(id) => Ok(Expr::Var(id)),
                None => match self.globals.get(name) {
                    Some(slot) => Ok(Expr::Global(*slot)),
                    None => match Prim::lookup(name) {
                        Some((p, ar)) => Ok(self.eta_expand(p, ar)),
                        None => Err(RenameError::new(format!("unbound variable `{name}`"))),
                    },
                },
            },
            Expr::Global(g) => Ok(Expr::Global(*g)),
            Expr::Set(name, rhs) => {
                let rhs = self.rename(rhs)?;
                match self.lookup(name) {
                    Some(id) => Ok(Expr::Set(id, Box::new(rhs))),
                    None => match self.globals.get(name) {
                        Some(slot) => Ok(Expr::GlobalSet(*slot, Box::new(rhs))),
                        None => Err(RenameError::new(format!(
                            "set! of unbound variable `{name}`"
                        ))),
                    },
                }
            }
            Expr::GlobalSet(g, rhs) => Ok(Expr::GlobalSet(*g, Box::new(self.rename(rhs)?))),
            Expr::If(c, t, e) => Ok(Expr::If(
                Box::new(self.rename(c)?),
                Box::new(self.rename(t)?),
                Box::new(self.rename(e)?),
            )),
            Expr::Seq(es) => Ok(Expr::Seq(
                es.iter().map(|e| self.rename(e)).collect::<Result<_>>()?,
            )),
            Expr::Lambda(lam) => Ok(Expr::Lambda(self.rename_lambda(lam)?)),
            Expr::Let(bindings, body) => {
                let names: Vec<&String> = bindings.iter().map(|(n, _)| n).collect();
                Self::check_distinct(&names, "let binding")?;
                let rhss: Vec<Expr<VarId>> = bindings
                    .iter()
                    .map(|(_, rhs)| self.rename(rhs))
                    .collect::<Result<_>>()?;
                let ids: Vec<VarId> = bindings.iter().map(|(n, _)| self.bind(n)).collect();
                let body = self.rename(body);
                for (n, _) in bindings {
                    self.unbind(n);
                }
                Ok(Expr::Let(
                    ids.into_iter().zip(rhss).collect(),
                    Box::new(body?),
                ))
            }
            Expr::Letrec(bindings, body) => {
                let names: Vec<&String> = bindings.iter().map(|(n, _)| n).collect();
                Self::check_distinct(&names, "letrec binding")?;
                let ids: Vec<VarId> = bindings.iter().map(|(n, _)| self.bind(n)).collect();
                let result = (|| {
                    let lams: Vec<Lambda<VarId>> = bindings
                        .iter()
                        .map(|(_, l)| self.rename_lambda(l))
                        .collect::<Result<_>>()?;
                    let body = self.rename(body)?;
                    Ok(Expr::Letrec(
                        ids.iter().copied().zip(lams).collect(),
                        Box::new(body),
                    ))
                })();
                for (n, _) in bindings {
                    self.unbind(n);
                }
                result
            }
            Expr::App(head, args) => {
                // Primitive in operator position?
                if let Expr::Var(name) = head.as_ref() {
                    if self.lookup(name).is_none() {
                        if let Some((p, ar)) = Prim::lookup(name) {
                            let args: Vec<Expr<VarId>> =
                                args.iter().map(|a| self.rename(a)).collect::<Result<_>>()?;
                            return self.prim_app(p, ar, name, args);
                        }
                    }
                }
                let head = self.rename(head)?;
                let args: Vec<Expr<VarId>> =
                    args.iter().map(|a| self.rename(a)).collect::<Result<_>>()?;
                Ok(Expr::App(Box::new(head), args))
            }
            Expr::PrimApp(p, args) => Ok(Expr::PrimApp(
                *p,
                args.iter().map(|a| self.rename(a)).collect::<Result<_>>()?,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::desugar;
    use lesgs_sexpr::parse_one;

    fn rn(src: &str) -> Result<Expr<VarId>> {
        let surface = desugar::expr(&parse_one(src).unwrap()).unwrap();
        Renamer::new().rename(&surface)
    }

    #[test]
    fn shadowing() {
        let e = rn("(let ((x 1)) (let ((x x)) x))").unwrap();
        let Expr::Let(outer, body) = e else {
            panic!("{e}")
        };
        let outer_x = outer[0].0;
        let Expr::Let(inner, inner_body) = *body else {
            panic!()
        };
        let inner_x = inner[0].0;
        assert_ne!(outer_x, inner_x);
        assert_eq!(inner[0].1, Expr::Var(outer_x));
        assert_eq!(*inner_body, Expr::Var(inner_x));
    }

    #[test]
    fn unbound_variable() {
        let err = rn("nope").unwrap_err();
        assert!(err.message.contains("unbound variable `nope`"));
    }

    #[test]
    fn prims_resolve_in_operator_position() {
        let e = rn("(car x)").unwrap_err(); // x unbound
        assert!(e.message.contains("`x`"));
        let e = rn("(let ((x '(1))) (car x))").unwrap();
        assert!(e.to_string().contains("%car"), "{e}");
    }

    #[test]
    fn shadowed_prims_are_variables() {
        let e = rn("(let ((car 1)) car)").unwrap();
        let Expr::Let(_, body) = e else { panic!() };
        assert!(matches!(*body, Expr::Var(_)));
    }

    #[test]
    fn prims_as_values_eta_expand() {
        let e = rn("car").unwrap();
        let Expr::Lambda(l) = e else { panic!("{e}") };
        assert_eq!(l.params.len(), 1);
        assert!(matches!(*l.body, Expr::PrimApp(Prim::Car, _)));
    }

    #[test]
    fn variadic_add_folds() {
        assert_eq!(rn("(+)").unwrap().to_string(), "0");
        assert_eq!(rn("(+ 1)").unwrap().to_string(), "1");
        assert_eq!(rn("(+ 1 2 3)").unwrap().to_string(), "(%+ (%+ 1 2) 3)");
    }

    #[test]
    fn unary_minus_negates() {
        assert_eq!(rn("(- 5)").unwrap().to_string(), "(%- 0 5)");
        assert_eq!(rn("(- 5 2 1)").unwrap().to_string(), "(%- (%- 5 2) 1)");
    }

    #[test]
    fn chained_comparison() {
        let e = rn("(< 1 2 3)").unwrap().to_string();
        assert!(e.contains("(%< "), "{e}");
        assert!(e.contains("(if "), "{e}");
        assert!(rn("(< 1)").is_err());
    }

    #[test]
    fn make_vector_two_forms() {
        let e = rn("(make-vector 3)").unwrap();
        assert!(matches!(e, Expr::PrimApp(Prim::MakeVector, _)));
        let e = rn("(make-vector 3 0)").unwrap();
        assert!(matches!(e, Expr::PrimApp(Prim::MakeVectorFill, _)));
    }

    #[test]
    fn arity_errors() {
        assert!(rn("(car)").is_err());
        assert!(rn("(cons 1)").is_err());
        assert!(rn("(-)").is_err());
    }

    #[test]
    fn duplicate_bindings_rejected() {
        assert!(rn("(lambda (x x) x)").is_err());
        assert!(rn("(let ((x 1) (x 2)) x)").is_err());
    }

    #[test]
    fn set_of_primitive_rejected() {
        assert!(rn("(set! car 1)").is_err());
    }

    #[test]
    fn globals_resolve_when_unbound() {
        let surface = desugar::expr(&parse_one("(+ g1 g2)").unwrap()).unwrap();
        let mut r = Renamer::new();
        r.set_globals(&["g1".to_owned(), "g2".to_owned()]);
        let e = r.rename(&surface).unwrap();
        assert_eq!(e.to_string(), "(%+ (global 0) (global 1))");
    }

    #[test]
    fn lexical_bindings_shadow_globals() {
        let surface = desugar::expr(&parse_one("(let ((g1 5)) g1)").unwrap()).unwrap();
        let mut r = Renamer::new();
        r.set_globals(&["g1".to_owned()]);
        let e = r.rename(&surface).unwrap();
        assert!(!e.to_string().contains("global"), "{e}");
    }

    #[test]
    fn set_of_global_becomes_global_set() {
        let surface = desugar::expr(&parse_one("(set! g1 7)").unwrap()).unwrap();
        let mut r = Renamer::new();
        r.set_globals(&["g1".to_owned()]);
        let e = r.rename(&surface).unwrap();
        assert_eq!(e.to_string(), "(global-set! 0 7)");
    }

    #[test]
    fn globals_do_not_mask_primitives_of_other_names() {
        let surface = desugar::expr(&parse_one("(car '(1))").unwrap()).unwrap();
        let mut r = Renamer::new();
        r.set_globals(&["g1".to_owned()]);
        let e = r.rename(&surface).unwrap();
        assert!(e.to_string().contains("%car"), "{e}");
    }

    #[test]
    fn letrec_sees_itself() {
        let e = rn("(letrec ((f (lambda (n) (f n)))) (f 0))").unwrap();
        let Expr::Letrec(bindings, _) = &e else {
            panic!()
        };
        let f_id = bindings[0].0;
        let body_ref = bindings[0].1.body.to_string();
        assert!(body_ref.contains(&f_id.to_string()));
    }
}
