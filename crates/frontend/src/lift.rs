//! Selective lambda lifting (the paper's §6 future work).
//!
//! "Other researchers have investigated the use of lambda lifting to
//! increase the number of arguments available for placement in
//! registers. While lambda lifting can easily result in net performance
//! decreases, it is worth investigating whether lambda lifting with an
//! appropriate set of heuristics can indeed increase the effectiveness
//! of our register allocator."
//!
//! This pass lifts the free variables of a `letrec` group into extra
//! parameters when doing so is certainly profitable:
//!
//! * every bound name is used **only in operator position** (no
//!   escapes), so every call site is known and rewritable;
//! * none of the free variables is itself an enclosing `letrec`
//!   procedure (passing one would make *it* escape);
//! * every lifted function still fits its parameters in the argument
//!   registers.
//!
//! A lifted group has no free variables left, so closure conversion
//! produces plain direct calls — no closure allocation, no `cp`
//! save/restore traffic. The classic beneficiary is a named-`let` loop
//! reading its enclosing procedure's parameters.

use std::collections::{BTreeSet, HashMap, HashSet};

use crate::ast::{Expr, Lambda};
use crate::closure::free_vars;
use crate::names::{Interner, VarId};

/// Options for the lifting pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiftOptions {
    /// Maximum parameter count after lifting (the number of argument
    /// registers; lifting beyond it would push arguments to the stack).
    pub max_params: usize,
}

impl Default for LiftOptions {
    fn default() -> LiftOptions {
        LiftOptions { max_params: 6 }
    }
}

/// Statistics from a lifting run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LiftStats {
    /// Letrec groups examined.
    pub groups: usize,
    /// Groups lifted.
    pub lifted: usize,
    /// Total variables turned into parameters.
    pub vars_lifted: usize,
}

/// Collects operator-position and value-position references to `names`.
fn reference_kinds(
    e: &Expr<VarId>,
    names: &HashSet<VarId>,
    operator: &mut HashSet<VarId>,
    value: &mut HashSet<VarId>,
) {
    match e {
        Expr::Const(_) | Expr::Global(_) => {}
        Expr::Var(v) => {
            if names.contains(v) {
                value.insert(*v);
            }
        }
        Expr::Set(_, rhs) | Expr::GlobalSet(_, rhs) => reference_kinds(rhs, names, operator, value),
        Expr::If(c, t, el) => {
            reference_kinds(c, names, operator, value);
            reference_kinds(t, names, operator, value);
            reference_kinds(el, names, operator, value);
        }
        Expr::Seq(es) => es
            .iter()
            .for_each(|e| reference_kinds(e, names, operator, value)),
        Expr::Lambda(l) => reference_kinds(&l.body, names, operator, value),
        Expr::Let(bs, b) => {
            bs.iter()
                .for_each(|(_, r)| reference_kinds(r, names, operator, value));
            reference_kinds(b, names, operator, value);
        }
        Expr::Letrec(bs, b) => {
            bs.iter()
                .for_each(|(_, l)| reference_kinds(&l.body, names, operator, value));
            reference_kinds(b, names, operator, value);
        }
        Expr::App(f, args) => {
            match f.as_ref() {
                Expr::Var(v) if names.contains(v) => {
                    operator.insert(*v);
                }
                other => reference_kinds(other, names, operator, value),
            }
            args.iter()
                .for_each(|a| reference_kinds(a, names, operator, value));
        }
        Expr::PrimApp(_, args) => args
            .iter()
            .for_each(|a| reference_kinds(a, names, operator, value)),
    }
}

/// Appends `extra` variables as arguments at every call of `names`.
fn append_args(e: &mut Expr<VarId>, names: &HashSet<VarId>, extra: &[VarId]) {
    match e {
        Expr::Const(_) | Expr::Var(_) | Expr::Global(_) => {}
        Expr::Set(_, rhs) | Expr::GlobalSet(_, rhs) => append_args(rhs, names, extra),
        Expr::If(c, t, el) => {
            append_args(c, names, extra);
            append_args(t, names, extra);
            append_args(el, names, extra);
        }
        Expr::Seq(es) => es.iter_mut().for_each(|e| append_args(e, names, extra)),
        Expr::Lambda(l) => append_args(&mut l.body, names, extra),
        Expr::Let(bs, b) => {
            bs.iter_mut()
                .for_each(|(_, r)| append_args(r, names, extra));
            append_args(b, names, extra);
        }
        Expr::Letrec(bs, b) => {
            bs.iter_mut()
                .for_each(|(_, l)| append_args(&mut l.body, names, extra));
            append_args(b, names, extra);
        }
        Expr::App(f, args) => {
            if let Expr::Var(v) = f.as_ref() {
                if names.contains(v) {
                    args.extend(extra.iter().map(|x| Expr::Var(*x)));
                }
            } else {
                append_args(f, names, extra);
            }
            args.iter_mut().for_each(|a| append_args(a, names, extra));
        }
        Expr::PrimApp(_, args) => args.iter_mut().for_each(|a| append_args(a, names, extra)),
    }
}

/// Substitutes variable references according to `map`.
fn substitute(e: &mut Expr<VarId>, map: &HashMap<VarId, VarId>) {
    match e {
        Expr::Const(_) | Expr::Global(_) => {}
        Expr::Var(v) => {
            if let Some(n) = map.get(v) {
                *v = *n;
            }
        }
        Expr::GlobalSet(_, rhs) => substitute(rhs, map),
        Expr::Set(v, rhs) => {
            if let Some(n) = map.get(v) {
                *v = *n;
            }
            substitute(rhs, map);
        }
        Expr::If(c, t, el) => {
            substitute(c, map);
            substitute(t, map);
            substitute(el, map);
        }
        Expr::Seq(es) => es.iter_mut().for_each(|e| substitute(e, map)),
        Expr::Lambda(l) => substitute(&mut l.body, map),
        Expr::Let(bs, b) => {
            bs.iter_mut().for_each(|(_, r)| substitute(r, map));
            substitute(b, map);
        }
        Expr::Letrec(bs, b) => {
            bs.iter_mut()
                .for_each(|(_, l)| substitute(&mut l.body, map));
            substitute(b, map);
        }
        Expr::App(f, args) => {
            substitute(f, map);
            args.iter_mut().for_each(|a| substitute(a, map));
        }
        Expr::PrimApp(_, args) => args.iter_mut().for_each(|a| substitute(a, map)),
    }
}

struct Lifter<'a> {
    interner: &'a mut Interner,
    options: LiftOptions,
    stats: LiftStats,
    /// Names of letrec-bound procedures currently in scope: these must
    /// never be lifted into argument position.
    proc_names: HashSet<VarId>,
}

impl Lifter<'_> {
    fn lift_letrec(&mut self, bindings: &mut [(VarId, Lambda<VarId>)], body: &mut Expr<VarId>) {
        self.stats.groups += 1;
        let group: HashSet<VarId> = bindings.iter().map(|(v, _)| *v).collect();

        // Escape analysis over the (already recursively lifted) bodies.
        let mut operator = HashSet::new();
        let mut value = HashSet::new();
        for (_, l) in bindings.iter() {
            reference_kinds(&l.body, &group, &mut operator, &mut value);
        }
        reference_kinds(body, &group, &mut operator, &mut value);
        if !value.is_empty() {
            return; // some procedure escapes: call sites unknown
        }

        // The group's free variables. Enclosing letrec procedures used
        // only in operator position are not real captures (closure
        // conversion turns those into direct calls), so only *data*
        // variables are lifted; a procedure used as a value blocks the
        // group (lifting it would make it escape).
        let mut free: BTreeSet<VarId> = BTreeSet::new();
        for (_, l) in bindings.iter() {
            free.extend(free_vars(&Expr::Lambda(l.clone())));
        }
        for v in &group {
            free.remove(v);
        }
        let proc_refs: HashSet<VarId> = free
            .iter()
            .filter(|v| self.proc_names.contains(v))
            .copied()
            .collect();
        if !proc_refs.is_empty() {
            let mut op = HashSet::new();
            let mut val = HashSet::new();
            for (_, l) in bindings.iter() {
                reference_kinds(&l.body, &proc_refs, &mut op, &mut val);
            }
            if !val.is_empty() {
                return; // an enclosing procedure is used as a value
            }
            for v in &proc_refs {
                free.remove(v);
            }
        }
        if free.is_empty() {
            return; // nothing to lift; closure conversion already wins
        }
        let extra: Vec<VarId> = free.into_iter().collect();
        if bindings
            .iter()
            .any(|(_, l)| l.params.len() + extra.len() > self.options.max_params)
        {
            return; // arguments would spill to the stack
        }

        // Rewrite every call site first (they reference the *outer*
        // variables, which is correct in the letrec body and gets
        // re-mapped inside each lambda by the substitution below).
        for (_, l) in bindings.iter_mut() {
            append_args(&mut l.body, &group, &extra);
        }
        append_args(body, &group, &extra);

        // Give each lambda its own fresh parameters for the lifted
        // variables and substitute.
        for (_, l) in bindings.iter_mut() {
            let mut map = HashMap::new();
            for v in &extra {
                let fresh = self.interner.fresh(format!("{}^", self.interner.name(*v)));
                map.insert(*v, fresh);
                l.params.push(fresh);
            }
            substitute(&mut l.body, &map);
        }

        self.stats.lifted += 1;
        self.stats.vars_lifted += extra.len();
    }

    fn walk(&mut self, e: &mut Expr<VarId>) {
        match e {
            Expr::Const(_) | Expr::Var(_) | Expr::Global(_) => {}
            Expr::Set(_, rhs) | Expr::GlobalSet(_, rhs) => self.walk(rhs),
            Expr::If(c, t, el) => {
                self.walk(c);
                self.walk(t);
                self.walk(el);
            }
            Expr::Seq(es) => es.iter_mut().for_each(|e| self.walk(e)),
            Expr::Lambda(l) => self.walk(&mut l.body),
            Expr::Let(bs, b) => {
                bs.iter_mut().for_each(|(_, r)| self.walk(r));
                self.walk(b);
            }
            Expr::Letrec(bindings, body) => {
                let names: Vec<VarId> = bindings.iter().map(|(v, _)| *v).collect();
                for v in &names {
                    self.proc_names.insert(*v);
                }
                // Inner groups first: lifting is bottom-up.
                for (_, l) in bindings.iter_mut() {
                    self.walk(&mut l.body);
                }
                self.walk(body);
                self.lift_letrec(bindings, body);
                for v in &names {
                    self.proc_names.remove(v);
                }
            }
            Expr::App(f, args) => {
                self.walk(f);
                args.iter_mut().for_each(|a| self.walk(a));
            }
            Expr::PrimApp(_, args) => args.iter_mut().for_each(|a| self.walk(a)),
        }
    }
}

/// Runs selective lambda lifting over a renamed, assignment-free
/// program expression. Returns statistics about what was lifted.
///
/// # Examples
///
/// ```
/// use lesgs_frontend::lift::{lift, LiftOptions};
/// use lesgs_frontend::pipeline;
///
/// let (mut core, mut names) = pipeline::front_to_core(
///     "(define (f a)
///        (let loop ((i 0)) (if (= i a) i (loop (+ i 1)))))
///      (f 3)",
/// ).unwrap();
/// let stats = lift(&mut core, &mut names, LiftOptions::default());
/// assert_eq!(stats.lifted, 1, "the loop captures `a` and gets lifted");
/// ```
pub fn lift(e: &mut Expr<VarId>, interner: &mut Interner, options: LiftOptions) -> LiftStats {
    let mut l = Lifter {
        interner,
        options,
        stats: LiftStats::default(),
        proc_names: HashSet::new(),
    };
    l.walk(e);
    l.stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closure;
    use crate::pipeline;

    fn lifted_closed(src: &str) -> (closure::ClosedProgram, LiftStats) {
        let (mut core, mut names) = pipeline::front_to_core(src).unwrap();
        let stats = lift(&mut core, &mut names, LiftOptions::default());
        (closure::close_program(&core, names, 0), stats)
    }

    #[test]
    fn capturing_loop_becomes_closed() {
        let (p, stats) =
            lifted_closed("(define (f a) (let loop ((i 0)) (if (= i a) i (loop (+ i 1))))) (f 3)");
        assert_eq!(stats.lifted, 1);
        assert_eq!(stats.vars_lifted, 1);
        let loop_fn = p.funcs.iter().find(|f| f.name == "loop").unwrap();
        assert!(loop_fn.is_closed(), "lifting removed the capture");
        assert_eq!(loop_fn.params.len(), 2, "i plus lifted a");
    }

    #[test]
    fn escaping_procedure_not_lifted() {
        let (p, stats) = lifted_closed(
            "(define (f a)
               (letrec ((g (lambda (x) (+ x a))))
                 (map g (list 1 2 a))))
             (f 3)",
        );
        assert_eq!(stats.lifted, 0, "g escapes into map");
        let g = p.funcs.iter().find(|f| f.name == "g").unwrap();
        assert!(!g.is_closed());
    }

    #[test]
    fn wide_functions_not_lifted() {
        // 5 params + 2 captures > 6 registers: lifting would spill.
        let (_, stats) = lifted_closed(
            "(define (f a b)
               (let loop ((p 0) (q 0) (r 0) (s 0) (t 0))
                 (if (= p a) (+ q (+ r (+ s (+ t b))))
                     (loop (+ p 1) q r s t))))
             (f 2 1)",
        );
        assert_eq!(stats.lifted, 0);
    }

    #[test]
    fn mutual_recursion_lifts_together() {
        let (p, stats) = lifted_closed(
            "(define (f k)
               (letrec ((even2? (lambda (n) (if (zero? n) (= k 0) (odd2? (- n 1)))))
                        (odd2? (lambda (n) (if (zero? n) (< 0 k) (even2? (- n 1))))))
                 (even2? 10)))
             (f 0)",
        );
        assert_eq!(stats.lifted, 1);
        assert!(p
            .funcs
            .iter()
            .find(|f| f.name == "even2?")
            .unwrap()
            .is_closed());
        assert!(p
            .funcs
            .iter()
            .find(|f| f.name == "odd2?")
            .unwrap()
            .is_closed());
    }

    #[test]
    fn enclosing_procedure_never_lifted_into_args() {
        // The inner loop references the outer letrec procedure `g`
        // only as an operator; g must not become an argument.
        let (_, stats) = lifted_closed(
            "(define (g x) (+ x 1))
             (define (f a)
               (let loop ((i 0)) (if (= i a) (g i) (loop (g i)))))
             (f 3)",
        );
        // loop captures only `a` (g is top-level letrec, excluded), so
        // it still lifts `a` alone… unless g is free too, in which case
        // the group is skipped. Either way nothing crashes and any
        // lifted group is register-clean.
        assert!(stats.groups >= 1);
    }

    // End-to-end semantics preservation is covered by the compiler
    // crate's differential tests with `lambda_lift` enabled.
}
