//! Mini-Scheme frontend for the lesgs compiler.
//!
//! The frontend turns parsed S-expressions into progressively more
//! explicit representations:
//!
//! 1. [`desugar`] expands derived forms (`let*`, named `let`, `cond`,
//!    `and`, `or`, `when`, `unless`, `do`, `list`, `vector`, …) into the
//!    small core language of [`ast::Expr`].
//! 2. [`rename`] alpha-renames every binding to a unique [`VarId`],
//!    resolves primitive names, and assembles top-level `define`s into a
//!    single expression.
//! 3. [`assignconv`] performs the assignment conversion the paper
//!    assumes ("we assume that assignment conversion has already been
//!    done, so there are no assignment expressions", §2) by boxing
//!    mutable variables.
//! 4. [`closure`] computes free variables and closure-converts the
//!    program into a set of first-order functions ([`ClosedProgram`]).
//!
//! # Examples
//!
//! ```
//! use lesgs_frontend::pipeline;
//!
//! let program = pipeline::front_to_closed(
//!     "(define (double x) (+ x x)) (double 21)",
//! ).unwrap();
//! assert!(program.funcs.len() >= 2); // `double` + main
//! ```

pub mod assignconv;
pub mod ast;
pub mod closure;
pub mod desugar;
pub mod lift;
pub mod names;
pub mod pipeline;
pub mod prim;
pub mod program;
pub mod rename;

pub use ast::{Const, Expr, Lambda};
pub use closure::{CExpr, Callee, ClosedFunc, ClosedProgram, FuncId};
pub use desugar::DesugarError;
pub use names::{Interner, VarId};
pub use prim::{Prim, PrimArity};
pub use rename::RenameError;

/// Any error the frontend can produce.
#[derive(Debug, Clone, PartialEq)]
pub enum FrontError {
    /// Reader-level failure.
    Parse(String),
    /// Structural failure while expanding derived forms.
    Desugar(DesugarError),
    /// Scoping failure (unbound variable, bad `define` placement, …).
    Rename(RenameError),
}

impl std::fmt::Display for FrontError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrontError::Parse(m) => write!(f, "{m}"),
            FrontError::Desugar(e) => write!(f, "{e}"),
            FrontError::Rename(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FrontError {}

impl From<DesugarError> for FrontError {
    fn from(e: DesugarError) -> Self {
        FrontError::Desugar(e)
    }
}

impl From<RenameError> for FrontError {
    fn from(e: RenameError) -> Self {
        FrontError::Rename(e)
    }
}
