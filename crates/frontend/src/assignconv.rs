//! Assignment conversion.
//!
//! The paper assumes "assignment conversion has already been done, so
//! there are no assignment expressions" (§2) — this pass establishes
//! that invariant. Every variable that is the target of a `set!` is
//! rebound to a heap cell; references become `unbox` and assignments
//! become `set-box!`. Afterwards a variable's value never changes, so
//! "variables need to be saved only once" holds for the allocator.

use std::collections::{HashMap, HashSet};

use crate::ast::{Expr, Lambda};
use crate::names::{Interner, VarId};
use crate::prim::Prim;

/// Collects all `set!` targets in `e`.
pub fn mutated_vars(e: &Expr<VarId>) -> HashSet<VarId> {
    fn walk(e: &Expr<VarId>, out: &mut HashSet<VarId>) {
        match e {
            Expr::Const(_) | Expr::Var(_) | Expr::Global(_) => {}
            Expr::Set(v, rhs) => {
                out.insert(*v);
                walk(rhs, out);
            }
            Expr::GlobalSet(_, rhs) => walk(rhs, out),
            Expr::If(c, t, el) => {
                walk(c, out);
                walk(t, out);
                walk(el, out);
            }
            Expr::Seq(es) => es.iter().for_each(|e| walk(e, out)),
            Expr::Lambda(l) => walk(&l.body, out),
            Expr::Let(bs, b) => {
                bs.iter().for_each(|(_, e)| walk(e, out));
                walk(b, out);
            }
            Expr::Letrec(bs, b) => {
                bs.iter().for_each(|(_, l)| walk(&l.body, out));
                walk(b, out);
            }
            Expr::App(f, args) => {
                walk(f, out);
                args.iter().for_each(|a| walk(a, out));
            }
            Expr::PrimApp(_, args) => args.iter().for_each(|a| walk(a, out)),
        }
    }
    let mut out = HashSet::new();
    walk(e, &mut out);
    out
}

struct Converter<'a> {
    interner: &'a mut Interner,
    mutated: HashSet<VarId>,
    /// Maps a mutated variable to the variable holding its cell.
    cells: HashMap<VarId, VarId>,
}

impl Converter<'_> {
    fn cell_for(&mut self, v: VarId) -> VarId {
        if let Some(&c) = self.cells.get(&v) {
            return c;
        }
        let name = format!("{}%cell", self.interner.name(v));
        let c = self.interner.fresh(name);
        self.cells.insert(v, c);
        c
    }

    fn convert_lambda(&mut self, l: &Lambda<VarId>) -> Lambda<VarId> {
        let body = self.convert(&l.body);
        // Mutated parameters: keep the parameter, bind a cell around
        // the body: (lambda (x) body) => (lambda (x) (let ((xc (box x))) body)).
        let mut wrapped = body;
        for p in l.params.iter().rev() {
            if self.mutated.contains(p) {
                let cell = self.cell_for(*p);
                wrapped = Expr::Let(
                    vec![(cell, Expr::PrimApp(Prim::MakeCell, vec![Expr::Var(*p)]))],
                    Box::new(wrapped),
                );
            }
        }
        Lambda {
            params: l.params.clone(),
            body: Box::new(wrapped),
            name: l.name.clone(),
        }
    }

    fn convert(&mut self, e: &Expr<VarId>) -> Expr<VarId> {
        match e {
            Expr::Const(c) => Expr::Const(c.clone()),
            Expr::Var(v) => {
                if self.mutated.contains(v) {
                    let cell = self.cell_for(*v);
                    Expr::PrimApp(Prim::CellRef, vec![Expr::Var(cell)])
                } else {
                    Expr::Var(*v)
                }
            }
            Expr::Global(g) => Expr::Global(*g),
            Expr::Set(v, rhs) => {
                let rhs = self.convert(rhs);
                let cell = self.cell_for(*v);
                Expr::PrimApp(Prim::CellSet, vec![Expr::Var(cell), rhs])
            }
            Expr::GlobalSet(g, rhs) => {
                // Globals live in dedicated locations; no boxing needed.
                Expr::GlobalSet(*g, Box::new(self.convert(rhs)))
            }
            Expr::If(c, t, el) => Expr::If(
                Box::new(self.convert(c)),
                Box::new(self.convert(t)),
                Box::new(self.convert(el)),
            ),
            Expr::Seq(es) => Expr::Seq(es.iter().map(|e| self.convert(e)).collect()),
            Expr::Lambda(l) => Expr::Lambda(self.convert_lambda(l)),
            Expr::Let(bs, b) => {
                // Mutated let-bound variables bind the cell directly:
                // (let ((x e)) body) => (let ((xc (box e))) body).
                let bindings = bs
                    .iter()
                    .map(|(v, rhs)| {
                        let rhs = self.convert(rhs);
                        if self.mutated.contains(v) {
                            let cell = self.cell_for(*v);
                            (cell, Expr::PrimApp(Prim::MakeCell, vec![rhs]))
                        } else {
                            (*v, rhs)
                        }
                    })
                    .collect();
                Expr::Let(bindings, Box::new(self.convert(b)))
            }
            Expr::Letrec(bs, b) => {
                // Desugaring guarantees letrec-bound names are never
                // assigned (assigned defines are demoted to values).
                for (v, _) in bs {
                    assert!(
                        !self.mutated.contains(v),
                        "letrec-bound variable cannot be assigned"
                    );
                }
                Expr::Letrec(
                    bs.iter()
                        .map(|(v, l)| (*v, self.convert_lambda(l)))
                        .collect(),
                    Box::new(self.convert(b)),
                )
            }
            Expr::App(f, args) => Expr::App(
                Box::new(self.convert(f)),
                args.iter().map(|a| self.convert(a)).collect(),
            ),
            Expr::PrimApp(p, args) => {
                Expr::PrimApp(*p, args.iter().map(|a| self.convert(a)).collect())
            }
        }
    }
}

/// Eliminates every `set!` in `e` by boxing mutated variables.
///
/// After this pass the expression contains no [`Expr::Set`] nodes.
///
/// # Examples
///
/// ```
/// use lesgs_frontend::{assignconv, desugar, rename::Renamer};
/// use lesgs_sexpr::parse_one;
///
/// let surface = desugar::expr(&parse_one(
///     "(let ((x 1)) (begin (set! x 2) x))").unwrap()).unwrap();
/// let mut r = Renamer::new();
/// let renamed = r.rename(&surface).unwrap();
/// let converted = assignconv::convert(&renamed, &mut r.interner);
/// let s = converted.to_string();
/// assert!(s.contains("%box"));
/// assert!(s.contains("%set-box!"));
/// assert!(s.contains("%unbox"));
/// ```
pub fn convert(e: &Expr<VarId>, interner: &mut Interner) -> Expr<VarId> {
    let mutated = mutated_vars(e);
    if mutated.is_empty() {
        return e.clone();
    }
    let mut c = Converter {
        interner,
        mutated,
        cells: HashMap::new(),
    };
    c.convert(e)
}

/// Returns true if the expression contains no assignments (the
/// invariant this pass establishes).
pub fn is_assignment_free(e: &Expr<VarId>) -> bool {
    mutated_vars(e).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::desugar;
    use crate::rename::Renamer;
    use lesgs_sexpr::parse_one;

    fn conv(src: &str) -> (Expr<VarId>, String) {
        let surface = desugar::expr(&parse_one(src).unwrap()).unwrap();
        let mut r = Renamer::new();
        let renamed = r.rename(&surface).unwrap();
        let converted = convert(&renamed, &mut r.interner);
        let s = converted.to_string();
        (converted, s)
    }

    #[test]
    fn unmutated_is_untouched() {
        let (_, s) = conv("(let ((x 1)) x)");
        assert!(!s.contains("box"), "{s}");
    }

    #[test]
    fn let_bound_mutation_boxes() {
        let (e, s) = conv("(let ((x 1)) (begin (set! x 2) x))");
        assert!(is_assignment_free(&e));
        assert!(s.contains("(%box 1)"), "{s}");
        assert!(s.contains("%set-box!"), "{s}");
        assert!(s.contains("%unbox"), "{s}");
    }

    #[test]
    fn parameter_mutation_wraps_body() {
        let (e, s) = conv("(lambda (x) (begin (set! x 2) x))");
        assert!(is_assignment_free(&e));
        // Body must start with a let binding the cell over the raw param.
        assert!(s.contains("(%box v0)"), "{s}");
    }

    #[test]
    fn unmutated_siblings_stay_plain() {
        let (e, s) = conv("(let ((x 1) (y 2)) (begin (set! x y) x))");
        assert!(is_assignment_free(&e));
        // Only `x` is boxed; `y` stays a plain binding.
        assert_eq!(s.matches("%box").count(), 1, "{s}");
        assert_eq!(s.matches("%unbox").count(), 1, "{s}");
    }

    #[test]
    fn general_letrec_via_desugar_is_convertible() {
        // (letrec ((x 1)) x) desugars to let + set!, which this pass boxes.
        let (e, s) = conv("(letrec ((x 1) (f (lambda () x))) x)");
        assert!(is_assignment_free(&e));
        assert!(s.contains("%box"), "{s}");
    }

    #[test]
    fn set_result_is_cellset_value() {
        let (e, _) = conv("(let ((x 1)) (set! x 2))");
        assert!(is_assignment_free(&e));
    }
}
