//! The primitive operations of the mini-Scheme dialect.
//!
//! Primitives are recognized by the renamer when their name is not
//! shadowed by a binding; variadic surface primitives (`+`, `list`,
//! `vector`, …) are expanded into fixed-arity applications of these
//! operations during renaming.

use std::fmt;

/// A fixed-arity primitive operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Prim {
    // Arithmetic
    /// `(+ a b)`
    Add,
    /// `(- a b)`
    Sub,
    /// `(* a b)`
    Mul,
    /// `(quotient a b)` — truncating division.
    Quotient,
    /// `(remainder a b)`
    Remainder,
    /// `(modulo a b)`
    Modulo,
    /// `(abs a)`
    Abs,
    /// `(min a b)`
    Min,
    /// `(max a b)`
    Max,
    /// `(add1 a)` — also `1+`.
    Add1,
    /// `(sub1 a)` — also `1-` / `-1+`.
    Sub1,
    // Numeric predicates
    /// `(zero? a)`
    IsZero,
    /// `(positive? a)`
    IsPositive,
    /// `(negative? a)`
    IsNegative,
    /// `(even? a)`
    IsEven,
    /// `(odd? a)`
    IsOdd,
    // Comparison
    /// `(= a b)`
    NumEq,
    /// `(< a b)`
    Lt,
    /// `(<= a b)`
    Le,
    /// `(> a b)`
    Gt,
    /// `(>= a b)`
    Ge,
    // Equality and type predicates
    /// `(eq? a b)` — pointer/immediate identity.
    IsEq,
    /// `(eqv? a b)`
    IsEqv,
    /// `(equal? a b)` — structural equality.
    IsEqual,
    /// `(not a)`
    Not,
    /// `(pair? a)`
    IsPair,
    /// `(null? a)`
    IsNull,
    /// `(symbol? a)`
    IsSymbol,
    /// `(number? a)`
    IsNumber,
    /// `(boolean? a)`
    IsBoolean,
    /// `(procedure? a)`
    IsProcedure,
    /// `(vector? a)`
    IsVector,
    /// `(string? a)`
    IsString,
    /// `(char? a)`
    IsChar,
    // Pairs
    /// `(cons a d)`
    Cons,
    /// `(car p)`
    Car,
    /// `(cdr p)`
    Cdr,
    /// `(set-car! p v)`
    SetCar,
    /// `(set-cdr! p v)`
    SetCdr,
    // Vectors
    /// `(make-vector n)` — filled with `0`.
    MakeVector,
    /// `(make-vector n fill)`
    MakeVectorFill,
    /// `(vector-ref v i)`
    VectorRef,
    /// `(vector-set! v i x)`
    VectorSet,
    /// `(vector-length v)`
    VectorLength,
    // Strings and chars
    /// `(string-length s)`
    StringLength,
    /// `(char->integer c)`
    CharToInteger,
    // Output
    /// `(display x)` — writes to the program's output buffer.
    Display,
    /// `(write x)`
    Write,
    /// `(newline)`
    Newline,
    // Control / misc
    /// `(error msg)` — aborts execution with a message.
    Error,
    /// `(void)`
    Void,
    // Cells introduced by assignment conversion (also available as
    // `box` / `unbox` / `set-box!`).
    /// `(box v)`
    MakeCell,
    /// `(unbox c)`
    CellRef,
    /// `(set-box! c v)`
    CellSet,
}

/// How a surface name maps onto [`Prim`] applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrimArity {
    /// Exactly `n` arguments.
    Fixed(u8),
    /// `+` / `*`: any number of arguments, folded left with an identity.
    FoldLeft { identity: i64 },
    /// `-`: one argument negates, more fold left.
    SubLike,
    /// Comparisons: two or more arguments, chained pairwise.
    Chain,
}

impl Prim {
    /// The number of arguments the fixed-arity operation takes.
    pub fn arity(self) -> usize {
        use Prim::*;
        match self {
            Void | Newline => 0,
            Abs | Add1 | Sub1 | IsZero | IsPositive | IsNegative | IsEven | IsOdd | Not
            | IsPair | IsNull | IsSymbol | IsNumber | IsBoolean | IsProcedure | IsVector
            | IsString | IsChar | Car | Cdr | MakeVector | VectorLength | StringLength
            | CharToInteger | Display | Write | Error | MakeCell | CellRef => 1,
            Add | Sub | Mul | Quotient | Remainder | Modulo | Min | Max | NumEq | Lt | Le | Gt
            | Ge | IsEq | IsEqv | IsEqual | Cons | SetCar | SetCdr | MakeVectorFill | VectorRef
            | CellSet => 2,
            VectorSet => 3,
        }
    }

    /// True if evaluating the primitive can observably affect the store
    /// or the output (so it must not be dropped or reordered).
    pub fn has_side_effects(self) -> bool {
        use Prim::*;
        matches!(
            self,
            SetCar | SetCdr | VectorSet | Display | Write | Newline | Error | CellSet
        )
    }

    /// True if the primitive reads or writes heap memory (used by the
    /// VM cost model).
    pub fn touches_memory(self) -> bool {
        use Prim::*;
        matches!(
            self,
            Cons | Car
                | Cdr
                | SetCar
                | SetCdr
                | MakeVector
                | MakeVectorFill
                | VectorRef
                | VectorSet
                | VectorLength
                | StringLength
                | IsEqual
                | MakeCell
                | CellRef
                | CellSet
        )
    }

    /// The canonical Scheme-level name.
    pub fn name(self) -> &'static str {
        use Prim::*;
        match self {
            Add => "+",
            Sub => "-",
            Mul => "*",
            Quotient => "quotient",
            Remainder => "remainder",
            Modulo => "modulo",
            Abs => "abs",
            Min => "min",
            Max => "max",
            Add1 => "add1",
            Sub1 => "sub1",
            IsZero => "zero?",
            IsPositive => "positive?",
            IsNegative => "negative?",
            IsEven => "even?",
            IsOdd => "odd?",
            NumEq => "=",
            Lt => "<",
            Le => "<=",
            Gt => ">",
            Ge => ">=",
            IsEq => "eq?",
            IsEqv => "eqv?",
            IsEqual => "equal?",
            Not => "not",
            IsPair => "pair?",
            IsNull => "null?",
            IsSymbol => "symbol?",
            IsNumber => "number?",
            IsBoolean => "boolean?",
            IsProcedure => "procedure?",
            IsVector => "vector?",
            IsString => "string?",
            IsChar => "char?",
            Cons => "cons",
            Car => "car",
            Cdr => "cdr",
            SetCar => "set-car!",
            SetCdr => "set-cdr!",
            MakeVector => "make-vector",
            MakeVectorFill => "make-vector-fill",
            VectorRef => "vector-ref",
            VectorSet => "vector-set!",
            VectorLength => "vector-length",
            StringLength => "string-length",
            CharToInteger => "char->integer",
            Display => "display",
            Write => "write",
            Newline => "newline",
            Error => "error",
            Void => "void",
            MakeCell => "box",
            CellRef => "unbox",
            CellSet => "set-box!",
        }
    }

    /// Looks up a surface name, returning the primitive and its surface
    /// calling convention, or `None` for non-primitive names.
    ///
    /// ```
    /// use lesgs_frontend::{Prim, PrimArity};
    /// assert_eq!(Prim::lookup("car"), Some((Prim::Car, PrimArity::Fixed(1))));
    /// assert_eq!(Prim::lookup("+"), Some((Prim::Add, PrimArity::FoldLeft { identity: 0 })));
    /// assert_eq!(Prim::lookup("frob"), None);
    /// ```
    pub fn lookup(name: &str) -> Option<(Prim, PrimArity)> {
        use Prim::*;
        let fixed = |p: Prim| Some((p, PrimArity::Fixed(p.arity() as u8)));
        match name {
            "+" => Some((Add, PrimArity::FoldLeft { identity: 0 })),
            "*" => Some((Mul, PrimArity::FoldLeft { identity: 1 })),
            "-" => Some((Sub, PrimArity::SubLike)),
            "=" => Some((NumEq, PrimArity::Chain)),
            "<" => Some((Lt, PrimArity::Chain)),
            "<=" => Some((Le, PrimArity::Chain)),
            ">" => Some((Gt, PrimArity::Chain)),
            ">=" => Some((Ge, PrimArity::Chain)),
            "quotient" => fixed(Quotient),
            "remainder" => fixed(Remainder),
            "modulo" => fixed(Modulo),
            "abs" => fixed(Abs),
            "min" => fixed(Min),
            "max" => fixed(Max),
            "add1" | "1+" => fixed(Add1),
            "sub1" | "1-" | "-1+" => fixed(Sub1),
            "zero?" => fixed(IsZero),
            "positive?" => fixed(IsPositive),
            "negative?" => fixed(IsNegative),
            "even?" => fixed(IsEven),
            "odd?" => fixed(IsOdd),
            "eq?" => fixed(IsEq),
            "eqv?" => fixed(IsEqv),
            "equal?" => fixed(IsEqual),
            "not" => fixed(Not),
            "pair?" => fixed(IsPair),
            "null?" => fixed(IsNull),
            "symbol?" => fixed(IsSymbol),
            "number?" | "integer?" | "fixnum?" => fixed(IsNumber),
            "boolean?" => fixed(IsBoolean),
            "procedure?" => fixed(IsProcedure),
            "vector?" => fixed(IsVector),
            "string?" => fixed(IsString),
            "char?" => fixed(IsChar),
            "cons" => fixed(Cons),
            "car" => fixed(Car),
            "cdr" => fixed(Cdr),
            "set-car!" => fixed(SetCar),
            "set-cdr!" => fixed(SetCdr),
            "vector-ref" => fixed(VectorRef),
            "vector-set!" => fixed(VectorSet),
            "vector-length" => fixed(VectorLength),
            "string-length" => fixed(StringLength),
            "char->integer" => fixed(CharToInteger),
            "display" => fixed(Display),
            "write" => fixed(Write),
            "newline" => fixed(Newline),
            "error" => fixed(Error),
            "void" => fixed(Void),
            "box" => fixed(MakeCell),
            "unbox" => fixed(CellRef),
            "set-box!" => fixed(CellSet),
            // `make-vector` is 1-or-2 argument; the renamer picks the
            // right fixed primitive, so report the 1-argument one here.
            "make-vector" => fixed(MakeVector),
            _ => None,
        }
    }
}

impl fmt::Display for Prim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_lookup() {
        for name in ["car", "cons", "vector-set!", "newline", "abs"] {
            let (p, ar) = Prim::lookup(name).unwrap();
            match ar {
                PrimArity::Fixed(n) => assert_eq!(n as usize, p.arity(), "{name}"),
                other => panic!("{name} unexpectedly variadic: {other:?}"),
            }
        }
    }

    #[test]
    fn names_roundtrip() {
        for p in [
            Prim::Add,
            Prim::Car,
            Prim::VectorSet,
            Prim::IsNull,
            Prim::MakeCell,
        ] {
            let (q, _) = Prim::lookup(p.name()).unwrap();
            assert_eq!(p, q);
        }
    }

    #[test]
    fn variadic_classification() {
        assert_eq!(
            Prim::lookup("+").unwrap().1,
            PrimArity::FoldLeft { identity: 0 }
        );
        assert_eq!(Prim::lookup("-").unwrap().1, PrimArity::SubLike);
        assert_eq!(Prim::lookup("<").unwrap().1, PrimArity::Chain);
    }

    #[test]
    fn effects_and_memory() {
        assert!(Prim::SetCar.has_side_effects());
        assert!(!Prim::Car.has_side_effects());
        assert!(Prim::Car.touches_memory());
        assert!(!Prim::Add.touches_memory());
    }

    #[test]
    fn aliases() {
        assert_eq!(Prim::lookup("1+").unwrap().0, Prim::Add1);
        assert_eq!(Prim::lookup("-1+").unwrap().0, Prim::Sub1);
        assert_eq!(Prim::lookup("integer?").unwrap().0, Prim::IsNumber);
    }
}
