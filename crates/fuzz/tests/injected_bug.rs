//! End-to-end sensitivity check: with the `inject-save-bug` feature the
//! allocator deliberately drops one register from each root save set,
//! and the fuzzer must (a) catch the resulting miscompile within a
//! small campaign and (b) shrink it to a short, readable repro.
//!
//! Run with:
//!
//! ```text
//! cargo test -p lesgs-fuzz --features inject-save-bug --test injected_bug
//! ```
//!
//! Without the feature this file compiles to nothing, so the regular
//! suite is unaffected.
#![cfg(feature = "inject-save-bug")]

use lesgs_fuzz::{fuzz_case, parse_cli, CaseOutcome, FuzzOptions};

#[test]
fn injected_save_bug_is_caught_and_shrunk_small() {
    let opts = FuzzOptions {
        seed: 0,
        cases: 200,
        ..Default::default()
    };
    for index in 0..opts.cases {
        let (_, _, find) = fuzz_case(index, &opts);
        let Some(find) = find else { continue };
        assert!(
            find.failure.is_miscompile(),
            "find should be a miscompile: {}",
            find.failure
        );
        let lines = find.shrunk.lines().count();
        assert!(
            lines <= 15,
            "shrunk repro too large ({lines} lines):\n{}",
            find.shrunk
        );
        assert!(
            find.shrunk.len() < find.original.len(),
            "shrinker made no progress"
        );
        return;
    }
    panic!(
        "injected save bug not caught in {} cases — the fuzzer lost \
         sensitivity to save-set errors",
        opts.cases
    );
}

/// Regression test: a find from a non-default-fuel campaign prints a
/// repro command that carries that fuel, and replaying the command
/// through the real CLI parser reproduces the same failure kind.
/// `repro_command` used to drop `--fuel`, so low-fuel finds replayed
/// under the 20M default — a different campaign than the one reported.
#[test]
fn low_fuel_find_repro_command_replays_the_same_failure_kind() {
    let mut opts = FuzzOptions {
        seed: 0,
        cases: 200,
        ..Default::default()
    };
    opts.oracle.fuel = 100_000;
    for index in 0..opts.cases {
        let (_, _, find) = fuzz_case(index, &opts);
        let Some(find) = find else { continue };
        let cmd = find.repro_command(&opts);
        let cli = parse_cli(cmd.split_whitespace().skip(1).map(str::to_owned))
            .unwrap_or_else(|e| panic!("printed command `{cmd}` does not parse: {e}"));
        assert_eq!(
            cli.opts.oracle.fuel, 100_000,
            "repro command dropped the non-default --fuel: {cmd}"
        );
        assert_eq!(cli.opts.seed, find.seed);
        assert_eq!(cli.opts.cases, 1);
        let (_, replayed, _) = fuzz_case(0, &cli.opts);
        match replayed {
            CaseOutcome::Find(f) => assert_eq!(
                std::mem::discriminant(&f.kind),
                std::mem::discriminant(&find.failure.kind),
                "replay failed differently: {} vs {}",
                f,
                find.failure
            ),
            other => panic!("replayed command `{cmd}` did not reproduce the find: {other:?}"),
        }
        return;
    }
    panic!("no find in {} cases under the injected bug", opts.cases);
}
