//! End-to-end sensitivity check: with the `inject-save-bug` feature the
//! allocator deliberately drops one register from each root save set,
//! and the fuzzer must (a) catch the resulting miscompile within a
//! small campaign and (b) shrink it to a short, readable repro.
//!
//! Run with:
//!
//! ```text
//! cargo test -p lesgs-fuzz --features inject-save-bug --test injected_bug
//! ```
//!
//! Without the feature this file compiles to nothing, so the regular
//! suite is unaffected.
#![cfg(feature = "inject-save-bug")]

use lesgs_fuzz::{fuzz_case, FuzzOptions};

#[test]
fn injected_save_bug_is_caught_and_shrunk_small() {
    let opts = FuzzOptions {
        seed: 0,
        cases: 200,
        ..Default::default()
    };
    for index in 0..opts.cases {
        let (_, _, find) = fuzz_case(index, &opts);
        let Some(find) = find else { continue };
        assert!(
            find.failure.is_miscompile(),
            "find should be a miscompile: {}",
            find.failure
        );
        let lines = find.shrunk.lines().count();
        assert!(
            lines <= 15,
            "shrunk repro too large ({lines} lines):\n{}",
            find.shrunk
        );
        assert!(
            find.shrunk.len() < find.original.len(),
            "shrinker made no progress"
        );
        return;
    }
    panic!(
        "injected save bug not caught in {} cases — the fuzzer lost \
         sensitivity to save-set errors",
        opts.cases
    );
}
