//! The parallel campaign's determinism guarantee, end to end: for the
//! same options, every observable campaign artifact — the per-case
//! stream delivered to the visitor, rendered corpus files, and the
//! final report — is byte-identical whatever `--jobs` says. This is
//! what lets a find reported by a `--jobs 8` CI campaign be replayed
//! with the sequential default and land on the same case.

use lesgs_fuzz::{run_fuzz_observed, CaseOutcome, FuzzOptions};

/// Everything the binary could have printed or written for one case,
/// serialized for comparison.
fn transcript(opts: &FuzzOptions) -> Vec<String> {
    let mut lines = Vec::new();
    let (report, stats) = run_fuzz_observed::<std::convert::Infallible>(opts, |case| {
        lines.push(format!(
            "case {} outcome {:?} source {:?}",
            case.index, case.outcome, case.source
        ));
        if let Some(find) = case.find {
            lines.push(format!("repro {}", find.repro_command(opts)));
            lines.push(format!("corpus {:?}", find.to_corpus_file(opts)));
        }
        Ok(())
    })
    .unwrap_or_else(|never| match never {});
    lines.push(format!("report {report:?}"));
    assert_eq!(stats.submitted, opts.cases);
    assert_eq!(stats.completed, opts.cases);
    lines
}

#[test]
fn campaign_transcript_is_byte_identical_across_job_counts() {
    let mut opts = FuzzOptions {
        seed: 7,
        cases: 30,
        ..FuzzOptions::default()
    };
    // A non-default fuel both exercises the repro-command fix (the
    // printed command must carry it) and keeps slow cases cheap.
    opts.oracle.fuel = 200_000;

    let sequential = transcript(&opts);
    opts.jobs = 4;
    let parallel = transcript(&opts);

    assert_eq!(sequential.len(), parallel.len());
    for (s, p) in sequential.iter().zip(&parallel) {
        assert_eq!(s, p);
    }
}

#[test]
fn visitor_sees_every_case_in_order_even_when_parallel() {
    let opts = FuzzOptions {
        seed: 3,
        cases: 17,
        jobs: 4,
        ..FuzzOptions::default()
    };
    let mut indexes = Vec::new();
    let (report, _) = run_fuzz_observed::<std::convert::Infallible>(&opts, |case| {
        indexes.push(case.index);
        // The find reference must be present exactly on Find outcomes.
        assert_eq!(
            case.find.is_some(),
            matches!(case.outcome, CaseOutcome::Find(_))
        );
        Ok(())
    })
    .unwrap_or_else(|never| match never {});
    assert_eq!(indexes, (0..17).collect::<Vec<_>>());
    assert_eq!(report.cases, 17);
}

#[test]
fn visitor_error_stops_the_campaign() {
    let opts = FuzzOptions {
        seed: 0,
        cases: 40,
        jobs: 4,
        ..FuzzOptions::default()
    };
    let mut visited = 0u64;
    let out = run_fuzz_observed(&opts, |case| {
        visited += 1;
        if case.index == 5 {
            Err("stop here".to_owned())
        } else {
            Ok(())
        }
    });
    assert_eq!(out.unwrap_err(), "stop here");
    assert_eq!(visited, 6, "cases after the error must not be visited");
}
