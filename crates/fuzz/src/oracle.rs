//! The cross-backend differential oracle.
//!
//! One generated program is judged by running it through the reference
//! interpreter (`lesgs-interp`) and through the compiled VM under every
//! allocator configuration of
//! [`config_matrix`](lesgs_compiler::config_matrix), with the bytecode
//! verifier as a must-pass gate before execution. The outcome taxonomy
//! keeps timeouts and generator artifacts out of the bug bucket:
//!
//! * **Pass** — every configuration verified and agreed with the
//!   interpreter on value and output.
//! * **Skip** — no verdict: a fuel budget ran out, or the oracle itself
//!   failed (e.g. fixnum overflow the generator failed to prevent).
//!   Skips are counted, never reported as finds.
//! * **Find** — evidence of a compiler bug: a compile error on a
//!   well-formed program, a bytecode-verification failure, a VM runtime
//!   error, or an outcome mismatch. The offending [`AllocConfig`] rides
//!   along in the [`DiffFailure`].

use lesgs_compiler::{
    config_matrix, differential_check_detailed, differential_check_parallel_spec, DiffFailure,
    DiffKind,
};
use lesgs_core::AllocConfig;

/// Oracle settings: the configuration matrix and the shared fuel
/// budget (interpreter steps and VM instructions).
#[derive(Debug, Clone)]
pub struct OracleConfig {
    /// Allocator configurations to cross-check.
    pub configs: Vec<AllocConfig>,
    /// Step/instruction budget per execution.
    pub fuel: u64,
    /// Disable speculative inline-cache dispatch in the judged VM runs
    /// (the `lesgs-fuzz --no-speculation` leg of the CI
    /// speculation-differential gate; verdicts and stdout must be
    /// byte-identical either way).
    pub no_speculation: bool,
}

impl Default for OracleConfig {
    fn default() -> OracleConfig {
        OracleConfig {
            configs: config_matrix(),
            fuel: 20_000_000,
            no_speculation: false,
        }
    }
}

/// Why a case produced no verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SkipReason {
    /// A fuel budget ran out (in the oracle or in one configuration).
    Fuel,
    /// The reference interpreter failed the program, so there is
    /// nothing to compare against. On generated programs this points
    /// at a generator bug, not a compiler bug.
    OracleError(String),
}

/// The oracle's verdict on one program.
#[derive(Debug, Clone)]
pub enum CaseOutcome {
    /// All configurations verified and agreed with the interpreter.
    Pass,
    /// No verdict (see [`SkipReason`]).
    Skip(SkipReason),
    /// Evidence of a compiler bug under the failure's configuration.
    Find(DiffFailure),
}

/// Judges one program source against the oracle configuration.
pub fn check_source(src: &str, oc: &OracleConfig) -> CaseOutcome {
    match differential_check_parallel_spec(src, &oc.configs, oc.fuel, 1, oc.no_speculation) {
        Ok(()) => CaseOutcome::Pass,
        Err(f) => match &f.kind {
            DiffKind::FuelExhausted => CaseOutcome::Skip(SkipReason::Fuel),
            DiffKind::OracleError { message } => {
                CaseOutcome::Skip(SkipReason::OracleError(message.clone()))
            }
            _ => CaseOutcome::Find(f),
        },
    }
}

/// True when `src` still fails (with any miscompile kind) under the
/// single given configuration — the fast predicate the shrinker runs
/// per candidate, checking only the configuration the original find
/// implicated.
pub fn still_fails_under(src: &str, config: &AllocConfig, fuel: u64) -> bool {
    match differential_check_detailed(src, std::slice::from_ref(config), fuel) {
        Ok(()) => false,
        Err(f) => f.is_miscompile(),
    }
}
