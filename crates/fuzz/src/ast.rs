//! The generated-program AST.
//!
//! Programs are two-sorted: [`Expr`] always evaluates to a fixnum and
//! [`Pred`] always evaluates to a boolean, so every tree this module
//! can represent is a well-typed LANGUAGE.md program. The shrinker
//! relies on this: any sort-preserving rewrite yields another program
//! the oracle can run, which keeps the shrink predicate about
//! *miscompiles* rather than about accidental type errors.
//!
//! Termination is likewise structural: every top-level procedure takes
//! the depth guard `d` as its first parameter, its body is
//! `(if (<= d 0) base recur)`, and every recursive call passes
//! `(- d 1)` — see the generator for the full argument.

use std::fmt;

/// A numeric expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A fixnum literal.
    Num(i64),
    /// A variable reference.
    Var(String),
    /// `(if p t e)` — the branches are numeric, the test boolean.
    If(Box<Pred>, Box<Expr>, Box<Expr>),
    /// `(let ((v e)…) body)`.
    Let(Vec<(String, Expr)>, Box<Expr>),
    /// A primitive application rendered as `(op args…)`. The generator
    /// only emits total numeric operators (wrapped division and
    /// modulus by positive literals).
    Prim(&'static str, Vec<Expr>),
    /// A call to a top-level or let-bound procedure.
    Call(String, Vec<Expr>),
    /// `(let ((f (lambda (params…) fbody))) body)` — a local closure,
    /// exercising `cp` shuffling at its call sites inside `body`.
    LetFun {
        /// The bound procedure name.
        name: String,
        /// Its parameters.
        params: Vec<String>,
        /// The (pure, non-recursive) procedure body.
        fbody: Box<Expr>,
        /// The expression the binding scopes over.
        body: Box<Expr>,
    },
    /// A bounded named-`let` accumulator loop:
    /// `(let name ((i init) (acc acc0))
    ///    (if (<= i 0) acc (name (- i 1) (remainder (+ acc step) 99991))))`.
    /// Proper tail calls by construction; terminates because `i`
    /// strictly decreases.
    Loop {
        /// The loop (and iteration variable) base name; `i`/`acc`
        /// variables derive from it.
        name: String,
        /// Initial counter value (any value; non-positive exits
        /// immediately).
        init: Box<Expr>,
        /// Initial accumulator.
        acc0: Box<Expr>,
        /// Step expression, evaluated with `i` and `acc` in scope.
        step: Box<Expr>,
    },
    /// `(begin (display e) (newline) k)` — output followed by a
    /// continuation. Only generated on main's spine, never inside
    /// procedures, so output order is identical across backends even
    /// though argument evaluation order is unspecified.
    Display(Box<Expr>, Box<Expr>),
}

/// A boolean expression (only ever in test position).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pred {
    /// A unary numeric predicate: `zero?`, `odd?`, `even?`,
    /// `positive?`, `negative?`.
    Test(&'static str, Box<Expr>),
    /// A binary comparison: `<`, `<=`, `>`, `>=`, `=`.
    Cmp(&'static str, Box<Expr>, Box<Expr>),
    /// `(not p)`.
    Not(Box<Pred>),
    /// `(and p q)`.
    And(Box<Pred>, Box<Pred>),
    /// `(or p q)`.
    Or(Box<Pred>, Box<Pred>),
}

/// A top-level procedure definition. The first parameter is always the
/// termination guard `d`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Def {
    /// The procedure name.
    pub name: String,
    /// All parameters, depth guard first.
    pub params: Vec<String>,
    /// The body (shaped `(if (<= d 0) base recur)` by the generator).
    pub body: Expr,
}

/// A complete generated program: procedure definitions (adjacent
/// definitions become a `letrec`, so groups of mutually recursive
/// procedures keep direct calls) followed by a main expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Top-level definitions, in order.
    pub defs: Vec<Def>,
    /// The program's final expression.
    pub main: Expr,
}

fn write_app(f: &mut fmt::Formatter<'_>, op: &str, args: &[Expr]) -> fmt::Result {
    write!(f, "({op}")?;
    for a in args {
        write!(f, " {a}")?;
    }
    write!(f, ")")
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Num(n) => write!(f, "{n}"),
            Expr::Var(v) => write!(f, "{v}"),
            Expr::If(p, t, e) => write!(f, "(if {p} {t} {e})"),
            Expr::Let(binds, body) => {
                write!(f, "(let (")?;
                for (i, (v, e)) in binds.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "({v} {e})")?;
                }
                write!(f, ") {body})")
            }
            Expr::Prim(op, args) => write_app(f, op, args),
            Expr::Call(op, args) => write_app(f, op, args),
            Expr::LetFun {
                name,
                params,
                fbody,
                body,
            } => write!(
                f,
                "(let (({name} (lambda ({}) {fbody}))) {body})",
                params.join(" ")
            ),
            Expr::Loop {
                name,
                init,
                acc0,
                step,
            } => {
                let (i, acc) = (format!("{name}i"), format!("{name}a"));
                write!(
                    f,
                    "(let {name} (({i} {init}) ({acc} {acc0})) \
                     (if (<= {i} 0) {acc} ({name} (- {i} 1) \
                     (remainder (+ {acc} {step}) 99991))))"
                )
            }
            Expr::Display(e, k) => write!(f, "(begin (display {e}) (newline) {k})"),
        }
    }
}

impl Expr {
    /// Number of AST nodes (both sorts) in this expression.
    pub fn size(&self) -> usize {
        let mut n = 0usize;
        let mut m = 0usize;
        self.visit(&mut |_| n += 1, &mut |_| m += 1);
        n + m
    }

    /// Calls `fe` on every [`Expr`] and `fp` on every [`Pred`] in the
    /// tree, pre-order.
    pub fn visit(&self, fe: &mut impl FnMut(&Expr), fp: &mut impl FnMut(&Pred)) {
        fe(self);
        match self {
            Expr::Num(_) | Expr::Var(_) => {}
            Expr::If(p, t, e) => {
                p.visit(fe, fp);
                t.visit(fe, fp);
                e.visit(fe, fp);
            }
            Expr::Let(binds, body) => {
                for (_, e) in binds {
                    e.visit(fe, fp);
                }
                body.visit(fe, fp);
            }
            Expr::Prim(_, args) | Expr::Call(_, args) => {
                for a in args {
                    a.visit(fe, fp);
                }
            }
            Expr::LetFun { fbody, body, .. } => {
                fbody.visit(fe, fp);
                body.visit(fe, fp);
            }
            Expr::Loop {
                init, acc0, step, ..
            } => {
                init.visit(fe, fp);
                acc0.visit(fe, fp);
                step.visit(fe, fp);
            }
            Expr::Display(e, k) => {
                e.visit(fe, fp);
                k.visit(fe, fp);
            }
        }
    }
}

impl Pred {
    fn visit(&self, fe: &mut impl FnMut(&Expr), fp: &mut impl FnMut(&Pred)) {
        fp(self);
        match self {
            Pred::Test(_, e) => e.visit(fe, fp),
            Pred::Cmp(_, a, b) => {
                a.visit(fe, fp);
                b.visit(fe, fp);
            }
            Pred::Not(p) => p.visit(fe, fp),
            Pred::And(a, b) | Pred::Or(a, b) => {
                a.visit(fe, fp);
                b.visit(fe, fp);
            }
        }
    }
}

impl Program {
    /// Total AST size (defs + main).
    pub fn size(&self) -> usize {
        self.defs.iter().map(|d| d.body.size()).sum::<usize>() + self.main.size()
    }

    /// Renders the program as source text, one definition per line.
    pub fn render(&self) -> String {
        use fmt::Write;
        let mut out = String::new();
        for d in &self.defs {
            let _ = writeln!(
                out,
                "(define ({} {}) {})",
                d.name,
                d.params.join(" "),
                d.body
            );
        }
        let _ = writeln!(out, "{}", self.main);
        out
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pred::Test(op, e) => write!(f, "({op} {e})"),
            Pred::Cmp(op, a, b) => write!(f, "({op} {a} {b})"),
            Pred::Not(p) => write!(f, "(not {p})"),
            Pred::And(a, b) => write!(f, "(and {a} {b})"),
            Pred::Or(a, b) => write!(f, "(or {a} {b})"),
        }
    }
}
