//! The seeded program generator.
//!
//! Emits closed, well-typed, *terminating* programs over the
//! LANGUAGE.md subset, biased toward what the paper's allocator has to
//! get right: deep trees of calls, many-argument calls (beyond the six
//! argument registers, so arguments spill to the stack), `letrec`
//! cycles of mutually recursive procedures, and mixes of tail and
//! non-tail calls.
//!
//! # Why every generated program terminates
//!
//! * Every top-level procedure takes the depth guard `d` first, its
//!   body is `(if (<= d 0) base recur)`, and same-group (recursive)
//!   calls always pass `(- d 1)`.
//! * Calls *across* groups only target earlier groups (a DAG), with the
//!   depth argument bounded by a small literal or `(remainder … k)`.
//! * Named-`let` loops run at most a small bounded iteration count and
//!   local lambdas contain no calls at all.
//!
//! # Why outputs are comparable across backends
//!
//! Argument evaluation order is unspecified (the greedy shuffler picks
//! it per call site), so `display` must never execute inside a call
//! argument. The generator therefore keeps every procedure pure and
//! emits `display` only on the spine of the main expression.
//!
//! # Why arithmetic cannot overflow
//!
//! Multiplication is always wrapped in `(remainder … 9973)`, divisors
//! are positive literals, and loop accumulators reduce modulo `99991`,
//! so values stay far below `i64::MAX` even through deep sum trees.

use lesgs_testkit::Rng;

use crate::ast::{Def, Expr, Pred, Program};

/// Bump whenever generation changes for a given seed: a reproduction
/// recipe is only valid for the generator version it names.
///
/// Version history: 2 added permuted tail calls (recursive calls that
/// pass the caller's own parameters rotated, producing register
/// permutation cycles at the shuffle).
pub const GENERATOR_VERSION: u32 = 2;

/// Generator tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Approximate AST-node budget per program.
    pub max_size: usize,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig { max_size: 160 }
    }
}

/// A callable procedure signature.
#[derive(Debug, Clone)]
struct FuncSig {
    name: String,
    /// Parameters beyond the depth guard.
    extra: usize,
}

/// Everything visible at a generation site.
#[derive(Debug, Clone, Default)]
struct Scope {
    /// Numeric variables in scope.
    vars: Vec<String>,
    /// The depth-guard variable, inside a procedure body.
    depth_var: Option<String>,
    /// Same-group procedures (recursive targets; calls decrement `d`).
    rec: Vec<FuncSig>,
    /// Earlier-group procedures (calls pass a small bounded depth).
    cross: Vec<FuncSig>,
    /// Let-bound lambdas: name and arity.
    locals: Vec<(String, usize)>,
}

struct GenState<'a> {
    rng: &'a mut Rng,
    budget: isize,
    fresh: usize,
    /// Remaining call sites allowed in the current procedure body —
    /// bounds the activation tree (branching^depth) and with it the
    /// fuel a generated program can consume.
    calls_left: i32,
}

impl GenState<'_> {
    fn fresh(&mut self, prefix: &str) -> String {
        self.fresh += 1;
        format!("{prefix}{}", self.fresh)
    }

    fn spend(&mut self) {
        self.budget -= 1;
    }

    fn small_num(&mut self) -> Expr {
        Expr::Num(self.rng.range_i64(-9, 9))
    }

    fn leaf(&mut self, scope: &Scope) -> Expr {
        self.spend();
        if scope.vars.is_empty() || self.rng.chance(2, 5) {
            self.small_num()
        } else {
            Expr::Var(self.rng.pick(&scope.vars).clone())
        }
    }

    fn gen_pred(&mut self, scope: &Scope, depth: u32) -> Pred {
        self.spend();
        let d = depth.saturating_sub(1);
        if depth == 0 || self.budget <= 0 {
            return Pred::Test("odd?", Box::new(self.leaf(scope)));
        }
        match self.rng.weighted(&[4, 4, 1, 1, 1]) {
            0 => {
                let op = *self
                    .rng
                    .pick(&["zero?", "odd?", "even?", "positive?", "negative?"]);
                Pred::Test(op, Box::new(self.gen_expr(scope, d)))
            }
            1 => {
                let op = *self.rng.pick(&["<", "<=", ">", ">=", "="]);
                Pred::Cmp(
                    op,
                    Box::new(self.gen_expr(scope, d)),
                    Box::new(self.gen_expr(scope, d)),
                )
            }
            2 => Pred::Not(Box::new(self.gen_pred(scope, d))),
            3 => Pred::And(
                Box::new(self.gen_pred(scope, d)),
                Box::new(self.gen_pred(scope, d)),
            ),
            _ => Pred::Or(
                Box::new(self.gen_pred(scope, d)),
                Box::new(self.gen_pred(scope, d)),
            ),
        }
    }

    fn gen_arith(&mut self, scope: &Scope, depth: u32) -> Expr {
        self.spend();
        let d = depth.saturating_sub(1);
        match self.rng.weighted(&[4, 3, 2, 2, 2]) {
            0 => {
                let op = if self.rng.chance(1, 2) { "+" } else { "-" };
                let n = 2 + self.rng.below(2); // binary or ternary (folded)
                Expr::Prim(op, (0..n).map(|_| self.gen_expr(scope, d)).collect())
            }
            1 => Expr::Prim(
                "remainder",
                vec![
                    Expr::Prim("*", vec![self.gen_expr(scope, d), self.gen_expr(scope, d)]),
                    Expr::Num(9973),
                ],
            ),
            2 => {
                let op = *self.rng.pick(&["quotient", "remainder", "modulo"]);
                let divisor = 2 + self.rng.below(96) as i64;
                Expr::Prim(op, vec![self.gen_expr(scope, d), Expr::Num(divisor)])
            }
            3 => {
                let op = *self.rng.pick(&["add1", "sub1", "abs"]);
                Expr::Prim(op, vec![self.gen_expr(scope, d)])
            }
            _ => {
                let op = if self.rng.chance(1, 2) { "min" } else { "max" };
                Expr::Prim(op, vec![self.gen_expr(scope, d), self.gen_expr(scope, d)])
            }
        }
    }

    /// A call to anything callable here; `None` when nothing is (or the
    /// per-body call budget ran out).
    fn gen_call(&mut self, scope: &Scope, depth: u32) -> Option<Expr> {
        if self.calls_left <= 0 {
            return None;
        }
        let d = depth.saturating_sub(1);
        // Candidate classes with at least one member.
        let mut classes: Vec<u8> = Vec::new();
        if !scope.rec.is_empty() && scope.depth_var.is_some() {
            classes.push(0);
        }
        if !scope.cross.is_empty() {
            classes.push(1);
        }
        if !scope.locals.is_empty() {
            classes.push(2);
        }
        if classes.is_empty() {
            return None;
        }
        let class = *self.rng.pick(&classes);
        self.calls_left -= 1;
        self.spend();
        Some(match class {
            0 => {
                let sig = self.rng.pick(&scope.rec).clone();
                let guard = scope.depth_var.clone().expect("checked above");
                let mut args = vec![Expr::Prim("-", vec![Expr::Var(guard), Expr::Num(1)])];
                args.extend((0..sig.extra).map(|_| self.gen_expr(scope, d)));
                Expr::Call(sig.name, args)
            }
            1 => {
                let sig = self.rng.pick(&scope.cross).clone();
                // A small bounded depth: literal, or any value squashed
                // into -2..=2.
                let first = if self.rng.chance(2, 3) {
                    Expr::Num(self.rng.range_i64(0, 3))
                } else {
                    Expr::Prim("remainder", vec![self.gen_expr(scope, d), Expr::Num(3)])
                };
                let mut args = vec![first];
                args.extend((0..sig.extra).map(|_| self.gen_expr(scope, d)));
                Expr::Call(sig.name, args)
            }
            _ => {
                let (name, arity) = self.rng.pick(&scope.locals).clone();
                Expr::Call(name, (0..arity).map(|_| self.gen_expr(scope, d)).collect())
            }
        })
    }

    fn gen_expr(&mut self, scope: &Scope, depth: u32) -> Expr {
        if depth == 0 || self.budget <= 0 {
            return self.leaf(scope);
        }
        let d = depth - 1;
        match self.rng.weighted(&[3, 5, 2, 2, 5, 1, 1]) {
            0 => self.leaf(scope),
            1 => self.gen_arith(scope, depth),
            2 => {
                self.spend();
                let p = self.gen_pred(scope, d.min(2));
                Expr::If(
                    Box::new(p),
                    Box::new(self.gen_expr(scope, d)),
                    Box::new(self.gen_expr(scope, d)),
                )
            }
            3 => {
                self.spend();
                let n = 1 + self.rng.below(3);
                let mut inner = scope.clone();
                let binds: Vec<(String, Expr)> = (0..n)
                    .map(|_| {
                        // RHS sees the outer scope only (parallel let).
                        let rhs = self.gen_expr(scope, d);
                        (self.fresh("v"), rhs)
                    })
                    .collect();
                inner.vars.extend(binds.iter().map(|(v, _)| v.clone()));
                Expr::Let(binds, Box::new(self.gen_expr(&inner, d)))
            }
            4 => self
                .gen_call(scope, depth)
                .unwrap_or_else(|| self.gen_arith(scope, depth)),
            5 => {
                self.spend();
                let name = self.fresh("g");
                let arity = 1 + self.rng.below(3);
                let params: Vec<String> = (0..arity).map(|_| self.fresh("q")).collect();
                // The lambda body is pure arithmetic over its params
                // and captured variables (captures force a closure).
                let mut lam_scope = Scope {
                    vars: scope
                        .vars
                        .iter()
                        .cloned()
                        .chain(params.iter().cloned())
                        .collect(),
                    ..Scope::default()
                };
                lam_scope.vars.truncate(12);
                let fbody = self.gen_arith(&lam_scope, d.min(2));
                let mut inner = scope.clone();
                inner.locals.push((name.clone(), arity));
                Expr::LetFun {
                    name,
                    params,
                    fbody: Box::new(fbody),
                    body: Box::new(self.gen_expr(&inner, d)),
                }
            }
            _ => {
                self.spend();
                let name = self.fresh("lp");
                // Bounded iteration count.
                let init = if self.rng.chance(1, 2) {
                    Expr::Num(self.rng.range_i64(0, 12))
                } else {
                    Expr::Prim("remainder", vec![self.gen_expr(scope, d), Expr::Num(13)])
                };
                let acc0 = self.gen_expr(scope, d.min(2));
                let mut inner = scope.clone();
                inner.vars.push(format!("{name}i"));
                inner.vars.push(format!("{name}a"));
                let step = self.gen_expr(&inner, d.min(3));
                Expr::Loop {
                    name,
                    init: Box::new(init),
                    acc0: Box::new(acc0),
                    step: Box::new(step),
                }
            }
        }
    }

    /// The `recur` branch of a procedure body: always embeds at least
    /// one same-group call so recursion (and save placement around it)
    /// is actually exercised.
    fn gen_recur(&mut self, scope: &Scope, depth: u32) -> Expr {
        let forced = self
            .gen_call_forced_rec(scope, depth)
            .unwrap_or_else(|| self.leaf(scope));
        match self.rng.weighted(&[3, 3, 2, 2]) {
            // Direct tail call.
            0 => forced,
            // Non-tail: the call's result feeds arithmetic.
            1 => Expr::Prim("+", vec![forced, self.gen_expr(scope, depth.min(3))]),
            // Non-tail via let binding.
            2 => {
                let v = self.fresh("r");
                let mut inner = scope.clone();
                inner.vars.push(v.clone());
                let body = self.gen_expr(&inner, depth.min(3));
                Expr::Let(
                    vec![(v.clone(), forced)],
                    Box::new(Expr::Prim("+", vec![Expr::Var(v), body])),
                )
            }
            // Conditional: tail call on one arm.
            _ => {
                let p = self.gen_pred(scope, 2);
                let other = self.gen_expr(scope, depth.min(3));
                if self.rng.chance(1, 2) {
                    Expr::If(Box::new(p), Box::new(forced), Box::new(other))
                } else {
                    Expr::If(Box::new(p), Box::new(other), Box::new(forced))
                }
            }
        }
    }

    fn gen_call_forced_rec(&mut self, scope: &Scope, depth: u32) -> Option<Expr> {
        if scope.rec.is_empty() {
            return None;
        }
        self.calls_left -= 1;
        self.spend();
        let d = depth.saturating_sub(1);
        let sig = self.rng.pick(&scope.rec).clone();
        let guard = scope.depth_var.clone()?;
        let mut args = vec![Expr::Prim(
            "-",
            vec![Expr::Var(guard.clone()), Expr::Num(1)],
        )];
        // Shuffle-heavy shape: pass the caller's own variables rotated,
        // so every argument is a register-resident variable and the
        // call's shuffle is a genuine permutation cycle (the case the
        // swap/permi strategy resolves without temporaries).
        let own: Vec<&String> = scope.vars.iter().filter(|v| **v != guard).collect();
        if sig.extra >= 2 && own.len() >= sig.extra && self.rng.chance(1, 3) {
            let offset = 1 + self.rng.below(sig.extra - 1);
            for i in 0..sig.extra {
                args.push(Expr::Var(own[(i + offset) % sig.extra].clone()));
            }
        } else {
            args.extend((0..sig.extra).map(|_| self.gen_expr(scope, d)));
        }
        Some(Expr::Call(sig.name, args))
    }
}

/// Generates one program from the given seed stream.
pub fn generate(rng: &mut Rng, cfg: &GenConfig) -> Program {
    let mut st = GenState {
        rng,
        budget: cfg.max_size as isize,
        fresh: 0,
        calls_left: 0,
    };
    let n_groups = 1 + st.rng.below(3);
    let mut defs: Vec<Def> = Vec::new();
    let mut cross: Vec<FuncSig> = Vec::new();
    let mut fidx = 0usize;
    for gi in 0..n_groups {
        // Respect small budgets: later groups only start while budget
        // remains. (Safe at group boundaries only — inside a group the
        // signatures already cross-reference each other.)
        if gi > 0 && st.budget <= 0 {
            break;
        }
        // Group size > 1 makes the defines a letrec cycle.
        let group_size = 1 + st.rng.weighted(&[3, 3, 2]);
        let group: Vec<FuncSig> = (0..group_size)
            .map(|_| {
                // Extra params beyond `d`; 6-7 exceed the six argument
                // registers, forcing stack-passed arguments.
                let extra = st.rng.weighted(&[1, 3, 4, 4, 3, 2, 2, 1]);
                let sig = FuncSig {
                    name: format!("f{fidx}"),
                    extra,
                };
                fidx += 1;
                sig
            })
            .collect();
        for sig in &group {
            let params: Vec<String> = std::iter::once("d".to_owned())
                .chain((0..sig.extra).map(|i| format!("p{i}")))
                .collect();
            let scope = Scope {
                vars: params.clone(),
                depth_var: Some("d".to_owned()),
                rec: group.clone(),
                cross: cross.clone(),
                locals: Vec::new(),
            };
            st.calls_left = 3;
            let base_scope = Scope {
                rec: Vec::new(),
                depth_var: None,
                ..scope.clone()
            };
            let base = st.gen_expr(&base_scope, 3);
            let recur = st.gen_recur(&scope, 5);
            let body = Expr::If(
                Box::new(Pred::Cmp(
                    "<=",
                    Box::new(Expr::Var("d".to_owned())),
                    Box::new(Expr::Num(0)),
                )),
                Box::new(base),
                Box::new(recur),
            );
            defs.push(Def {
                name: sig.name.clone(),
                params,
                body,
            });
        }
        cross.extend(group);
    }

    // Main: a display spine over call-heavy pure expressions. Calls
    // from main get literal depths, the roots of the activation trees.
    let main_scope = Scope {
        cross,
        ..Scope::default()
    };
    st.calls_left = 4;
    let mut main = {
        // Bias the final expression toward a call.
        let sig = st.rng.pick(&main_scope.cross).clone();
        let mut args = vec![Expr::Num(st.rng.range_i64(2, 5))];
        args.extend((0..sig.extra).map(|_| st.gen_expr(&main_scope, 3)));
        Expr::Call(sig.name, args)
    };
    let n_stmts = st.rng.below(3);
    for _ in 0..n_stmts {
        st.calls_left = 2;
        let shown = st.gen_expr(&main_scope, 4);
        main = Expr::Display(Box::new(shown), Box::new(main));
    }
    Program { defs, main }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        for seed in 0..32 {
            let a = generate(&mut Rng::new(seed), &GenConfig::default());
            let b = generate(&mut Rng::new(seed), &GenConfig::default());
            assert_eq!(a.render(), b.render(), "seed {seed}");
        }
    }

    #[test]
    fn respects_size_budget_roughly() {
        let cfg = GenConfig { max_size: 40 };
        for seed in 0..32 {
            let p = generate(&mut Rng::new(seed), &cfg);
            // The budget is approximate (a node in flight may finish
            // its children), but it cannot be blown past wholesale.
            assert!(p.size() < 40 * 4, "seed {seed}: size {}", p.size());
        }
    }

    #[test]
    fn some_recursive_calls_are_pure_permutations() {
        // The permuted-tail-call shape must actually appear: calls
        // whose every argument past the depth guard is a bare variable.
        let mut permuted = 0;
        for seed in 0..64 {
            let p = generate(&mut Rng::new(seed), &GenConfig::default());
            let mut found = false;
            let mut check = |e: &Expr| {
                if let Expr::Call(_, args) = e {
                    if args.len() >= 3 && args[1..].iter().all(|a| matches!(a, Expr::Var(_))) {
                        found = true;
                    }
                }
            };
            for d in &p.defs {
                d.body.visit(&mut check, &mut |_| {});
            }
            permuted += usize::from(found);
        }
        assert!(permuted >= 12, "only {permuted}/64 had permuted calls");
    }

    #[test]
    fn programs_are_call_heavy() {
        let mut with_calls = 0;
        for seed in 0..64 {
            let p = generate(&mut Rng::new(seed), &GenConfig::default());
            let mut calls = 0;
            let count = |e: &Expr| {
                if matches!(e, Expr::Call(..)) {
                    return true;
                }
                false
            };
            p.main
                .visit(&mut |e| calls += usize::from(count(e)), &mut |_| {});
            for d in &p.defs {
                d.body
                    .visit(&mut |e| calls += usize::from(count(e)), &mut |_| {});
            }
            if calls >= 2 {
                with_calls += 1;
            }
        }
        assert!(with_calls >= 56, "only {with_calls}/64 were call-heavy");
    }
}
