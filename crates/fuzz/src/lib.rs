//! Generative differential fuzzing for the LESGS compiler.
//!
//! This crate closes the loop the hand-written test suites leave open:
//! instead of checking programs someone thought of, it *generates*
//! well-formed mini-Scheme programs from a seed, runs each one through
//! the reference interpreter and through the compiled VM under the full
//! allocator configuration matrix, and greedily shrinks any
//! disagreement to a small, self-contained reproduction.
//!
//! The pieces:
//!
//! * [`gen`] — a deterministic, seeded program generator biased toward
//!   the register allocator's hard cases: deep call trees, calls with
//!   more arguments than argument registers, `letrec` cycles, and
//!   tail/non-tail call mixes. Every generated program terminates and
//!   is overflow-free by construction.
//! * [`oracle`] — the differential judge. Fuel exhaustion and
//!   interpreter-side errors are *skips*, never finds.
//! * [`shrink`] — a greedy structural minimizer re-running the oracle
//!   on the single implicated configuration.
//!
//! Everything is reproducible: [`case_seed`] maps a base seed and case
//! index to the seed actually fed to the generator, and
//! `lesgs-fuzz --seed <that> --cases 1` replays exactly that case.
//!
//! ```
//! use lesgs_fuzz::{run_fuzz, FuzzOptions};
//! let report = run_fuzz(&FuzzOptions { cases: 25, ..FuzzOptions::default() });
//! assert_eq!(report.finds.len(), 0, "{report}");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod gen;
pub mod oracle;
pub mod shrink;

use std::fmt;

pub use ast::{Def, Expr, Pred, Program};
pub use gen::{generate, GenConfig, GENERATOR_VERSION};
pub use oracle::{check_source, still_fails_under, CaseOutcome, OracleConfig, SkipReason};
pub use shrink::{shrink, ShrinkStats};

use lesgs_testkit::Rng;

/// A fuzzing campaign's settings.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// Base seed; each case derives its own seed via [`case_seed`].
    pub seed: u64,
    /// Number of programs to generate and judge.
    pub cases: u64,
    /// Generator settings (program size budget).
    pub gen: GenConfig,
    /// Oracle settings (configuration matrix and fuel).
    pub oracle: OracleConfig,
    /// Predicate-evaluation budget for shrinking each find.
    pub shrink_attempts: usize,
    /// Worker threads judging cases concurrently (the `--jobs` flag).
    /// The campaign's report, corpus files, and stdout are
    /// byte-identical for every value; even `1` runs on a persistent
    /// wide-stack pool worker so oracle evaluations never pay a
    /// per-call thread spawn.
    pub jobs: usize,
}

impl Default for FuzzOptions {
    fn default() -> FuzzOptions {
        FuzzOptions {
            seed: 0,
            cases: 100,
            gen: GenConfig::default(),
            oracle: OracleConfig::default(),
            shrink_attempts: 2_000,
            jobs: 1,
        }
    }
}

/// A parsed `lesgs-fuzz` command line (see [`parse_cli`]).
#[derive(Debug, Clone, Default)]
pub struct CliOptions {
    /// Campaign settings.
    pub opts: FuzzOptions,
    /// `--corpus-out <dir>`: write each find to `<dir>/find-<seed>.scm`.
    pub corpus_out: Option<String>,
}

/// Parses `lesgs-fuzz` options (everything after the program name).
/// Shared by the binary and by tests that replay a printed
/// [`Find::repro_command`], so "the printed command reproduces the
/// find" is checked against the real parser rather than by hand.
///
/// # Errors
///
/// A usage message for unknown options or malformed values.
pub fn parse_cli(args: impl Iterator<Item = String>) -> Result<CliOptions, String> {
    let mut cli = CliOptions::default();
    let mut args = args;
    while let Some(a) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .ok_or_else(|| format!("{what} requires a value"))
        };
        let num = |what: &str, v: String| {
            v.parse::<u64>()
                .map_err(|_| format!("{what} requires a number"))
        };
        match a.as_str() {
            "--seed" => cli.opts.seed = num("--seed", value("--seed")?)?,
            "--cases" => cli.opts.cases = num("--cases", value("--cases")?)?,
            "--max-size" => {
                cli.opts.gen.max_size = num("--max-size", value("--max-size")?)? as usize
            }
            "--fuel" => cli.opts.oracle.fuel = num("--fuel", value("--fuel")?)?,
            "--no-speculation" => cli.opts.oracle.no_speculation = true,
            "--jobs" => {
                cli.opts.jobs = num("--jobs", value("--jobs")?)? as usize;
                if cli.opts.jobs == 0 {
                    return Err("--jobs must be at least 1".to_owned());
                }
            }
            "--corpus-out" => cli.corpus_out = Some(value("--corpus-out")?),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(cli)
}

/// The seed fed to the generator for case `index` of a campaign with
/// base seed `base`. Chosen so that `case_seed(s, 0) == s`: replaying a
/// reported seed with `--cases 1` regenerates the exact program.
pub fn case_seed(base: u64, index: u64) -> u64 {
    base.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// One shrunk failing case.
#[derive(Debug, Clone)]
pub struct Find {
    /// The derived per-case seed ([`case_seed`]).
    pub seed: u64,
    /// The case index within the campaign.
    pub index: u64,
    /// Generator version that produced the program.
    pub generator_version: u32,
    /// The program as generated.
    pub original: String,
    /// The program after shrinking.
    pub shrunk: String,
    /// What went wrong (kind + offending configuration), as reported
    /// on the *original* program.
    pub failure: lesgs_compiler::DiffFailure,
    /// Shrink-loop accounting.
    pub shrink_stats: ShrinkStats,
}

impl Find {
    /// The exact command that replays this case: `--seed <case seed>
    /// --cases 1` plus **every campaign option whose value differs
    /// from the default** — dropping, say, a non-default `--fuel`
    /// would change the replay's budget and could reclassify a
    /// fuel-sensitive find as a skip.
    pub fn repro_command(&self, opts: &FuzzOptions) -> String {
        let defaults = FuzzOptions::default();
        let mut cmd = format!("lesgs-fuzz --seed {} --cases 1", self.seed);
        if opts.gen.max_size != defaults.gen.max_size {
            cmd.push_str(&format!(" --max-size {}", opts.gen.max_size));
        }
        if opts.oracle.fuel != defaults.oracle.fuel {
            cmd.push_str(&format!(" --fuel {}", opts.oracle.fuel));
        }
        if opts.oracle.no_speculation {
            cmd.push_str(" --no-speculation");
        }
        cmd
    }

    /// Renders the find as a self-contained corpus file: a comment
    /// header (the s-expression reader skips `;` comments) followed by
    /// the shrunk source, so the file is both documentation and a
    /// directly runnable program.
    pub fn to_corpus_file(&self, opts: &FuzzOptions) -> String {
        // Failure messages can span lines (the verifier reports every
        // error); each must stay behind a `;;` so the file parses.
        let failure = self
            .failure
            .to_string()
            .lines()
            .collect::<Vec<_>>()
            .join("\n;;          ");
        format!(
            ";; lesgs-fuzz find (generator version {})\n\
             ;; seed: {} (case {})\n\
             ;; reproduce: {}\n\
             ;; failure: {}\n\
             {}",
            self.generator_version,
            self.seed,
            self.index,
            self.repro_command(opts),
            failure,
            self.shrunk
        )
    }
}

/// Campaign results.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Cases judged.
    pub cases: u64,
    /// Cases where every configuration agreed with the interpreter.
    pub passes: u64,
    /// Cases skipped because a fuel budget ran out.
    pub skips_fuel: u64,
    /// Cases skipped because the reference interpreter itself failed.
    pub skips_oracle: u64,
    /// Shrunk failing cases.
    pub finds: Vec<Find>,
}

impl fmt::Display for FuzzReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cases: {} passed, {} skipped (fuel), {} skipped (oracle), {} finds",
            self.cases,
            self.passes,
            self.skips_fuel,
            self.skips_oracle,
            self.finds.len()
        )
    }
}

/// Generates and judges one case; on failure, shrinks it. Returns the
/// generated source alongside the verdict so callers can log or persist
/// it.
pub fn fuzz_case(index: u64, opts: &FuzzOptions) -> (String, CaseOutcome, Option<Find>) {
    let seed = case_seed(opts.seed, index);
    let prog = generate(&mut Rng::new(seed), &opts.gen);
    let src = prog.render();
    let outcome = check_source(&src, &opts.oracle);
    let find = match &outcome {
        CaseOutcome::Find(failure) => {
            let fuel = opts.oracle.fuel;
            let (small, stats) = match &failure.config {
                Some(cfg) => shrink(
                    &prog,
                    |s| still_fails_under(s, cfg, fuel),
                    opts.shrink_attempts,
                ),
                None => shrink(
                    &prog,
                    |s| matches!(check_source(s, &opts.oracle), CaseOutcome::Find(_)),
                    opts.shrink_attempts,
                ),
            };
            Some(Find {
                seed,
                index,
                generator_version: GENERATOR_VERSION,
                original: src.clone(),
                shrunk: small.render(),
                failure: failure.clone(),
                shrink_stats: stats,
            })
        }
        _ => None,
    };
    (src, outcome, find)
}

/// One judged case as delivered — strictly in case order — to the
/// [`run_fuzz_observed`] visitor.
#[derive(Debug)]
pub struct CaseReport<'a> {
    /// The case index within the campaign.
    pub index: u64,
    /// The generated source.
    pub source: &'a str,
    /// The oracle's verdict.
    pub outcome: &'a CaseOutcome,
    /// The shrunk find, when the verdict was [`CaseOutcome::Find`].
    pub find: Option<&'a Find>,
}

/// The worker pool a campaign runs on: `opts.jobs` persistent
/// wide-stack workers, each marked via
/// [`lesgs_interp::mark_wide_stack`] so every oracle evaluation runs
/// inline on its worker — a 500-case × 23-config campaign performs
/// zero per-evaluation thread spawns.
fn campaign_pool(opts: &FuzzOptions) -> lesgs_exec::PoolConfig {
    lesgs_exec::PoolConfig {
        workers: opts.jobs.max(1),
        stack_bytes: lesgs_interp::wide_stack_bytes(),
        name: "lesgs-fuzz".to_owned(),
        worker_init: Some(lesgs_interp::mark_wide_stack),
    }
}

/// Runs a full campaign with a per-case visitor and pool accounting.
///
/// Cases are judged concurrently on [`FuzzOptions::jobs`] workers, but
/// `visit` observes them **in case order** on the calling thread, so
/// campaign output (find printing, corpus writing) is byte-identical
/// whatever the job count. A panicking case is re-raised here, on the
/// caller, once every case before it has been visited.
///
/// # Errors
///
/// Whatever `visit` returns; the campaign stops shortly after.
pub fn run_fuzz_observed<E>(
    opts: &FuzzOptions,
    mut visit: impl FnMut(CaseReport<'_>) -> Result<(), E>,
) -> Result<(FuzzReport, lesgs_exec::PoolStats), E> {
    let mut report = FuzzReport::default();
    let stats = lesgs_exec::for_each_ordered(
        &campaign_pool(opts),
        opts.cases,
        |index| fuzz_case(index, opts),
        |index, result| {
            let (source, outcome, find) =
                result.unwrap_or_else(|p| panic!("fuzz case {index} panicked: {}", p.message));
            report.cases += 1;
            match &outcome {
                CaseOutcome::Pass => report.passes += 1,
                CaseOutcome::Skip(SkipReason::Fuel) => report.skips_fuel += 1,
                CaseOutcome::Skip(SkipReason::OracleError(_)) => report.skips_oracle += 1,
                CaseOutcome::Find(_) => {}
            }
            visit(CaseReport {
                index,
                source: &source,
                outcome: &outcome,
                find: find.as_ref(),
            })?;
            if matches!(outcome, CaseOutcome::Find(_)) {
                report
                    .finds
                    .push(find.expect("find outcome carries a Find"));
            }
            Ok(())
        },
    )?;
    Ok((report, stats))
}

/// Runs a full campaign: `opts.cases` cases from `opts.seed`, shrinking
/// every find. Deterministic: the same options always produce the same
/// report, for any [`FuzzOptions::jobs`].
pub fn run_fuzz(opts: &FuzzOptions) -> FuzzReport {
    let (report, _stats) = run_fuzz_observed::<std::convert::Infallible>(opts, |_| Ok(()))
        .unwrap_or_else(|never| match never {});
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_seed_is_replayable() {
        for base in [0u64, 1, 42, u64::MAX] {
            for index in [0u64, 1, 7, 499] {
                let s = case_seed(base, index);
                assert_eq!(case_seed(s, 0), s);
            }
        }
    }

    #[test]
    fn small_campaign_is_clean_and_deterministic() {
        let opts = FuzzOptions {
            cases: 30,
            ..FuzzOptions::default()
        };
        let a = run_fuzz(&opts);
        assert_eq!(a.finds.len(), 0, "unexpected finds: {a}");
        assert!(a.passes > 0, "everything skipped: {a}");
        let b = run_fuzz(&opts);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn corpus_files_keep_multiline_failures_commented() {
        let find = Find {
            seed: 9,
            index: 0,
            generator_version: gen::GENERATOR_VERSION,
            original: "(+ 1 2)".into(),
            shrunk: "(+ 1 2)\n0".into(),
            failure: lesgs_compiler::DiffFailure {
                config: None,
                kind: lesgs_compiler::DiffKind::VerifyFailed {
                    errors: vec!["error one".into(), "error two".into()],
                },
            },
            shrink_stats: ShrinkStats::default(),
        };
        let file = find.to_corpus_file(&FuzzOptions::default());
        let (header, source) = file.split_at(file.find("(+ 1 2)").expect("source present"));
        assert!(header.lines().all(|l| l.starts_with(";;")), "{file}");
        assert_eq!(source, "(+ 1 2)\n0");
    }

    fn dummy_find() -> Find {
        Find {
            seed: 77,
            index: 3,
            generator_version: gen::GENERATOR_VERSION,
            original: "(+ 1 2)".into(),
            shrunk: "(+ 1 2)".into(),
            failure: lesgs_compiler::DiffFailure {
                config: None,
                kind: lesgs_compiler::DiffKind::VmError {
                    message: "boom".into(),
                },
            },
            shrink_stats: ShrinkStats::default(),
        }
    }

    #[test]
    fn repro_command_emits_every_non_default_option() {
        let find = dummy_find();
        // All-default campaign: only seed and cases appear.
        assert_eq!(
            find.repro_command(&FuzzOptions::default()),
            "lesgs-fuzz --seed 77 --cases 1"
        );
        // A fuel-sensitive campaign must print its fuel — dropping it
        // used to reclassify fuel-sensitive finds as skips on replay.
        let mut opts = FuzzOptions::default();
        opts.oracle.fuel = 50_000;
        assert_eq!(
            find.repro_command(&opts),
            "lesgs-fuzz --seed 77 --cases 1 --fuel 50000"
        );
        opts.gen.max_size = 80;
        assert_eq!(
            find.repro_command(&opts),
            "lesgs-fuzz --seed 77 --cases 1 --max-size 80 --fuel 50000"
        );
        opts.oracle.no_speculation = true;
        assert_eq!(
            find.repro_command(&opts),
            "lesgs-fuzz --seed 77 --cases 1 --max-size 80 --fuel 50000 --no-speculation"
        );
    }

    #[test]
    fn repro_command_round_trips_through_the_cli_parser() {
        let mut opts = FuzzOptions::default();
        opts.oracle.fuel = 123_456;
        opts.gen.max_size = 99;
        opts.oracle.no_speculation = true;
        let cmd = dummy_find().repro_command(&opts);
        let args = cmd.split_whitespace().skip(1).map(str::to_owned);
        let cli = parse_cli(args).expect("printed command parses");
        assert_eq!(cli.opts.seed, 77);
        assert_eq!(cli.opts.cases, 1);
        assert_eq!(cli.opts.oracle.fuel, 123_456);
        assert_eq!(cli.opts.gen.max_size, 99);
        assert!(cli.opts.oracle.no_speculation);
    }

    #[test]
    fn cli_parser_rejects_bad_input() {
        let parse = |s: &str| parse_cli(s.split_whitespace().map(str::to_owned));
        assert!(parse("--seed").is_err());
        assert!(parse("--cases x").is_err());
        assert!(parse("--jobs 0").is_err());
        assert!(parse("--wat 1").is_err());
        let cli = parse("--seed 9 --jobs 4 --corpus-out out").unwrap();
        assert_eq!(cli.opts.seed, 9);
        assert_eq!(cli.opts.jobs, 4);
        assert_eq!(cli.corpus_out.as_deref(), Some("out"));
    }

    #[test]
    fn parallel_campaign_report_is_identical_to_sequential() {
        let sequential = run_fuzz(&FuzzOptions {
            cases: 24,
            ..FuzzOptions::default()
        });
        let parallel = run_fuzz(&FuzzOptions {
            cases: 24,
            jobs: 4,
            ..FuzzOptions::default()
        });
        assert_eq!(format!("{sequential:?}"), format!("{parallel:?}"));
    }

    #[test]
    fn skips_are_rare() {
        let report = run_fuzz(&FuzzOptions {
            cases: 60,
            ..FuzzOptions::default()
        });
        let skips = report.skips_fuel + report.skips_oracle;
        assert!(
            skips * 5 <= report.cases,
            "more than 20% skips — the generator is off target: {report}"
        );
    }
}
