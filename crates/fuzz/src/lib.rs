//! Generative differential fuzzing for the LESGS compiler.
//!
//! This crate closes the loop the hand-written test suites leave open:
//! instead of checking programs someone thought of, it *generates*
//! well-formed mini-Scheme programs from a seed, runs each one through
//! the reference interpreter and through the compiled VM under the full
//! allocator configuration matrix, and greedily shrinks any
//! disagreement to a small, self-contained reproduction.
//!
//! The pieces:
//!
//! * [`gen`] — a deterministic, seeded program generator biased toward
//!   the register allocator's hard cases: deep call trees, calls with
//!   more arguments than argument registers, `letrec` cycles, and
//!   tail/non-tail call mixes. Every generated program terminates and
//!   is overflow-free by construction.
//! * [`oracle`] — the differential judge. Fuel exhaustion and
//!   interpreter-side errors are *skips*, never finds.
//! * [`shrink`] — a greedy structural minimizer re-running the oracle
//!   on the single implicated configuration.
//!
//! Everything is reproducible: [`case_seed`] maps a base seed and case
//! index to the seed actually fed to the generator, and
//! `lesgs-fuzz --seed <that> --cases 1` replays exactly that case.
//!
//! ```
//! use lesgs_fuzz::{run_fuzz, FuzzOptions};
//! let report = run_fuzz(&FuzzOptions { cases: 25, ..FuzzOptions::default() });
//! assert_eq!(report.finds.len(), 0, "{report}");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod gen;
pub mod oracle;
pub mod shrink;

use std::fmt;

pub use ast::{Def, Expr, Pred, Program};
pub use gen::{generate, GenConfig, GENERATOR_VERSION};
pub use oracle::{check_source, still_fails_under, CaseOutcome, OracleConfig, SkipReason};
pub use shrink::{shrink, ShrinkStats};

use lesgs_testkit::Rng;

/// A fuzzing campaign's settings.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// Base seed; each case derives its own seed via [`case_seed`].
    pub seed: u64,
    /// Number of programs to generate and judge.
    pub cases: u64,
    /// Generator settings (program size budget).
    pub gen: GenConfig,
    /// Oracle settings (configuration matrix and fuel).
    pub oracle: OracleConfig,
    /// Predicate-evaluation budget for shrinking each find.
    pub shrink_attempts: usize,
}

impl Default for FuzzOptions {
    fn default() -> FuzzOptions {
        FuzzOptions {
            seed: 0,
            cases: 100,
            gen: GenConfig::default(),
            oracle: OracleConfig::default(),
            shrink_attempts: 2_000,
        }
    }
}

/// The seed fed to the generator for case `index` of a campaign with
/// base seed `base`. Chosen so that `case_seed(s, 0) == s`: replaying a
/// reported seed with `--cases 1` regenerates the exact program.
pub fn case_seed(base: u64, index: u64) -> u64 {
    base.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// One shrunk failing case.
#[derive(Debug, Clone)]
pub struct Find {
    /// The derived per-case seed ([`case_seed`]).
    pub seed: u64,
    /// The case index within the campaign.
    pub index: u64,
    /// Generator version that produced the program.
    pub generator_version: u32,
    /// The program as generated.
    pub original: String,
    /// The program after shrinking.
    pub shrunk: String,
    /// What went wrong (kind + offending configuration), as reported
    /// on the *original* program.
    pub failure: lesgs_compiler::DiffFailure,
    /// Shrink-loop accounting.
    pub shrink_stats: ShrinkStats,
}

impl Find {
    /// The exact command that replays this case.
    pub fn repro_command(&self, max_size: usize) -> String {
        format!(
            "lesgs-fuzz --seed {} --cases 1 --max-size {max_size}",
            self.seed
        )
    }

    /// Renders the find as a self-contained corpus file: a comment
    /// header (the s-expression reader skips `;` comments) followed by
    /// the shrunk source, so the file is both documentation and a
    /// directly runnable program.
    pub fn to_corpus_file(&self, max_size: usize) -> String {
        // Failure messages can span lines (the verifier reports every
        // error); each must stay behind a `;;` so the file parses.
        let failure = self
            .failure
            .to_string()
            .lines()
            .collect::<Vec<_>>()
            .join("\n;;          ");
        format!(
            ";; lesgs-fuzz find (generator version {})\n\
             ;; seed: {} (case {})\n\
             ;; reproduce: {}\n\
             ;; failure: {}\n\
             {}",
            self.generator_version,
            self.seed,
            self.index,
            self.repro_command(max_size),
            failure,
            self.shrunk
        )
    }
}

/// Campaign results.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Cases judged.
    pub cases: u64,
    /// Cases where every configuration agreed with the interpreter.
    pub passes: u64,
    /// Cases skipped because a fuel budget ran out.
    pub skips_fuel: u64,
    /// Cases skipped because the reference interpreter itself failed.
    pub skips_oracle: u64,
    /// Shrunk failing cases.
    pub finds: Vec<Find>,
}

impl fmt::Display for FuzzReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cases: {} passed, {} skipped (fuel), {} skipped (oracle), {} finds",
            self.cases,
            self.passes,
            self.skips_fuel,
            self.skips_oracle,
            self.finds.len()
        )
    }
}

/// Generates and judges one case; on failure, shrinks it. Returns the
/// generated source alongside the verdict so callers can log or persist
/// it.
pub fn fuzz_case(index: u64, opts: &FuzzOptions) -> (String, CaseOutcome, Option<Find>) {
    let seed = case_seed(opts.seed, index);
    let prog = generate(&mut Rng::new(seed), &opts.gen);
    let src = prog.render();
    let outcome = check_source(&src, &opts.oracle);
    let find = match &outcome {
        CaseOutcome::Find(failure) => {
            let fuel = opts.oracle.fuel;
            let (small, stats) = match &failure.config {
                Some(cfg) => shrink(
                    &prog,
                    |s| still_fails_under(s, cfg, fuel),
                    opts.shrink_attempts,
                ),
                None => shrink(
                    &prog,
                    |s| matches!(check_source(s, &opts.oracle), CaseOutcome::Find(_)),
                    opts.shrink_attempts,
                ),
            };
            Some(Find {
                seed,
                index,
                generator_version: GENERATOR_VERSION,
                original: src.clone(),
                shrunk: small.render(),
                failure: failure.clone(),
                shrink_stats: stats,
            })
        }
        _ => None,
    };
    (src, outcome, find)
}

/// Runs a full campaign: `opts.cases` cases from `opts.seed`, shrinking
/// every find. Deterministic: the same options always produce the same
/// report.
pub fn run_fuzz(opts: &FuzzOptions) -> FuzzReport {
    let mut report = FuzzReport::default();
    for index in 0..opts.cases {
        let (_, outcome, find) = fuzz_case(index, opts);
        report.cases += 1;
        match outcome {
            CaseOutcome::Pass => report.passes += 1,
            CaseOutcome::Skip(SkipReason::Fuel) => report.skips_fuel += 1,
            CaseOutcome::Skip(SkipReason::OracleError(_)) => report.skips_oracle += 1,
            CaseOutcome::Find(_) => report
                .finds
                .push(find.expect("find outcome carries a Find")),
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_seed_is_replayable() {
        for base in [0u64, 1, 42, u64::MAX] {
            for index in [0u64, 1, 7, 499] {
                let s = case_seed(base, index);
                assert_eq!(case_seed(s, 0), s);
            }
        }
    }

    #[test]
    fn small_campaign_is_clean_and_deterministic() {
        let opts = FuzzOptions {
            cases: 30,
            ..FuzzOptions::default()
        };
        let a = run_fuzz(&opts);
        assert_eq!(a.finds.len(), 0, "unexpected finds: {a}");
        assert!(a.passes > 0, "everything skipped: {a}");
        let b = run_fuzz(&opts);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn corpus_files_keep_multiline_failures_commented() {
        let find = Find {
            seed: 9,
            index: 0,
            generator_version: gen::GENERATOR_VERSION,
            original: "(+ 1 2)".into(),
            shrunk: "(+ 1 2)\n0".into(),
            failure: lesgs_compiler::DiffFailure {
                config: None,
                kind: lesgs_compiler::DiffKind::VerifyFailed {
                    errors: vec!["error one".into(), "error two".into()],
                },
            },
            shrink_stats: ShrinkStats::default(),
        };
        let file = find.to_corpus_file(160);
        let (header, source) = file.split_at(file.find("(+ 1 2)").expect("source present"));
        assert!(header.lines().all(|l| l.starts_with(";;")), "{file}");
        assert_eq!(source, "(+ 1 2)\n0");
    }

    #[test]
    fn skips_are_rare() {
        let report = run_fuzz(&FuzzOptions {
            cases: 60,
            ..FuzzOptions::default()
        });
        let skips = report.skips_fuel + report.skips_oracle;
        assert!(
            skips * 5 <= report.cases,
            "more than 20% skips — the generator is off target: {report}"
        );
    }
}
