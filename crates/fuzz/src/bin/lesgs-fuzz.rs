//! `lesgs-fuzz` — differential fuzzing driver.
//!
//! ```text
//! lesgs-fuzz [options]
//!
//! options:
//!   --seed <n>         base seed                      (default 0)
//!   --cases <n>        number of programs to judge    (default 100)
//!   --max-size <n>     generator size budget          (default 160)
//!   --fuel <n>         step/instruction budget        (default 20000000)
//!   --corpus-out <dir> write each shrunk find to <dir>/find-<seed>.scm
//! ```
//!
//! Every case derives its seed from `--seed` and its index; a reported
//! find prints the exact `--seed N --cases 1` command that replays it.
//! Output is deterministic for fixed options. Exit status: 0 when no
//! finds, 1 when at least one find, 2 on usage errors.

use std::process::ExitCode;

use lesgs_fuzz::{fuzz_case, CaseOutcome, FuzzOptions, FuzzReport, SkipReason};

fn usage() -> ! {
    eprintln!(
        "usage: lesgs-fuzz [--seed <n>] [--cases <n>] [--max-size <n>]\n\
         \x20                 [--fuel <n>] [--corpus-out <dir>]"
    );
    std::process::exit(2);
}

fn parse_args() -> Result<(FuzzOptions, Option<String>), String> {
    let mut opts = FuzzOptions::default();
    let mut corpus_out = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .ok_or_else(|| format!("{what} requires a value"))
        };
        let num = |what: &str, v: String| {
            v.parse::<u64>()
                .map_err(|_| format!("{what} requires a number"))
        };
        match a.as_str() {
            "--seed" => opts.seed = num("--seed", value("--seed")?)?,
            "--cases" => opts.cases = num("--cases", value("--cases")?)?,
            "--max-size" => opts.gen.max_size = num("--max-size", value("--max-size")?)? as usize,
            "--fuel" => opts.oracle.fuel = num("--fuel", value("--fuel")?)?,
            "--corpus-out" => corpus_out = Some(value("--corpus-out")?),
            "--help" | "-h" => usage(),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok((opts, corpus_out))
}

fn main() -> ExitCode {
    let (opts, corpus_out) = match parse_args() {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("lesgs-fuzz: {e}");
            return ExitCode::from(2);
        }
    };

    let mut report = FuzzReport::default();
    for index in 0..opts.cases {
        let (_, outcome, find) = fuzz_case(index, &opts);
        report.cases += 1;
        match outcome {
            CaseOutcome::Pass => report.passes += 1,
            CaseOutcome::Skip(SkipReason::Fuel) => report.skips_fuel += 1,
            CaseOutcome::Skip(SkipReason::OracleError(_)) => report.skips_oracle += 1,
            CaseOutcome::Find(_) => {
                let find = find.expect("find outcome carries a Find");
                println!("FIND at case {} (seed {}):", find.index, find.seed);
                println!("  failure: {}", find.failure);
                println!(
                    "  shrunk {} -> {} bytes in {} attempts ({} accepted)",
                    find.original.len(),
                    find.shrunk.len(),
                    find.shrink_stats.attempts,
                    find.shrink_stats.accepted
                );
                println!("  reproduce: {}", find.repro_command(opts.gen.max_size));
                for line in find.shrunk.lines() {
                    println!("  | {line}");
                }
                if let Some(dir) = &corpus_out {
                    let path = format!("{dir}/find-{}.scm", find.seed);
                    if let Err(e) = std::fs::create_dir_all(dir).and_then(|()| {
                        std::fs::write(&path, find.to_corpus_file(opts.gen.max_size))
                    }) {
                        eprintln!("lesgs-fuzz: {path}: {e}");
                        return ExitCode::from(2);
                    }
                    println!("  written: {path}");
                }
                report.finds.push(find);
            }
        }
    }
    println!("{report}");
    if report.finds.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
