//! `lesgs-fuzz` — differential fuzzing driver.
//!
//! ```text
//! lesgs-fuzz [options]
//!
//! options:
//!   --seed <n>         base seed                      (default 0)
//!   --cases <n>        number of programs to judge    (default 100)
//!   --max-size <n>     generator size budget          (default 160)
//!   --fuel <n>         step/instruction budget        (default 20000000)
//!   --jobs <n>         worker threads judging cases   (default 1)
//!   --no-speculation   disable speculative IC dispatch in judged runs
//!                      (stdout must stay byte-identical; CI diffs it)
//!   --corpus-out <dir> write each shrunk find to <dir>/find-<seed>.scm
//! ```
//!
//! Every case derives its seed from `--seed` and its index; a reported
//! find prints the exact command — including every non-default option —
//! that replays it. Output is deterministic for fixed options: stdout
//! and corpus files are byte-identical for every `--jobs` value (worker
//! accounting goes to stderr). Exit status: 0 when no finds, 1 when at
//! least one find, 2 on usage or I/O errors.

use std::process::ExitCode;

use lesgs_fuzz::{parse_cli, run_fuzz_observed, CaseOutcome, CaseReport};

fn usage() -> ! {
    eprintln!(
        "usage: lesgs-fuzz [--seed <n>] [--cases <n>] [--max-size <n>]\n\
         \x20                 [--fuel <n>] [--jobs <n>] [--no-speculation]\n\
         \x20                 [--corpus-out <dir>]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    if std::env::args().skip(1).any(|a| a == "--help" || a == "-h") {
        usage();
    }
    let cli = match parse_cli(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("lesgs-fuzz: {e}");
            return ExitCode::from(2);
        }
    };

    let opts = &cli.opts;
    let campaign = run_fuzz_observed(opts, |case: CaseReport<'_>| -> Result<(), String> {
        if !matches!(case.outcome, CaseOutcome::Find(_)) {
            return Ok(());
        }
        let find = case.find.expect("find outcome carries a Find");
        println!("FIND at case {} (seed {}):", find.index, find.seed);
        println!("  failure: {}", find.failure);
        println!(
            "  shrunk {} -> {} bytes in {} attempts ({} accepted)",
            find.original.len(),
            find.shrunk.len(),
            find.shrink_stats.attempts,
            find.shrink_stats.accepted
        );
        println!("  reproduce: {}", find.repro_command(opts));
        for line in find.shrunk.lines() {
            println!("  | {line}");
        }
        if let Some(dir) = &cli.corpus_out {
            let path = format!("{dir}/find-{}.scm", find.seed);
            std::fs::create_dir_all(dir)
                .and_then(|()| std::fs::write(&path, find.to_corpus_file(opts)))
                .map_err(|e| format!("{path}: {e}"))?;
            println!("  written: {path}");
        }
        Ok(())
    });
    let (report, stats) = match campaign {
        Ok(done) => done,
        Err(e) => {
            eprintln!("lesgs-fuzz: {e}");
            return ExitCode::from(2);
        }
    };
    println!("{report}");
    if opts.jobs > 1 {
        eprintln!("lesgs-fuzz: exec: {}", stats.summary());
    }
    if report.finds.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
