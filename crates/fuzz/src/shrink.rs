//! The greedy shrinker.
//!
//! Given a failing program and a predicate ("does this still fail?"),
//! repeatedly applies the first size-reducing rewrite that keeps the
//! failure alive, until no rewrite helps or the attempt budget runs
//! out. Rewrites are purely structural and sort-preserving, so every
//! candidate is a well-formed numeric program; candidates that break
//! scoping (e.g. removing a still-referenced definition) make the
//! oracle fail and are rejected by the predicate automatically.
//!
//! Rewrites, tried biggest-win first each round:
//!
//! 1. remove a whole definition;
//! 2. remove one parameter of a definition (and the matching argument
//!    at every call site);
//! 3. replace an expression with `0`, `1`, or one of its own
//!    subexpressions (pre-order, so roots shrink before leaves).
//!
//! Everything is deterministic: same input program + same predicate
//! behavior ⇒ same shrunk program.

use crate::ast::{Def, Expr, Pred, Program};

/// Shrink-loop accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShrinkStats {
    /// Candidate programs evaluated.
    pub attempts: usize,
    /// Candidates accepted (size-reducing and still failing).
    pub accepted: usize,
}

/// Greedily minimizes `prog` while `still_fails` holds on the rendered
/// source. Returns the shrunk program and accounting.
pub fn shrink(
    prog: &Program,
    mut still_fails: impl FnMut(&str) -> bool,
    max_attempts: usize,
) -> (Program, ShrinkStats) {
    let mut current = prog.clone();
    let mut stats = ShrinkStats::default();
    'outer: loop {
        for cand in candidates(&current) {
            if stats.attempts >= max_attempts {
                break 'outer;
            }
            stats.attempts += 1;
            if still_fails(&cand.render()) {
                current = cand;
                stats.accepted += 1;
                continue 'outer;
            }
        }
        break;
    }
    (current, stats)
}

/// All single-step rewrites of `prog`, biggest wins first. Each is
/// strictly smaller than `prog`.
fn candidates(prog: &Program) -> Vec<Program> {
    let mut out = Vec::new();
    // 1. Drop a definition.
    for i in 0..prog.defs.len() {
        let mut p = prog.clone();
        p.defs.remove(i);
        out.push(p);
    }
    // 2. Drop a parameter (and its argument at every call site).
    for (i, def) in prog.defs.iter().enumerate() {
        for j in 0..def.params.len() {
            out.push(remove_param(prog, i, j));
        }
    }
    // 3. Rewrite one expression node.
    let nodes = collect_exprs(prog);
    for (k, node) in nodes.iter().enumerate() {
        for repl in node_replacements(node) {
            out.push(replace_expr(prog, k, &repl));
        }
    }
    out
}

/// Smaller stand-ins for one node: constants, then each direct numeric
/// subexpression (hoisting).
fn node_replacements(e: &Expr) -> Vec<Expr> {
    let mut out = Vec::new();
    if *e != Expr::Num(0) {
        out.push(Expr::Num(0));
    }
    if *e != Expr::Num(1) && !matches!(e, Expr::Num(_)) {
        out.push(Expr::Num(1));
    }
    if let Expr::Num(n) = e {
        if n.abs() > 1 {
            out.push(Expr::Num(n / 2));
        }
    }
    for child in direct_children(e) {
        out.push(child.clone());
    }
    out
}

fn direct_children(e: &Expr) -> Vec<&Expr> {
    match e {
        Expr::Num(_) | Expr::Var(_) => Vec::new(),
        Expr::If(_, t, el) => vec![t, el],
        Expr::Let(binds, body) => binds
            .iter()
            .map(|(_, e)| e)
            .chain(std::iter::once(&**body))
            .collect(),
        Expr::Prim(_, args) | Expr::Call(_, args) => args.iter().collect(),
        Expr::LetFun { body, .. } => vec![body],
        Expr::Loop { init, acc0, .. } => vec![init, acc0],
        Expr::Display(e, k) => vec![e, k],
    }
}

/// Clones `prog` with parameter `j` of definition `i` removed, along
/// with the `j`-th argument of every call to it. Call sites with a
/// different argument count are left alone (the predicate rejects the
/// candidate if that breaks the program).
fn remove_param(prog: &Program, i: usize, j: usize) -> Program {
    let name = prog.defs[i].name.clone();
    let arity = prog.defs[i].params.len();
    let fix = |e: &Expr| -> Option<Expr> {
        if let Expr::Call(n, args) = e {
            if *n == name && args.len() == arity {
                let mut args = args.clone();
                args.remove(j);
                return Some(Expr::Call(n.clone(), args));
            }
        }
        None
    };
    let mut p = Program {
        defs: prog
            .defs
            .iter()
            .map(|d| Def {
                name: d.name.clone(),
                params: d.params.clone(),
                body: map_expr(&d.body, &fix),
            })
            .collect(),
        main: map_expr(&prog.main, &fix),
    };
    p.defs[i].params.remove(j);
    p
}

/// Bottom-up structural map: rebuilds the tree, replacing every node
/// for which `f` returns `Some` (after its children were rewritten).
fn map_expr(e: &Expr, f: &impl Fn(&Expr) -> Option<Expr>) -> Expr {
    let rebuilt = match e {
        Expr::Num(_) | Expr::Var(_) => e.clone(),
        Expr::If(p, t, el) => Expr::If(
            Box::new(map_pred(p, f)),
            Box::new(map_expr(t, f)),
            Box::new(map_expr(el, f)),
        ),
        Expr::Let(binds, body) => Expr::Let(
            binds
                .iter()
                .map(|(v, e)| (v.clone(), map_expr(e, f)))
                .collect(),
            Box::new(map_expr(body, f)),
        ),
        Expr::Prim(op, args) => Expr::Prim(op, args.iter().map(|a| map_expr(a, f)).collect()),
        Expr::Call(n, args) => Expr::Call(n.clone(), args.iter().map(|a| map_expr(a, f)).collect()),
        Expr::LetFun {
            name,
            params,
            fbody,
            body,
        } => Expr::LetFun {
            name: name.clone(),
            params: params.clone(),
            fbody: Box::new(map_expr(fbody, f)),
            body: Box::new(map_expr(body, f)),
        },
        Expr::Loop {
            name,
            init,
            acc0,
            step,
        } => Expr::Loop {
            name: name.clone(),
            init: Box::new(map_expr(init, f)),
            acc0: Box::new(map_expr(acc0, f)),
            step: Box::new(map_expr(step, f)),
        },
        Expr::Display(e1, k) => Expr::Display(Box::new(map_expr(e1, f)), Box::new(map_expr(k, f))),
    };
    f(&rebuilt).unwrap_or(rebuilt)
}

fn map_pred(p: &Pred, f: &impl Fn(&Expr) -> Option<Expr>) -> Pred {
    match p {
        Pred::Test(op, e) => Pred::Test(op, Box::new(map_expr(e, f))),
        Pred::Cmp(op, a, b) => Pred::Cmp(op, Box::new(map_expr(a, f)), Box::new(map_expr(b, f))),
        Pred::Not(q) => Pred::Not(Box::new(map_pred(q, f))),
        Pred::And(a, b) => Pred::And(Box::new(map_pred(a, f)), Box::new(map_pred(b, f))),
        Pred::Or(a, b) => Pred::Or(Box::new(map_pred(a, f)), Box::new(map_pred(b, f))),
    }
}

/// Pre-order list of every [`Expr`] node (descending through predicate
/// operands), cloned. The index order matches [`replace_expr`].
fn collect_exprs(prog: &Program) -> Vec<Expr> {
    let mut out = Vec::new();
    for d in &prog.defs {
        collect_expr(&d.body, &mut out);
    }
    collect_expr(&prog.main, &mut out);
    out
}

fn collect_expr(e: &Expr, out: &mut Vec<Expr>) {
    out.push(e.clone());
    match e {
        Expr::Num(_) | Expr::Var(_) => {}
        Expr::If(p, t, el) => {
            collect_pred(p, out);
            collect_expr(t, out);
            collect_expr(el, out);
        }
        Expr::Let(binds, body) => {
            for (_, e) in binds {
                collect_expr(e, out);
            }
            collect_expr(body, out);
        }
        Expr::Prim(_, args) | Expr::Call(_, args) => {
            for a in args {
                collect_expr(a, out);
            }
        }
        Expr::LetFun { fbody, body, .. } => {
            collect_expr(fbody, out);
            collect_expr(body, out);
        }
        Expr::Loop {
            init, acc0, step, ..
        } => {
            collect_expr(init, out);
            collect_expr(acc0, out);
            collect_expr(step, out);
        }
        Expr::Display(e1, k) => {
            collect_expr(e1, out);
            collect_expr(k, out);
        }
    }
}

fn collect_pred(p: &Pred, out: &mut Vec<Expr>) {
    match p {
        Pred::Test(_, e) => collect_expr(e, out),
        Pred::Cmp(_, a, b) => {
            collect_expr(a, out);
            collect_expr(b, out);
        }
        Pred::Not(q) => collect_pred(q, out),
        Pred::And(a, b) | Pred::Or(a, b) => {
            collect_pred(a, out);
            collect_pred(b, out);
        }
    }
}

/// Clones `prog` with pre-order expression node `k` replaced.
fn replace_expr(prog: &Program, k: usize, replacement: &Expr) -> Program {
    let mut counter = k as isize;
    let mut defs = Vec::with_capacity(prog.defs.len());
    for d in &prog.defs {
        defs.push(Def {
            name: d.name.clone(),
            params: d.params.clone(),
            body: rewrite_expr(&d.body, &mut counter, replacement),
        });
    }
    let main = rewrite_expr(&prog.main, &mut counter, replacement);
    Program { defs, main }
}

fn rewrite_expr(e: &Expr, k: &mut isize, replacement: &Expr) -> Expr {
    if *k == 0 {
        *k -= 1;
        return replacement.clone();
    }
    *k -= 1;
    match e {
        Expr::Num(_) | Expr::Var(_) => e.clone(),
        Expr::If(p, t, el) => {
            let p = rewrite_pred(p, k, replacement);
            let t = rewrite_expr(t, k, replacement);
            let el = rewrite_expr(el, k, replacement);
            Expr::If(Box::new(p), Box::new(t), Box::new(el))
        }
        Expr::Let(binds, body) => {
            let binds = binds
                .iter()
                .map(|(v, e)| (v.clone(), rewrite_expr(e, k, replacement)))
                .collect();
            Expr::Let(binds, Box::new(rewrite_expr(body, k, replacement)))
        }
        Expr::Prim(op, args) => Expr::Prim(
            op,
            args.iter()
                .map(|a| rewrite_expr(a, k, replacement))
                .collect(),
        ),
        Expr::Call(n, args) => Expr::Call(
            n.clone(),
            args.iter()
                .map(|a| rewrite_expr(a, k, replacement))
                .collect(),
        ),
        Expr::LetFun {
            name,
            params,
            fbody,
            body,
        } => {
            let fbody = rewrite_expr(fbody, k, replacement);
            let body = rewrite_expr(body, k, replacement);
            Expr::LetFun {
                name: name.clone(),
                params: params.clone(),
                fbody: Box::new(fbody),
                body: Box::new(body),
            }
        }
        Expr::Loop {
            name,
            init,
            acc0,
            step,
        } => {
            let init = rewrite_expr(init, k, replacement);
            let acc0 = rewrite_expr(acc0, k, replacement);
            let step = rewrite_expr(step, k, replacement);
            Expr::Loop {
                name: name.clone(),
                init: Box::new(init),
                acc0: Box::new(acc0),
                step: Box::new(step),
            }
        }
        Expr::Display(e1, kont) => {
            let e1 = rewrite_expr(e1, k, replacement);
            let kont = rewrite_expr(kont, k, replacement);
            Expr::Display(Box::new(e1), Box::new(kont))
        }
    }
}

fn rewrite_pred(p: &Pred, k: &mut isize, replacement: &Expr) -> Pred {
    match p {
        Pred::Test(op, e) => Pred::Test(op, Box::new(rewrite_expr(e, k, replacement))),
        Pred::Cmp(op, a, b) => {
            let a = rewrite_expr(a, k, replacement);
            let b = rewrite_expr(b, k, replacement);
            Pred::Cmp(op, Box::new(a), Box::new(b))
        }
        Pred::Not(q) => Pred::Not(Box::new(rewrite_pred(q, k, replacement))),
        Pred::And(a, b) => {
            let a = rewrite_pred(a, k, replacement);
            let b = rewrite_pred(b, k, replacement);
            Pred::And(Box::new(a), Box::new(b))
        }
        Pred::Or(a, b) => {
            let a = rewrite_pred(a, k, replacement);
            let b = rewrite_pred(b, k, replacement);
            Pred::Or(Box::new(a), Box::new(b))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};
    use lesgs_testkit::Rng;

    /// A synthetic failure: "the source mentions f0 applied to
    /// something". The shrinker must cut everything else away.
    #[test]
    fn shrinks_synthetic_failure_to_a_tiny_program() {
        let prog = generate(&mut Rng::new(7), &GenConfig::default());
        assert!(prog.render().contains("(f0"), "seed 7 calls f0");
        let (small, stats) = shrink(&prog, |src| src.contains("(f0"), 20_000);
        assert!(stats.accepted > 0, "some rewrite must land");
        assert!(small.render().contains("(f0"));
        assert!(
            small.size() <= 12,
            "shrunk to {} nodes:\n{}",
            small.size(),
            small.render()
        );
    }

    #[test]
    fn shrinking_is_deterministic() {
        let prog = generate(&mut Rng::new(11), &GenConfig::default());
        let (a, _) = shrink(&prog, |src| src.contains("remainder"), 5_000);
        let (b, _) = shrink(&prog, |src| src.contains("remainder"), 5_000);
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn replace_expr_hits_every_index_once() {
        let prog = generate(&mut Rng::new(3), &GenConfig::default());
        let nodes = collect_exprs(&prog);
        // Replacing node k with a sentinel puts exactly one sentinel in
        // the program.
        for k in [0, nodes.len() / 2, nodes.len() - 1] {
            let p = replace_expr(&prog, k, &Expr::Num(424_242));
            let mut hits = 0;
            let count = |e: &Expr| {
                if *e == Expr::Num(424_242) {
                    return 1;
                }
                0
            };
            p.main.visit(&mut |e| hits += count(e), &mut |_| {});
            for d in &p.defs {
                d.body.visit(&mut |e| hits += count(e), &mut |_| {});
            }
            assert_eq!(hits, 1, "index {k}");
        }
    }
}
