//! Whole-catalogue mutation test for the fusion jump-target invariant.
//!
//! For **every** template in the [`FusionKind`] catalogue (a superset
//! of whatever the generated table enables), this builds a synthetic
//! program whose fused pair's *second half* is a branch target, then
//! checks the two halves of the contract:
//!
//! 1. the second instruction's slot keeps its **plain** decoding (it is
//!    byte-identical to the fusion-disabled decode of the same slot),
//!    so a branch landing mid-pair executes exactly the original
//!    instruction; and
//! 2. the decoded engine's outcome — value, output, and every counter —
//!    matches the classic engine's, which never fuses at all.
//!
//! Run against both the full catalogue (pins every handler, including
//! templates measurement currently disables) and the committed
//! generated table (pins the shipping configuration). A regression that
//! fused the second slot, or re-executed the first half after a
//! mid-pair landing, breaks the stats equality even when the final
//! value happens to agree.

use lesgs_frontend::Prim;
use lesgs_ir::machine::{arg_reg, scratch_reg, RV};
use lesgs_vm::{
    ClassicMachine, CostModel, DecodedProgram, FusionEntry, FusionKind, Imm, Instr, Machine,
    SlotClass, TripleEntry, TripleKind, VmFunc, VmProgram, FUSION_TABLE, TRIPLE_TABLE,
};

/// One per-template case: the setup that feeds the pair, the pair
/// itself, and the tail that folds the pair's effects into `rv`.
struct PairCase {
    kind: FusionKind,
    setup: Vec<Instr>,
    pair: (Instr, Instr),
    finish: Vec<Instr>,
    expect: &'static str,
}

fn imm(dst: lesgs_ir::Reg, n: i64) -> Instr {
    Instr::LoadImm {
        dst,
        imm: Imm::Fixnum(n),
    }
}

fn add(dst: lesgs_ir::Reg, x: lesgs_ir::Reg, y: lesgs_ir::Reg) -> Instr {
    Instr::Prim {
        op: Prim::Add,
        dst,
        args: vec![x, y],
    }
}

/// One case per catalogue template. Registers: `a`/`b` are inputs,
/// `c`/`d` the pair's destinations; stack cases use frame slots 0/1.
fn cases() -> Vec<PairCase> {
    let (a, b, c, d) = (arg_reg(0), arg_reg(1), arg_reg(2), arg_reg(3));
    let load = |dst, slot| Instr::StackLoad {
        dst,
        slot,
        class: SlotClass::Temp,
    };
    let store = |slot, src| Instr::StackStore {
        slot,
        src,
        class: SlotClass::Temp,
    };
    vec![
        PairCase {
            // `brfalse` on a true predicate falls through both times the
            // branch executes (fused, then landed-on).
            kind: FusionKind::CmpBranch,
            setup: vec![imm(a, 3), imm(b, 5)],
            pair: (
                Instr::Prim {
                    op: Prim::Lt,
                    dst: c,
                    args: vec![a, b],
                },
                Instr::BranchFalse {
                    src: c,
                    // Patched by `build_program` to the finish label.
                    target: u32::MAX,
                    likely: None,
                },
            ),
            finish: vec![add(RV, a, b)],
            expect: "8",
        },
        PairCase {
            kind: FusionKind::MovMov,
            setup: vec![imm(a, 3), imm(b, 5)],
            pair: (Instr::Mov { dst: c, src: a }, Instr::Mov { dst: d, src: b }),
            finish: vec![add(RV, c, d)],
            expect: "8",
        },
        PairCase {
            kind: FusionKind::ImmImm,
            setup: vec![],
            pair: (imm(c, 7), imm(d, 9)),
            finish: vec![add(RV, c, d)],
            expect: "16",
        },
        PairCase {
            kind: FusionKind::ImmMov,
            setup: vec![imm(a, 3)],
            pair: (imm(c, 7), Instr::Mov { dst: d, src: a }),
            finish: vec![add(RV, c, d)],
            expect: "10",
        },
        PairCase {
            kind: FusionKind::MovImm,
            setup: vec![imm(a, 3)],
            pair: (Instr::Mov { dst: c, src: a }, imm(d, 9)),
            finish: vec![add(RV, c, d)],
            expect: "12",
        },
        PairCase {
            kind: FusionKind::LoadLoad,
            setup: vec![imm(a, 3), imm(b, 5), store(0, a), store(1, b)],
            pair: (load(c, 0), load(d, 1)),
            finish: vec![add(RV, c, d)],
            expect: "8",
        },
        PairCase {
            kind: FusionKind::StoreStore,
            setup: vec![imm(a, 3), imm(b, 5)],
            pair: (store(0, a), store(1, b)),
            finish: vec![load(c, 0), load(d, 1), add(RV, c, d)],
            expect: "8",
        },
    ]
}

/// Builds the harness around one case and returns the program plus the
/// source indices of the pair's two halves:
///
/// ```text
/// setup…
/// guard <- 0
/// sep   <- guard + guard     ; Prim separator: no template has a
///                            ; Prim second half, so greedy scanning
///                            ; always aligns on the pair's first op
/// first:  pair.0
/// second: pair.1             ; the branch target under test
/// t     <- zero?(guard)
/// guard <- 1
/// brtrue t -> second         ; lands mid-pair exactly once
/// finish…
/// halt
/// ```
fn build_program(case: &PairCase) -> (VmProgram, u32, u32) {
    let guard = scratch_reg(0);
    let t = scratch_reg(1);
    let mut code = case.setup.clone();
    code.push(imm(guard, 0));
    code.push(add(scratch_reg(2), guard, guard));
    let first = code.len() as u32;
    let second = first + 1;
    code.push(case.pair.0.clone());
    code.push(case.pair.1.clone());
    code.push(Instr::Prim {
        op: Prim::IsZero,
        dst: t,
        args: vec![guard],
    });
    code.push(imm(guard, 1));
    code.push(Instr::BranchTrue {
        src: t,
        target: second,
        likely: None,
    });
    // Patch the CmpBranch case's forward branch to the finish label.
    let finish_label = code.len() as u32;
    if let Instr::BranchFalse { target, .. } = &mut code[second as usize] {
        if *target == u32::MAX {
            *target = finish_label;
        }
    }
    code.extend(case.finish.iter().cloned());
    code.push(Instr::Halt);
    let program = VmProgram {
        funcs: vec![VmFunc {
            id: lesgs_frontend::FuncId(0),
            name: "entry".into(),
            code,
            frame_size: 4,
            n_incoming: 0,
            syntactic_leaf: true,
            call_inevitable: false,
        }],
        entry: lesgs_frontend::FuncId(0),
        constants: vec![],
        n_globals: 0,
    };
    (program, first, second)
}

/// Runs one case under one fusion table and applies the invariant
/// checks. `must_fuse` asserts the pair actually fused (true when the
/// table enables the case's template).
fn check_case(case: &PairCase, table: &[FusionEntry], must_fuse: bool) {
    let (program, first, second) = build_program(case);
    let decoded = DecodedProgram::decode_with_table(&program, table, &[]);
    let unfused = DecodedProgram::decode_with_table(&program, &[], &[]);
    let kind = case.kind;

    // Slot preservation makes pcs comparable across tables.
    assert_eq!(
        decoded.ops().len(),
        unfused.ops().len(),
        "{kind:?}: fusion must not change slot count"
    );
    if must_fuse {
        assert!(
            decoded.stats().fused(kind) >= 1,
            "{kind:?}: pair did not fuse\n{}",
            decoded.disassemble()
        );
        assert_ne!(
            decoded.ops()[first as usize],
            unfused.ops()[first as usize],
            "{kind:?}: first slot should hold the fused op"
        );
    }
    // The invariant under test: the second half — a branch target —
    // keeps its plain decoding under EVERY table.
    assert_eq!(
        decoded.ops()[second as usize],
        unfused.ops()[second as usize],
        "{kind:?}: jump-target second half must decode unfused\n{}",
        decoded.disassemble()
    );

    // And the mid-pair landing is observably equivalent: value, output,
    // and every counter match the never-fusing classic engine.
    let out = Machine::from_decoded(&decoded, CostModel::alpha_like())
        .run()
        .unwrap_or_else(|e| panic!("{kind:?}: decoded run failed: {e}"));
    let classic = ClassicMachine::new(&program, CostModel::alpha_like())
        .run()
        .unwrap_or_else(|e| panic!("{kind:?}: classic run failed: {e}"));
    assert_eq!(out.value, case.expect, "{kind:?}");
    assert_eq!(out.value, classic.value, "{kind:?}");
    assert_eq!(out.output, classic.output, "{kind:?}");
    assert_eq!(out.stats, classic.stats, "{kind:?}: counter divergence");
}

/// Every catalogue template, full table: the pair fuses, the landed-on
/// second half stays plain, outcomes match classic exactly.
#[test]
fn every_template_keeps_its_jump_target_fallback() {
    let full: Vec<FusionEntry> = FusionKind::ALL
        .iter()
        .map(|&kind| FusionEntry {
            kind,
            dynamic_count: 1,
        })
        .collect();
    let cases = cases();
    // The harness is itself under test: make sure it covers the whole
    // catalogue, so a new template cannot ship without a case here.
    let covered: Vec<FusionKind> = cases.iter().map(|c| c.kind).collect();
    assert_eq!(covered, FusionKind::ALL.to_vec(), "catalogue coverage gap");
    for case in &cases {
        check_case(case, &full, true);
    }
}

/// Same invariants under the committed generated table — the shipping
/// configuration. Templates the measurement disabled simply don't
/// fuse; enabled ones must, and the fallback holds either way.
#[test]
fn generated_table_keeps_its_jump_target_fallback() {
    for case in &cases() {
        let enabled = FUSION_TABLE.iter().any(|e| e.kind == case.kind);
        check_case(case, FUSION_TABLE, enabled);
    }
}

/// One per-triple-template case, mirroring [`PairCase`]: the triple's
/// second AND third slots each become a branch target once.
struct TripleCase {
    kind: TripleKind,
    setup: Vec<Instr>,
    triple: (Instr, Instr, Instr),
    finish: Vec<Instr>,
    expect: &'static str,
}

/// One case per triple-catalogue template. Each triple's later parts
/// must be idempotent under re-execution, because the harness lands on
/// the second slot once (running parts 2+3 again) and on the third
/// slot once (running part 3 again).
fn triple_cases() -> Vec<TripleCase> {
    let (a, b, c, d) = (arg_reg(0), arg_reg(1), arg_reg(2), arg_reg(3));
    let load = |dst, slot| Instr::StackLoad {
        dst,
        slot,
        class: SlotClass::Temp,
    };
    let store = |slot, src| Instr::StackStore {
        slot,
        src,
        class: SlotClass::Temp,
    };
    let mov = |dst, src| Instr::Mov { dst, src };
    vec![
        TripleCase {
            kind: TripleKind::PrimStoreMov,
            setup: vec![imm(a, 3), imm(b, 5)],
            triple: (add(c, a, b), store(0, c), mov(d, a)),
            finish: vec![load(c, 0), add(RV, c, d)],
            expect: "11",
        },
        TripleCase {
            kind: TripleKind::StoreMovPrim,
            setup: vec![imm(a, 3), imm(b, 5)],
            triple: (store(0, a), mov(c, b), add(d, c, b)),
            finish: vec![load(c, 0), add(RV, c, d)],
            expect: "13",
        },
        TripleCase {
            // `brfalse` on a true predicate falls through every time
            // the branch executes (fused, then landed-on twice).
            kind: TripleKind::MovCmpBranch,
            setup: vec![imm(a, 3), imm(b, 5)],
            triple: (
                mov(c, a),
                Instr::Prim {
                    op: Prim::Lt,
                    dst: d,
                    args: vec![c, b],
                },
                Instr::BranchFalse {
                    src: d,
                    // Patched by `build_program3` to the finish label.
                    target: u32::MAX,
                    likely: None,
                },
            ),
            finish: vec![add(RV, a, b)],
            expect: "8",
        },
        TripleCase {
            kind: TripleKind::MovImmPrim,
            setup: vec![imm(a, 3)],
            triple: (mov(c, a), imm(d, 9), add(RV, c, d)),
            finish: vec![],
            expect: "12",
        },
        TripleCase {
            kind: TripleKind::LoadLoadLoad,
            setup: vec![
                imm(a, 3),
                store(0, a),
                imm(b, 5),
                store(1, b),
                imm(a, 7),
                store(2, a),
            ],
            triple: (load(c, 0), load(d, 1), load(b, 2)),
            finish: vec![add(RV, c, d), add(RV, RV, b)],
            expect: "15",
        },
        TripleCase {
            kind: TripleKind::StoreStoreStore,
            setup: vec![imm(a, 3), imm(b, 5)],
            triple: (store(0, a), store(1, b), store(2, a)),
            finish: vec![
                load(c, 0),
                load(d, 1),
                add(RV, c, d),
                load(c, 2),
                add(RV, RV, c),
            ],
            expect: "11",
        },
        TripleCase {
            kind: TripleKind::LoadLoadStore,
            setup: vec![imm(a, 3), imm(b, 5), store(0, a), store(1, b)],
            triple: (load(c, 0), load(d, 1), store(2, c)),
            finish: vec![load(b, 2), add(RV, d, b)],
            expect: "8",
        },
        TripleCase {
            kind: TripleKind::ImmPrimMov,
            setup: vec![],
            triple: (imm(c, 7), add(d, c, c), mov(b, d)),
            finish: vec![add(RV, d, b)],
            expect: "28",
        },
    ]
}

/// Builds the harness around one triple case and returns the program
/// plus the source indices of the triple's three parts:
///
/// ```text
/// setup…
/// g1 <- 0 ; g2 <- 0
/// jump first                 ; separator: `jump` appears in no pair
///                            ; or triple template, so greedy scanning
///                            ; always aligns on the triple's first op
/// first:  triple.0
/// second: triple.1           ; branch target (pass 1)
/// third:  triple.2           ; branch target (pass 2)
/// t  <- zero?(g1)
/// g1 <- 1
/// brtrue t -> second         ; lands mid-triple on the second slot
/// t  <- zero?(g2)
/// g2 <- 1
/// brtrue t -> third          ; lands mid-triple on the third slot
/// finish…
/// halt
/// ```
fn build_program3(case: &TripleCase) -> (VmProgram, u32, u32, u32) {
    let g1 = scratch_reg(0);
    let g2 = scratch_reg(1);
    let t = scratch_reg(2);
    let mut code = case.setup.clone();
    code.push(imm(g1, 0));
    code.push(imm(g2, 0));
    let first = code.len() as u32 + 1;
    code.push(Instr::Jump { target: first });
    let second = first + 1;
    let third = first + 2;
    code.push(case.triple.0.clone());
    code.push(case.triple.1.clone());
    code.push(case.triple.2.clone());
    for (guard, target) in [(g1, second), (g2, third)] {
        code.push(Instr::Prim {
            op: Prim::IsZero,
            dst: t,
            args: vec![guard],
        });
        code.push(imm(guard, 1));
        code.push(Instr::BranchTrue {
            src: t,
            target,
            likely: None,
        });
    }
    // Patch the MovCmpBranch case's forward branch to the finish label.
    let finish_label = code.len() as u32;
    if let Instr::BranchFalse { target, .. } = &mut code[third as usize] {
        if *target == u32::MAX {
            *target = finish_label;
        }
    }
    code.extend(case.finish.iter().cloned());
    code.push(Instr::Halt);
    let program = VmProgram {
        funcs: vec![VmFunc {
            id: lesgs_frontend::FuncId(0),
            name: "entry".into(),
            code,
            frame_size: 4,
            n_incoming: 0,
            syntactic_leaf: true,
            call_inevitable: false,
        }],
        entry: lesgs_frontend::FuncId(0),
        constants: vec![],
        n_globals: 0,
    };
    (program, first, second, third)
}

/// Runs one triple case under one (pair, triple) table combination.
/// `check_slots` additionally pins the slot-preservation mechanics —
/// meaningful with an empty pair table, where nothing else can occupy
/// the triple's later slots.
fn check_case3(
    case: &TripleCase,
    pairs: &[FusionEntry],
    triples: &[TripleEntry],
    must_fuse: bool,
    check_slots: bool,
) {
    let (program, first, second, third) = build_program3(case);
    let decoded = DecodedProgram::decode_with_table(&program, pairs, triples);
    let unfused = DecodedProgram::decode_with_table(&program, &[], &[]);
    let kind = case.kind;

    // Slot preservation makes pcs comparable across tables.
    assert_eq!(
        decoded.ops().len(),
        unfused.ops().len(),
        "{kind:?}: fusion must not change slot count"
    );
    if must_fuse {
        assert!(
            decoded.stats().fused3(kind) >= 1,
            "{kind:?}: triple did not fuse\n{}",
            decoded.disassemble()
        );
    }
    if check_slots {
        if must_fuse {
            assert_ne!(
                decoded.ops()[first as usize],
                unfused.ops()[first as usize],
                "{kind:?}: first slot should hold the fused op"
            );
        }
        // The invariant under test: both later slots — branch targets —
        // keep their plain decodings.
        for (label, slot) in [("second", second), ("third", third)] {
            assert_eq!(
                decoded.ops()[slot as usize],
                unfused.ops()[slot as usize],
                "{kind:?}: jump-target {label} slot must decode unfused\n{}",
                decoded.disassemble()
            );
        }
    }

    // Mid-triple landings are observably equivalent: value, output,
    // and every counter match the never-fusing classic engine.
    let out = Machine::from_decoded(&decoded, CostModel::alpha_like())
        .run()
        .unwrap_or_else(|e| panic!("{kind:?}: decoded run failed: {e}"));
    let classic = ClassicMachine::new(&program, CostModel::alpha_like())
        .run()
        .unwrap_or_else(|e| panic!("{kind:?}: classic run failed: {e}"));
    assert_eq!(out.value, case.expect, "{kind:?}");
    assert_eq!(out.value, classic.value, "{kind:?}");
    assert_eq!(out.output, classic.output, "{kind:?}");
    assert_eq!(out.stats, classic.stats, "{kind:?}: counter divergence");
}

/// Every triple template, full triple table and no pair fusion: the
/// triple fuses, both landed-on later slots stay plain, outcomes match
/// classic exactly.
#[test]
fn every_triple_template_keeps_its_jump_target_fallbacks() {
    let full: Vec<TripleEntry> = TripleKind::ALL
        .iter()
        .map(|&kind| TripleEntry {
            kind,
            dynamic_count: 1,
        })
        .collect();
    let cases = triple_cases();
    // Coverage tripwire: a new triple template cannot ship without a
    // mid-triple landing case here.
    let covered: Vec<TripleKind> = cases.iter().map(|c| c.kind).collect();
    assert_eq!(covered, TripleKind::ALL.to_vec(), "catalogue coverage gap");
    for case in &cases {
        check_case3(case, &[], &full, true, true);
    }
}

/// Same programs under the committed generated tables — the shipping
/// configuration, where pair templates may also claim slots near a
/// disabled triple. Enabled triples must fuse; either way the decoded
/// run must match classic on every counter. Slot-identity checks are
/// skipped because a legitimately-fused *pair* may occupy a later slot
/// when its triple is disabled.
#[test]
fn generated_triple_table_keeps_its_jump_target_fallbacks() {
    for case in &triple_cases() {
        let enabled = TRIPLE_TABLE.iter().any(|e| e.kind == case.kind);
        check_case3(case, FUSION_TABLE, TRIPLE_TABLE, enabled, false);
    }
}
