//! Bounded generative smoke test from the VM's side.
//!
//! Generated programs (a different seed and a smaller size budget than
//! the compiler crate's campaign, biasing toward deeper per-program
//! coverage) run through the differential oracle; the VM must verify
//! and agree with the reference interpreter under every configuration.

use lesgs_fuzz::{case_seed, generate, run_fuzz, FuzzOptions, GenConfig};

#[test]
fn generated_programs_execute_faithfully() {
    let opts = FuzzOptions {
        seed: 0x7A11E5,
        cases: 40,
        gen: GenConfig { max_size: 100 },
        ..Default::default()
    };
    let report = run_fuzz(&opts);
    assert_eq!(report.cases, opts.cases);
    assert!(
        report.finds.is_empty(),
        "VM disagreed with the interpreter:\n{}",
        report
            .finds
            .iter()
            .map(|f| format!("{}\n  repro: {}", f.failure, f.repro_command(&opts)))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// The `vm.*` metrics a run exports, keyed for key-set comparison.
fn exported_counters(stats: &lesgs_vm::RunStats) -> Vec<(String, u64)> {
    let mut reg = lesgs_metrics::Registry::new();
    stats.record(&mut reg);
    let mut counters: Vec<_> = reg.counters().map(|(k, v)| (k.to_owned(), v)).collect();
    counters.sort();
    counters
}

/// Pre-decoding must be invisible to the metrics layer: on generated
/// programs, under every allocator configuration, the classic and the
/// decoded engine must export the *same `vm.*` counter key set with the
/// same values* (and agree on the result).
#[test]
fn decoding_preserves_counter_streams_on_generated_programs() {
    use lesgs_compiler::{compile, config_matrix, CompilerConfig};
    use lesgs_vm::{ClassicMachine, Machine};

    const SEED: u64 = 0xDEC0DE;
    const CASES: u64 = 12;
    const FUEL: u64 = 2_000_000;

    let gen = GenConfig { max_size: 80 };
    let configs = config_matrix();
    for index in 0..CASES {
        let seed = case_seed(SEED, index);
        let prog = generate(&mut lesgs_testkit::Rng::new(seed), &gen);
        let src = prog.render();
        for (i, alloc) in configs.iter().enumerate() {
            let config = CompilerConfig {
                alloc: *alloc,
                fuel: FUEL,
                ..CompilerConfig::default()
            };
            let compiled = match compile(&src, &config) {
                Ok(c) => c,
                Err(e) => panic!("case {index} cfg {i}: compile failed: {e}"),
            };
            let classic = ClassicMachine::new(&compiled.vm, config.cost)
                .with_fuel(FUEL)
                .with_poison(config.poison)
                .run();
            let decoded = Machine::from_decoded(&compiled.decoded, config.cost)
                .with_fuel(FUEL)
                .with_poison(config.poison)
                .run();
            match (classic, decoded) {
                (Ok(c), Ok(d)) => {
                    assert_eq!(c.value, d.value, "case {index} cfg {i}: value");
                    assert_eq!(c.output, d.output, "case {index} cfg {i}: output");
                    assert_eq!(
                        exported_counters(&c.stats),
                        exported_counters(&d.stats),
                        "case {index} cfg {i}: vm.* counters must be \
                         dispatch-invariant"
                    );
                }
                // Errors (fuel exhaustion included) must also agree,
                // message and location both.
                (Err(c), Err(d)) => {
                    assert_eq!(c.to_string(), d.to_string(), "case {index} cfg {i}: error");
                }
                (c, d) => {
                    panic!("case {index} cfg {i}: engines split: classic {c:?} vs decoded {d:?}")
                }
            }
        }
    }
}
