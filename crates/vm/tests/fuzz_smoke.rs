//! Bounded generative smoke test from the VM's side.
//!
//! Generated programs (a different seed and a smaller size budget than
//! the compiler crate's campaign, biasing toward deeper per-program
//! coverage) run through the differential oracle; the VM must verify
//! and agree with the reference interpreter under every configuration.

use lesgs_fuzz::{run_fuzz, FuzzOptions, GenConfig};

#[test]
fn generated_programs_execute_faithfully() {
    let opts = FuzzOptions {
        seed: 0x7A11E5,
        cases: 40,
        gen: GenConfig { max_size: 100 },
        ..Default::default()
    };
    let report = run_fuzz(&opts);
    assert_eq!(report.cases, opts.cases);
    assert!(
        report.finds.is_empty(),
        "VM disagreed with the interpreter:\n{}",
        report
            .finds
            .iter()
            .map(|f| format!("{}\n  repro: {}", f.failure, f.repro_command(&opts)))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
