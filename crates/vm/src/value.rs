//! Runtime values of the virtual machine.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use lesgs_frontend::{Const, FuncId};
use lesgs_sexpr::Datum;

/// A closure object: a code pointer plus captured values. Slots are
/// mutable to support the recursive-group backpatching instruction.
#[derive(Debug)]
pub struct VmClosure {
    /// Code pointer.
    pub func: FuncId,
    /// Captured values.
    pub free: RefCell<Vec<Value>>,
}

/// A return address: code position and the caller's frame pointer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetAddr {
    /// Function containing the return point.
    pub func: FuncId,
    /// Instruction index within that function.
    pub pc: u32,
    /// Frame pointer to restore.
    pub fp: u32,
}

/// A VM value.
#[derive(Debug, Clone)]
pub enum Value {
    /// An integer.
    Fixnum(i64),
    /// `#t` / `#f`.
    Bool(bool),
    /// A character.
    Char(char),
    /// A string.
    Str(Rc<String>),
    /// A symbol (compared by name).
    Symbol(Rc<String>),
    /// The empty list.
    Nil,
    /// The unspecified value.
    Void,
    /// A mutable pair.
    Pair(Rc<RefCell<(Value, Value)>>),
    /// A mutable vector.
    Vector(Rc<RefCell<Vec<Value>>>),
    /// A procedure.
    Closure(Rc<VmClosure>),
    /// A mutable cell (`box`).
    Cell(Rc<RefCell<Value>>),
    /// A return address (lives in `ret` and save slots only).
    RetAddr(RetAddr),
    /// An uninitialized stack slot (reading one is a VM bug).
    Uninit,
}

impl Value {
    /// Builds a pair.
    pub fn cons(car: Value, cdr: Value) -> Value {
        Value::Pair(Rc::new(RefCell::new((car, cdr))))
    }

    /// Scheme truthiness.
    pub fn is_truthy(&self) -> bool {
        !matches!(self, Value::Bool(false))
    }

    /// `eq?` — identity for heap values, value equality for immediates.
    pub fn eq_ptr(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Fixnum(a), Value::Fixnum(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Char(a), Value::Char(b)) => a == b,
            (Value::Nil, Value::Nil) => true,
            (Value::Void, Value::Void) => true,
            (Value::Symbol(a), Value::Symbol(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => Rc::ptr_eq(a, b),
            (Value::Pair(a), Value::Pair(b)) => Rc::ptr_eq(a, b),
            (Value::Vector(a), Value::Vector(b)) => Rc::ptr_eq(a, b),
            (Value::Closure(a), Value::Closure(b)) => Rc::ptr_eq(a, b),
            (Value::Cell(a), Value::Cell(b)) => Rc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// `equal?` — structural equality.
    pub fn eq_structural(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Pair(a), Value::Pair(b)) => {
                if Rc::ptr_eq(a, b) {
                    return true;
                }
                let (ac, ad) = &*a.borrow();
                let (bc, bd) = &*b.borrow();
                ac.eq_structural(bc) && ad.eq_structural(bd)
            }
            (Value::Vector(a), Value::Vector(b)) => {
                if Rc::ptr_eq(a, b) {
                    return true;
                }
                let a = a.borrow();
                let b = b.borrow();
                a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.eq_structural(y))
            }
            (Value::Str(a), Value::Str(b)) => a == b,
            _ => self.eq_ptr(other),
        }
    }

    /// Renders in `display` style.
    pub fn display_string(&self) -> String {
        let mut s = String::new();
        self.render(&mut s, false);
        s
    }

    /// Renders in `write` style.
    pub fn write_string(&self) -> String {
        let mut s = String::new();
        self.render(&mut s, true);
        s
    }

    fn render(&self, out: &mut String, write: bool) {
        match self {
            Value::Fixnum(n) => out.push_str(&n.to_string()),
            Value::Bool(true) => out.push_str("#t"),
            Value::Bool(false) => out.push_str("#f"),
            Value::Char(c) => {
                if write {
                    match c {
                        ' ' => out.push_str("#\\space"),
                        '\n' => out.push_str("#\\newline"),
                        '\t' => out.push_str("#\\tab"),
                        c => {
                            out.push_str("#\\");
                            out.push(*c);
                        }
                    }
                } else {
                    out.push(*c);
                }
            }
            Value::Str(s) => {
                if write {
                    out.push('"');
                    for c in s.chars() {
                        match c {
                            '"' => out.push_str("\\\""),
                            '\\' => out.push_str("\\\\"),
                            '\n' => out.push_str("\\n"),
                            c => out.push(c),
                        }
                    }
                    out.push('"');
                } else {
                    out.push_str(s);
                }
            }
            Value::Symbol(s) => out.push_str(s),
            Value::Nil => out.push_str("()"),
            Value::Void => out.push_str("#<void>"),
            Value::Pair(_) => {
                out.push('(');
                let mut current = self.clone();
                let mut first = true;
                loop {
                    match current {
                        Value::Pair(p) => {
                            if !first {
                                out.push(' ');
                            }
                            first = false;
                            let (car, cdr) = &*p.borrow();
                            car.render(out, write);
                            current = cdr.clone();
                        }
                        Value::Nil => break,
                        other => {
                            out.push_str(" . ");
                            other.render(out, write);
                            break;
                        }
                    }
                }
                out.push(')');
            }
            Value::Vector(v) => {
                out.push_str("#(");
                for (i, x) in v.borrow().iter().enumerate() {
                    if i > 0 {
                        out.push(' ');
                    }
                    x.render(out, write);
                }
                out.push(')');
            }
            Value::Closure(_) => out.push_str("#<procedure>"),
            Value::Cell(_) => out.push_str("#<box>"),
            Value::RetAddr(_) => out.push_str("#<return-address>"),
            Value::Uninit => out.push_str("#<uninit>"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display_string())
    }
}

/// Materializes a quoted datum as a runtime value.
pub(crate) fn datum_to_value(d: &Datum) -> Value {
    match d {
        Datum::Fixnum(n) => Value::Fixnum(*n),
        Datum::Bool(b) => Value::Bool(*b),
        Datum::Char(c) => Value::Char(*c),
        Datum::Str(s) => Value::Str(Rc::new(s.clone())),
        Datum::Symbol(s) => Value::Symbol(Rc::new(s.clone())),
        Datum::List(items) => items
            .iter()
            .rev()
            .fold(Value::Nil, |acc, d| Value::cons(datum_to_value(d), acc)),
        Datum::Improper(items, tail) => items.iter().rev().fold(datum_to_value(tail), |acc, d| {
            Value::cons(datum_to_value(d), acc)
        }),
        Datum::Vector(items) => Value::Vector(Rc::new(RefCell::new(
            items.iter().map(datum_to_value).collect(),
        ))),
    }
}

/// Materializes a constant-pool entry as a runtime value (both engines
/// build their pools through this at machine start).
pub(crate) fn const_to_value(c: &Const) -> Value {
    match c {
        Const::Fixnum(n) => Value::Fixnum(*n),
        Const::Bool(b) => Value::Bool(*b),
        Const::Char(c) => Value::Char(*c),
        Const::Str(s) => Value::Str(Rc::new(s.clone())),
        Const::Nil => Value::Nil,
        Const::Void => Value::Void,
        Const::Symbol(s) => Value::Symbol(Rc::new(s.clone())),
        Const::Datum(d) => datum_to_value(d),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness_and_eq() {
        assert!(Value::Fixnum(0).is_truthy());
        assert!(!Value::Bool(false).is_truthy());
        let p = Value::cons(Value::Fixnum(1), Value::Nil);
        assert!(p.eq_ptr(&p.clone()));
        assert!(!p.eq_ptr(&Value::cons(Value::Fixnum(1), Value::Nil)));
        assert!(p.eq_structural(&Value::cons(Value::Fixnum(1), Value::Nil)));
    }

    #[test]
    fn rendering_matches_interp_conventions() {
        let l = Value::cons(Value::Fixnum(1), Value::cons(Value::Char('a'), Value::Nil));
        assert_eq!(l.display_string(), "(1 a)");
        assert_eq!(l.write_string(), "(1 #\\a)");
    }
}
