//! Execution statistics — the quantities the paper's evaluation
//! reports.

use std::collections::HashMap;

use crate::instr::SlotClass;

/// The four activation classes of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActivationClass {
    /// Made no calls, and its procedure contains none.
    SyntacticLeaf,
    /// Made no calls at run time although its procedure contains some.
    NonSyntacticLeaf,
    /// Made calls, but call-free paths exist.
    NonSyntacticInternal,
    /// Made calls, and every path calls (`ret ∈ S_t ∩ S_f`).
    SyntacticInternal,
}

impl ActivationClass {
    /// All four classes in Table 2 order.
    pub const ALL: [ActivationClass; 4] = [
        ActivationClass::SyntacticLeaf,
        ActivationClass::NonSyntacticLeaf,
        ActivationClass::NonSyntacticInternal,
        ActivationClass::SyntacticInternal,
    ];

    /// Short label used in tables.
    pub fn label(self) -> &'static str {
        match self {
            ActivationClass::SyntacticLeaf => "syntactic leaf",
            ActivationClass::NonSyntacticLeaf => "non-syntactic leaf",
            ActivationClass::NonSyntacticInternal => "non-syntactic internal",
            ActivationClass::SyntacticInternal => "syntactic internal",
        }
    }

    /// An *effective leaf* activation made no calls (leaf classes).
    pub fn is_effective_leaf(self) -> bool {
        matches!(
            self,
            ActivationClass::SyntacticLeaf | ActivationClass::NonSyntacticLeaf
        )
    }
}

/// Counters collected during a run.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Instructions executed.
    pub instructions: u64,
    /// Simulated cycles (cost model applied).
    pub cycles: u64,
    /// Cycles lost waiting on in-flight loads.
    pub stall_cycles: u64,
    /// Stack loads by class.
    pub stack_loads: HashMap<SlotClass, u64>,
    /// Stack stores by class.
    pub stack_stores: HashMap<SlotClass, u64>,
    /// Non-tail calls executed.
    pub calls: u64,
    /// Tail calls executed.
    pub tail_calls: u64,
    /// Activations by class (Table 2).
    pub activations: HashMap<ActivationClass, u64>,
    /// Conditional branches executed.
    pub branches: u64,
    /// Mispredicted branches (when prediction is modeled).
    pub mispredicts: u64,
    /// Heap-touching primitive operations.
    pub heap_ops: u64,
    /// Closure objects allocated.
    pub closures_allocated: u64,
}

impl RunStats {
    /// Total stack references (loads + stores), the paper's headline
    /// metric for Table 3.
    pub fn stack_refs(&self) -> u64 {
        self.stack_loads.values().sum::<u64>() + self.stack_stores.values().sum::<u64>()
    }

    /// Save-slot stores.
    pub fn saves(&self) -> u64 {
        *self.stack_stores.get(&SlotClass::Save).unwrap_or(&0)
    }

    /// Save-slot loads (restores).
    pub fn restores(&self) -> u64 {
        *self.stack_loads.get(&SlotClass::Save).unwrap_or(&0)
    }

    /// Total activations.
    pub fn total_activations(&self) -> u64 {
        self.activations.values().sum()
    }

    /// Fraction of activations in a class.
    pub fn activation_fraction(&self, class: ActivationClass) -> f64 {
        let total = self.total_activations();
        if total == 0 {
            0.0
        } else {
            *self.activations.get(&class).unwrap_or(&0) as f64 / total as f64
        }
    }

    /// Fraction of effective leaf activations (the paper's two-thirds
    /// observation).
    pub fn effective_leaf_fraction(&self) -> f64 {
        ActivationClass::ALL
            .iter()
            .filter(|c| c.is_effective_leaf())
            .map(|c| self.activation_fraction(*c))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_refs_sums_loads_and_stores() {
        let mut s = RunStats::default();
        s.stack_loads.insert(SlotClass::Save, 3);
        s.stack_stores.insert(SlotClass::Param, 4);
        s.stack_stores.insert(SlotClass::Save, 2);
        assert_eq!(s.stack_refs(), 9);
        assert_eq!(s.saves(), 2);
        assert_eq!(s.restores(), 3);
    }

    #[test]
    fn activation_fractions() {
        let mut s = RunStats::default();
        s.activations.insert(ActivationClass::SyntacticLeaf, 1);
        s.activations.insert(ActivationClass::NonSyntacticLeaf, 2);
        s.activations.insert(ActivationClass::SyntacticInternal, 1);
        assert_eq!(s.total_activations(), 4);
        assert!((s.effective_leaf_fraction() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn class_labels() {
        assert_eq!(ActivationClass::ALL.len(), 4);
        assert!(ActivationClass::SyntacticLeaf.is_effective_leaf());
        assert!(!ActivationClass::SyntacticInternal.is_effective_leaf());
    }
}
