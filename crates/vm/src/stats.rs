//! Execution statistics — the quantities the paper's evaluation
//! reports.
//!
//! [`RunStats`] is filled in by the executing [`crate::Machine`];
//! [`RunStats::record`] exports every counter into a
//! [`lesgs_metrics::Registry`] under the stable `vm.*` names
//! documented in OBSERVABILITY.md. Derived fractions use
//! [`lesgs_metrics::ratio`]: a fraction of zero activations is `0.0`.

use std::collections::HashMap;

use lesgs_metrics::{ratio, Registry};

use crate::instr::SlotClass;

/// The four activation classes of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActivationClass {
    /// Made no calls, and its procedure contains none.
    SyntacticLeaf,
    /// Made no calls at run time although its procedure contains some.
    NonSyntacticLeaf,
    /// Made calls, but call-free paths exist.
    NonSyntacticInternal,
    /// Made calls, and every path calls (`ret ∈ S_t ∩ S_f`).
    SyntacticInternal,
}

impl ActivationClass {
    /// All four classes in Table 2 order.
    pub const ALL: [ActivationClass; 4] = [
        ActivationClass::SyntacticLeaf,
        ActivationClass::NonSyntacticLeaf,
        ActivationClass::NonSyntacticInternal,
        ActivationClass::SyntacticInternal,
    ];

    /// Stable snake_case key used in metric names and JSON reports.
    pub fn key(self) -> &'static str {
        match self {
            ActivationClass::SyntacticLeaf => "syntactic_leaf",
            ActivationClass::NonSyntacticLeaf => "non_syntactic_leaf",
            ActivationClass::NonSyntacticInternal => "non_syntactic_internal",
            ActivationClass::SyntacticInternal => "syntactic_internal",
        }
    }

    /// Short label used in tables.
    pub fn label(self) -> &'static str {
        match self {
            ActivationClass::SyntacticLeaf => "syntactic leaf",
            ActivationClass::NonSyntacticLeaf => "non-syntactic leaf",
            ActivationClass::NonSyntacticInternal => "non-syntactic internal",
            ActivationClass::SyntacticInternal => "syntactic internal",
        }
    }

    /// An *effective leaf* activation made no calls (leaf classes).
    pub fn is_effective_leaf(self) -> bool {
        matches!(
            self,
            ActivationClass::SyntacticLeaf | ActivationClass::NonSyntacticLeaf
        )
    }
}

/// Counters collected during a run. `PartialEq` is part of the
/// contract: differential tests assert classic-vs-decoded runs produce
/// *equal* stats, not merely similar ones.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunStats {
    /// Instructions executed.
    pub instructions: u64,
    /// Simulated cycles (cost model applied).
    pub cycles: u64,
    /// Cycles lost waiting on in-flight loads.
    pub stall_cycles: u64,
    /// Stack loads by class.
    pub stack_loads: HashMap<SlotClass, u64>,
    /// Stack stores by class.
    pub stack_stores: HashMap<SlotClass, u64>,
    /// Non-tail calls executed.
    pub calls: u64,
    /// Tail calls executed.
    pub tail_calls: u64,
    /// Activations by class (Table 2).
    pub activations: HashMap<ActivationClass, u64>,
    /// Conditional branches executed.
    pub branches: u64,
    /// Mispredicted branches (when prediction is modeled).
    pub mispredicts: u64,
    /// Heap-touching primitive operations.
    pub heap_ops: u64,
    /// Closure objects allocated.
    pub closures_allocated: u64,
    /// `swap` instructions executed (two-register exchanges).
    pub swaps: u64,
    /// `permi` instructions executed (wider register permutations).
    pub permis: u64,
}

impl RunStats {
    /// Total stack references (loads + stores), the paper's headline
    /// metric for Table 3.
    pub fn stack_refs(&self) -> u64 {
        self.stack_loads.values().sum::<u64>() + self.stack_stores.values().sum::<u64>()
    }

    /// Save-slot stores.
    pub fn saves(&self) -> u64 {
        *self.stack_stores.get(&SlotClass::Save).unwrap_or(&0)
    }

    /// Save-slot loads (restores).
    pub fn restores(&self) -> u64 {
        *self.stack_loads.get(&SlotClass::Save).unwrap_or(&0)
    }

    /// Total activations.
    pub fn total_activations(&self) -> u64 {
        self.activations.values().sum()
    }

    /// Fraction of activations in a class (`0.0` when there were no
    /// activations at all).
    pub fn activation_fraction(&self, class: ActivationClass) -> f64 {
        ratio(
            *self.activations.get(&class).unwrap_or(&0) as f64,
            self.total_activations() as f64,
            0.0,
        )
    }

    /// Branch misprediction rate (`0.0` when no branches executed).
    pub fn mispredict_rate(&self) -> f64 {
        ratio(self.mispredicts as f64, self.branches as f64, 0.0)
    }

    /// Stall cycles per executed instruction (`0.0` for an empty run).
    pub fn stalls_per_instruction(&self) -> f64 {
        ratio(self.stall_cycles as f64, self.instructions as f64, 0.0)
    }

    /// Exports every counter into `reg` under the stable `vm.*` names
    /// (the registry-backed dynamic counters behind `lesgsc
    /// --profile`). All stack-reference classes and activation classes
    /// are exported even when zero, so the key set is schema-stable.
    pub fn record(&self, reg: &mut Registry) {
        reg.inc("vm.instructions", self.instructions);
        reg.inc("vm.cycles", self.cycles);
        reg.inc("vm.stall_cycles", self.stall_cycles);
        for class in SlotClass::ALL {
            reg.inc(
                &format!("vm.stack_loads.{class}"),
                *self.stack_loads.get(&class).unwrap_or(&0),
            );
            reg.inc(
                &format!("vm.stack_stores.{class}"),
                *self.stack_stores.get(&class).unwrap_or(&0),
            );
        }
        reg.inc("vm.stack_refs", self.stack_refs());
        reg.inc("vm.saves", self.saves());
        reg.inc("vm.restores", self.restores());
        reg.inc("vm.calls", self.calls);
        reg.inc("vm.tail_calls", self.tail_calls);
        for class in ActivationClass::ALL {
            reg.inc(
                &format!("vm.activations.{}", class.key()),
                *self.activations.get(&class).unwrap_or(&0),
            );
        }
        reg.inc("vm.branches", self.branches);
        reg.inc("vm.mispredicts", self.mispredicts);
        reg.inc("vm.heap_ops", self.heap_ops);
        reg.inc("vm.closures_allocated", self.closures_allocated);
        reg.inc("vm.swaps", self.swaps);
        reg.inc("vm.permis", self.permis);
        reg.set_gauge("vm.effective_leaf_fraction", self.effective_leaf_fraction());
        reg.set_gauge("vm.mispredict_rate", self.mispredict_rate());
        reg.set_gauge("vm.stalls_per_instruction", self.stalls_per_instruction());
    }

    /// Fraction of effective leaf activations (the paper's two-thirds
    /// observation).
    pub fn effective_leaf_fraction(&self) -> f64 {
        ActivationClass::ALL
            .iter()
            .filter(|c| c.is_effective_leaf())
            .map(|c| self.activation_fraction(*c))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_refs_sums_loads_and_stores() {
        let mut s = RunStats::default();
        s.stack_loads.insert(SlotClass::Save, 3);
        s.stack_stores.insert(SlotClass::Param, 4);
        s.stack_stores.insert(SlotClass::Save, 2);
        assert_eq!(s.stack_refs(), 9);
        assert_eq!(s.saves(), 2);
        assert_eq!(s.restores(), 3);
    }

    #[test]
    fn activation_fractions() {
        let mut s = RunStats::default();
        s.activations.insert(ActivationClass::SyntacticLeaf, 1);
        s.activations.insert(ActivationClass::NonSyntacticLeaf, 2);
        s.activations.insert(ActivationClass::SyntacticInternal, 1);
        assert_eq!(s.total_activations(), 4);
        assert!((s.effective_leaf_fraction() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn class_labels() {
        assert_eq!(ActivationClass::ALL.len(), 4);
        assert!(ActivationClass::SyntacticLeaf.is_effective_leaf());
        assert!(!ActivationClass::SyntacticInternal.is_effective_leaf());
    }

    #[test]
    fn zero_denominator_fractions() {
        let s = RunStats::default();
        assert_eq!(s.activation_fraction(ActivationClass::SyntacticLeaf), 0.0);
        assert_eq!(s.effective_leaf_fraction(), 0.0);
        assert_eq!(s.mispredict_rate(), 0.0);
        assert_eq!(s.stalls_per_instruction(), 0.0);
    }

    #[test]
    fn record_exports_stable_key_set() {
        let mut s = RunStats {
            instructions: 10,
            cycles: 20,
            calls: 3,
            ..RunStats::default()
        };
        s.stack_loads.insert(SlotClass::Save, 4);
        s.stack_stores.insert(SlotClass::Save, 5);
        s.activations.insert(ActivationClass::SyntacticLeaf, 2);
        let mut reg = Registry::new();
        s.record(&mut reg);
        assert_eq!(reg.counter("vm.instructions"), 10);
        assert_eq!(reg.counter("vm.restores"), 4);
        assert_eq!(reg.counter("vm.saves"), 5);
        assert_eq!(reg.counter("vm.stack_refs"), 9);
        // Absent classes still export (as zero): the key set is stable.
        assert!(reg.counters().any(|(k, _)| k == "vm.stack_loads.spill"));
        assert!(reg.counters().any(|(k, _)| k == "vm.swaps"));
        assert!(reg.counters().any(|(k, _)| k == "vm.permis"));
        assert!(reg
            .counters()
            .any(|(k, _)| k == "vm.activations.syntactic_internal"));
        assert_eq!(reg.gauge("vm.effective_leaf_fraction"), Some(1.0));
    }
}
