//! Pre-decoding: translating linked bytecode into the flat form the
//! dispatch loop executes.
//!
//! The classic executor re-fetches and clones an [`Instr`] — operand
//! `Vec` included — on every iteration. [`DecodedProgram::decode`]
//! instead translates the whole program **once, at load time** into a
//! single flat `Vec<DecodedOp>`:
//!
//! * every function's code is laid out contiguously, one slot per
//!   source instruction, with a [`DecodedOp::FuncEnd`] sentinel after
//!   each function (running off the end reproduces the classic
//!   "program counter out of range" error without a bounds check on
//!   the hot path);
//! * jump and branch targets are rewritten to **absolute** pcs into
//!   that array (call and return targets resolve through the
//!   [`FuncInfo`] base table so return addresses stay
//!   function-relative and engine-independent);
//! * operand lists become the fixed-size, `Copy` [`PrimArgs`], so the
//!   dispatch loop never allocates;
//! * adjacent pairs matching an *enabled* [`FusionKind`] template are
//!   **fused** into superinstructions. Which templates are enabled is
//!   not hard-coded: [`DecodedProgram::decode`] consults the generated
//!   [`crate::fusion_table::FUSION_TABLE`], mined from measured
//!   dynamic pair frequencies by the `lesgs-fusegen` binary (see
//!   DESIGN.md's "Dispatch pipeline" for the miner → table → decode
//!   flow). A fused op sits in the *first* instruction's slot; the
//!   second instruction's slot keeps its plain decoding as a
//!   jump-target fallback, so fusion needs no control-flow analysis
//!   and cannot change where a branch may land. Fused handlers are
//!   literal compositions of the two plain handlers (fuel check and
//!   instruction/cycle accounting between the halves included), which
//!   is why every `vm.*` counter is decode-invariant;
//! * likewise, adjacent fall-through *triples* matching an enabled
//!   [`TripleKind`] template — selected from the generated
//!   [`crate::fusion_table::TRIPLE_TABLE`] — fuse into a three-op
//!   superinstruction in the first slot, with the second **and** third
//!   slots keeping their plain decodings. The greedy scan prefers an
//!   enabled triple over an enabled pair at the same position;
//! * every through-`cp` call site is assigned a monomorphic
//!   inline-cache index (`ic`) so the executor can track per-site
//!   callee stability (`vm.dispatch.ic.*`).
//!
//! Decoding is total for verifier-clean programs. The only divergence
//! for *unverifiable* code is that an out-of-function branch target is
//! clamped to the function's end sentinel (the classic engine would
//! report the original out-of-range pc; both still fail with the same
//! message).

use std::fmt;

use lesgs_frontend::{Const, FuncId, Prim};
use lesgs_ir::machine::MAX_PERMI_REGS;
use lesgs_ir::Reg;
use lesgs_metrics::Registry;

use crate::instr::{CallTarget, Imm, Instr, SlotClass};
use crate::program::VmProgram;

/// The largest operand count a [`DecodedOp::Prim`] can carry —
/// [`Prim::arity`]'s maximum (`vector-set!`).
pub const MAX_DECODED_ARGS: usize = 3;

/// A fixed-capacity, `Copy` operand list (replaces the heap-allocated
/// `Vec<Reg>` of [`Instr::Prim`] on the hot path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrimArgs {
    len: u8,
    regs: [Reg; MAX_DECODED_ARGS],
}

impl PrimArgs {
    /// Packs an operand slice.
    ///
    /// # Panics
    ///
    /// Panics on more than [`MAX_DECODED_ARGS`] operands — no [`Prim`]
    /// takes more, and `verify_bytecode` rejects malformed arities
    /// before any decoded program reaches the dispatcher.
    pub fn from_slice(args: &[Reg]) -> PrimArgs {
        assert!(
            args.len() <= MAX_DECODED_ARGS,
            "primitive with {} operands (max {MAX_DECODED_ARGS})",
            args.len()
        );
        let mut regs = [Reg(0); MAX_DECODED_ARGS];
        regs[..args.len()].copy_from_slice(args);
        PrimArgs {
            len: args.len() as u8,
            regs,
        }
    }

    /// The operands as a slice.
    pub fn as_slice(&self) -> &[Reg] {
        &self.regs[..self.len as usize]
    }
}

/// A fixed-capacity, `Copy` encoding of a `permi` operand list
/// (replaces the two heap-allocated `Vec`s of [`Instr::Permi`] on the
/// hot path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PermiArgs {
    len: u8,
    regs: [Reg; MAX_PERMI_REGS],
    perm: [u8; MAX_PERMI_REGS],
}

impl PermiArgs {
    /// Packs the register list and permutation.
    ///
    /// # Panics
    ///
    /// Panics on more than [`MAX_PERMI_REGS`] registers or a length
    /// mismatch — codegen never emits one and `verify_bytecode`
    /// rejects such programs.
    pub fn from_parts(regs: &[Reg], perm: &[u8]) -> PermiArgs {
        assert!(
            regs.len() <= MAX_PERMI_REGS && regs.len() == perm.len(),
            "permi with {} registers / {} indices (max {MAX_PERMI_REGS})",
            regs.len(),
            perm.len()
        );
        let mut r = [Reg(0); MAX_PERMI_REGS];
        let mut p = [0u8; MAX_PERMI_REGS];
        r[..regs.len()].copy_from_slice(regs);
        p[..perm.len()].copy_from_slice(perm);
        PermiArgs {
            len: regs.len() as u8,
            regs: r,
            perm: p,
        }
    }

    /// The registers touched, in operand order.
    pub fn regs(&self) -> &[Reg] {
        &self.regs[..self.len as usize]
    }

    /// The permutation over register indices.
    pub fn perm(&self) -> &[u8] {
        &self.perm[..self.len as usize]
    }
}

/// Per-function metadata carried into the decoded program: the base pc
/// of the function's slice of the flat array plus everything the
/// executor needs for frames, activation classification, and error
/// reporting.
#[derive(Debug, Clone)]
pub struct FuncInfo {
    /// Diagnostic name (error locations, `--trace` lines).
    pub name: String,
    /// Absolute pc of the function's first decoded op.
    pub base: u32,
    /// Source instruction count (the sentinel sits at `base + code_len`).
    pub code_len: u32,
    /// Frame size in slots.
    pub frame_size: u32,
    /// Leading incoming-parameter slots (never poisoned).
    pub n_incoming: u32,
    /// Static leaf flag, for activation classification.
    pub syntactic_leaf: bool,
    /// Every path makes a call (`ret ∈ S_t ∩ S_f`).
    pub call_inevitable: bool,
}

/// The superinstruction *template catalogue*: every pair shape the
/// decoder knows how to fuse and the executor has a composed handler
/// for. Which templates actually fire is decided by the generated
/// [`crate::fusion_table::FUSION_TABLE`] — the catalogue is the
/// hand-written universe the miner selects from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FusionKind {
    /// Register-only predicate followed by a conditional branch on its
    /// result.
    CmpBranch,
    /// Back-to-back register moves (greedy-shuffle argument setup).
    MovMov,
    /// Back-to-back immediate loads.
    ImmImm,
    /// Immediate load followed by a register move.
    ImmMov,
    /// Register move followed by an immediate load.
    MovImm,
    /// Back-to-back stack loads (eager-restore runs after calls).
    LoadLoad,
    /// Back-to-back stack stores (lazy-save runs before calls).
    StoreStore,
}

impl FusionKind {
    /// Every template, in catalogue order (`fused_by_kind` index order).
    pub const ALL: [FusionKind; 7] = [
        FusionKind::CmpBranch,
        FusionKind::MovMov,
        FusionKind::ImmImm,
        FusionKind::ImmMov,
        FusionKind::MovImm,
        FusionKind::LoadLoad,
        FusionKind::StoreStore,
    ];

    /// Number of templates in the catalogue.
    pub const COUNT: usize = FusionKind::ALL.len();

    /// The stable snake_case key used in metric names
    /// (`vm.dispatch.fused.<key>`), table columns, and the generated
    /// fusion table.
    pub fn key(self) -> &'static str {
        match self {
            FusionKind::CmpBranch => "cmp_branch",
            FusionKind::MovMov => "mov_mov",
            FusionKind::ImmImm => "imm_imm",
            FusionKind::ImmMov => "imm_mov",
            FusionKind::MovImm => "mov_imm",
            FusionKind::LoadLoad => "load_load",
            FusionKind::StoreStore => "store_store",
        }
    }
}

/// One row of the generated fusion table: an enabled template and the
/// dynamic pair count the miner measured for it across the corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusionEntry {
    /// The enabled template.
    pub kind: FusionKind,
    /// Measured dynamic executions of the pair across the fusegen
    /// corpus (documentation + ranking; not consulted at decode time).
    pub dynamic_count: u64,
}

/// FNV-1a over the table's `(key, dynamic_count)` sequence — the
/// integrity mark `lesgs-fusegen` stamps into the generated file. A vm
/// unit test recomputes it, so a hand-edited entry fails the build's
/// tests even before CI's `lesgs-fusegen --check` regenerates the
/// table from measurement.
pub fn fusion_table_checksum(entries: &[FusionEntry]) -> u64 {
    checksum(entries.iter().map(|e| (e.kind.key(), e.dynamic_count)))
}

/// The shared FNV-1a fold behind [`fusion_table_checksum`] and
/// [`triple_table_checksum`]: both tables hash the same
/// `(key, dynamic_count)` row shape.
fn checksum(rows: impl Iterator<Item = (&'static str, u64)>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for (key, count) in rows {
        eat(key.as_bytes());
        eat(&count.to_le_bytes());
        eat(b";");
    }
    h
}

/// The three-instruction superinstruction catalogue: every fall-through
/// triple shape the decoder can fuse and the executor has a composed
/// handler for. Like [`FusionKind`], the catalogue is the hand-written
/// universe; which templates fire is decided by the generated
/// [`crate::fusion_table::TRIPLE_TABLE`], mined from measured dynamic
/// triple frequencies. The shapes are exactly the hottest fall-through
/// triples the miner reports across the corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TripleKind {
    /// Primitive, stack store of anything, register move (the
    /// lazy-save tail of an evaluation).
    PrimStoreMov,
    /// Stack store, register move, primitive (save then shuffle then
    /// compute).
    StoreMovPrim,
    /// Register move feeding a register-only predicate that a
    /// conditional branch consumes — [`FusionKind::CmpBranch`] with its
    /// argument shuffle folded in.
    MovCmpBranch,
    /// Register move, immediate load, primitive (binop setup).
    MovImmPrim,
    /// Three back-to-back stack loads (eager-restore runs).
    LoadLoadLoad,
    /// Three back-to-back stack stores (lazy-save runs).
    StoreStoreStore,
    /// Two stack loads then a stack store (restore + spill traffic).
    LoadLoadStore,
    /// Immediate load, primitive, register move (compute then place).
    ImmPrimMov,
}

impl TripleKind {
    /// Every template, in catalogue order (`fused_by_triple` index
    /// order).
    pub const ALL: [TripleKind; 8] = [
        TripleKind::PrimStoreMov,
        TripleKind::StoreMovPrim,
        TripleKind::MovCmpBranch,
        TripleKind::MovImmPrim,
        TripleKind::LoadLoadLoad,
        TripleKind::StoreStoreStore,
        TripleKind::LoadLoadStore,
        TripleKind::ImmPrimMov,
    ];

    /// Number of templates in the catalogue.
    pub const COUNT: usize = TripleKind::ALL.len();

    /// The stable snake_case key used in metric names
    /// (`vm.dispatch.fused.<key>`), table columns, and the generated
    /// triple table.
    pub fn key(self) -> &'static str {
        match self {
            TripleKind::PrimStoreMov => "prim_store_mov",
            TripleKind::StoreMovPrim => "store_mov_prim",
            TripleKind::MovCmpBranch => "mov_cmp_branch",
            TripleKind::MovImmPrim => "mov_imm_prim",
            TripleKind::LoadLoadLoad => "load_load_load",
            TripleKind::StoreStoreStore => "store_store_store",
            TripleKind::LoadLoadStore => "load_load_store",
            TripleKind::ImmPrimMov => "imm_prim_mov",
        }
    }
}

/// One row of the generated triple table: an enabled three-op template
/// and the dynamic triple count the miner measured for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TripleEntry {
    /// The enabled template.
    pub kind: TripleKind,
    /// Measured dynamic executions of the triple across the fusegen
    /// corpus (documentation + ranking; not consulted at decode time).
    pub dynamic_count: u64,
}

/// FNV-1a over the triple table's `(key, dynamic_count)` sequence —
/// the same integrity discipline as [`fusion_table_checksum`], stamped
/// as `TRIPLE_TABLE_CHECKSUM` in the generated file.
pub fn triple_table_checksum(entries: &[TripleEntry]) -> u64 {
    checksum(entries.iter().map(|e| (e.kind.key(), e.dynamic_count)))
}

/// What decoding did to one program — the static side of the
/// `vm.dispatch.*` metrics namespace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DecodeStats {
    /// Source instructions across all functions.
    pub source_instructions: u64,
    /// Slots in the flat array (source slots plus one end sentinel per
    /// function; fusion preserves slot count).
    pub decoded_ops: u64,
    /// Fused pairs of any kind.
    pub fused_pairs: u64,
    /// Fused pairs by template, indexed by [`FusionKind`] discriminant
    /// ([`FusionKind::ALL`] order).
    pub fused_by_kind: [u64; FusionKind::COUNT],
    /// Fused triples of any kind.
    pub fused_triples: u64,
    /// Fused triples by template, indexed by [`TripleKind`]
    /// discriminant ([`TripleKind::ALL`] order).
    pub fused_by_triple: [u64; TripleKind::COUNT],
}

impl DecodeStats {
    /// Fused-pair count for one template.
    pub fn fused(&self, kind: FusionKind) -> u64 {
        self.fused_by_kind[kind as usize]
    }

    /// Fused-triple count for one template.
    pub fn fused3(&self, kind: TripleKind) -> u64 {
        self.fused_by_triple[kind as usize]
    }

    /// Exports the counters under the stable `vm.dispatch.*` names
    /// documented in OBSERVABILITY.md. These are **load-time** facts
    /// about the program, recorded at compile time — run-time `vm.*`
    /// counters keep the exact key set they had before pre-decoding
    /// existed. Every generated-table entry's counter is emitted, zero
    /// included, so the key set (and with it profile JSON and bench
    /// table shapes) is a fixed function of the committed table.
    pub fn record(&self, reg: &mut Registry) {
        reg.inc("vm.dispatch.source_instructions", self.source_instructions);
        reg.inc("vm.dispatch.decoded_ops", self.decoded_ops);
        reg.inc("vm.dispatch.fused_pairs", self.fused_pairs);
        reg.inc("vm.dispatch.fused_triples", self.fused_triples);
        for entry in crate::fusion_table::FUSION_TABLE {
            reg.inc(
                &format!("vm.dispatch.fused.{}", entry.kind.key()),
                self.fused(entry.kind),
            );
        }
        for entry in crate::fusion_table::TRIPLE_TABLE {
            reg.inc(
                &format!("vm.dispatch.fused.{}", entry.kind.key()),
                self.fused3(entry.kind),
            );
        }
    }
}

/// One slot of the flat decoded array. All variants are `Copy`; jump
/// targets are absolute pcs; primitive operands are inline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DecodedOp {
    /// `dst ← immediate`.
    Imm {
        /// Destination.
        dst: Reg,
        /// The constant.
        imm: Imm,
    },
    /// `dst ← constants[idx]`.
    Const {
        /// Destination.
        dst: Reg,
        /// Constant-pool index.
        idx: u32,
    },
    /// `dst ← src`.
    Mov {
        /// Destination.
        dst: Reg,
        /// Source.
        src: Reg,
    },
    /// `dst ← stack[fp + slot]` — a memory load with latency.
    StackLoad {
        /// Destination.
        dst: Reg,
        /// Frame offset.
        slot: u32,
        /// Instrumentation class.
        class: SlotClass,
    },
    /// `stack[fp + slot] ← src`.
    StackStore {
        /// Frame offset.
        slot: u32,
        /// Source.
        src: Reg,
        /// Instrumentation class.
        class: SlotClass,
    },
    /// `dst ← op(args…)`.
    Prim {
        /// The operation.
        op: Prim,
        /// Destination.
        dst: Reg,
        /// Operand registers.
        args: PrimArgs,
    },
    /// Unconditional jump to an absolute pc.
    Jump {
        /// Absolute target pc.
        target: u32,
    },
    /// Conditional branch to an absolute pc. `on_true` distinguishes
    /// `brtrue` (jump when truthy) from `brfalse` (jump when `#f`).
    Branch {
        /// Condition register.
        src: Reg,
        /// Absolute target pc.
        target: u32,
        /// Static prediction of the fallthrough path.
        likely: Option<bool>,
        /// True for `brtrue`, false for `brfalse`.
        on_true: bool,
    },
    /// Non-tail call of a known function.
    CallStatic {
        /// Callee.
        callee: FuncId,
        /// Caller frame size (callee frame starts above it).
        frame_advance: u32,
    },
    /// Non-tail call through the closure in `cp`.
    CallClosure {
        /// Caller frame size.
        frame_advance: u32,
        /// Monomorphic inline-cache site index.
        ic: u32,
    },
    /// Tail call of a known function.
    TailCallStatic {
        /// Callee.
        callee: FuncId,
    },
    /// Tail call through the closure in `cp`.
    TailCallClosure {
        /// Monomorphic inline-cache site index.
        ic: u32,
    },
    /// Jump through the return address in `ret`, restoring `fp`.
    Return,
    /// Allocate a closure with `n_free` uninitialized slots.
    AllocClosure {
        /// Destination.
        dst: Reg,
        /// Code pointer.
        func: FuncId,
        /// Number of captured slots.
        n_free: u32,
    },
    /// `closure(clo).free[index] ← src`.
    ClosureSlotSet {
        /// Register holding the closure.
        clo: Reg,
        /// Slot index.
        index: u32,
        /// Value source.
        src: Reg,
    },
    /// `dst ← closure(cp).free[index]` — a memory load with latency.
    LoadFree {
        /// Destination.
        dst: Reg,
        /// Slot index.
        index: u32,
    },
    /// `dst ← globals[index]` — a memory load with latency.
    LoadGlobal {
        /// Destination.
        dst: Reg,
        /// Global slot.
        index: u32,
    },
    /// `globals[index] ← src`.
    StoreGlobal {
        /// Global slot.
        index: u32,
        /// Source.
        src: Reg,
    },
    /// Exchange two registers in one instruction.
    Swap {
        /// First register.
        a: Reg,
        /// Second register.
        b: Reg,
    },
    /// Apply a register permutation in place: simultaneously set
    /// `regs[i] ← old regs[perm[i]]`.
    Permi {
        /// The packed register list and permutation.
        args: PermiArgs,
    },
    /// Stop the machine; the program value is in `rv`.
    Halt,
    /// Fused predicate + conditional branch (the branch consumes the
    /// predicate's result in the same dispatch). Occupies the
    /// predicate's slot; the branch's slot keeps a plain
    /// [`DecodedOp::Branch`] as a jump-target fallback.
    CmpBranch {
        /// The predicate.
        op: Prim,
        /// Predicate destination register.
        dst: Reg,
        /// Predicate operands.
        args: PrimArgs,
        /// Branch condition register.
        src: Reg,
        /// Absolute branch target pc.
        target: u32,
        /// Static prediction of the fallthrough path.
        likely: Option<bool>,
        /// True for `brtrue`, false for `brfalse`.
        on_true: bool,
    },
    /// Fused pair of register moves (greedy-shuffle argument setup).
    MovMov {
        /// First destination.
        dst1: Reg,
        /// First source.
        src1: Reg,
        /// Second destination.
        dst2: Reg,
        /// Second source (read after the first move writes).
        src2: Reg,
    },
    /// Fused pair of immediate loads.
    ImmImm {
        /// First destination.
        dst1: Reg,
        /// First constant.
        imm1: Imm,
        /// Second destination.
        dst2: Reg,
        /// Second constant.
        imm2: Imm,
    },
    /// Fused immediate load followed by a register move.
    ImmMov {
        /// Immediate destination.
        dst1: Reg,
        /// The constant.
        imm1: Imm,
        /// Move destination.
        dst2: Reg,
        /// Move source (read after the immediate lands).
        src2: Reg,
    },
    /// Fused register move followed by an immediate load.
    MovImm {
        /// Move destination.
        dst1: Reg,
        /// Move source.
        src1: Reg,
        /// Immediate destination.
        dst2: Reg,
        /// The constant.
        imm2: Imm,
    },
    /// Fused pair of stack loads (eager-restore runs after calls).
    LoadLoad {
        /// First destination.
        dst1: Reg,
        /// First frame offset.
        slot1: u32,
        /// First instrumentation class.
        class1: SlotClass,
        /// Second destination.
        dst2: Reg,
        /// Second frame offset.
        slot2: u32,
        /// Second instrumentation class.
        class2: SlotClass,
    },
    /// Fused pair of stack stores (lazy-save runs before calls).
    StoreStore {
        /// First frame offset.
        slot1: u32,
        /// First source.
        src1: Reg,
        /// First instrumentation class.
        class1: SlotClass,
        /// Second frame offset.
        slot2: u32,
        /// Second source.
        src2: Reg,
        /// Second instrumentation class.
        class2: SlotClass,
    },
    /// Fused triple: primitive, stack store, register move. Occupies
    /// the primitive's slot; the second and third slots keep their
    /// plain decodings as jump-target fallbacks (the same discipline
    /// as every fused pair).
    PrimStoreMov {
        /// The primitive.
        op: Prim,
        /// Primitive destination.
        dst1: Reg,
        /// Primitive operands.
        args: PrimArgs,
        /// Store frame offset.
        slot2: u32,
        /// Store source.
        src2: Reg,
        /// Store instrumentation class.
        class2: SlotClass,
        /// Move destination.
        dst3: Reg,
        /// Move source.
        src3: Reg,
    },
    /// Fused triple: stack store, register move, primitive.
    StoreMovPrim {
        /// Store frame offset.
        slot1: u32,
        /// Store source.
        src1: Reg,
        /// Store instrumentation class.
        class1: SlotClass,
        /// Move destination.
        dst2: Reg,
        /// Move source.
        src2: Reg,
        /// The primitive.
        op: Prim,
        /// Primitive destination.
        dst3: Reg,
        /// Primitive operands.
        args: PrimArgs,
    },
    /// Fused triple: register move, register-only predicate,
    /// conditional branch on the predicate's result.
    MovCmpBranch {
        /// Move destination.
        dst1: Reg,
        /// Move source.
        src1: Reg,
        /// The predicate.
        op: Prim,
        /// Predicate destination.
        dst2: Reg,
        /// Predicate operands.
        args: PrimArgs,
        /// Branch condition register.
        src3: Reg,
        /// Absolute branch target pc.
        target: u32,
        /// Static prediction of the fallthrough path.
        likely: Option<bool>,
        /// True for `brtrue`, false for `brfalse`.
        on_true: bool,
    },
    /// Fused triple: register move, immediate load, primitive.
    MovImmPrim {
        /// Move destination.
        dst1: Reg,
        /// Move source.
        src1: Reg,
        /// Immediate destination.
        dst2: Reg,
        /// The constant.
        imm2: Imm,
        /// The primitive.
        op: Prim,
        /// Primitive destination.
        dst3: Reg,
        /// Primitive operands.
        args: PrimArgs,
    },
    /// Fused triple of stack loads (eager-restore runs).
    LoadLoadLoad {
        /// First destination.
        dst1: Reg,
        /// First frame offset.
        slot1: u32,
        /// First instrumentation class.
        class1: SlotClass,
        /// Second destination.
        dst2: Reg,
        /// Second frame offset.
        slot2: u32,
        /// Second instrumentation class.
        class2: SlotClass,
        /// Third destination.
        dst3: Reg,
        /// Third frame offset.
        slot3: u32,
        /// Third instrumentation class.
        class3: SlotClass,
    },
    /// Fused triple of stack stores (lazy-save runs).
    StoreStoreStore {
        /// First frame offset.
        slot1: u32,
        /// First source.
        src1: Reg,
        /// First instrumentation class.
        class1: SlotClass,
        /// Second frame offset.
        slot2: u32,
        /// Second source.
        src2: Reg,
        /// Second instrumentation class.
        class2: SlotClass,
        /// Third frame offset.
        slot3: u32,
        /// Third source.
        src3: Reg,
        /// Third instrumentation class.
        class3: SlotClass,
    },
    /// Fused triple: two stack loads then a stack store.
    LoadLoadStore {
        /// First load destination.
        dst1: Reg,
        /// First load frame offset.
        slot1: u32,
        /// First load instrumentation class.
        class1: SlotClass,
        /// Second load destination.
        dst2: Reg,
        /// Second load frame offset.
        slot2: u32,
        /// Second load instrumentation class.
        class2: SlotClass,
        /// Store frame offset.
        slot3: u32,
        /// Store source.
        src3: Reg,
        /// Store instrumentation class.
        class3: SlotClass,
    },
    /// Fused triple: immediate load, primitive, register move.
    ImmPrimMov {
        /// Immediate destination.
        dst1: Reg,
        /// The constant.
        imm1: Imm,
        /// The primitive.
        op: Prim,
        /// Primitive destination.
        dst2: Reg,
        /// Primitive operands.
        args: PrimArgs,
        /// Move destination.
        dst3: Reg,
        /// Move source.
        src3: Reg,
    },
    /// End-of-function sentinel: executing it is the classic "program
    /// counter out of range" error.
    FuncEnd,
}

impl DecodedOp {
    /// The absolute jump target this op may transfer to, if any (the
    /// fixture tests' jump-target table).
    pub fn jump_target(&self) -> Option<u32> {
        match *self {
            DecodedOp::Jump { target }
            | DecodedOp::Branch { target, .. }
            | DecodedOp::CmpBranch { target, .. }
            | DecodedOp::MovCmpBranch { target, .. } => Some(target),
            _ => None,
        }
    }
}

impl fmt::Display for DecodedOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let args = |f: &mut fmt::Formatter<'_>, args: &PrimArgs| {
            for (i, a) in args.as_slice().iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{a}")?;
            }
            Ok(())
        };
        let likely = |f: &mut fmt::Formatter<'_>, l: &Option<bool>| match l {
            Some(l) => write!(f, " ;likely={l}"),
            None => Ok(()),
        };
        match self {
            DecodedOp::Imm { dst, imm } => write!(f, "{dst} <- {imm:?}"),
            DecodedOp::Const { dst, idx } => write!(f, "{dst} <- const[{idx}]"),
            DecodedOp::Mov { dst, src } => write!(f, "{dst} <- {src}"),
            DecodedOp::StackLoad { dst, slot, class } => {
                write!(f, "{dst} <- fp[{slot}] ;{class}")
            }
            DecodedOp::StackStore { slot, src, class } => {
                write!(f, "fp[{slot}] <- {src} ;{class}")
            }
            DecodedOp::Prim { op, dst, args: a } => {
                write!(f, "{dst} <- {op}(")?;
                args(f, a)?;
                write!(f, ")")
            }
            DecodedOp::Jump { target } => write!(f, "jump @{target}"),
            DecodedOp::Branch {
                src,
                target,
                likely: l,
                on_true,
            } => {
                let name = if *on_true { "brtrue" } else { "brfalse" };
                write!(f, "{name} {src} -> @{target}")?;
                likely(f, l)
            }
            DecodedOp::CallStatic {
                callee,
                frame_advance,
            } => write!(f, "call {callee} (+{frame_advance})"),
            DecodedOp::CallClosure { frame_advance, ic } => {
                write!(f, "call cp (+{frame_advance}) ;ic={ic}")
            }
            DecodedOp::TailCallStatic { callee } => write!(f, "tailcall {callee}"),
            DecodedOp::TailCallClosure { ic } => write!(f, "tailcall cp ;ic={ic}"),
            DecodedOp::Return => write!(f, "return"),
            DecodedOp::AllocClosure { dst, func, n_free } => {
                write!(f, "{dst} <- closure {func} [{n_free}]")
            }
            DecodedOp::ClosureSlotSet { clo, index, src } => {
                write!(f, "{clo}.free[{index}] <- {src}")
            }
            DecodedOp::LoadFree { dst, index } => write!(f, "{dst} <- cp.free[{index}]"),
            DecodedOp::LoadGlobal { dst, index } => write!(f, "{dst} <- global[{index}]"),
            DecodedOp::StoreGlobal { index, src } => write!(f, "global[{index}] <- {src}"),
            DecodedOp::Swap { a, b } => write!(f, "swap {a}, {b}"),
            DecodedOp::Permi { args: a } => {
                write!(f, "permi [")?;
                for (i, r) in a.regs().iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{r}")?;
                }
                write!(f, "] perm [")?;
                for (i, p) in a.perm().iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, "]")
            }
            DecodedOp::Halt => write!(f, "halt"),
            DecodedOp::CmpBranch {
                op,
                dst,
                args: a,
                src,
                target,
                likely: l,
                on_true,
            } => {
                let name = if *on_true { "brtrue" } else { "brfalse" };
                write!(f, "{dst} <- {op}(")?;
                args(f, a)?;
                write!(f, ") ; fused {name} {src} -> @{target}")?;
                likely(f, l)
            }
            DecodedOp::MovMov {
                dst1,
                src1,
                dst2,
                src2,
            } => write!(f, "{dst1} <- {src1} ; fused {dst2} <- {src2}"),
            DecodedOp::ImmImm {
                dst1,
                imm1,
                dst2,
                imm2,
            } => write!(f, "{dst1} <- {imm1:?} ; fused {dst2} <- {imm2:?}"),
            DecodedOp::ImmMov {
                dst1,
                imm1,
                dst2,
                src2,
            } => write!(f, "{dst1} <- {imm1:?} ; fused {dst2} <- {src2}"),
            DecodedOp::MovImm {
                dst1,
                src1,
                dst2,
                imm2,
            } => write!(f, "{dst1} <- {src1} ; fused {dst2} <- {imm2:?}"),
            DecodedOp::LoadLoad {
                dst1,
                slot1,
                class1,
                dst2,
                slot2,
                class2,
            } => write!(
                f,
                "{dst1} <- fp[{slot1}] ;{class1} ; fused {dst2} <- fp[{slot2}] ;{class2}"
            ),
            DecodedOp::StoreStore {
                slot1,
                src1,
                class1,
                slot2,
                src2,
                class2,
            } => write!(
                f,
                "fp[{slot1}] <- {src1} ;{class1} ; fused fp[{slot2}] <- {src2} ;{class2}"
            ),
            DecodedOp::PrimStoreMov {
                op,
                dst1,
                args: a,
                slot2,
                src2,
                class2,
                dst3,
                src3,
            } => {
                write!(f, "{dst1} <- {op}(")?;
                args(f, a)?;
                write!(
                    f,
                    ") ; fused fp[{slot2}] <- {src2} ;{class2} ; fused {dst3} <- {src3}"
                )
            }
            DecodedOp::StoreMovPrim {
                slot1,
                src1,
                class1,
                dst2,
                src2,
                op,
                dst3,
                args: a,
            } => {
                write!(
                    f,
                    "fp[{slot1}] <- {src1} ;{class1} ; fused {dst2} <- {src2} ; fused {dst3} <- {op}("
                )?;
                args(f, a)?;
                write!(f, ")")
            }
            DecodedOp::MovCmpBranch {
                dst1,
                src1,
                op,
                dst2,
                args: a,
                src3,
                target,
                likely: l,
                on_true,
            } => {
                let name = if *on_true { "brtrue" } else { "brfalse" };
                write!(f, "{dst1} <- {src1} ; fused {dst2} <- {op}(")?;
                args(f, a)?;
                write!(f, ") ; fused {name} {src3} -> @{target}")?;
                likely(f, l)
            }
            DecodedOp::MovImmPrim {
                dst1,
                src1,
                dst2,
                imm2,
                op,
                dst3,
                args: a,
            } => {
                write!(
                    f,
                    "{dst1} <- {src1} ; fused {dst2} <- {imm2:?} ; fused {dst3} <- {op}("
                )?;
                args(f, a)?;
                write!(f, ")")
            }
            DecodedOp::LoadLoadLoad {
                dst1,
                slot1,
                class1,
                dst2,
                slot2,
                class2,
                dst3,
                slot3,
                class3,
            } => write!(
                f,
                "{dst1} <- fp[{slot1}] ;{class1} ; fused {dst2} <- fp[{slot2}] ;{class2} \
                 ; fused {dst3} <- fp[{slot3}] ;{class3}"
            ),
            DecodedOp::StoreStoreStore {
                slot1,
                src1,
                class1,
                slot2,
                src2,
                class2,
                slot3,
                src3,
                class3,
            } => write!(
                f,
                "fp[{slot1}] <- {src1} ;{class1} ; fused fp[{slot2}] <- {src2} ;{class2} \
                 ; fused fp[{slot3}] <- {src3} ;{class3}"
            ),
            DecodedOp::LoadLoadStore {
                dst1,
                slot1,
                class1,
                dst2,
                slot2,
                class2,
                slot3,
                src3,
                class3,
            } => write!(
                f,
                "{dst1} <- fp[{slot1}] ;{class1} ; fused {dst2} <- fp[{slot2}] ;{class2} \
                 ; fused fp[{slot3}] <- {src3} ;{class3}"
            ),
            DecodedOp::ImmPrimMov {
                dst1,
                imm1,
                op,
                dst2,
                args: a,
                dst3,
                src3,
            } => {
                write!(f, "{dst1} <- {imm1:?} ; fused {dst2} <- {op}(")?;
                args(f, a)?;
                write!(f, ") ; fused {dst3} <- {src3}")
            }
            DecodedOp::FuncEnd => write!(f, "func-end"),
        }
    }
}

/// A fully decoded program: the flat op array, the per-function base
/// table, and everything a [`crate::Machine`] needs to start (constant
/// pool, entry point, global count). Build one with
/// [`DecodedProgram::decode`] — or let [`crate::Machine::new`] do it —
/// and share it across runs via [`crate::Machine::from_decoded`].
#[derive(Debug, Clone)]
pub struct DecodedProgram {
    pub(crate) ops: Vec<DecodedOp>,
    pub(crate) funcs: Vec<FuncInfo>,
    pub(crate) entry: FuncId,
    pub(crate) constants: Vec<Const>,
    pub(crate) n_globals: u32,
    pub(crate) stats: DecodeStats,
    pub(crate) n_ic_sites: u32,
}

/// True for the register-only predicates the decoder may fuse with a
/// following branch. (Correctness would allow any primitive — the
/// fused handler composes the plain ones — but the catalogue sticks to
/// cheap compare-style ops so the fused slot stays branch-like.)
fn fusible_predicate(p: Prim) -> bool {
    use Prim::*;
    matches!(
        p,
        IsZero
            | IsPositive
            | IsNegative
            | IsEven
            | IsOdd
            | NumEq
            | Lt
            | Le
            | Gt
            | Ge
            | IsEq
            | IsEqv
            | Not
            | IsPair
            | IsNull
            | IsSymbol
            | IsNumber
            | IsBoolean
            | IsProcedure
            | IsVector
            | IsString
            | IsChar
    )
}

/// Decodes one instruction (no fusion). `base` is the function's first
/// absolute pc; `len` its source length — intra-function targets are
/// rebased and clamped to the end sentinel. `next_ic` hands out
/// inline-cache site indices to through-`cp` call sites in decode
/// order.
fn decode_one(instr: &Instr, base: u32, len: u32, next_ic: &mut u32) -> DecodedOp {
    let abs = |t: u32| base + t.min(len);
    let mut take_ic = || {
        let ic = *next_ic;
        *next_ic += 1;
        ic
    };
    match instr {
        Instr::LoadImm { dst, imm } => DecodedOp::Imm {
            dst: *dst,
            imm: *imm,
        },
        Instr::LoadConst { dst, idx } => DecodedOp::Const {
            dst: *dst,
            idx: *idx,
        },
        Instr::Mov { dst, src } => DecodedOp::Mov {
            dst: *dst,
            src: *src,
        },
        Instr::StackLoad { dst, slot, class } => DecodedOp::StackLoad {
            dst: *dst,
            slot: *slot,
            class: *class,
        },
        Instr::StackStore { slot, src, class } => DecodedOp::StackStore {
            slot: *slot,
            src: *src,
            class: *class,
        },
        Instr::Prim { op, dst, args } => DecodedOp::Prim {
            op: *op,
            dst: *dst,
            args: PrimArgs::from_slice(args),
        },
        Instr::Jump { target } => DecodedOp::Jump {
            target: abs(*target),
        },
        Instr::BranchFalse {
            src,
            target,
            likely,
        } => DecodedOp::Branch {
            src: *src,
            target: abs(*target),
            likely: *likely,
            on_true: false,
        },
        Instr::BranchTrue {
            src,
            target,
            likely,
        } => DecodedOp::Branch {
            src: *src,
            target: abs(*target),
            likely: *likely,
            on_true: true,
        },
        Instr::Call {
            target,
            frame_advance,
        } => match target {
            CallTarget::Func(id) => DecodedOp::CallStatic {
                callee: *id,
                frame_advance: *frame_advance,
            },
            CallTarget::ClosureCp => DecodedOp::CallClosure {
                frame_advance: *frame_advance,
                ic: take_ic(),
            },
        },
        Instr::TailCall { target } => match target {
            CallTarget::Func(id) => DecodedOp::TailCallStatic { callee: *id },
            CallTarget::ClosureCp => DecodedOp::TailCallClosure { ic: take_ic() },
        },
        Instr::Return => DecodedOp::Return,
        Instr::AllocClosure { dst, func, n_free } => DecodedOp::AllocClosure {
            dst: *dst,
            func: *func,
            n_free: *n_free,
        },
        Instr::ClosureSlotSet { clo, index, src } => DecodedOp::ClosureSlotSet {
            clo: *clo,
            index: *index,
            src: *src,
        },
        Instr::LoadFree { dst, index } => DecodedOp::LoadFree {
            dst: *dst,
            index: *index,
        },
        Instr::LoadGlobal { dst, index } => DecodedOp::LoadGlobal {
            dst: *dst,
            index: *index,
        },
        Instr::StoreGlobal { index, src } => DecodedOp::StoreGlobal {
            index: *index,
            src: *src,
        },
        Instr::Swap { a, b } => DecodedOp::Swap { a: *a, b: *b },
        Instr::Permi { regs, perm } => DecodedOp::Permi {
            args: PermiArgs::from_parts(regs, perm),
        },
        Instr::Halt => DecodedOp::Halt,
    }
}

/// Matches the pair `(a, b)` against the template catalogue: which
/// [`FusionKind`] *could* fuse it, independent of whether that kind is
/// enabled in the generated table. Shared with `lesgs-fusegen`, whose
/// miner attributes measured dynamic pair counts to exactly the
/// templates this function recognizes.
pub fn template_match(a: &Instr, b: &Instr) -> Option<FusionKind> {
    match (a, b) {
        (Instr::Prim { op, .. }, Instr::BranchFalse { .. } | Instr::BranchTrue { .. })
            if fusible_predicate(*op) =>
        {
            Some(FusionKind::CmpBranch)
        }
        (Instr::Mov { .. }, Instr::Mov { .. }) => Some(FusionKind::MovMov),
        (Instr::LoadImm { .. }, Instr::LoadImm { .. }) => Some(FusionKind::ImmImm),
        (Instr::LoadImm { .. }, Instr::Mov { .. }) => Some(FusionKind::ImmMov),
        (Instr::Mov { .. }, Instr::LoadImm { .. }) => Some(FusionKind::MovImm),
        (Instr::StackLoad { .. }, Instr::StackLoad { .. }) => Some(FusionKind::LoadLoad),
        (Instr::StackStore { .. }, Instr::StackStore { .. }) => Some(FusionKind::StoreStore),
        _ => None,
    }
}

/// Builds the fused op for a pair [`template_match`] accepted. The
/// fused op replaces `a`'s slot only; `b`'s slot keeps its plain
/// decoding.
fn build_fused(kind: FusionKind, a: &Instr, b: &Instr, base: u32, len: u32) -> DecodedOp {
    let abs = |t: u32| base + t.min(len);
    match (kind, a, b) {
        (
            FusionKind::CmpBranch,
            Instr::Prim { op, dst, args },
            Instr::BranchFalse {
                src,
                target,
                likely,
            },
        ) => DecodedOp::CmpBranch {
            op: *op,
            dst: *dst,
            args: PrimArgs::from_slice(args),
            src: *src,
            target: abs(*target),
            likely: *likely,
            on_true: false,
        },
        (
            FusionKind::CmpBranch,
            Instr::Prim { op, dst, args },
            Instr::BranchTrue {
                src,
                target,
                likely,
            },
        ) => DecodedOp::CmpBranch {
            op: *op,
            dst: *dst,
            args: PrimArgs::from_slice(args),
            src: *src,
            target: abs(*target),
            likely: *likely,
            on_true: true,
        },
        (
            FusionKind::MovMov,
            Instr::Mov { dst, src },
            Instr::Mov {
                dst: dst2,
                src: src2,
            },
        ) => DecodedOp::MovMov {
            dst1: *dst,
            src1: *src,
            dst2: *dst2,
            src2: *src2,
        },
        (
            FusionKind::ImmImm,
            Instr::LoadImm { dst, imm },
            Instr::LoadImm {
                dst: dst2,
                imm: imm2,
            },
        ) => DecodedOp::ImmImm {
            dst1: *dst,
            imm1: *imm,
            dst2: *dst2,
            imm2: *imm2,
        },
        (
            FusionKind::ImmMov,
            Instr::LoadImm { dst, imm },
            Instr::Mov {
                dst: dst2,
                src: src2,
            },
        ) => DecodedOp::ImmMov {
            dst1: *dst,
            imm1: *imm,
            dst2: *dst2,
            src2: *src2,
        },
        (
            FusionKind::MovImm,
            Instr::Mov { dst, src },
            Instr::LoadImm {
                dst: dst2,
                imm: imm2,
            },
        ) => DecodedOp::MovImm {
            dst1: *dst,
            src1: *src,
            dst2: *dst2,
            imm2: *imm2,
        },
        (
            FusionKind::LoadLoad,
            Instr::StackLoad { dst, slot, class },
            Instr::StackLoad {
                dst: dst2,
                slot: slot2,
                class: class2,
            },
        ) => DecodedOp::LoadLoad {
            dst1: *dst,
            slot1: *slot,
            class1: *class,
            dst2: *dst2,
            slot2: *slot2,
            class2: *class2,
        },
        (
            FusionKind::StoreStore,
            Instr::StackStore { slot, src, class },
            Instr::StackStore {
                slot: slot2,
                src: src2,
                class: class2,
            },
        ) => DecodedOp::StoreStore {
            slot1: *slot,
            src1: *src,
            class1: *class,
            slot2: *slot2,
            src2: *src2,
            class2: *class2,
        },
        _ => unreachable!("build_fused called with a pair template_match rejected"),
    }
}

/// Matches the triple `(a, b, c)` against the three-op template
/// catalogue: which [`TripleKind`] *could* fuse it, independent of
/// whether that kind is enabled in the generated table. Shared with
/// `lesgs-fusegen`, whose miner attributes measured dynamic triple
/// counts to exactly the templates this function recognizes. Only
/// fall-through shapes appear (the first two ops never transfer
/// control), so — as with pairs — fusion needs no control-flow
/// analysis.
pub fn template_match3(a: &Instr, b: &Instr, c: &Instr) -> Option<TripleKind> {
    match (a, b, c) {
        (Instr::Prim { .. }, Instr::StackStore { .. }, Instr::Mov { .. }) => {
            Some(TripleKind::PrimStoreMov)
        }
        (Instr::StackStore { .. }, Instr::Mov { .. }, Instr::Prim { .. }) => {
            Some(TripleKind::StoreMovPrim)
        }
        (
            Instr::Mov { .. },
            Instr::Prim { op, .. },
            Instr::BranchFalse { .. } | Instr::BranchTrue { .. },
        ) if fusible_predicate(*op) => Some(TripleKind::MovCmpBranch),
        (Instr::Mov { .. }, Instr::LoadImm { .. }, Instr::Prim { .. }) => {
            Some(TripleKind::MovImmPrim)
        }
        (Instr::StackLoad { .. }, Instr::StackLoad { .. }, Instr::StackLoad { .. }) => {
            Some(TripleKind::LoadLoadLoad)
        }
        (Instr::StackStore { .. }, Instr::StackStore { .. }, Instr::StackStore { .. }) => {
            Some(TripleKind::StoreStoreStore)
        }
        (Instr::StackLoad { .. }, Instr::StackLoad { .. }, Instr::StackStore { .. }) => {
            Some(TripleKind::LoadLoadStore)
        }
        (Instr::LoadImm { .. }, Instr::Prim { .. }, Instr::Mov { .. }) => {
            Some(TripleKind::ImmPrimMov)
        }
        _ => None,
    }
}

/// Builds the fused op for a triple [`template_match3`] accepted. The
/// fused op replaces `a`'s slot only; `b`'s and `c`'s slots keep their
/// plain decodings.
fn build_fused3(
    kind: TripleKind,
    a: &Instr,
    b: &Instr,
    c: &Instr,
    base: u32,
    len: u32,
) -> DecodedOp {
    let abs = |t: u32| base + t.min(len);
    match (kind, a, b, c) {
        (
            TripleKind::PrimStoreMov,
            Instr::Prim { op, dst, args },
            Instr::StackStore { slot, src, class },
            Instr::Mov {
                dst: dst3,
                src: src3,
            },
        ) => DecodedOp::PrimStoreMov {
            op: *op,
            dst1: *dst,
            args: PrimArgs::from_slice(args),
            slot2: *slot,
            src2: *src,
            class2: *class,
            dst3: *dst3,
            src3: *src3,
        },
        (
            TripleKind::StoreMovPrim,
            Instr::StackStore { slot, src, class },
            Instr::Mov {
                dst: dst2,
                src: src2,
            },
            Instr::Prim { op, dst, args },
        ) => DecodedOp::StoreMovPrim {
            slot1: *slot,
            src1: *src,
            class1: *class,
            dst2: *dst2,
            src2: *src2,
            op: *op,
            dst3: *dst,
            args: PrimArgs::from_slice(args),
        },
        (
            TripleKind::MovCmpBranch,
            Instr::Mov { dst, src },
            Instr::Prim {
                op,
                dst: dst2,
                args,
            },
            Instr::BranchFalse {
                src: src3,
                target,
                likely,
            },
        ) => DecodedOp::MovCmpBranch {
            dst1: *dst,
            src1: *src,
            op: *op,
            dst2: *dst2,
            args: PrimArgs::from_slice(args),
            src3: *src3,
            target: abs(*target),
            likely: *likely,
            on_true: false,
        },
        (
            TripleKind::MovCmpBranch,
            Instr::Mov { dst, src },
            Instr::Prim {
                op,
                dst: dst2,
                args,
            },
            Instr::BranchTrue {
                src: src3,
                target,
                likely,
            },
        ) => DecodedOp::MovCmpBranch {
            dst1: *dst,
            src1: *src,
            op: *op,
            dst2: *dst2,
            args: PrimArgs::from_slice(args),
            src3: *src3,
            target: abs(*target),
            likely: *likely,
            on_true: true,
        },
        (
            TripleKind::MovImmPrim,
            Instr::Mov { dst, src },
            Instr::LoadImm {
                dst: dst2,
                imm: imm2,
            },
            Instr::Prim {
                op,
                dst: dst3,
                args,
            },
        ) => DecodedOp::MovImmPrim {
            dst1: *dst,
            src1: *src,
            dst2: *dst2,
            imm2: *imm2,
            op: *op,
            dst3: *dst3,
            args: PrimArgs::from_slice(args),
        },
        (
            TripleKind::LoadLoadLoad,
            Instr::StackLoad { dst, slot, class },
            Instr::StackLoad {
                dst: dst2,
                slot: slot2,
                class: class2,
            },
            Instr::StackLoad {
                dst: dst3,
                slot: slot3,
                class: class3,
            },
        ) => DecodedOp::LoadLoadLoad {
            dst1: *dst,
            slot1: *slot,
            class1: *class,
            dst2: *dst2,
            slot2: *slot2,
            class2: *class2,
            dst3: *dst3,
            slot3: *slot3,
            class3: *class3,
        },
        (
            TripleKind::StoreStoreStore,
            Instr::StackStore { slot, src, class },
            Instr::StackStore {
                slot: slot2,
                src: src2,
                class: class2,
            },
            Instr::StackStore {
                slot: slot3,
                src: src3,
                class: class3,
            },
        ) => DecodedOp::StoreStoreStore {
            slot1: *slot,
            src1: *src,
            class1: *class,
            slot2: *slot2,
            src2: *src2,
            class2: *class2,
            slot3: *slot3,
            src3: *src3,
            class3: *class3,
        },
        (
            TripleKind::LoadLoadStore,
            Instr::StackLoad { dst, slot, class },
            Instr::StackLoad {
                dst: dst2,
                slot: slot2,
                class: class2,
            },
            Instr::StackStore {
                slot: slot3,
                src: src3,
                class: class3,
            },
        ) => DecodedOp::LoadLoadStore {
            dst1: *dst,
            slot1: *slot,
            class1: *class,
            dst2: *dst2,
            slot2: *slot2,
            class2: *class2,
            slot3: *slot3,
            src3: *src3,
            class3: *class3,
        },
        (
            TripleKind::ImmPrimMov,
            Instr::LoadImm { dst, imm },
            Instr::Prim {
                op,
                dst: dst2,
                args,
            },
            Instr::Mov {
                dst: dst3,
                src: src3,
            },
        ) => DecodedOp::ImmPrimMov {
            dst1: *dst,
            imm1: *imm,
            op: *op,
            dst2: *dst2,
            args: PrimArgs::from_slice(args),
            dst3: *dst3,
            src3: *src3,
        },
        _ => unreachable!("build_fused3 called with a triple template_match3 rejected"),
    }
}

impl DecodedProgram {
    /// Decodes a linked program under the committed generated fusion
    /// table ([`crate::fusion_table::FUSION_TABLE`]) — see the module
    /// docs for the layout.
    ///
    /// # Panics
    ///
    /// Panics on a primitive with more than [`MAX_DECODED_ARGS`]
    /// operands — codegen never emits one and `verify_bytecode`
    /// rejects such programs.
    pub fn decode(program: &VmProgram) -> DecodedProgram {
        DecodedProgram::decode_with_table(
            program,
            crate::fusion_table::FUSION_TABLE,
            crate::fusion_table::TRIPLE_TABLE,
        )
    }

    /// Decodes with explicit pair and triple fusion tables. Empty
    /// tables disable fusion entirely — that is how the `lesgs-fusegen`
    /// miner obtains the one-op-per-slot decoding it profiles pair and
    /// triple frequencies on. The greedy scan prefers an enabled triple
    /// over an enabled pair at the same position, mirroring the miner's
    /// attribution order.
    pub fn decode_with_table(
        program: &VmProgram,
        table: &[FusionEntry],
        triples: &[TripleEntry],
    ) -> DecodedProgram {
        let enabled: [bool; FusionKind::COUNT] = {
            let mut e = [false; FusionKind::COUNT];
            for entry in table {
                e[entry.kind as usize] = true;
            }
            e
        };
        let enabled3: [bool; TripleKind::COUNT] = {
            let mut e = [false; TripleKind::COUNT];
            for entry in triples {
                e[entry.kind as usize] = true;
            }
            e
        };
        let mut ops = Vec::with_capacity(program.code_size() + program.funcs.len());
        let mut funcs = Vec::with_capacity(program.funcs.len());
        let mut stats = DecodeStats::default();
        let mut next_ic = 0u32;
        for f in &program.funcs {
            let base = ops.len() as u32;
            let len = f.code.len() as u32;
            stats.source_instructions += u64::from(len);
            let mut i = 0usize;
            while i < f.code.len() {
                let fused3 = (i + 2 < f.code.len())
                    .then(|| template_match3(&f.code[i], &f.code[i + 1], &f.code[i + 2]))
                    .flatten()
                    .filter(|kind| enabled3[*kind as usize]);
                if let Some(kind) = fused3 {
                    stats.fused_triples += 1;
                    stats.fused_by_triple[kind as usize] += 1;
                    ops.push(build_fused3(
                        kind,
                        &f.code[i],
                        &f.code[i + 1],
                        &f.code[i + 2],
                        base,
                        len,
                    ));
                    // The second and third slots keep their plain
                    // decodings so a branch landing mid-triple behaves
                    // exactly as before.
                    ops.push(decode_one(&f.code[i + 1], base, len, &mut next_ic));
                    ops.push(decode_one(&f.code[i + 2], base, len, &mut next_ic));
                    i += 3;
                    continue;
                }
                let fused = f
                    .code
                    .get(i + 1)
                    .and_then(|next| template_match(&f.code[i], next))
                    .filter(|kind| enabled[*kind as usize]);
                match fused {
                    Some(kind) => {
                        stats.fused_pairs += 1;
                        stats.fused_by_kind[kind as usize] += 1;
                        ops.push(build_fused(kind, &f.code[i], &f.code[i + 1], base, len));
                        // The second slot keeps its plain decoding so a
                        // branch landing on it behaves exactly as before.
                        ops.push(decode_one(&f.code[i + 1], base, len, &mut next_ic));
                        i += 2;
                    }
                    None => {
                        ops.push(decode_one(&f.code[i], base, len, &mut next_ic));
                        i += 1;
                    }
                }
            }
            ops.push(DecodedOp::FuncEnd);
            funcs.push(FuncInfo {
                name: f.name.clone(),
                base,
                code_len: len,
                frame_size: f.frame_size,
                n_incoming: f.n_incoming,
                syntactic_leaf: f.syntactic_leaf,
                call_inevitable: f.call_inevitable,
            });
        }
        stats.decoded_ops = ops.len() as u64;
        DecodedProgram {
            ops,
            funcs,
            entry: program.entry,
            constants: program.constants.clone(),
            n_globals: program.n_globals,
            stats,
            n_ic_sites: next_ic,
        }
    }

    /// The flat op array.
    pub fn ops(&self) -> &[DecodedOp] {
        &self.ops
    }

    /// Per-function metadata, indexed by [`FuncId`].
    pub fn funcs(&self) -> &[FuncInfo] {
        &self.funcs
    }

    /// Looks up one function's metadata.
    pub fn func(&self, id: FuncId) -> &FuncInfo {
        &self.funcs[id.index()]
    }

    /// The entry function.
    pub fn entry(&self) -> FuncId {
        self.entry
    }

    /// What decoding did (the `vm.dispatch.*` counters).
    pub fn stats(&self) -> DecodeStats {
        self.stats
    }

    /// Number of through-`cp` call sites (the executor sizes its
    /// inline-cache array from this).
    pub fn n_ic_sites(&self) -> u32 {
        self.n_ic_sites
    }

    /// Every through-`cp` call site as `(pc, ic, is_tail)`, in pc
    /// order. This walks the flat array rather than re-deriving sites
    /// from source, so it covers every site — including slots adjacent
    /// to fused pairs and triples — and is guaranteed to agree with
    /// [`DecodedProgram::n_ic_sites`]. The `lesgsc dis --decoded`
    /// listing renders this table so no site annotation can be lost to
    /// fusion.
    pub fn ic_sites(&self) -> Vec<(u32, u32, bool)> {
        let mut sites: Vec<(u32, u32, bool)> = self
            .ops
            .iter()
            .enumerate()
            .filter_map(|(pc, op)| match *op {
                DecodedOp::CallClosure { ic, .. } => Some((pc as u32, ic, false)),
                DecodedOp::TailCallClosure { ic } => Some((pc as u32, ic, true)),
                _ => None,
            })
            .collect();
        debug_assert_eq!(sites.len() as u32, self.n_ic_sites);
        sites.sort_by_key(|&(_, ic, _)| ic);
        sites
    }

    /// Renders the decoded layout — function table, per-op listing,
    /// and the absolute jump-target table. This is the golden-fixture
    /// format of `tests/decoded_fixtures.rs`: deterministic, and
    /// line-diffable when codegen or the fusion catalogue changes.
    pub fn describe(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let s = self.stats;
        let by_kind = crate::fusion_table::FUSION_TABLE
            .iter()
            .map(|e| format!("{} {}", e.kind.key(), s.fused(e.kind)))
            .collect::<Vec<_>>()
            .join(", ");
        let by_triple = crate::fusion_table::TRIPLE_TABLE
            .iter()
            .map(|e| format!("{} {}", e.kind.key(), s.fused3(e.kind)))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(
            out,
            "source_instructions {} decoded_ops {} fused_pairs {} ({by_kind}) \
             fused_triples {} ({by_triple}) ic_sites {}",
            s.source_instructions, s.decoded_ops, s.fused_pairs, s.fused_triples, self.n_ic_sites
        );
        for (i, f) in self.funcs.iter().enumerate() {
            let _ = writeln!(
                out,
                "f{i} ({}): base {} len {} frame {}",
                f.name, f.base, f.code_len, f.frame_size
            );
        }
        let _ = writeln!(out, "jump targets:");
        for (pc, op) in self.ops.iter().enumerate() {
            if let Some(t) = op.jump_target() {
                let _ = writeln!(out, "  @{pc} -> @{t}");
            }
        }
        out
    }

    /// Renders a full disassembly of the decoded array (diagnostics).
    pub fn disassemble(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (i, f) in self.funcs.iter().enumerate() {
            let _ = writeln!(out, "f{i} ({}): base {} len {}", f.name, f.base, f.code_len);
            let end = f.base + f.code_len;
            for pc in f.base..=end {
                let _ = writeln!(out, "  {pc:4}: {}", self.ops[pc as usize]);
            }
        }
        out
    }
}
