//! An instrumented register-machine virtual machine.
//!
//! The VM stands in for the paper's Alpha 3000/600: it executes the
//! code produced by `lesgs-codegen` and counts exactly the events the
//! paper's evaluation measures — stack references (by kind: parameter,
//! save, restore, spill, temporary, outgoing argument), procedure
//! activations (classified as syntactic/effective leaves), and a cycle
//! count under a simple memory-latency cost model where loads complete
//! a few cycles after they issue and uses of not-yet-ready registers
//! stall. The latency model is what makes the eager-vs-lazy restore
//! trade-off of §2.2 observable.

#![warn(missing_docs)]

pub mod classic;
pub mod cost;
pub mod decode;
pub mod exec;
pub mod fusion_table;
pub mod instr;
mod prim;
pub mod program;
pub mod stats;
pub mod value;
pub mod verify;

pub use classic::ClassicMachine;
pub use cost::CostModel;
pub use decode::{
    fusion_table_checksum, template_match, template_match3, triple_table_checksum, DecodeStats,
    DecodedOp, DecodedProgram, FuncInfo, FusionEntry, FusionKind, PrimArgs, TripleEntry,
    TripleKind,
};
pub use exec::{DispatchRunStats, Machine, VmError, VmOutcome, SPEC_DEMOTE_AFTER};
pub use fusion_table::{FUSION_TABLE, FUSION_TABLE_CHECKSUM, TRIPLE_TABLE, TRIPLE_TABLE_CHECKSUM};
pub use instr::{CallTarget, Imm, Instr, SlotClass};
pub use program::{VmFunc, VmProgram};
pub use stats::{ActivationClass, RunStats};
pub use value::Value;
pub use verify::{verify_bytecode, BytecodeError, BytecodeErrorKind};
