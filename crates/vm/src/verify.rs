//! Bytecode-level verification: a forward abstract interpretation over
//! [`VmProgram`] instructions.
//!
//! The AST-level checker in `lesgs-core` validates the *allocator's*
//! output, but everything after it — code generation, frame lowering,
//! branch patching, the peephole pass — can still break the paper's
//! save/restore contract without failing that check. This module closes
//! the gap: it walks every function's control-flow graph with an
//! abstract machine state and rejects code that could read a clobbered
//! register, restore from a slot that was not saved on every incoming
//! path, call with an unbalanced frame, or fall off the end of a
//! function.
//!
//! # The abstract machine
//!
//! Per path, the verifier tracks for every register whether it holds a
//! return address ([`AbsVal::RetAddr`]), an untouched callee-save entry
//! value ([`AbsVal::Entry`]), an ordinary defined value
//! ([`AbsVal::Val`]), or garbage left behind by a call
//! ([`AbsVal::Clobbered`]); and for every written frame slot its
//! [`SlotClass`] and — for save slots — *which* register was saved and
//! what abstract value it held. Join points meet the states
//! (intersection of written slots, pointwise meet of register values),
//! so a fact only survives if it holds on **every** path.
//!
//! # Checked invariants
//!
//! * No instruction reads a register clobbered by an earlier call and
//!   not restored since ([`BytecodeErrorKind::StaleRegister`]).
//! * Every [`SlotClass::Save`]-class load reads a slot that was
//!   save-stored on every path reaching it, and restores into the same
//!   register that was saved ([`BytecodeErrorKind::RestoreUnsaved`],
//!   [`BytecodeErrorKind::RestoreMismatch`]).
//! * No dead saves: a caller-save register save must be able to reach
//!   a (non-tail) call — otherwise the lazy-save analysis should have
//!   sunk it off the call-free path ([`BytecodeErrorKind::DeadSave`]).
//! * Frame balance: a call's `frame_advance` equals the caller's frame
//!   size ([`BytecodeErrorKind::FrameMismatch`]), and every stack slot
//!   access stays inside the region its class names
//!   ([`BytecodeErrorKind::SlotOutOfBounds`]).
//! * No reads of never-written slots ([`BytecodeErrorKind::UninitRead`])
//!   and no direct calls with unwritten stack-argument slots
//!   ([`BytecodeErrorKind::MissingArg`]).
//! * `return` goes through a real return address, callee-save registers
//!   are restored to their entry values before control leaves the
//!   function, branch targets are in range, and no path falls off the
//!   end of the code.
//!
//! The analysis is a standard monotone worklist fixpoint; afterwards a
//! single reporting pass over the reachable instructions collects
//! errors against the final states.

use std::collections::BTreeMap;
use std::fmt;

use lesgs_ir::machine::{CP, MAX_PERMI_REGS, NUM_REGS, RET, RV};
use lesgs_ir::Reg;

use crate::instr::{CallTarget, Instr, SlotClass};
use crate::program::{VmFunc, VmProgram};

/// What the verifier knows about a register's content on a path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AbsVal {
    /// A return address (written by `call`, restorable from a save
    /// slot). `return` and tail calls require `ret` to hold this.
    RetAddr,
    /// A callee-save register still holding the caller's value; it must
    /// hold this again when the function returns or tail-calls.
    Entry,
    /// An ordinary defined value.
    Val,
    /// Garbage left by a call (caller-save register not yet rewritten).
    Clobbered,
}

impl AbsVal {
    fn meet(a: AbsVal, b: AbsVal) -> AbsVal {
        match (a, b) {
            _ if a == b => a,
            (AbsVal::Clobbered, _) | (_, AbsVal::Clobbered) => AbsVal::Clobbered,
            // Defined-but-different kinds degrade to a plain value.
            _ => AbsVal::Val,
        }
    }
}

/// What the verifier knows about a written frame slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SlotAbs {
    /// The class of the store(s) that wrote it (`None` after a join of
    /// conflicting classes).
    class: Option<SlotClass>,
    /// For save slots: the saved register and its value at save time.
    saved: Option<(Reg, AbsVal)>,
}

impl SlotAbs {
    fn meet(a: SlotAbs, b: SlotAbs) -> SlotAbs {
        SlotAbs {
            class: if a.class == b.class { a.class } else { None },
            saved: match (a.saved, b.saved) {
                (Some((ra, va)), Some((rb, vb))) if ra == rb => Some((ra, AbsVal::meet(va, vb))),
                _ => None,
            },
        }
    }
}

/// The abstract machine state at one program point.
#[derive(Debug, Clone, PartialEq, Eq)]
struct State {
    regs: [AbsVal; NUM_REGS],
    /// Written frame slots (absent = possibly uninitialized).
    slots: BTreeMap<u32, SlotAbs>,
}

impl State {
    fn meet(a: &State, b: &State) -> State {
        let mut regs = [AbsVal::Clobbered; NUM_REGS];
        for (i, r) in regs.iter_mut().enumerate() {
            *r = AbsVal::meet(a.regs[i], b.regs[i]);
        }
        let slots = a
            .slots
            .iter()
            .filter_map(|(k, va)| b.slots.get(k).map(|vb| (*k, SlotAbs::meet(*va, *vb))))
            .collect();
        State { regs, slots }
    }

    fn get(&self, r: Reg) -> AbsVal {
        self.regs[r.index()]
    }

    fn set(&mut self, r: Reg, v: AbsVal) {
        self.regs[r.index()] = v;
    }
}

/// The category of a bytecode-verification failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BytecodeErrorKind {
    /// A register whose content a call destroyed is read before being
    /// rewritten or restored.
    StaleRegister,
    /// A save-class load reads a slot not save-stored on every path.
    RestoreUnsaved,
    /// A save-class load restores into a different register than the
    /// slot saved.
    RestoreMismatch,
    /// A caller-save register save from which no call is reachable.
    DeadSave,
    /// A stack access to a never-written slot.
    UninitRead,
    /// A stack access outside the region its slot class names.
    SlotOutOfBounds,
    /// `frame_advance` of a call differs from the function's frame
    /// size.
    FrameMismatch,
    /// A direct call whose callee expects stack parameters the caller
    /// never wrote.
    MissingArg,
    /// `return` (or a tail call) without a return address in `ret`.
    BadReturnAddress,
    /// Control can leave the function with a callee-save register not
    /// holding its entry value.
    CalleeSaveNotRestored,
    /// A branch or jump target outside the function's code.
    BadTarget,
    /// A path falls off the end of the code.
    FallsOffEnd,
    /// A constant, global, or function index outside the program's
    /// tables.
    BadIndex,
    /// A `permi` whose shape is malformed: too many or too few
    /// registers, mismatched operand lists, or a permutation index
    /// outside `0..regs.len()`.
    PermIndexOutOfRange,
    /// A `permi` whose index vector is not a bijection (or that names
    /// the same register twice, which makes the simultaneous
    /// assignment ill-defined).
    PermNotBijective,
}

impl fmt::Display for BytecodeErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BytecodeErrorKind::StaleRegister => "stale-register",
            BytecodeErrorKind::RestoreUnsaved => "restore-unsaved",
            BytecodeErrorKind::RestoreMismatch => "restore-mismatch",
            BytecodeErrorKind::DeadSave => "dead-save",
            BytecodeErrorKind::UninitRead => "uninit-read",
            BytecodeErrorKind::SlotOutOfBounds => "slot-out-of-bounds",
            BytecodeErrorKind::FrameMismatch => "frame-mismatch",
            BytecodeErrorKind::MissingArg => "missing-arg",
            BytecodeErrorKind::BadReturnAddress => "bad-return-address",
            BytecodeErrorKind::CalleeSaveNotRestored => "callee-save-not-restored",
            BytecodeErrorKind::BadTarget => "bad-target",
            BytecodeErrorKind::FallsOffEnd => "falls-off-end",
            BytecodeErrorKind::BadIndex => "bad-index",
            BytecodeErrorKind::PermIndexOutOfRange => "perm-index-out-of-range",
            BytecodeErrorKind::PermNotBijective => "perm-not-bijective",
        };
        f.write_str(s)
    }
}

/// One bytecode-verification failure, located at a function +
/// instruction index.
#[derive(Debug, Clone, PartialEq)]
pub struct BytecodeError {
    /// Function name.
    pub func: String,
    /// Instruction index within the function.
    pub pc: u32,
    /// Failure category (stable; mutation tests match on it).
    pub kind: BytecodeErrorKind,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for BytecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bytecode error [{}] at {}+{}: {}",
            self.kind, self.func, self.pc, self.message
        )
    }
}

impl std::error::Error for BytecodeError {}

struct Verifier<'a> {
    program: &'a VmProgram,
    func: &'a VmFunc,
    errors: Vec<BytecodeError>,
}

/// Instruction successors within the function (targets validated
/// separately).
fn successors(instr: &Instr, pc: u32, len: u32) -> Vec<u32> {
    match instr {
        Instr::Jump { target } => vec![*target],
        Instr::BranchFalse { target, .. } | Instr::BranchTrue { target, .. } => {
            let mut s = vec![*target];
            if pc + 1 < len {
                s.push(pc + 1);
            }
            s
        }
        Instr::Return | Instr::TailCall { .. } | Instr::Halt => Vec::new(),
        _ => {
            if pc + 1 < len {
                vec![pc + 1]
            } else {
                Vec::new()
            }
        }
    }
}

/// `reach[pc]` = a non-tail call is reachable from `pc` (inclusive).
/// Saves that cannot reach a call protect nothing and are flagged dead.
fn call_reachability(code: &[Instr]) -> Vec<bool> {
    let len = code.len() as u32;
    let mut reach = vec![false; code.len()];
    // Iterate to fixpoint; the graph is tiny and mostly forward, so a
    // couple of reverse sweeps converge.
    loop {
        let mut changed = false;
        for pc in (0..code.len()).rev() {
            if reach[pc] {
                continue;
            }
            let here = matches!(code[pc], Instr::Call { .. })
                || successors(&code[pc], pc as u32, len)
                    .into_iter()
                    .any(|s| reach[s as usize]);
            if here {
                reach[pc] = true;
                changed = true;
            }
        }
        if !changed {
            return reach;
        }
    }
}

impl<'a> Verifier<'a> {
    fn error(&mut self, pc: u32, kind: BytecodeErrorKind, message: String) {
        self.errors.push(BytecodeError {
            func: self.func.name.clone(),
            pc,
            kind,
            message,
        });
    }

    /// The abstract state on entry: `ret` holds the caller's return
    /// address, callee-save registers the caller's values, argument
    /// registers and `cp` the incoming arguments/closure; scratches and
    /// `rv` hold nothing the function may rely on.
    fn entry_state(&self) -> State {
        let mut st = State {
            regs: [AbsVal::Clobbered; NUM_REGS],
            slots: BTreeMap::new(),
        };
        for i in 0..NUM_REGS {
            let r = Reg(i as u8);
            if r == RET {
                st.set(r, AbsVal::RetAddr);
            } else if r.is_callee_save() {
                st.set(r, AbsVal::Entry);
            } else if r == CP || r.is_arg() {
                st.set(r, AbsVal::Val);
            }
        }
        // The bootstrap entry function is jumped to, not called: it has
        // no return address and must halt rather than return.
        if self.func.id == self.program.entry {
            st.set(RET, AbsVal::Clobbered);
        }
        for slot in 0..self.func.n_incoming {
            st.slots.insert(
                slot,
                SlotAbs {
                    class: Some(SlotClass::Param),
                    saved: None,
                },
            );
        }
        st
    }

    /// Applies `instr` to `st`, reporting violations when `report` is
    /// set (the reporting pass); returns false if the instruction
    /// terminates the path.
    #[allow(clippy::too_many_lines)] // one arm per opcode, intentionally flat
    fn transfer(&mut self, pc: u32, instr: &Instr, st: &mut State, report: bool) {
        let frame_size = self.func.frame_size;
        let read = |v: &mut Verifier<'a>, st: &State, r: Reg| {
            if report && st.get(r) == AbsVal::Clobbered {
                v.error(
                    pc,
                    BytecodeErrorKind::StaleRegister,
                    format!("read of register {r} clobbered by an earlier call"),
                );
            }
        };
        match instr {
            Instr::LoadImm { dst, .. } => st.set(*dst, AbsVal::Val),
            Instr::LoadConst { dst, idx } => {
                if report && *idx as usize >= self.program.constants.len() {
                    self.error(
                        pc,
                        BytecodeErrorKind::BadIndex,
                        format!("constant index {idx} out of range"),
                    );
                }
                st.set(*dst, AbsVal::Val);
            }
            Instr::Mov { dst, src } => {
                read(self, st, *src);
                let v = st.get(*src);
                st.set(*dst, v);
            }
            Instr::StackLoad { dst, slot, class } => {
                self.check_slot_bounds(pc, *slot, *class, false, report);
                match st.slots.get(slot).copied() {
                    None => {
                        if report {
                            self.error(
                                pc,
                                BytecodeErrorKind::UninitRead,
                                format!(
                                    "load of slot {slot} ({class}) not written on \
                                     every path"
                                ),
                            );
                        }
                        st.set(*dst, AbsVal::Val);
                    }
                    Some(abs) => {
                        if *class == SlotClass::Save {
                            match abs.saved {
                                Some((r, v)) if r == *dst => st.set(*dst, v),
                                Some((r, _)) => {
                                    if report {
                                        self.error(
                                            pc,
                                            BytecodeErrorKind::RestoreMismatch,
                                            format!(
                                                "restore of {dst} from slot {slot} \
                                                 which saved {r}"
                                            ),
                                        );
                                    }
                                    st.set(*dst, AbsVal::Val);
                                }
                                None => {
                                    if report {
                                        self.error(
                                            pc,
                                            BytecodeErrorKind::RestoreUnsaved,
                                            format!(
                                                "restore from slot {slot} not \
                                                 save-stored on every path"
                                            ),
                                        );
                                    }
                                    st.set(*dst, AbsVal::Val);
                                }
                            }
                        } else {
                            st.set(*dst, AbsVal::Val);
                        }
                    }
                }
            }
            Instr::StackStore { slot, src, class } => {
                read(self, st, *src);
                self.check_slot_bounds(pc, *slot, *class, true, report);
                let saved = (*class == SlotClass::Save).then(|| (*src, st.get(*src)));
                st.slots.insert(
                    *slot,
                    SlotAbs {
                        class: Some(*class),
                        saved,
                    },
                );
            }
            Instr::Prim { dst, args, .. } => {
                for a in args {
                    read(self, st, *a);
                }
                st.set(*dst, AbsVal::Val);
            }
            Instr::Jump { .. } => {}
            Instr::BranchFalse { src, .. } | Instr::BranchTrue { src, .. } => {
                read(self, st, *src);
            }
            Instr::Call {
                target,
                frame_advance,
            } => {
                if report {
                    if *frame_advance != frame_size {
                        self.error(
                            pc,
                            BytecodeErrorKind::FrameMismatch,
                            format!(
                                "call advances fp by {frame_advance}, frame size \
                                 is {frame_size}"
                            ),
                        );
                    }
                    self.check_call_target(pc, st, target, *frame_advance);
                }
                if let CallTarget::ClosureCp = target {
                    read(self, st, CP);
                }
                // The callee owns the outgoing-argument region and every
                // caller-save register from here on.
                st.slots.retain(|slot, _| *slot < frame_size);
                for i in 0..NUM_REGS {
                    let r = Reg(i as u8);
                    if !r.is_callee_save() {
                        st.set(r, AbsVal::Clobbered);
                    }
                }
                st.set(RV, AbsVal::Val);
            }
            Instr::TailCall { target } => {
                if let CallTarget::ClosureCp = target {
                    read(self, st, CP);
                }
                if report {
                    if st.get(RET) != AbsVal::RetAddr {
                        self.error(
                            pc,
                            BytecodeErrorKind::BadReturnAddress,
                            "tail call without a return address in ret".to_owned(),
                        );
                    }
                    self.check_callee_saves(pc, st, "tail call");
                    if let CallTarget::Func(f) = target {
                        match self.program.funcs.get(f.index()) {
                            None => self.error(
                                pc,
                                BytecodeErrorKind::BadIndex,
                                format!("tail call of unknown function {f}"),
                            ),
                            Some(callee) => {
                                // The callee reuses this frame; its stack
                                // parameters live at slots 0.. and must be
                                // written (or inherited) on every path.
                                for slot in 0..callee.n_incoming {
                                    if !st.slots.contains_key(&slot) {
                                        self.error(
                                            pc,
                                            BytecodeErrorKind::MissingArg,
                                            format!(
                                                "tail call to {} without stack \
                                                 argument in slot {slot}",
                                                callee.name
                                            ),
                                        );
                                    }
                                }
                            }
                        }
                    }
                }
            }
            Instr::Return => {
                if report {
                    if st.get(RET) != AbsVal::RetAddr {
                        self.error(
                            pc,
                            BytecodeErrorKind::BadReturnAddress,
                            "return without a return address in ret".to_owned(),
                        );
                    }
                    self.check_callee_saves(pc, st, "return");
                }
            }
            Instr::AllocClosure { dst, func, .. } => {
                if report && func.index() >= self.program.funcs.len() {
                    self.error(
                        pc,
                        BytecodeErrorKind::BadIndex,
                        format!("closure over unknown function {func}"),
                    );
                }
                st.set(*dst, AbsVal::Val);
            }
            Instr::ClosureSlotSet { clo, src, .. } => {
                read(self, st, *clo);
                read(self, st, *src);
            }
            Instr::LoadFree { dst, .. } => {
                read(self, st, CP);
                st.set(*dst, AbsVal::Val);
            }
            Instr::LoadGlobal { dst, index } => {
                if report && *index >= self.program.n_globals {
                    self.error(
                        pc,
                        BytecodeErrorKind::BadIndex,
                        format!("global index {index} out of range"),
                    );
                }
                st.set(*dst, AbsVal::Val);
            }
            Instr::StoreGlobal { index, src } => {
                read(self, st, *src);
                if report && *index >= self.program.n_globals {
                    self.error(
                        pc,
                        BytecodeErrorKind::BadIndex,
                        format!("global index {index} out of range"),
                    );
                }
            }
            Instr::Swap { a, b } => {
                read(self, st, *a);
                read(self, st, *b);
                let va = st.get(*a);
                let vb = st.get(*b);
                st.set(*a, vb);
                st.set(*b, va);
            }
            Instr::Permi { regs, perm } => {
                // The validity computation must not depend on `report`:
                // the fixpoint and reporting passes have to apply the
                // identical state effect.
                let shape_ok = regs.len() == perm.len()
                    && (2..=MAX_PERMI_REGS).contains(&regs.len())
                    && perm.iter().all(|p| (*p as usize) < regs.len());
                let bijective = shape_ok && {
                    let mut seen_idx = [false; MAX_PERMI_REGS];
                    let mut seen_reg = [false; NUM_REGS];
                    perm.iter()
                        .all(|p| !std::mem::replace(&mut seen_idx[*p as usize], true))
                        && regs
                            .iter()
                            .all(|r| !std::mem::replace(&mut seen_reg[r.index()], true))
                };
                if report {
                    if !shape_ok {
                        self.error(
                            pc,
                            BytecodeErrorKind::PermIndexOutOfRange,
                            format!(
                                "permi with {} registers / {} indices (indices \
                                 must lie in 0..{}, at most {MAX_PERMI_REGS} \
                                 registers)",
                                regs.len(),
                                perm.len(),
                                regs.len()
                            ),
                        );
                    } else if !bijective {
                        self.error(
                            pc,
                            BytecodeErrorKind::PermNotBijective,
                            "permi whose index vector is not a bijection over \
                             its registers"
                                .to_owned(),
                        );
                    }
                }
                for r in regs {
                    read(self, st, *r);
                }
                let olds: Vec<AbsVal> = regs.iter().map(|r| st.get(*r)).collect();
                if shape_ok && bijective {
                    for (i, r) in regs.iter().enumerate() {
                        st.set(*r, olds[perm[i] as usize]);
                    }
                } else {
                    for r in regs {
                        st.set(*r, AbsVal::Val);
                    }
                }
            }
            Instr::Halt => {}
        }
    }

    /// Direct calls must have written the callee's stack parameters in
    /// the outgoing region on every path.
    fn check_call_target(&mut self, pc: u32, st: &State, target: &CallTarget, frame_advance: u32) {
        let CallTarget::Func(f) = target else { return };
        match self.program.funcs.get(f.index()) {
            None => self.error(
                pc,
                BytecodeErrorKind::BadIndex,
                format!("call of unknown function {f}"),
            ),
            Some(callee) => {
                for j in 0..callee.n_incoming {
                    let slot = frame_advance + j;
                    let written = st
                        .slots
                        .get(&slot)
                        .is_some_and(|s| s.class == Some(SlotClass::OutArg) || s.class.is_none());
                    if !written {
                        self.error(
                            pc,
                            BytecodeErrorKind::MissingArg,
                            format!(
                                "call to {} without outgoing argument in slot \
                                 {slot}",
                                callee.name
                            ),
                        );
                    }
                }
            }
        }
    }

    /// Callee-save registers must hold their entry values whenever
    /// control leaves the function.
    fn check_callee_saves(&mut self, pc: u32, st: &State, what: &str) {
        for i in 0..NUM_REGS {
            let r = Reg(i as u8);
            if r.is_callee_save() && st.get(r) != AbsVal::Entry {
                self.error(
                    pc,
                    BytecodeErrorKind::CalleeSaveNotRestored,
                    format!("{what} with callee-save register {r} not restored"),
                );
            }
        }
    }

    fn check_slot_bounds(
        &mut self,
        pc: u32,
        slot: u32,
        class: SlotClass,
        is_store: bool,
        report: bool,
    ) {
        if !report {
            return;
        }
        let frame_size = self.func.frame_size;
        let ok = match class {
            // Incoming parameters live at the bottom of the frame.
            SlotClass::Param => slot < self.func.n_incoming,
            // Saves, spills, and temporaries live inside the frame.
            SlotClass::Save | SlotClass::Spill | SlotClass::Temp => slot < frame_size,
            // Outgoing-argument stores target the region past the frame
            // or (for tail calls reusing the frame) the parameter area,
            // which may extend past a smaller caller frame; loads only
            // ever read the outgoing region back for the copy-down.
            SlotClass::OutArg => is_store || slot >= frame_size,
        };
        if !ok {
            self.error(
                pc,
                BytecodeErrorKind::SlotOutOfBounds,
                format!(
                    "{} of {class} slot {slot} outside its region (frame size \
                     {frame_size}, incoming {})",
                    if is_store { "store" } else { "load" },
                    self.func.n_incoming
                ),
            );
        }
    }

    fn verify(&mut self) {
        let code = &self.func.code;
        let len = code.len() as u32;
        if code.is_empty() {
            self.error(
                0,
                BytecodeErrorKind::FallsOffEnd,
                "function has no code".to_owned(),
            );
            return;
        }

        // Branch-target validation up front; the fixpoint below only
        // follows in-range edges.
        for (pc, instr) in code.iter().enumerate() {
            if let Instr::Jump { target }
            | Instr::BranchFalse { target, .. }
            | Instr::BranchTrue { target, .. } = instr
            {
                if *target >= len {
                    self.error(
                        pc as u32,
                        BytecodeErrorKind::BadTarget,
                        format!("branch target {target} out of range (len {len})"),
                    );
                }
            }
        }
        if !self.errors.is_empty() {
            return;
        }

        // Monotone worklist fixpoint over the in-states.
        let mut states: Vec<Option<State>> = vec![None; code.len()];
        states[0] = Some(self.entry_state());
        let mut work = vec![0u32];
        while let Some(pc) = work.pop() {
            let mut st = states[pc as usize].clone().expect("queued with a state");
            let instr = &code[pc as usize];
            self.transfer(pc, instr, &mut st, false);
            for succ in successors(instr, pc, len) {
                let slot = &mut states[succ as usize];
                let merged = match slot {
                    None => st.clone(),
                    Some(old) => State::meet(old, &st),
                };
                if slot.as_ref() != Some(&merged) {
                    *slot = Some(merged);
                    work.push(succ);
                }
            }
        }

        // Reporting pass against the fixpoint states.
        let reach = call_reachability(code);
        for pc in 0..code.len() {
            let Some(mut st) = states[pc].clone() else {
                continue;
            };
            let instr = &code[pc];
            self.transfer(pc as u32, instr, &mut st, true);
            // A reachable non-terminator at the end of the code lets
            // control fall off the function.
            let terminates = matches!(
                instr,
                Instr::Jump { .. } | Instr::Return | Instr::TailCall { .. } | Instr::Halt
            );
            if pc + 1 == code.len() && !terminates {
                self.error(
                    pc as u32,
                    BytecodeErrorKind::FallsOffEnd,
                    "control falls off the end of the function".to_owned(),
                );
            }
            // Dead-save analysis: a caller-save save that cannot reach
            // a call protects nothing.
            if let Instr::StackStore {
                src,
                slot,
                class: SlotClass::Save,
            } = instr
            {
                let protects = pc + 1 < code.len() && reach[pc + 1];
                if !src.is_callee_save() && !protects {
                    self.error(
                        pc as u32,
                        BytecodeErrorKind::DeadSave,
                        format!("save of {src} to slot {slot} with no call reachable"),
                    );
                }
            }
        }
    }
}

/// Verifies every function of `program`, returning all violations
/// found (empty = verified).
pub fn verify_bytecode(program: &VmProgram) -> Vec<BytecodeError> {
    let mut errors = Vec::new();
    for (i, func) in program.funcs.iter().enumerate() {
        if func.id.index() != i {
            errors.push(BytecodeError {
                func: func.name.clone(),
                pc: 0,
                kind: BytecodeErrorKind::BadIndex,
                message: format!("function id {} does not match table position {i}", func.id),
            });
        }
        let mut v = Verifier {
            program,
            func,
            errors: Vec::new(),
        };
        v.verify();
        errors.extend(v.errors);
    }
    if program.funcs.get(program.entry.index()).is_none() {
        errors.push(BytecodeError {
            func: "<program>".to_owned(),
            pc: 0,
            kind: BytecodeErrorKind::BadIndex,
            message: format!("entry function {} out of range", program.entry),
        });
    }
    errors
}
