//! The execution engine: a tight indexed dispatch loop over a
//! pre-decoded program.
//!
//! [`Machine`] executes the flat [`DecodedOp`] array built by
//! [`DecodedProgram::decode`] (see that module for the layout and the
//! fusion catalogue). The hot loop never touches the original
//! [`VmProgram`]: ops are `Copy`, operands are inline, jump targets are
//! absolute, and the register file is a pair of fixed arrays — no
//! per-iteration allocation or indirection. The classic
//! decode-in-the-loop executor survives as
//! [`crate::classic::ClassicMachine`]; differential tests hold the two
//! to byte-identical outcomes and [`RunStats`], because the cost model
//! and every `vm.*` counter must observe exactly the same event stream
//! regardless of engine. Fused ops preserve that invariant by
//! construction: their handlers are literal compositions of the plain
//! handlers with the loop-top accounting ([`Machine::fetch_second_half`])
//! replayed between the halves.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use lesgs_frontend::{FuncId, Prim};
use lesgs_ir::machine::{CP, NUM_REGS, RET, RV};
use lesgs_ir::Reg;

use lesgs_metrics::{ratio, Registry};

use crate::cost::CostModel;
use crate::decode::{DecodedOp, DecodedProgram, FusionKind, PrimArgs, TripleKind};
use crate::fusion_table::{FUSION_TABLE, TRIPLE_TABLE};
use crate::instr::{Imm, SlotClass};
use crate::prim::{eval_prim, ArgVals};
use crate::program::VmProgram;
use crate::stats::{ActivationClass, RunStats};
use crate::value::{const_to_value, RetAddr, Value, VmClosure};

/// A runtime failure (type error, fuel exhaustion, VM invariant
/// violation).
#[derive(Debug, Clone, PartialEq)]
pub struct VmError {
    /// Human-readable description.
    pub message: String,
    /// Function and instruction where it happened.
    pub at: Option<(String, u32)>,
}

/// The message every instruction-budget failure carries (the stable
/// marker behind [`VmError::is_fuel_exhausted`]).
pub(crate) const FUEL_MESSAGE: &str = "instruction budget exhausted";

impl VmError {
    /// Creates an error.
    pub fn new(message: impl Into<String>) -> VmError {
        VmError {
            message: message.into(),
            at: None,
        }
    }

    /// True when this error means the instruction budget ran out (as
    /// opposed to the program misbehaving) — differential drivers must
    /// not report a timeout as a miscompile.
    pub fn is_fuel_exhausted(&self) -> bool {
        self.message == FUEL_MESSAGE
    }
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.at {
            Some((name, pc)) => {
                write!(f, "vm error at {name}+{pc}: {}", self.message)
            }
            None => write!(f, "vm error: {}", self.message),
        }
    }
}

impl std::error::Error for VmError {}

/// Guard failures after which a speculative call site is demoted to
/// polymorphic: plain dispatch, no further guessing. Demotion is
/// absorbing — a demoted site never re-enters the fast path, so a
/// megamorphic site costs at most this many failed guards per run.
pub const SPEC_DEMOTE_AFTER: u32 = 4;

/// Per-site speculative inline-cache state (one per through-`cp` call
/// site, indexed by the op's `ic` field; per-run — a fresh run starts
/// cold). The monomorphic → guard-fail → re-cache → demoted state
/// machine lives here; transition counts land in
/// [`DispatchRunStats`]'s `spec_*` fields.
#[derive(Clone, Copy, Default)]
struct IcSite {
    /// Last callee observed at this site (the speculative guess).
    callee: Option<FuncId>,
    /// Cached decoded base pc of `callee` — what the fast path jumps
    /// to without re-resolving through the function table.
    base: u32,
    /// Cumulative guard failures at this site.
    fails: u32,
    /// Site has been demoted to polymorphic (absorbing).
    demoted: bool,
}

/// Run-time statistics of the *dispatch tier itself*: inline-cache
/// hits/misses at through-`cp` call sites, speculative-dispatch state
/// transitions, and per-template fused pair/triple executions. These
/// are engine-internal — the classic engine has no caches and no fused
/// ops, so they are deliberately **excluded from the
/// classic-vs-decoded parity contract** (see [`VmOutcome`]'s
/// `PartialEq`); the observable `vm.*` stream lives in [`RunStats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DispatchRunStats {
    /// Closure-call sites whose cached callee matched.
    pub ic_hits: u64,
    /// Closure-call sites that missed (cold or megamorphic).
    pub ic_misses: u64,
    /// Monomorphic sites dispatched through the speculative fast path:
    /// the closure-identity guard matched the cached callee and the
    /// dispatch jumped straight to its cached decoded base, skipping
    /// target re-resolution.
    pub spec_fast_hits: u64,
    /// Speculative guard failures: the site had a cached guess and the
    /// incoming closure did not match it (a cold first call is a plain
    /// miss, not a guard failure).
    pub spec_guard_fails: u64,
    /// Sites demoted to polymorphic (plain dispatch, no further
    /// guessing) after [`SPEC_DEMOTE_AFTER`] guard failures.
    pub spec_demotions: u64,
    /// Fused-pair executions by template, indexed by [`FusionKind`]
    /// discriminant.
    pub fused_exec: [u64; FusionKind::COUNT],
    /// Fused-triple executions by template, indexed by [`TripleKind`]
    /// discriminant.
    pub fused_exec3: [u64; TripleKind::COUNT],
}

impl DispatchRunStats {
    /// Fused executions of one pair template.
    pub fn fused(&self, kind: FusionKind) -> u64 {
        self.fused_exec[kind as usize]
    }

    /// Fused executions of one triple template.
    pub fn fused3(&self, kind: TripleKind) -> u64 {
        self.fused_exec3[kind as usize]
    }

    /// Inline-cache hit rate in `[0, 1]` (0.0 when no closure calls).
    pub fn ic_hit_rate(&self) -> f64 {
        ratio(
            self.ic_hits as f64,
            (self.ic_hits + self.ic_misses) as f64,
            0.0,
        )
    }

    /// Exports the counters under `vm.dispatch.ic.*`,
    /// `vm.dispatch.spec.*`, and `vm.dispatch.fused_exec.*`. Like the
    /// static decode counters, every generated-table entry is emitted,
    /// zero included, so the key set is a fixed function of the
    /// committed fusion tables.
    pub fn record(&self, reg: &mut Registry) {
        reg.inc("vm.dispatch.ic.hits", self.ic_hits);
        reg.inc("vm.dispatch.ic.misses", self.ic_misses);
        reg.set_gauge("vm.dispatch.ic.hit_rate", self.ic_hit_rate());
        reg.inc("vm.dispatch.spec.fast_hits", self.spec_fast_hits);
        reg.inc("vm.dispatch.spec.guard_fails", self.spec_guard_fails);
        reg.inc("vm.dispatch.spec.demotions", self.spec_demotions);
        for entry in FUSION_TABLE {
            reg.inc(
                &format!("vm.dispatch.fused_exec.{}", entry.kind.key()),
                self.fused(entry.kind),
            );
        }
        for entry in TRIPLE_TABLE {
            reg.inc(
                &format!("vm.dispatch.fused_exec.{}", entry.kind.key()),
                self.fused3(entry.kind),
            );
        }
    }
}

/// The result of a successful run.
///
/// Equality deliberately covers `value`, `output`, and `stats` only:
/// that triple is the engine-independent observable contract the
/// classic-vs-decoded differential suite pins. The `dispatch` field is
/// decoded-engine-internal (the classic engine always reports an empty
/// one) and comparing it would make the contract unsatisfiable.
#[derive(Debug, Clone)]
pub struct VmOutcome {
    /// Final value (in `rv`), rendered in `write` style.
    pub value: String,
    /// Program output (`display`/`write`/`newline`).
    pub output: String,
    /// Collected statistics.
    pub stats: RunStats,
    /// Dispatch-tier statistics (IC hits, fused executions); empty for
    /// the classic engine. Excluded from `PartialEq`.
    pub dispatch: DispatchRunStats,
}

impl PartialEq for VmOutcome {
    fn eq(&self, other: &VmOutcome) -> bool {
        self.value == other.value && self.output == other.output && self.stats == other.stats
    }
}

/// One entry of the shadow activation stack (for Table 2
/// classification; shared with the classic engine).
pub(crate) struct Activation {
    pub(crate) func: FuncId,
    pub(crate) made_call: bool,
}

/// The decoded program a [`Machine`] executes: decoded privately by
/// [`Machine::new`], or borrowed via [`Machine::from_decoded`] so many
/// runs (the bench harness, the config matrix) share one decode.
enum Code<'a> {
    Owned(Box<DecodedProgram>),
    Borrowed(&'a DecodedProgram),
    /// Placeholder left behind once [`Machine::run`] moves the program
    /// out to hold it by direct reference for the dispatch loop.
    Taken,
}

/// The virtual machine.
pub struct Machine<'a> {
    code: Code<'a>,
    cost: CostModel,
    max_instructions: u64,
    poison_frames: bool,
    trace: bool,
    regs: [Value; NUM_REGS],
    ready: [u64; NUM_REGS],
    stack: Vec<Value>,
    fp: u32,
    func: FuncId,
    /// Absolute pc into the decoded op array.
    pc: u32,
    constants: Vec<Value>,
    globals: Vec<Value>,
    output: String,
    stats: RunStats,
    dispatch: DispatchRunStats,
    /// Monomorphic inline caches, one slot per through-`cp` call site
    /// (indexed by the op's `ic` field). Carries the speculative state
    /// machine when `speculate` is on; purely observational otherwise.
    ic_sites: Vec<IcSite>,
    /// Speculative IC dispatch: act on monomorphic caches (guarded
    /// fast path to the cached callee) instead of only measuring them.
    speculate: bool,
    shadow: Vec<Activation>,
    // Flat per-class tallies for the hot loop; folded into the
    // `RunStats` hash maps once, at exit. The decoded engine observes
    // the same events as the classic one — it just counts them in
    // arrays instead of paying a hash per stack reference.
    stack_loads_by_class: [u64; SlotClass::ALL.len()],
    stack_stores_by_class: [u64; SlotClass::ALL.len()],
    activations_by_class: [u64; ActivationClass::ALL.len()],
}

type Result<T> = std::result::Result<T, VmError>;

impl<'a> Machine<'a> {
    /// Creates a machine for `program` with the given cost model,
    /// decoding it on the spot. When the same program will run more
    /// than once, decode it yourself and use [`Machine::from_decoded`].
    pub fn new(program: &'a VmProgram, cost: CostModel) -> Machine<'a> {
        Machine::with_code(Code::Owned(Box::new(DecodedProgram::decode(program))), cost)
    }

    /// Creates a machine over an already-decoded program.
    pub fn from_decoded(program: &'a DecodedProgram, cost: CostModel) -> Machine<'a> {
        Machine::with_code(Code::Borrowed(program), cost)
    }

    fn with_code(code: Code<'a>, cost: CostModel) -> Machine<'a> {
        let prog = match &code {
            Code::Owned(p) => p.as_ref(),
            Code::Borrowed(p) => p,
            Code::Taken => unreachable!("machine constructed without code"),
        };
        let entry = prog.entry;
        let pc = prog.funcs[entry.index()].base;
        let constants = prog.constants.iter().map(const_to_value).collect();
        let n_globals = prog.n_globals as usize;
        let n_ic_sites = prog.n_ic_sites as usize;
        Machine {
            code,
            cost,
            max_instructions: 2_000_000_000,
            poison_frames: false,
            trace: false,
            // Registers start as benign garbage (hardware registers
            // always hold *something*); uninitialized-read detection
            // applies to poisoned stack slots only.
            regs: std::array::from_fn(|_| Value::Void),
            ready: [0; NUM_REGS],
            stack: Vec::new(),
            fp: 0,
            func: entry,
            pc,
            constants,
            globals: vec![Value::Void; n_globals],
            output: String::new(),
            stats: RunStats::default(),
            dispatch: DispatchRunStats::default(),
            ic_sites: vec![IcSite::default(); n_ic_sites],
            speculate: true,
            shadow: Vec::new(),
            stack_loads_by_class: [0; SlotClass::ALL.len()],
            stack_stores_by_class: [0; SlotClass::ALL.len()],
            activations_by_class: [0; ActivationClass::ALL.len()],
        }
    }

    /// Sets the instruction budget.
    #[must_use]
    pub fn with_fuel(mut self, max_instructions: u64) -> Machine<'a> {
        self.max_instructions = max_instructions;
        self
    }

    /// Enables frame poisoning: every callee frame starts as `Uninit`
    /// so reads of never-written slots fail loudly (used in tests).
    #[must_use]
    pub fn with_poison(mut self, poison: bool) -> Machine<'a> {
        self.poison_frames = poison;
        self
    }

    /// Enables call-event tracing: every call, tail call, and return
    /// logs a `trace:` line to stderr (the `lesgsc --trace` backend).
    #[must_use]
    pub fn with_trace(mut self, trace: bool) -> Machine<'a> {
        self.trace = trace;
        self
    }

    /// Toggles speculative IC dispatch (on by default). Off reverts
    /// through-`cp` call sites to PR-era purely observational caches:
    /// same `vm.dispatch.ic.*` stream, all `vm.dispatch.spec.*`
    /// counters zero. The observable [`RunStats`] stream is identical
    /// either way — speculation only skips the dispatch tier's own
    /// target re-resolution, never a simulated event.
    #[must_use]
    pub fn with_speculation(mut self, speculate: bool) -> Machine<'a> {
        self.speculate = speculate;
        self
    }

    #[inline]
    fn base(prog: &DecodedProgram, f: FuncId) -> u32 {
        prog.funcs[f.index()].base
    }

    /// Builds an error located at the given absolute pc, reported in
    /// the same function-relative coordinates as the classic engine.
    #[cold]
    fn err(&self, prog: &DecodedProgram, pc: u32, message: impl Into<String>) -> VmError {
        let info = &prog.funcs[self.func.index()];
        VmError {
            message: message.into(),
            at: Some((info.name.clone(), pc.saturating_sub(info.base))),
        }
    }

    /// The stall half of [`Machine::read`]: waits until the register's
    /// in-flight load completes, with the same cycle accounting. Fast
    /// paths stall first and then peek the register in place instead of
    /// cloning it; a stall is idempotent, so a fallback to `read` after
    /// a peek observes nothing extra.
    #[inline]
    fn stall_on(&mut self, r: Reg) {
        if self.ready[r.index()] > self.stats.cycles {
            self.stats.stall_cycles += self.ready[r.index()] - self.stats.cycles;
            self.stats.cycles = self.ready[r.index()];
        }
    }

    #[inline]
    fn read(&mut self, r: Reg) -> Value {
        self.stall_on(r);
        self.regs[r.index()].clone()
    }

    #[inline]
    fn write(&mut self, r: Reg, v: Value) {
        self.regs[r.index()] = v;
        self.ready[r.index()] = self.stats.cycles;
    }

    #[inline]
    fn write_loaded(&mut self, r: Reg, v: Value) {
        self.regs[r.index()] = v;
        self.ready[r.index()] = self.stats.cycles + self.cost.load_latency;
    }

    #[inline]
    fn slot_index(&self, slot: u32) -> usize {
        (self.fp + slot) as usize
    }

    fn stack_store(&mut self, slot: u32, v: Value) {
        let idx = self.slot_index(slot);
        if idx >= self.stack.len() {
            self.stack.resize(idx + 1, Value::Uninit);
        }
        self.stack[idx] = v;
    }

    fn stack_load(&mut self, prog: &DecodedProgram, pc: u32, slot: u32) -> Result<Value> {
        let idx = self.slot_index(slot);
        match self.stack.get(idx) {
            Some(Value::Uninit) | None => {
                Err(self.err(prog, pc, format!("read of uninitialized stack slot {slot}")))
            }
            Some(v) => Ok(v.clone()),
        }
    }

    fn enter_activation(&mut self, prog: &DecodedProgram, callee: FuncId) {
        if let Some(top) = self.shadow.last_mut() {
            top.made_call = true;
        }
        self.stats.calls += 1;
        if self.trace {
            eprintln!(
                "trace: call {} depth={}",
                prog.funcs[callee.index()].name,
                self.shadow.len()
            );
        }
        self.shadow.push(Activation {
            func: callee,
            made_call: false,
        });
    }

    fn classify(prog: &DecodedProgram, a: &Activation) -> ActivationClass {
        let f = &prog.funcs[a.func.index()];
        match (a.made_call, f.syntactic_leaf, f.call_inevitable) {
            (false, true, _) => ActivationClass::SyntacticLeaf,
            (false, false, _) => ActivationClass::NonSyntacticLeaf,
            (true, _, true) => ActivationClass::SyntacticInternal,
            (true, _, false) => ActivationClass::NonSyntacticInternal,
        }
    }

    fn leave_activation(&mut self, prog: &DecodedProgram) {
        if let Some(a) = self.shadow.pop() {
            let class = Machine::classify(prog, &a);
            if self.trace {
                eprintln!(
                    "trace: return {} class={} depth={}",
                    prog.funcs[a.func.index()].name,
                    class.key(),
                    self.shadow.len()
                );
            }
            self.activations_by_class[class as usize] += 1;
        }
    }

    /// Folds the flat per-class tallies into the `RunStats` hash maps.
    /// Only non-zero classes are inserted, matching the classic
    /// engine's `entry(..).or_insert(0)` behaviour key for key.
    fn fold_class_counters(&mut self) {
        for (i, class) in SlotClass::ALL.iter().enumerate() {
            if self.stack_loads_by_class[i] > 0 {
                *self.stats.stack_loads.entry(*class).or_insert(0) += self.stack_loads_by_class[i];
            }
            if self.stack_stores_by_class[i] > 0 {
                *self.stats.stack_stores.entry(*class).or_insert(0) +=
                    self.stack_stores_by_class[i];
            }
        }
        for (i, class) in ActivationClass::ALL.iter().enumerate() {
            if self.activations_by_class[i] > 0 {
                *self.stats.activations.entry(*class).or_insert(0) += self.activations_by_class[i];
            }
        }
    }

    /// Resolves a through-`cp` call: reads (and possibly stalls on)
    /// `cp` *before* the return address is written, exactly as the
    /// classic engine's `call_target` did.
    fn closure_callee(&mut self, prog: &DecodedProgram, pc: u32) -> Result<FuncId> {
        self.stall_on(CP);
        match &self.regs[CP.index()] {
            Value::Closure(c) => Ok(c.func),
            other => Err(self.err(
                prog,
                pc,
                format!("call of non-procedure `{}`", other.write_string()),
            )),
        }
    }

    /// Consults and updates the monomorphic inline cache of a
    /// through-`cp` call site (the observational tier). The simulated
    /// machine still resolves the callee through `cp`, so the cache
    /// changes no observable behaviour — it measures per-site callee
    /// stability, i.e. exactly the hit rate a native inline cache
    /// would achieve.
    #[inline]
    fn ic_probe(&mut self, prog: &DecodedProgram, ic: u32, callee: FuncId) {
        let site = &mut self.ic_sites[ic as usize];
        match site.callee {
            Some(f) if f == callee => self.dispatch.ic_hits += 1,
            _ => {
                self.dispatch.ic_misses += 1;
                site.callee = Some(callee);
                site.base = Machine::base(prog, callee);
            }
        }
    }

    /// Resolves a through-`cp` call site to `(callee, decoded base pc)`
    /// with full inline-cache accounting — the speculative tier.
    ///
    /// With speculation on and the site not demoted, a monomorphic hit
    /// takes the fast path: a closure-identity guard against the cached
    /// callee (after the same `cp` stall the slow path pays), and on a
    /// match the dispatch jumps straight to the cached decoded base,
    /// skipping [`Machine::closure_callee`]'s re-resolution and the
    /// function-table lookup. A guard failure falls back to the slow
    /// path, re-caches, and after [`SPEC_DEMOTE_AFTER`] failures
    /// demotes the site to polymorphic for the rest of the run.
    ///
    /// The `vm.dispatch.ic.{hits,misses}` stream is byte-identical in
    /// every mode — fast-path guard hit ≡ observational hit, guard
    /// failure ≡ re-caching miss, cold first call ≡ cold miss — so
    /// toggling speculation moves work, never measurement.
    #[inline]
    fn closure_call_target(
        &mut self,
        prog: &DecodedProgram,
        pc: u32,
        ic: u32,
    ) -> Result<(FuncId, u32)> {
        if self.speculate {
            let site = self.ic_sites[ic as usize];
            if let (Some(expected), false) = (site.callee, site.demoted) {
                // The guard: stall on `cp` exactly as the slow path
                // would, then compare closure identity in place.
                self.stall_on(CP);
                if matches!(&self.regs[CP.index()], Value::Closure(c) if c.func == expected) {
                    self.dispatch.ic_hits += 1;
                    self.dispatch.spec_fast_hits += 1;
                    return Ok((expected, site.base));
                }
                // Guard failure: slow path (which owns the
                // non-procedure error), re-cache, maybe demote.
                let callee = self.closure_callee(prog, pc)?;
                self.dispatch.ic_misses += 1;
                self.dispatch.spec_guard_fails += 1;
                let base = Machine::base(prog, callee);
                let site = &mut self.ic_sites[ic as usize];
                site.callee = Some(callee);
                site.base = base;
                site.fails += 1;
                if site.fails >= SPEC_DEMOTE_AFTER {
                    site.demoted = true;
                    self.dispatch.spec_demotions += 1;
                }
                return Ok((callee, base));
            }
            if !site.demoted {
                // Cold site: install the first guess. A plain miss —
                // there was no guess to fail.
                let callee = self.closure_callee(prog, pc)?;
                self.dispatch.ic_misses += 1;
                let base = Machine::base(prog, callee);
                let site = &mut self.ic_sites[ic as usize];
                site.callee = Some(callee);
                site.base = base;
                return Ok((callee, base));
            }
        }
        // Demoted or speculation off: plain dispatch, observational
        // probe only.
        let callee = self.closure_callee(prog, pc)?;
        self.ic_probe(prog, ic, callee);
        Ok((callee, Machine::base(prog, callee)))
    }

    fn poison(&mut self, prog: &DecodedProgram, func: FuncId) {
        if !self.poison_frames {
            return;
        }
        let f = &prog.funcs[func.index()];
        // Skip the incoming-parameter region: the caller wrote the
        // stack-passed arguments there just before the call.
        let lo = (self.fp + f.n_incoming) as usize;
        let hi = (self.fp + f.frame_size) as usize;
        if hi > self.stack.len() {
            self.stack.resize(hi, Value::Uninit);
        }
        for v in &mut self.stack[lo..hi] {
            *v = Value::Uninit;
        }
    }

    #[inline]
    fn imm_value(imm: Imm) -> Value {
        match imm {
            Imm::Fixnum(n) => Value::Fixnum(n),
            Imm::Bool(b) => Value::Bool(b),
            Imm::Char(c) => Value::Char(c),
            Imm::Nil => Value::Nil,
            Imm::Void => Value::Void,
        }
    }

    /// Fast paths for the hottest primitives: operands are peeked in
    /// place (after the same stall accounting `read` performs) instead
    /// of being cloned into the shared evaluator's argument buffer.
    /// Returns `None` — having changed nothing but idempotent stall
    /// state — whenever the operands don't match the fast shape (wrong
    /// type, overflow, bad index), so the shared [`eval_prim`] stays
    /// the single owner of error semantics and the full catalogue.
    #[inline]
    fn try_fast_prim(&mut self, op: Prim, args: &PrimArgs) -> Option<(Value, bool)> {
        use Prim::*;
        let a = args.as_slice();
        for r in a {
            self.stall_on(*r);
        }
        macro_rules! fix {
            ($i:expr) => {
                match &self.regs[a[$i].index()] {
                    Value::Fixnum(n) => *n,
                    _ => return None,
                }
            };
        }
        let result = match op {
            Add => Value::Fixnum(fix!(0).checked_add(fix!(1))?),
            Sub => Value::Fixnum(fix!(0).checked_sub(fix!(1))?),
            Mul => Value::Fixnum(fix!(0).checked_mul(fix!(1))?),
            Add1 => Value::Fixnum(fix!(0).checked_add(1)?),
            Sub1 => Value::Fixnum(fix!(0).checked_sub(1)?),
            NumEq => Value::Bool(fix!(0) == fix!(1)),
            Lt => Value::Bool(fix!(0) < fix!(1)),
            Le => Value::Bool(fix!(0) <= fix!(1)),
            Gt => Value::Bool(fix!(0) > fix!(1)),
            Ge => Value::Bool(fix!(0) >= fix!(1)),
            IsZero => Value::Bool(fix!(0) == 0),
            Not => Value::Bool(!self.regs[a[0].index()].is_truthy()),
            IsPair => Value::Bool(matches!(self.regs[a[0].index()], Value::Pair(_))),
            IsNull => Value::Bool(matches!(self.regs[a[0].index()], Value::Nil)),
            IsEq | IsEqv => Value::Bool(self.regs[a[0].index()].eq_ptr(&self.regs[a[1].index()])),
            Car | Cdr => match &self.regs[a[0].index()] {
                Value::Pair(p) => {
                    let p = p.borrow();
                    let v = if op == Car { p.0.clone() } else { p.1.clone() };
                    return Some((v, true));
                }
                _ => return None,
            },
            VectorRef => match &self.regs[a[0].index()] {
                Value::Vector(v) => {
                    let i = fix!(1);
                    let v = v.borrow();
                    let idx = usize::try_from(i).ok().filter(|&i| i < v.len())?;
                    return Some((v[idx].clone(), true));
                }
                _ => return None,
            },
            VectorSet => {
                let i = fix!(1);
                let x = match &self.regs[a[0].index()] {
                    Value::Vector(v) => {
                        let len = v.borrow().len();
                        usize::try_from(i).ok().filter(|&i| i < len)?;
                        self.regs[a[2].index()].clone()
                    }
                    _ => return None,
                };
                match &self.regs[a[0].index()] {
                    Value::Vector(v) => v.borrow_mut()[i as usize] = x,
                    _ => unreachable!(),
                }
                Value::Void
            }
            _ => return None,
        };
        Some((result, false))
    }

    #[inline]
    fn exec_prim(
        &mut self,
        prog: &DecodedProgram,
        pc: u32,
        op: Prim,
        dst: Reg,
        args: &PrimArgs,
    ) -> Result<()> {
        let (result, from_memory) = match self.try_fast_prim(op, args) {
            Some(r) => r,
            None => {
                let mut vals = ArgVals::new();
                for r in args.as_slice() {
                    vals.push(self.read(*r));
                }
                eval_prim(op, &mut vals, &mut self.output).map_err(|m| self.err(prog, pc, m))?
            }
        };
        if from_memory {
            self.write_loaded(dst, result);
        } else {
            self.write(dst, result);
        }
        if op.touches_memory() {
            self.stats.heap_ops += 1;
            self.stats.cycles += self.cost.mem_cost - self.cost.instr_cost;
        }
        Ok(())
    }

    #[inline]
    fn exec_branch(
        &mut self,
        pc: &mut u32,
        src: Reg,
        target: u32,
        likely: Option<bool>,
        on_true: bool,
    ) {
        self.stats.branches += 1;
        // Peek the condition in place — truthiness needs no clone.
        self.stall_on(src);
        let taken = self.regs[src.index()].is_truthy() == on_true;
        // Default static prediction: fallthrough (a taken branch under
        // a fallthrough prediction mispredicts, and vice versa).
        let predicted_fallthrough = likely.unwrap_or(true);
        if predicted_fallthrough == taken {
            self.stats.mispredicts += 1;
            self.stats.cycles += self.cost.mispredict_penalty;
        }
        if taken {
            *pc = target;
        }
    }

    #[inline]
    fn do_call(&mut self, prog: &DecodedProgram, pc: &mut u32, callee: FuncId, frame_advance: u32) {
        let base = Machine::base(prog, callee);
        self.do_call_at(prog, pc, callee, base, frame_advance);
    }

    /// [`Machine::do_call`] with the callee's decoded base already in
    /// hand — the speculative fast path supplies its cached base here
    /// instead of re-resolving through the function table.
    #[inline]
    fn do_call_at(
        &mut self,
        prog: &DecodedProgram,
        pc: &mut u32,
        callee: FuncId,
        base: u32,
        frame_advance: u32,
    ) {
        // Return addresses stay function-relative so the value is
        // engine-independent (differential tests compare rendered
        // values, and save slots hold these).
        let ra = RetAddr {
            func: self.func,
            pc: *pc - Machine::base(prog, self.func),
            fp: self.fp,
        };
        self.write(RET, Value::RetAddr(ra));
        self.fp += frame_advance;
        self.func = callee;
        *pc = base;
        self.enter_activation(prog, callee);
        self.poison(prog, callee);
    }

    #[inline]
    fn do_tail_call(&mut self, prog: &DecodedProgram, pc: &mut u32, callee: FuncId) {
        let base = Machine::base(prog, callee);
        self.do_tail_call_at(prog, pc, callee, base);
    }

    /// [`Machine::do_tail_call`] with the callee's decoded base
    /// already in hand (the speculative fast path).
    #[inline]
    fn do_tail_call_at(&mut self, prog: &DecodedProgram, pc: &mut u32, callee: FuncId, base: u32) {
        self.stats.tail_calls += 1;
        if self.trace {
            eprintln!(
                "trace: tail-call {} depth={}",
                prog.funcs[callee.index()].name,
                self.shadow.len()
            );
        }
        self.func = callee;
        *pc = base;
        // A tail call is a jump: same activation, same fp.
    }

    /// Replays the loop-top accounting between the two halves of a
    /// fused op: fuel check, instruction/cycle counts, pc advance. This
    /// is what makes a fused pair indistinguishable from the two plain
    /// ops in every counter and error location.
    #[inline]
    fn fetch_second_half(&mut self, prog: &DecodedProgram, pc: &mut u32) -> Result<()> {
        if self.stats.instructions >= self.max_instructions {
            return Err(self.err(prog, *pc, FUEL_MESSAGE));
        }
        self.stats.instructions += 1;
        self.stats.cycles += self.cost.instr_cost;
        *pc += 1;
        Ok(())
    }

    /// Runs the program to completion.
    ///
    /// # Errors
    ///
    /// Type errors, arity/stack violations, `(error …)`, or exceeding
    /// the instruction budget.
    pub fn run(mut self) -> Result<VmOutcome> {
        // Move the program out of `self` so the dispatch loop holds it
        // by direct reference — no per-access enum match, and the op
        // array pointer stays hoisted across the whole loop.
        let code = std::mem::replace(&mut self.code, Code::Taken);
        let mut no_profile = Vec::new();
        match &code {
            Code::Owned(p) => self.run_on::<false>(p, &mut no_profile),
            Code::Borrowed(p) => self.run_on::<false>(p, &mut no_profile),
            Code::Taken => unreachable!("machine run twice"),
        }
    }

    /// Runs the program while counting executions of every decoded
    /// slot. Returns the outcome plus one counter per op-array slot
    /// (`profile[pc]` = times the op at `pc` was dispatched). This is
    /// the `lesgs-fusegen` miner's data source: profiling an *unfused*
    /// decoding gives exact dynamic adjacent-pair frequencies, because
    /// executing a fallthrough op at `pc` implies the op at `pc + 1`
    /// dispatches next. The profiled loop is a separate `const`
    /// monomorphization, so [`Machine::run`] pays nothing for it.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Machine::run`].
    pub fn run_profiled(mut self) -> Result<(VmOutcome, Vec<u64>)> {
        let code = std::mem::replace(&mut self.code, Code::Taken);
        let prog: &DecodedProgram = match &code {
            Code::Owned(p) => p,
            Code::Borrowed(p) => p,
            Code::Taken => unreachable!("machine run twice"),
        };
        let mut profile = vec![0u64; prog.ops.len()];
        let out = self.run_on::<true>(prog, &mut profile)?;
        Ok((out, profile))
    }

    fn run_on<const PROFILE: bool>(
        &mut self,
        prog: &DecodedProgram,
        profile: &mut [u64],
    ) -> Result<VmOutcome> {
        let ops: &[DecodedOp] = &prog.ops;
        // The pc lives in a local so the hottest state of the loop can
        // stay in a register; helpers that redirect control flow take
        // `&mut u32`.
        let mut pc = self.pc;
        // Bootstrap: the entry function's frame starts at 0.
        self.shadow.push(Activation {
            func: self.func,
            made_call: false,
        });
        self.poison(prog, self.func);
        loop {
            if self.stats.instructions >= self.max_instructions {
                return Err(self.err(prog, pc, FUEL_MESSAGE));
            }
            self.stats.instructions += 1;
            self.stats.cycles += self.cost.instr_cost;
            if PROFILE {
                profile[pc as usize] += 1;
            }
            // In range by construction: every function ends in a
            // FuncEnd sentinel and all targets are clamped into its
            // own span, so the pc cannot run off the array.
            let op = ops[pc as usize];
            pc += 1;
            match op {
                DecodedOp::Imm { dst, imm } => {
                    self.write(dst, Machine::imm_value(imm));
                }
                DecodedOp::Const { dst, idx } => {
                    let v = self.constants[idx as usize].clone();
                    self.write(dst, v);
                }
                DecodedOp::Mov { dst, src } => {
                    let v = self.read(src);
                    self.write(dst, v);
                }
                DecodedOp::StackLoad { dst, slot, class } => {
                    self.stats.cycles += self.cost.mem_cost - self.cost.instr_cost;
                    self.stack_loads_by_class[class as usize] += 1;
                    let v = self.stack_load(prog, pc, slot)?;
                    self.write_loaded(dst, v);
                }
                DecodedOp::StackStore { slot, src, class } => {
                    self.stats.cycles += self.cost.mem_cost - self.cost.instr_cost;
                    self.stack_stores_by_class[class as usize] += 1;
                    let v = self.read(src);
                    self.stack_store(slot, v);
                }
                DecodedOp::Prim { op, dst, args } => {
                    self.exec_prim(prog, pc, op, dst, &args)?;
                }
                DecodedOp::Jump { target } => pc = target,
                DecodedOp::Branch {
                    src,
                    target,
                    likely,
                    on_true,
                } => self.exec_branch(&mut pc, src, target, likely, on_true),
                DecodedOp::CallStatic {
                    callee,
                    frame_advance,
                } => self.do_call(prog, &mut pc, callee, frame_advance),
                DecodedOp::CallClosure { frame_advance, ic } => {
                    let (callee, base) = self.closure_call_target(prog, pc, ic)?;
                    self.do_call_at(prog, &mut pc, callee, base, frame_advance);
                }
                DecodedOp::TailCallStatic { callee } => self.do_tail_call(prog, &mut pc, callee),
                DecodedOp::TailCallClosure { ic } => {
                    let (callee, base) = self.closure_call_target(prog, pc, ic)?;
                    self.do_tail_call_at(prog, &mut pc, callee, base);
                }
                DecodedOp::Return => match self.read(RET) {
                    Value::RetAddr(ra) => {
                        self.leave_activation(prog);
                        self.func = ra.func;
                        pc = Machine::base(prog, ra.func) + ra.pc;
                        self.fp = ra.fp;
                    }
                    other => {
                        return Err(self.err(
                            prog,
                            pc,
                            format!("return through non-address `{}`", other.write_string()),
                        ))
                    }
                },
                DecodedOp::AllocClosure { dst, func, n_free } => {
                    self.stats.heap_ops += 1;
                    self.stats.closures_allocated += 1;
                    self.stats.cycles += self.cost.mem_cost - self.cost.instr_cost;
                    let clo = VmClosure {
                        func,
                        free: RefCell::new(vec![Value::Void; n_free as usize]),
                    };
                    self.write(dst, Value::Closure(Rc::new(clo)));
                }
                DecodedOp::ClosureSlotSet { clo, index, src } => {
                    self.stats.heap_ops += 1;
                    self.stats.cycles += self.cost.mem_cost - self.cost.instr_cost;
                    let v = self.read(src);
                    self.stall_on(clo);
                    match &self.regs[clo.index()] {
                        Value::Closure(c) => {
                            c.free.borrow_mut()[index as usize] = v;
                        }
                        other => {
                            return Err(self.err(
                                prog,
                                pc,
                                format!("closure-set! on `{}`", other.write_string()),
                            ))
                        }
                    }
                }
                DecodedOp::LoadFree { dst, index } => {
                    self.stats.heap_ops += 1;
                    self.stats.cycles += self.cost.mem_cost - self.cost.instr_cost;
                    self.stall_on(CP);
                    let v = match &self.regs[CP.index()] {
                        Value::Closure(c) => c.free.borrow()[index as usize].clone(),
                        other => {
                            return Err(self.err(
                                prog,
                                pc,
                                format!(
                                    "free-variable reference through `{}`",
                                    other.write_string()
                                ),
                            ))
                        }
                    };
                    self.write_loaded(dst, v);
                }
                DecodedOp::LoadGlobal { dst, index } => {
                    self.stats.heap_ops += 1;
                    self.stats.cycles += self.cost.mem_cost - self.cost.instr_cost;
                    let v = self
                        .globals
                        .get(index as usize)
                        .cloned()
                        .ok_or_else(|| self.err(prog, pc, "global index out of range"))?;
                    self.write_loaded(dst, v);
                }
                DecodedOp::StoreGlobal { index, src } => {
                    self.stats.heap_ops += 1;
                    self.stats.cycles += self.cost.mem_cost - self.cost.instr_cost;
                    let v = self.read(src);
                    match self.globals.get_mut(index as usize) {
                        Some(slot) => *slot = v,
                        None => return Err(self.err(prog, pc, "global index out of range")),
                    }
                }
                DecodedOp::Swap { a, b } => {
                    self.stats.swaps += 1;
                    let va = self.read(a);
                    let vb = self.read(b);
                    self.write(a, vb);
                    self.write(b, va);
                }
                DecodedOp::Permi { args } => {
                    self.stats.permis += 1;
                    let regs = args.regs();
                    let perm = args.perm();
                    let olds: Vec<Value> = regs.iter().map(|r| self.read(*r)).collect();
                    for (i, r) in regs.iter().enumerate() {
                        self.write(*r, olds[perm[i] as usize].clone());
                    }
                }
                DecodedOp::Halt => {
                    while !self.shadow.is_empty() {
                        self.leave_activation(prog);
                    }
                    self.fold_class_counters();
                    let value = self.read(RV).write_string();
                    return Ok(VmOutcome {
                        value,
                        output: std::mem::take(&mut self.output),
                        stats: std::mem::take(&mut self.stats),
                        dispatch: std::mem::take(&mut self.dispatch),
                    });
                }
                DecodedOp::CmpBranch {
                    op,
                    dst,
                    args,
                    src,
                    target,
                    likely,
                    on_true,
                } => {
                    self.dispatch.fused_exec[FusionKind::CmpBranch as usize] += 1;
                    self.exec_prim(prog, pc, op, dst, &args)?;
                    self.fetch_second_half(prog, &mut pc)?;
                    self.exec_branch(&mut pc, src, target, likely, on_true);
                }
                DecodedOp::MovMov {
                    dst1,
                    src1,
                    dst2,
                    src2,
                } => {
                    self.dispatch.fused_exec[FusionKind::MovMov as usize] += 1;
                    let v = self.read(src1);
                    self.write(dst1, v);
                    self.fetch_second_half(prog, &mut pc)?;
                    let v = self.read(src2);
                    self.write(dst2, v);
                }
                DecodedOp::ImmImm {
                    dst1,
                    imm1,
                    dst2,
                    imm2,
                } => {
                    self.dispatch.fused_exec[FusionKind::ImmImm as usize] += 1;
                    self.write(dst1, Machine::imm_value(imm1));
                    self.fetch_second_half(prog, &mut pc)?;
                    self.write(dst2, Machine::imm_value(imm2));
                }
                DecodedOp::ImmMov {
                    dst1,
                    imm1,
                    dst2,
                    src2,
                } => {
                    self.dispatch.fused_exec[FusionKind::ImmMov as usize] += 1;
                    self.write(dst1, Machine::imm_value(imm1));
                    self.fetch_second_half(prog, &mut pc)?;
                    let v = self.read(src2);
                    self.write(dst2, v);
                }
                DecodedOp::MovImm {
                    dst1,
                    src1,
                    dst2,
                    imm2,
                } => {
                    self.dispatch.fused_exec[FusionKind::MovImm as usize] += 1;
                    let v = self.read(src1);
                    self.write(dst1, v);
                    self.fetch_second_half(prog, &mut pc)?;
                    self.write(dst2, Machine::imm_value(imm2));
                }
                DecodedOp::LoadLoad {
                    dst1,
                    slot1,
                    class1,
                    dst2,
                    slot2,
                    class2,
                } => {
                    self.dispatch.fused_exec[FusionKind::LoadLoad as usize] += 1;
                    self.stats.cycles += self.cost.mem_cost - self.cost.instr_cost;
                    self.stack_loads_by_class[class1 as usize] += 1;
                    let v = self.stack_load(prog, pc, slot1)?;
                    self.write_loaded(dst1, v);
                    self.fetch_second_half(prog, &mut pc)?;
                    self.stats.cycles += self.cost.mem_cost - self.cost.instr_cost;
                    self.stack_loads_by_class[class2 as usize] += 1;
                    let v = self.stack_load(prog, pc, slot2)?;
                    self.write_loaded(dst2, v);
                }
                DecodedOp::StoreStore {
                    slot1,
                    src1,
                    class1,
                    slot2,
                    src2,
                    class2,
                } => {
                    self.dispatch.fused_exec[FusionKind::StoreStore as usize] += 1;
                    self.stats.cycles += self.cost.mem_cost - self.cost.instr_cost;
                    self.stack_stores_by_class[class1 as usize] += 1;
                    let v = self.read(src1);
                    self.stack_store(slot1, v);
                    self.fetch_second_half(prog, &mut pc)?;
                    self.stats.cycles += self.cost.mem_cost - self.cost.instr_cost;
                    self.stack_stores_by_class[class2 as usize] += 1;
                    let v = self.read(src2);
                    self.stack_store(slot2, v);
                }
                DecodedOp::PrimStoreMov {
                    op,
                    dst1,
                    args,
                    slot2,
                    src2,
                    class2,
                    dst3,
                    src3,
                } => {
                    self.dispatch.fused_exec3[TripleKind::PrimStoreMov as usize] += 1;
                    self.exec_prim(prog, pc, op, dst1, &args)?;
                    self.fetch_second_half(prog, &mut pc)?;
                    self.stats.cycles += self.cost.mem_cost - self.cost.instr_cost;
                    self.stack_stores_by_class[class2 as usize] += 1;
                    let v = self.read(src2);
                    self.stack_store(slot2, v);
                    self.fetch_second_half(prog, &mut pc)?;
                    let v = self.read(src3);
                    self.write(dst3, v);
                }
                DecodedOp::StoreMovPrim {
                    slot1,
                    src1,
                    class1,
                    dst2,
                    src2,
                    op,
                    dst3,
                    args,
                } => {
                    self.dispatch.fused_exec3[TripleKind::StoreMovPrim as usize] += 1;
                    self.stats.cycles += self.cost.mem_cost - self.cost.instr_cost;
                    self.stack_stores_by_class[class1 as usize] += 1;
                    let v = self.read(src1);
                    self.stack_store(slot1, v);
                    self.fetch_second_half(prog, &mut pc)?;
                    let v = self.read(src2);
                    self.write(dst2, v);
                    self.fetch_second_half(prog, &mut pc)?;
                    self.exec_prim(prog, pc, op, dst3, &args)?;
                }
                DecodedOp::MovCmpBranch {
                    dst1,
                    src1,
                    op,
                    dst2,
                    args,
                    src3,
                    target,
                    likely,
                    on_true,
                } => {
                    self.dispatch.fused_exec3[TripleKind::MovCmpBranch as usize] += 1;
                    let v = self.read(src1);
                    self.write(dst1, v);
                    self.fetch_second_half(prog, &mut pc)?;
                    self.exec_prim(prog, pc, op, dst2, &args)?;
                    self.fetch_second_half(prog, &mut pc)?;
                    self.exec_branch(&mut pc, src3, target, likely, on_true);
                }
                DecodedOp::MovImmPrim {
                    dst1,
                    src1,
                    dst2,
                    imm2,
                    op,
                    dst3,
                    args,
                } => {
                    self.dispatch.fused_exec3[TripleKind::MovImmPrim as usize] += 1;
                    let v = self.read(src1);
                    self.write(dst1, v);
                    self.fetch_second_half(prog, &mut pc)?;
                    self.write(dst2, Machine::imm_value(imm2));
                    self.fetch_second_half(prog, &mut pc)?;
                    self.exec_prim(prog, pc, op, dst3, &args)?;
                }
                DecodedOp::LoadLoadLoad {
                    dst1,
                    slot1,
                    class1,
                    dst2,
                    slot2,
                    class2,
                    dst3,
                    slot3,
                    class3,
                } => {
                    self.dispatch.fused_exec3[TripleKind::LoadLoadLoad as usize] += 1;
                    self.stats.cycles += self.cost.mem_cost - self.cost.instr_cost;
                    self.stack_loads_by_class[class1 as usize] += 1;
                    let v = self.stack_load(prog, pc, slot1)?;
                    self.write_loaded(dst1, v);
                    self.fetch_second_half(prog, &mut pc)?;
                    self.stats.cycles += self.cost.mem_cost - self.cost.instr_cost;
                    self.stack_loads_by_class[class2 as usize] += 1;
                    let v = self.stack_load(prog, pc, slot2)?;
                    self.write_loaded(dst2, v);
                    self.fetch_second_half(prog, &mut pc)?;
                    self.stats.cycles += self.cost.mem_cost - self.cost.instr_cost;
                    self.stack_loads_by_class[class3 as usize] += 1;
                    let v = self.stack_load(prog, pc, slot3)?;
                    self.write_loaded(dst3, v);
                }
                DecodedOp::StoreStoreStore {
                    slot1,
                    src1,
                    class1,
                    slot2,
                    src2,
                    class2,
                    slot3,
                    src3,
                    class3,
                } => {
                    self.dispatch.fused_exec3[TripleKind::StoreStoreStore as usize] += 1;
                    self.stats.cycles += self.cost.mem_cost - self.cost.instr_cost;
                    self.stack_stores_by_class[class1 as usize] += 1;
                    let v = self.read(src1);
                    self.stack_store(slot1, v);
                    self.fetch_second_half(prog, &mut pc)?;
                    self.stats.cycles += self.cost.mem_cost - self.cost.instr_cost;
                    self.stack_stores_by_class[class2 as usize] += 1;
                    let v = self.read(src2);
                    self.stack_store(slot2, v);
                    self.fetch_second_half(prog, &mut pc)?;
                    self.stats.cycles += self.cost.mem_cost - self.cost.instr_cost;
                    self.stack_stores_by_class[class3 as usize] += 1;
                    let v = self.read(src3);
                    self.stack_store(slot3, v);
                }
                DecodedOp::LoadLoadStore {
                    dst1,
                    slot1,
                    class1,
                    dst2,
                    slot2,
                    class2,
                    slot3,
                    src3,
                    class3,
                } => {
                    self.dispatch.fused_exec3[TripleKind::LoadLoadStore as usize] += 1;
                    self.stats.cycles += self.cost.mem_cost - self.cost.instr_cost;
                    self.stack_loads_by_class[class1 as usize] += 1;
                    let v = self.stack_load(prog, pc, slot1)?;
                    self.write_loaded(dst1, v);
                    self.fetch_second_half(prog, &mut pc)?;
                    self.stats.cycles += self.cost.mem_cost - self.cost.instr_cost;
                    self.stack_loads_by_class[class2 as usize] += 1;
                    let v = self.stack_load(prog, pc, slot2)?;
                    self.write_loaded(dst2, v);
                    self.fetch_second_half(prog, &mut pc)?;
                    self.stats.cycles += self.cost.mem_cost - self.cost.instr_cost;
                    self.stack_stores_by_class[class3 as usize] += 1;
                    let v = self.read(src3);
                    self.stack_store(slot3, v);
                }
                DecodedOp::ImmPrimMov {
                    dst1,
                    imm1,
                    op,
                    dst2,
                    args,
                    dst3,
                    src3,
                } => {
                    self.dispatch.fused_exec3[TripleKind::ImmPrimMov as usize] += 1;
                    self.write(dst1, Machine::imm_value(imm1));
                    self.fetch_second_half(prog, &mut pc)?;
                    self.exec_prim(prog, pc, op, dst2, &args)?;
                    self.fetch_second_half(prog, &mut pc)?;
                    let v = self.read(src3);
                    self.write(dst3, v);
                }
                DecodedOp::FuncEnd => {
                    // The classic engine reports the (unincremented)
                    // out-of-range pc; step back to match.
                    return Err(self.err(prog, pc - 1, "program counter out of range"));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classic::ClassicMachine;
    use crate::instr::{CallTarget, Instr, SlotClass};
    use crate::program::{VmFunc, VmProgram};
    use lesgs_ir::machine::{arg_reg, scratch_reg};

    /// Hand-assembled program: computes (2 + 3) * 7 via a helper call.
    fn tiny_program() -> VmProgram {
        let a0 = arg_reg(0);
        let a1 = arg_reg(1);
        let s0 = scratch_reg(0);
        // f0: add(a, b) -> rv
        let add = VmFunc {
            id: FuncId(0),
            name: "add".into(),
            code: vec![
                Instr::Prim {
                    op: Prim::Add,
                    dst: RV,
                    args: vec![a0, a1],
                },
                Instr::Return,
            ],
            frame_size: 0,
            n_incoming: 0,
            syntactic_leaf: true,
            call_inevitable: false,
        };
        // f1: main — saves ret, calls add(2,3), multiplies by 7.
        let main = VmFunc {
            id: FuncId(1),
            name: "main".into(),
            code: vec![
                Instr::StackStore {
                    slot: 0,
                    src: RET,
                    class: SlotClass::Save,
                },
                Instr::LoadImm {
                    dst: a0,
                    imm: Imm::Fixnum(2),
                },
                Instr::LoadImm {
                    dst: a1,
                    imm: Imm::Fixnum(3),
                },
                Instr::Call {
                    target: CallTarget::Func(FuncId(0)),
                    frame_advance: 1,
                },
                Instr::StackLoad {
                    dst: RET,
                    slot: 0,
                    class: SlotClass::Save,
                },
                Instr::LoadImm {
                    dst: s0,
                    imm: Imm::Fixnum(7),
                },
                Instr::Prim {
                    op: Prim::Mul,
                    dst: RV,
                    args: vec![RV, s0],
                },
                Instr::Return,
            ],
            frame_size: 1,
            n_incoming: 0,
            syntactic_leaf: false,
            call_inevitable: true,
        };
        // f2: entry — call main, halt.
        let entry = VmFunc {
            id: FuncId(2),
            name: "entry".into(),
            code: vec![
                Instr::Call {
                    target: CallTarget::Func(FuncId(1)),
                    frame_advance: 0,
                },
                Instr::Halt,
            ],
            frame_size: 0,
            n_incoming: 0,
            syntactic_leaf: false,
            call_inevitable: true,
        };
        VmProgram {
            funcs: vec![add, main, entry],
            entry: FuncId(2),
            constants: vec![],
            n_globals: 0,
        }
    }

    #[test]
    fn hand_assembled_program_runs() {
        let p = tiny_program();
        let out = Machine::new(&p, CostModel::alpha_like())
            .with_poison(true)
            .run()
            .unwrap();
        assert_eq!(out.value, "35");
        assert_eq!(out.stats.calls, 2);
        assert_eq!(out.stats.saves(), 1);
        assert_eq!(out.stats.restores(), 1);
        // add is a syntactic leaf activation.
        assert_eq!(out.stats.activations[&ActivationClass::SyntacticLeaf], 1);
    }

    #[test]
    fn stalls_accrue_on_immediate_use() {
        // Using a loaded value immediately stalls for the latency.
        let a0 = arg_reg(0);
        let f = VmFunc {
            id: FuncId(0),
            name: "entry".into(),
            code: vec![
                Instr::LoadImm {
                    dst: a0,
                    imm: Imm::Fixnum(5),
                },
                Instr::StackStore {
                    slot: 0,
                    src: a0,
                    class: SlotClass::Temp,
                },
                Instr::StackLoad {
                    dst: a0,
                    slot: 0,
                    class: SlotClass::Temp,
                },
                Instr::Prim {
                    op: Prim::Add1,
                    dst: RV,
                    args: vec![a0],
                },
                Instr::Halt,
            ],
            frame_size: 1,
            n_incoming: 0,
            syntactic_leaf: true,
            call_inevitable: false,
        };
        let p = VmProgram {
            funcs: vec![f],
            entry: FuncId(0),
            constants: vec![],
            n_globals: 0,
        };
        let out = Machine::new(&p, CostModel::alpha_like()).run().unwrap();
        assert_eq!(out.value, "6");
        assert!(out.stats.stall_cycles > 0, "{:?}", out.stats);
        let unit = Machine::new(&p, CostModel::unit()).run().unwrap();
        assert_eq!(unit.stats.stall_cycles, 0);
    }

    #[test]
    fn uninitialized_slot_read_fails() {
        let f = VmFunc {
            id: FuncId(0),
            name: "entry".into(),
            code: vec![
                Instr::StackLoad {
                    dst: RV,
                    slot: 3,
                    class: SlotClass::Spill,
                },
                Instr::Halt,
            ],
            frame_size: 4,
            n_incoming: 0,
            syntactic_leaf: true,
            call_inevitable: false,
        };
        let p = VmProgram {
            funcs: vec![f],
            entry: FuncId(0),
            constants: vec![],
            n_globals: 0,
        };
        let err = Machine::new(&p, CostModel::unit()).run().unwrap_err();
        assert!(err.message.contains("uninitialized"));
    }

    #[test]
    fn fuel_exhaustion() {
        let f = VmFunc {
            id: FuncId(0),
            name: "entry".into(),
            code: vec![Instr::Jump { target: 0 }],
            frame_size: 0,
            n_incoming: 0,
            syntactic_leaf: true,
            call_inevitable: false,
        };
        let p = VmProgram {
            funcs: vec![f],
            entry: FuncId(0),
            constants: vec![],
            n_globals: 0,
        };
        let err = Machine::new(&p, CostModel::unit())
            .with_fuel(100)
            .run()
            .unwrap_err();
        assert!(err.message.contains("budget"));
    }

    #[test]
    fn globals_load_and_store() {
        let a0 = arg_reg(0);
        let f = VmFunc {
            id: FuncId(0),
            name: "entry".into(),
            code: vec![
                Instr::LoadImm {
                    dst: a0,
                    imm: Imm::Fixnum(41),
                },
                Instr::StoreGlobal { index: 1, src: a0 },
                Instr::LoadGlobal { dst: RV, index: 1 },
                Instr::Prim {
                    op: Prim::Add1,
                    dst: RV,
                    args: vec![RV],
                },
                Instr::Halt,
            ],
            frame_size: 0,
            n_incoming: 0,
            syntactic_leaf: true,
            call_inevitable: false,
        };
        let p = VmProgram {
            funcs: vec![f],
            entry: FuncId(0),
            constants: vec![],
            n_globals: 2,
        };
        let out = Machine::new(&p, CostModel::alpha_like()).run().unwrap();
        assert_eq!(out.value, "42");
        // Global traffic counts as heap operations with load latency.
        assert!(out.stats.heap_ops >= 2);
    }

    #[test]
    fn global_index_out_of_range_fails() {
        let f = VmFunc {
            id: FuncId(0),
            name: "entry".into(),
            code: vec![Instr::LoadGlobal { dst: RV, index: 5 }, Instr::Halt],
            frame_size: 0,
            n_incoming: 0,
            syntactic_leaf: true,
            call_inevitable: false,
        };
        let p = VmProgram {
            funcs: vec![f],
            entry: FuncId(0),
            constants: vec![],
            n_globals: 1,
        };
        let err = Machine::new(&p, CostModel::unit()).run().unwrap_err();
        assert!(err.message.contains("global"));
    }

    #[test]
    fn branch_prediction_penalties() {
        // Branch falls through on #t: no penalty with default
        // prediction; penalty when hinted the other way.
        let mk = |likely: Option<bool>| {
            let f = VmFunc {
                id: FuncId(0),
                name: "entry".into(),
                code: vec![
                    Instr::LoadImm {
                        dst: RV,
                        imm: Imm::Bool(true),
                    },
                    Instr::BranchFalse {
                        src: RV,
                        target: 3,
                        likely,
                    },
                    Instr::LoadImm {
                        dst: RV,
                        imm: Imm::Fixnum(1),
                    },
                    Instr::Halt,
                ],
                frame_size: 0,
                n_incoming: 0,
                syntactic_leaf: true,
                call_inevitable: false,
            };
            let p = VmProgram {
                funcs: vec![f],
                entry: FuncId(0),
                constants: vec![],
                n_globals: 0,
            };
            Machine::new(&p, CostModel::alpha_like())
                .run()
                .unwrap()
                .stats
        };
        assert_eq!(mk(None).mispredicts, 0);
        assert_eq!(mk(Some(true)).mispredicts, 0);
        assert_eq!(mk(Some(false)).mispredicts, 1);
    }

    /// A program whose hot loop contains every fusible pair: a
    /// predicate+branch, back-to-back immediates, and back-to-back
    /// moves, with a branch landing *on the second half* of the MovMov
    /// pair to exercise the fallback slot.
    fn fusion_program() -> VmProgram {
        let a0 = arg_reg(0);
        let a1 = arg_reg(1);
        let s0 = scratch_reg(0);
        let f = VmFunc {
            id: FuncId(0),
            name: "entry".into(),
            code: vec![
                // 0/1: ImmImm pair — counter = 3, acc = 0.
                Instr::LoadImm {
                    dst: a0,
                    imm: Imm::Fixnum(3),
                },
                Instr::LoadImm {
                    dst: a1,
                    imm: Imm::Fixnum(0),
                },
                // 2/3: CmpBranch pair — loop exit test (the exit
                // target, 7, is itself a fused head).
                Instr::Prim {
                    op: Prim::IsZero,
                    dst: s0,
                    args: vec![a0],
                },
                Instr::BranchTrue {
                    src: s0,
                    target: 7,
                    likely: Some(true),
                },
                // 4: acc += counter
                Instr::Prim {
                    op: Prim::Add,
                    dst: a1,
                    args: vec![a1, a0],
                },
                // 5: counter -= 1
                Instr::Prim {
                    op: Prim::Sub1,
                    dst: a0,
                    args: vec![a0],
                },
                // 6: back to the test — lands on slot 2 (fused head).
                Instr::Jump { target: 2 },
                // 7/8: MovMov pair, executed in full: rv <- s0 <- acc.
                Instr::Mov { dst: s0, src: a1 },
                Instr::Mov { dst: RV, src: s0 },
                // 9: skip the head of the next pair.
                Instr::Jump { target: 11 },
                // 10/11: MovMov pair entered *mid-pair* via the jump —
                // only `s0 <- rv` runs; the head never executes.
                Instr::Mov { dst: RV, src: a0 },
                Instr::Mov { dst: s0, src: RV },
                Instr::Halt,
            ],
            frame_size: 0,
            n_incoming: 0,
            syntactic_leaf: true,
            call_inevitable: false,
        };
        VmProgram {
            funcs: vec![f],
            entry: FuncId(0),
            constants: vec![],
            n_globals: 0,
        }
    }

    #[test]
    fn fused_pairs_execute_and_land_mid_pair() {
        let p = fusion_program();
        // Decode with the full catalogue enabled (not the generated
        // table): this test pins the decode/handler mechanics of each
        // template, independent of which templates measurement enabled.
        let full: Vec<crate::decode::FusionEntry> = FusionKind::ALL
            .iter()
            .map(|&kind| crate::decode::FusionEntry {
                kind,
                dynamic_count: 1,
            })
            .collect();
        let decoded = DecodedProgram::decode_with_table(&p, &full, &[]);
        let stats = decoded.stats();
        assert_eq!(
            stats.fused(FusionKind::CmpBranch),
            1,
            "{}",
            decoded.disassemble()
        );
        assert_eq!(stats.fused(FusionKind::ImmImm), 1);
        assert_eq!(stats.fused(FusionKind::MovMov), 2);
        assert_eq!(stats.fused_pairs, 4);
        // Slot preservation: decoded slot count = source + sentinel.
        assert_eq!(stats.decoded_ops, stats.source_instructions + 1);
        let out = Machine::from_decoded(&decoded, CostModel::alpha_like())
            .run()
            .unwrap();
        // acc = 3 + 2 + 1 flows through the fully-executed MovMov into
        // rv; the mid-pair landing only clobbers s0. Both engines must
        // agree exactly — values, output, and every counter.
        let classic = ClassicMachine::new(&p, CostModel::alpha_like())
            .run()
            .unwrap();
        assert_eq!(out.value, "6");
        assert_eq!(out.value, classic.value);
        assert_eq!(out.stats, classic.stats);
        assert_eq!(out.output, classic.output);
    }

    /// A program exercising `swap` and `permi`: loads 10/20/30/40 into
    /// a0..a3, swaps a0/a1, then rotates the cycle a1→a2→a3→a1,
    /// leaving (a0,a1,a2,a3) = (20,40,10,30); rv = a1*a2 + a3 = 430.
    fn permutation_program() -> VmProgram {
        let a0 = arg_reg(0);
        let a1 = arg_reg(1);
        let a2 = arg_reg(2);
        let a3 = arg_reg(3);
        let f = VmFunc {
            id: FuncId(0),
            name: "entry".into(),
            code: vec![
                Instr::LoadImm {
                    dst: a0,
                    imm: Imm::Fixnum(10),
                },
                Instr::LoadImm {
                    dst: a1,
                    imm: Imm::Fixnum(20),
                },
                Instr::LoadImm {
                    dst: a2,
                    imm: Imm::Fixnum(30),
                },
                Instr::LoadImm {
                    dst: a3,
                    imm: Imm::Fixnum(40),
                },
                // (a0 a1) = (20 10)
                Instr::Swap { a: a0, b: a1 },
                // Rotate the cycle a1 -> a2 -> a3 -> a1: each new
                // regs[i] takes old regs[perm[i]].
                Instr::Permi {
                    regs: vec![a1, a2, a3],
                    perm: vec![2, 0, 1],
                },
                // Now (a0 a1 a2 a3) = (20 40 10 30).
                Instr::Prim {
                    op: Prim::Mul,
                    dst: RV,
                    args: vec![a1, a2],
                },
                Instr::Prim {
                    op: Prim::Add,
                    dst: RV,
                    args: vec![RV, a3],
                },
                Instr::Halt,
            ],
            frame_size: 0,
            n_incoming: 0,
            syntactic_leaf: true,
            call_inevitable: false,
        };
        VmProgram {
            funcs: vec![f],
            entry: FuncId(0),
            constants: vec![],
            n_globals: 0,
        }
    }

    #[test]
    fn swap_and_permi_agree_with_classic() {
        let p = permutation_program();
        for cost in [CostModel::alpha_like(), CostModel::unit()] {
            let d = Machine::new(&p, cost).run().unwrap();
            let c = ClassicMachine::new(&p, cost).run().unwrap();
            // 40 * 10 + 30: the swap and the rotation both applied.
            assert_eq!(d.value, "430");
            assert_eq!(d.value, c.value);
            assert_eq!(d.stats, c.stats);
            assert_eq!(d.stats.swaps, 1);
            assert_eq!(d.stats.permis, 1);
        }
    }

    /// Every tiny test program above must agree with the classic
    /// engine in values, stats, output, and error coordinates.
    #[test]
    fn classic_and_decoded_agree_on_hand_programs() {
        let programs = [tiny_program(), fusion_program(), permutation_program()];
        for p in &programs {
            for cost in [CostModel::alpha_like(), CostModel::unit()] {
                let d = Machine::new(p, cost).with_poison(true).run().unwrap();
                let c = ClassicMachine::new(p, cost)
                    .with_poison(true)
                    .run()
                    .unwrap();
                assert_eq!(d.value, c.value);
                assert_eq!(d.output, c.output);
                assert_eq!(d.stats, c.stats);
            }
        }
    }

    #[test]
    fn fuel_error_between_fused_halves_matches_classic() {
        // Budget runs out exactly between the two halves of the ImmImm
        // pair at slots 0/1: both engines must report pc 1.
        let p = fusion_program();
        let d = Machine::new(&p, CostModel::unit())
            .with_fuel(1)
            .run()
            .unwrap_err();
        let c = ClassicMachine::new(&p, CostModel::unit())
            .with_fuel(1)
            .run()
            .unwrap_err();
        assert_eq!(d, c);
        assert_eq!(d.at, Some(("entry".into(), 1)));
        assert!(d.is_fuel_exhausted());
    }

    #[test]
    fn pc_out_of_range_matches_classic() {
        // Running off the end of a function hits the FuncEnd sentinel;
        // the reported location must match the classic bounds check.
        let f = VmFunc {
            id: FuncId(0),
            name: "entry".into(),
            code: vec![Instr::LoadImm {
                dst: RV,
                imm: Imm::Fixnum(1),
            }],
            frame_size: 0,
            n_incoming: 0,
            syntactic_leaf: true,
            call_inevitable: false,
        };
        let p = VmProgram {
            funcs: vec![f],
            entry: FuncId(0),
            constants: vec![],
            n_globals: 0,
        };
        let d = Machine::new(&p, CostModel::unit()).run().unwrap_err();
        let c = ClassicMachine::new(&p, CostModel::unit())
            .run()
            .unwrap_err();
        assert_eq!(d, c);
        assert_eq!(d.at, Some(("entry".into(), 1)));
    }

    /// Hand-assembled closure-call harness: one closure-call site (in
    /// `callit`) executed once per `pattern` element, with the closure
    /// in `cp` selecting `leaf0` (0) or `leaf1` (1). The per-call
    /// callee sequence is exactly `pattern`, so IC/speculation state
    /// transitions are fully scripted.
    fn poly_call_program(pattern: &[usize]) -> VmProgram {
        let s0 = scratch_reg(0);
        let s1 = scratch_reg(1);
        let leaf = |id: u32, value: i64| VmFunc {
            id: FuncId(id),
            name: format!("leaf{id}"),
            code: vec![
                Instr::LoadImm {
                    dst: RV,
                    imm: Imm::Fixnum(value),
                },
                Instr::Return,
            ],
            frame_size: 0,
            n_incoming: 0,
            syntactic_leaf: true,
            call_inevitable: false,
        };
        // f2: the single closure-call site every iteration goes through.
        let callit = VmFunc {
            id: FuncId(2),
            name: "callit".into(),
            code: vec![
                Instr::StackStore {
                    slot: 0,
                    src: RET,
                    class: SlotClass::Save,
                },
                Instr::Call {
                    target: CallTarget::ClosureCp,
                    frame_advance: 1,
                },
                Instr::StackLoad {
                    dst: RET,
                    slot: 0,
                    class: SlotClass::Save,
                },
                Instr::Return,
            ],
            frame_size: 1,
            n_incoming: 0,
            syntactic_leaf: false,
            call_inevitable: true,
        };
        let mut code = vec![
            Instr::AllocClosure {
                dst: s0,
                func: FuncId(0),
                n_free: 0,
            },
            Instr::AllocClosure {
                dst: s1,
                func: FuncId(1),
                n_free: 0,
            },
        ];
        for &which in pattern {
            code.push(Instr::Mov {
                dst: CP,
                src: if which == 0 { s0 } else { s1 },
            });
            code.push(Instr::Call {
                target: CallTarget::Func(FuncId(2)),
                frame_advance: 0,
            });
        }
        code.push(Instr::Halt);
        let entry = VmFunc {
            id: FuncId(3),
            name: "entry".into(),
            code,
            frame_size: 0,
            n_incoming: 0,
            syntactic_leaf: false,
            call_inevitable: true,
        };
        VmProgram {
            funcs: vec![leaf(0, 10), leaf(1, 20), callit, entry],
            entry: FuncId(3),
            constants: vec![],
            n_globals: 0,
        }
    }

    /// The original three-call shape: twice the same callee, once a
    /// different one (1 cold miss, 1 hit, 1 transition miss).
    fn closure_call_program() -> VmProgram {
        poly_call_program(&[0, 0, 1])
    }

    #[test]
    fn inline_cache_counts_site_stability() {
        let p = closure_call_program();
        let d = Machine::new(&p, CostModel::alpha_like()).run().unwrap();
        let c = ClassicMachine::new(&p, CostModel::alpha_like())
            .run()
            .unwrap();
        // Dispatch bookkeeping is invisible to the parity contract.
        assert_eq!(d.value, c.value);
        assert_eq!(d.stats, c.stats);
        // One site, three executions: cold miss, hit, transition miss.
        assert_eq!(d.dispatch.ic_hits, 1);
        assert_eq!(d.dispatch.ic_misses, 2);
        assert!((d.dispatch.ic_hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        // With speculation on (the default) the hit was a guarded fast
        // hit and the transition was a guard failure — but the ic.*
        // stream above is byte-identical to the observational mode.
        assert_eq!(d.dispatch.spec_fast_hits, 1);
        assert_eq!(d.dispatch.spec_guard_fails, 1);
        assert_eq!(d.dispatch.spec_demotions, 0);
    }

    /// Satellite: speculation off must reproduce the exact same ic.*
    /// stream and `RunStats` with every `spec.*` counter at zero.
    #[test]
    fn speculation_off_matches_observational_counters() {
        let p = closure_call_program();
        let on = Machine::new(&p, CostModel::alpha_like()).run().unwrap();
        let off = Machine::new(&p, CostModel::alpha_like())
            .with_speculation(false)
            .run()
            .unwrap();
        let c = ClassicMachine::new(&p, CostModel::alpha_like())
            .run()
            .unwrap();
        assert_eq!(off.value, c.value);
        assert_eq!(off.stats, c.stats);
        assert_eq!(off.stats, on.stats);
        assert_eq!(off.dispatch.ic_hits, on.dispatch.ic_hits);
        assert_eq!(off.dispatch.ic_misses, on.dispatch.ic_misses);
        assert_eq!(off.dispatch.spec_fast_hits, 0);
        assert_eq!(off.dispatch.spec_guard_fails, 0);
        assert_eq!(off.dispatch.spec_demotions, 0);
    }

    /// Satellite: monomorphic → guard-fail → re-cache. After the guard
    /// fails once the site re-caches the new callee, so an immediate
    /// repeat of that callee is a fast hit again.
    #[test]
    fn guard_fail_recaches_and_fast_path_resumes() {
        // A, A (fast hit), B (guard fail -> re-cache B), B (fast hit).
        let p = poly_call_program(&[0, 0, 1, 1]);
        let d = Machine::new(&p, CostModel::alpha_like()).run().unwrap();
        let c = ClassicMachine::new(&p, CostModel::alpha_like())
            .run()
            .unwrap();
        assert_eq!(d.value, c.value);
        assert_eq!(d.stats, c.stats);
        assert_eq!(d.dispatch.ic_hits, 2);
        assert_eq!(d.dispatch.ic_misses, 2);
        assert_eq!(d.dispatch.spec_fast_hits, 2);
        assert_eq!(d.dispatch.spec_guard_fails, 1);
        assert_eq!(d.dispatch.spec_demotions, 0);
    }

    /// Satellite: `SPEC_DEMOTE_AFTER` cumulative guard failures demote
    /// the site to polymorphic (plain observational dispatch).
    #[test]
    fn k_guard_failures_demote_site() {
        // Alternating callees: cold miss, then every call flips the
        // cached identity. Guard failures 1..=4 land on calls 2..=5;
        // the fourth failure (call 5) demotes the site.
        let p = poly_call_program(&[0, 1, 0, 1, 0]);
        let d = Machine::new(&p, CostModel::alpha_like()).run().unwrap();
        let c = ClassicMachine::new(&p, CostModel::alpha_like())
            .run()
            .unwrap();
        assert_eq!(d.value, c.value);
        assert_eq!(d.stats, c.stats);
        assert_eq!(d.dispatch.spec_fast_hits, 0);
        assert_eq!(d.dispatch.spec_guard_fails, u64::from(SPEC_DEMOTE_AFTER));
        assert_eq!(d.dispatch.spec_demotions, 1);
        // The ic.* stream is what the observational mode would report
        // for the same alternation: one cold miss + four transitions.
        assert_eq!(d.dispatch.ic_hits, 0);
        assert_eq!(d.dispatch.ic_misses, 5);
    }

    /// Satellite: a megamorphic site never re-enters the fast path.
    /// After demotion, even a long monomorphic tail only grows the
    /// observational hit count — `spec_fast_hits` stays frozen.
    #[test]
    fn megamorphic_site_never_reenters_fast_path() {
        // 5 alternating calls demote the site, then 4 calls of the
        // same callee would all be fast hits if the site re-armed.
        let p = poly_call_program(&[0, 1, 0, 1, 0, 0, 0, 0, 0]);
        let d = Machine::new(&p, CostModel::alpha_like()).run().unwrap();
        let c = ClassicMachine::new(&p, CostModel::alpha_like())
            .run()
            .unwrap();
        assert_eq!(d.value, c.value);
        assert_eq!(d.stats, c.stats);
        assert_eq!(d.dispatch.spec_fast_hits, 0, "demoted site speculated");
        assert_eq!(d.dispatch.spec_guard_fails, u64::from(SPEC_DEMOTE_AFTER));
        assert_eq!(d.dispatch.spec_demotions, 1);
        // Demoted dispatch still maintains the observational cache:
        // the monomorphic tail is 4 plain hits.
        assert_eq!(d.dispatch.ic_hits, 4);
        assert_eq!(d.dispatch.ic_misses, 5);
        // And the ic.* stream is identical with speculation disabled.
        let off = Machine::new(&p, CostModel::alpha_like())
            .with_speculation(false)
            .run()
            .unwrap();
        assert_eq!(off.dispatch.ic_hits, d.dispatch.ic_hits);
        assert_eq!(off.dispatch.ic_misses, d.dispatch.ic_misses);
        assert_eq!(off.stats, d.stats);
    }

    #[test]
    fn ic_site_count_matches_closure_call_sites() {
        let p = closure_call_program();
        let prog = DecodedProgram::decode(&p);
        // Exactly one `call cp` site in `callit`; tail-call sites would
        // count too, but this program has none.
        assert_eq!(prog.n_ic_sites(), 1);
    }

    /// Satellite: the `vm.dispatch.*` key set is stable — every table
    /// entry's counter is emitted (zero included) from both the static
    /// decode stats and the per-run dispatch stats, alongside the IC
    /// counters, no matter what the workload touched.
    #[test]
    fn dispatch_metric_key_sets_are_stable() {
        use crate::fusion_table::{FUSION_TABLE, TRIPLE_TABLE};
        use lesgs_metrics::Registry;

        // A program with no fusible pairs and no closure calls at all.
        let p = tiny_program();
        let prog = DecodedProgram::decode(&p);
        let out = Machine::new(&p, CostModel::unit()).run().unwrap();

        let mut reg = Registry::new();
        prog.stats().record(&mut reg);
        out.dispatch.record(&mut reg);

        let counters: std::collections::BTreeMap<String, u64> = reg
            .counters()
            .map(|(name, v)| (name.to_string(), v))
            .collect();
        for entry in FUSION_TABLE {
            let key = entry.kind.key();
            assert!(
                counters.contains_key(&format!("vm.dispatch.fused.{key}")),
                "missing static fused counter for {key}"
            );
            assert!(
                counters.contains_key(&format!("vm.dispatch.fused_exec.{key}")),
                "missing runtime fused counter for {key}"
            );
        }
        for entry in TRIPLE_TABLE {
            let key = entry.kind.key();
            assert!(
                counters.contains_key(&format!("vm.dispatch.fused.{key}")),
                "missing static fused-triple counter for {key}"
            );
            assert!(
                counters.contains_key(&format!("vm.dispatch.fused_exec.{key}")),
                "missing runtime fused-triple counter for {key}"
            );
        }
        assert!(counters.contains_key("vm.dispatch.ic.hits"));
        assert!(counters.contains_key("vm.dispatch.ic.misses"));
        assert!(counters.contains_key("vm.dispatch.spec.fast_hits"));
        assert!(counters.contains_key("vm.dispatch.spec.guard_fails"));
        assert!(counters.contains_key("vm.dispatch.spec.demotions"));
        let gauges: Vec<&str> = reg.gauges().map(|(name, _)| name).collect();
        assert!(gauges.contains(&"vm.dispatch.ic.hit_rate"));
    }

    /// Triple templates fuse on decode, execute as one op, and leave
    /// mid-triple jump landings on the preserved plain slots.
    #[test]
    fn fused_triples_execute_and_land_mid_triple() {
        let a0 = arg_reg(0);
        let s0 = scratch_reg(0);
        let s1 = scratch_reg(1);
        let f = VmFunc {
            id: FuncId(0),
            name: "entry".into(),
            code: vec![
                // 0/1/2: ImmPrimMov triple, executed in full.
                Instr::LoadImm {
                    dst: a0,
                    imm: Imm::Fixnum(7),
                },
                Instr::Prim {
                    op: Prim::Add,
                    dst: RV,
                    args: vec![a0, a0],
                },
                Instr::Mov { dst: s0, src: RV },
                // 3: land on the *third* slot of the next triple.
                Instr::Jump { target: 6 },
                // 4/5/6: ImmPrimMov triple entered mid-triple — only
                // `s1 <- rv` runs; the head and middle never execute.
                Instr::LoadImm {
                    dst: a0,
                    imm: Imm::Fixnum(100),
                },
                Instr::Prim {
                    op: Prim::Mul,
                    dst: RV,
                    args: vec![a0, a0],
                },
                Instr::Mov { dst: s1, src: RV },
                // 7: rv = s0 + a0 = 14 + 7 = 21.
                Instr::Prim {
                    op: Prim::Add,
                    dst: RV,
                    args: vec![s0, a0],
                },
                Instr::Halt,
            ],
            frame_size: 0,
            n_incoming: 0,
            syntactic_leaf: true,
            call_inevitable: false,
        };
        let p = VmProgram {
            funcs: vec![f],
            entry: FuncId(0),
            constants: vec![],
            n_globals: 0,
        };
        let full3: Vec<crate::decode::TripleEntry> = crate::decode::TripleKind::ALL
            .iter()
            .map(|&kind| crate::decode::TripleEntry {
                kind,
                dynamic_count: 1,
            })
            .collect();
        // Empty pair table: the scan must still find both triples.
        let decoded = DecodedProgram::decode_with_table(&p, &[], &full3);
        let stats = decoded.stats();
        assert_eq!(
            stats.fused3(crate::decode::TripleKind::ImmPrimMov),
            2,
            "{}",
            decoded.disassemble()
        );
        assert_eq!(stats.fused_triples, 2);
        // Slot preservation: decoded slot count = source + sentinel.
        assert_eq!(stats.decoded_ops, stats.source_instructions + 1);
        let out = Machine::from_decoded(&decoded, CostModel::alpha_like())
            .run()
            .unwrap();
        let classic = ClassicMachine::new(&p, CostModel::alpha_like())
            .run()
            .unwrap();
        assert_eq!(out.value, "21");
        assert_eq!(out.value, classic.value);
        assert_eq!(out.stats, classic.stats);
        assert_eq!(out.output, classic.output);
        // Only the first triple ran fused; the second was entered
        // mid-triple on a plain slot.
        assert_eq!(
            out.dispatch.fused3(crate::decode::TripleKind::ImmPrimMov),
            1
        );
    }
}
