//! The execution engine.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use lesgs_frontend::{Const, FuncId, Prim};
use lesgs_ir::machine::{CP, NUM_REGS, RET, RV};
use lesgs_ir::Reg;
use lesgs_sexpr::Datum;

use crate::cost::CostModel;
use crate::instr::{CallTarget, Imm, Instr};
use crate::program::VmProgram;
use crate::stats::{ActivationClass, RunStats};
use crate::value::{RetAddr, Value, VmClosure};

/// A runtime failure (type error, fuel exhaustion, VM invariant
/// violation).
#[derive(Debug, Clone, PartialEq)]
pub struct VmError {
    /// Human-readable description.
    pub message: String,
    /// Function and instruction where it happened.
    pub at: Option<(String, u32)>,
}

/// The message every instruction-budget failure carries (the stable
/// marker behind [`VmError::is_fuel_exhausted`]).
const FUEL_MESSAGE: &str = "instruction budget exhausted";

impl VmError {
    /// Creates an error.
    pub fn new(message: impl Into<String>) -> VmError {
        VmError {
            message: message.into(),
            at: None,
        }
    }

    /// True when this error means the instruction budget ran out (as
    /// opposed to the program misbehaving) — differential drivers must
    /// not report a timeout as a miscompile.
    pub fn is_fuel_exhausted(&self) -> bool {
        self.message == FUEL_MESSAGE
    }
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.at {
            Some((name, pc)) => {
                write!(f, "vm error at {name}+{pc}: {}", self.message)
            }
            None => write!(f, "vm error: {}", self.message),
        }
    }
}

impl std::error::Error for VmError {}

/// The result of a successful run.
#[derive(Debug, Clone)]
pub struct VmOutcome {
    /// Final value (in `rv`), rendered in `write` style.
    pub value: String,
    /// Program output (`display`/`write`/`newline`).
    pub output: String,
    /// Collected statistics.
    pub stats: RunStats,
}

struct Activation {
    func: FuncId,
    made_call: bool,
}

/// The virtual machine.
pub struct Machine<'a> {
    program: &'a VmProgram,
    cost: CostModel,
    max_instructions: u64,
    poison_frames: bool,
    trace: bool,
    regs: Vec<Value>,
    ready: Vec<u64>,
    stack: Vec<Value>,
    fp: u32,
    func: FuncId,
    pc: u32,
    constants: Vec<Value>,
    globals: Vec<Value>,
    output: String,
    stats: RunStats,
    shadow: Vec<Activation>,
}

fn datum_to_value(d: &Datum) -> Value {
    match d {
        Datum::Fixnum(n) => Value::Fixnum(*n),
        Datum::Bool(b) => Value::Bool(*b),
        Datum::Char(c) => Value::Char(*c),
        Datum::Str(s) => Value::Str(Rc::new(s.clone())),
        Datum::Symbol(s) => Value::Symbol(Rc::new(s.clone())),
        Datum::List(items) => items
            .iter()
            .rev()
            .fold(Value::Nil, |acc, d| Value::cons(datum_to_value(d), acc)),
        Datum::Improper(items, tail) => items.iter().rev().fold(datum_to_value(tail), |acc, d| {
            Value::cons(datum_to_value(d), acc)
        }),
        Datum::Vector(items) => Value::Vector(Rc::new(RefCell::new(
            items.iter().map(datum_to_value).collect(),
        ))),
    }
}

fn const_to_value(c: &Const) -> Value {
    match c {
        Const::Fixnum(n) => Value::Fixnum(*n),
        Const::Bool(b) => Value::Bool(*b),
        Const::Char(c) => Value::Char(*c),
        Const::Str(s) => Value::Str(Rc::new(s.clone())),
        Const::Nil => Value::Nil,
        Const::Void => Value::Void,
        Const::Symbol(s) => Value::Symbol(Rc::new(s.clone())),
        Const::Datum(d) => datum_to_value(d),
    }
}

type Result<T> = std::result::Result<T, VmError>;

impl<'a> Machine<'a> {
    /// Creates a machine for `program` with the given cost model.
    pub fn new(program: &'a VmProgram, cost: CostModel) -> Machine<'a> {
        Machine {
            program,
            cost,
            max_instructions: 2_000_000_000,
            poison_frames: false,
            trace: false,
            // Registers start as benign garbage (hardware registers
            // always hold *something*); uninitialized-read detection
            // applies to poisoned stack slots only.
            regs: vec![Value::Void; NUM_REGS],
            ready: vec![0; NUM_REGS],
            stack: Vec::new(),
            fp: 0,
            func: program.entry,
            pc: 0,
            constants: program.constants.iter().map(const_to_value).collect(),
            globals: vec![Value::Void; program.n_globals as usize],
            output: String::new(),
            stats: RunStats::default(),
            shadow: Vec::new(),
        }
    }

    /// Sets the instruction budget.
    #[must_use]
    pub fn with_fuel(mut self, max_instructions: u64) -> Machine<'a> {
        self.max_instructions = max_instructions;
        self
    }

    /// Enables frame poisoning: every callee frame starts as `Uninit`
    /// so reads of never-written slots fail loudly (used in tests).
    #[must_use]
    pub fn with_poison(mut self, poison: bool) -> Machine<'a> {
        self.poison_frames = poison;
        self
    }

    /// Enables call-event tracing: every call, tail call, and return
    /// logs a `trace:` line to stderr (the `lesgsc --trace` backend).
    #[must_use]
    pub fn with_trace(mut self, trace: bool) -> Machine<'a> {
        self.trace = trace;
        self
    }

    fn err(&self, message: impl Into<String>) -> VmError {
        VmError {
            message: message.into(),
            at: Some((self.program.func(self.func).name.clone(), self.pc)),
        }
    }

    fn read(&mut self, r: Reg) -> Value {
        // Stall until the register's in-flight load completes.
        if self.ready[r.index()] > self.stats.cycles {
            self.stats.stall_cycles += self.ready[r.index()] - self.stats.cycles;
            self.stats.cycles = self.ready[r.index()];
        }
        self.regs[r.index()].clone()
    }

    fn write(&mut self, r: Reg, v: Value) {
        self.regs[r.index()] = v;
        self.ready[r.index()] = self.stats.cycles;
    }

    fn write_loaded(&mut self, r: Reg, v: Value) {
        self.regs[r.index()] = v;
        self.ready[r.index()] = self.stats.cycles + self.cost.load_latency;
    }

    fn slot_index(&self, slot: u32) -> usize {
        (self.fp + slot) as usize
    }

    fn stack_store(&mut self, slot: u32, v: Value) {
        let idx = self.slot_index(slot);
        if idx >= self.stack.len() {
            self.stack.resize(idx + 1, Value::Uninit);
        }
        self.stack[idx] = v;
    }

    fn stack_load(&mut self, slot: u32) -> Result<Value> {
        let idx = self.slot_index(slot);
        match self.stack.get(idx) {
            Some(Value::Uninit) | None => {
                Err(self.err(format!("read of uninitialized stack slot {slot}")))
            }
            Some(v) => Ok(v.clone()),
        }
    }

    fn enter_activation(&mut self, callee: FuncId) {
        if let Some(top) = self.shadow.last_mut() {
            top.made_call = true;
        }
        self.stats.calls += 1;
        if self.trace {
            eprintln!(
                "trace: call {} depth={}",
                self.program.func(callee).name,
                self.shadow.len()
            );
        }
        self.shadow.push(Activation {
            func: callee,
            made_call: false,
        });
    }

    fn classify(&self, a: &Activation) -> ActivationClass {
        let f = self.program.func(a.func);
        match (a.made_call, f.syntactic_leaf, f.call_inevitable) {
            (false, true, _) => ActivationClass::SyntacticLeaf,
            (false, false, _) => ActivationClass::NonSyntacticLeaf,
            (true, _, true) => ActivationClass::SyntacticInternal,
            (true, _, false) => ActivationClass::NonSyntacticInternal,
        }
    }

    fn leave_activation(&mut self) {
        if let Some(a) = self.shadow.pop() {
            let class = self.classify(&a);
            if self.trace {
                eprintln!(
                    "trace: return {} class={} depth={}",
                    self.program.func(a.func).name,
                    class.key(),
                    self.shadow.len()
                );
            }
            *self.stats.activations.entry(class).or_insert(0) += 1;
        }
    }

    fn call_target(&mut self, target: CallTarget) -> Result<FuncId> {
        match target {
            CallTarget::Func(f) => Ok(f),
            CallTarget::ClosureCp => match self.read(CP) {
                Value::Closure(c) => Ok(c.func),
                other => Err(self.err(format!("call of non-procedure `{}`", other.write_string()))),
            },
        }
    }

    fn poison(&mut self, func: FuncId) {
        if !self.poison_frames {
            return;
        }
        let f = self.program.func(func);
        // Skip the incoming-parameter region: the caller wrote the
        // stack-passed arguments there just before the call.
        let lo = (self.fp + f.n_incoming) as usize;
        let hi = (self.fp + f.frame_size) as usize;
        if hi > self.stack.len() {
            self.stack.resize(hi, Value::Uninit);
        }
        for v in &mut self.stack[lo..hi] {
            *v = Value::Uninit;
        }
    }

    /// Runs the program to completion.
    ///
    /// # Errors
    ///
    /// Type errors, arity/stack violations, `(error …)`, or exceeding
    /// the instruction budget.
    pub fn run(mut self) -> Result<VmOutcome> {
        // Bootstrap: the entry function's frame starts at 0.
        self.shadow.push(Activation {
            func: self.func,
            made_call: false,
        });
        self.poison(self.func);
        loop {
            if self.stats.instructions >= self.max_instructions {
                return Err(self.err(FUEL_MESSAGE));
            }
            self.stats.instructions += 1;
            self.stats.cycles += self.cost.instr_cost;
            let code = &self.program.func(self.func).code;
            let Some(instr) = code.get(self.pc as usize) else {
                return Err(self.err("program counter out of range"));
            };
            let instr = instr.clone();
            self.pc += 1;
            match instr {
                Instr::LoadImm { dst, imm } => {
                    let v = match imm {
                        Imm::Fixnum(n) => Value::Fixnum(n),
                        Imm::Bool(b) => Value::Bool(b),
                        Imm::Char(c) => Value::Char(c),
                        Imm::Nil => Value::Nil,
                        Imm::Void => Value::Void,
                    };
                    self.write(dst, v);
                }
                Instr::LoadConst { dst, idx } => {
                    let v = self.constants[idx as usize].clone();
                    self.write(dst, v);
                }
                Instr::Mov { dst, src } => {
                    let v = self.read(src);
                    self.write(dst, v);
                }
                Instr::StackLoad { dst, slot, class } => {
                    self.stats.cycles += self.cost.mem_cost - self.cost.instr_cost;
                    *self.stats.stack_loads.entry(class).or_insert(0) += 1;
                    let v = self.stack_load(slot)?;
                    self.write_loaded(dst, v);
                }
                Instr::StackStore { slot, src, class } => {
                    self.stats.cycles += self.cost.mem_cost - self.cost.instr_cost;
                    *self.stats.stack_stores.entry(class).or_insert(0) += 1;
                    let v = self.read(src);
                    self.stack_store(slot, v);
                }
                Instr::Prim { op, dst, args } => {
                    let vals: Vec<Value> = args.iter().map(|r| self.read(*r)).collect();
                    let loaded = self.apply_prim(op, vals, dst)?;
                    if op.touches_memory() {
                        self.stats.heap_ops += 1;
                        self.stats.cycles += self.cost.mem_cost - self.cost.instr_cost;
                    }
                    let _ = loaded;
                }
                Instr::Jump { target } => self.pc = target,
                Instr::BranchFalse {
                    src,
                    target,
                    likely,
                } => {
                    self.stats.branches += 1;
                    let v = self.read(src);
                    let fallthrough = v.is_truthy();
                    // Default static prediction: fallthrough.
                    let predicted_fallthrough = likely.unwrap_or(true);
                    if predicted_fallthrough != fallthrough {
                        self.stats.mispredicts += 1;
                        self.stats.cycles += self.cost.mispredict_penalty;
                    }
                    if !fallthrough {
                        self.pc = target;
                    }
                }
                Instr::BranchTrue {
                    src,
                    target,
                    likely,
                } => {
                    self.stats.branches += 1;
                    let v = self.read(src);
                    let fallthrough = !v.is_truthy();
                    let predicted_fallthrough = likely.unwrap_or(true);
                    if predicted_fallthrough != fallthrough {
                        self.stats.mispredicts += 1;
                        self.stats.cycles += self.cost.mispredict_penalty;
                    }
                    if !fallthrough {
                        self.pc = target;
                    }
                }
                Instr::Call {
                    target,
                    frame_advance,
                } => {
                    let callee = self.call_target(target)?;
                    let ra = RetAddr {
                        func: self.func,
                        pc: self.pc,
                        fp: self.fp,
                    };
                    self.write(RET, Value::RetAddr(ra));
                    self.fp += frame_advance;
                    self.func = callee;
                    self.pc = 0;
                    self.enter_activation(callee);
                    self.poison(callee);
                }
                Instr::TailCall { target } => {
                    let callee = self.call_target(target)?;
                    self.stats.tail_calls += 1;
                    if self.trace {
                        eprintln!(
                            "trace: tail-call {} depth={}",
                            self.program.func(callee).name,
                            self.shadow.len()
                        );
                    }
                    self.func = callee;
                    self.pc = 0;
                    // A tail call is a jump: same activation, same fp.
                }
                Instr::Return => match self.read(RET) {
                    Value::RetAddr(ra) => {
                        self.leave_activation();
                        self.func = ra.func;
                        self.pc = ra.pc;
                        self.fp = ra.fp;
                    }
                    other => {
                        return Err(self.err(format!(
                            "return through non-address `{}`",
                            other.write_string()
                        )))
                    }
                },
                Instr::AllocClosure { dst, func, n_free } => {
                    self.stats.heap_ops += 1;
                    self.stats.closures_allocated += 1;
                    self.stats.cycles += self.cost.mem_cost - self.cost.instr_cost;
                    let clo = VmClosure {
                        func,
                        free: RefCell::new(vec![Value::Void; n_free as usize]),
                    };
                    self.write(dst, Value::Closure(Rc::new(clo)));
                }
                Instr::ClosureSlotSet { clo, index, src } => {
                    self.stats.heap_ops += 1;
                    self.stats.cycles += self.cost.mem_cost - self.cost.instr_cost;
                    let v = self.read(src);
                    match self.read(clo) {
                        Value::Closure(c) => {
                            c.free.borrow_mut()[index as usize] = v;
                        }
                        other => {
                            return Err(
                                self.err(format!("closure-set! on `{}`", other.write_string()))
                            )
                        }
                    }
                }
                Instr::LoadFree { dst, index } => {
                    self.stats.heap_ops += 1;
                    self.stats.cycles += self.cost.mem_cost - self.cost.instr_cost;
                    match self.read(CP) {
                        Value::Closure(c) => {
                            let v = c.free.borrow()[index as usize].clone();
                            self.write_loaded(dst, v);
                        }
                        other => {
                            return Err(self.err(format!(
                                "free-variable reference through `{}`",
                                other.write_string()
                            )))
                        }
                    }
                }
                Instr::LoadGlobal { dst, index } => {
                    self.stats.heap_ops += 1;
                    self.stats.cycles += self.cost.mem_cost - self.cost.instr_cost;
                    let v = self
                        .globals
                        .get(index as usize)
                        .cloned()
                        .ok_or_else(|| self.err("global index out of range"))?;
                    self.write_loaded(dst, v);
                }
                Instr::StoreGlobal { index, src } => {
                    self.stats.heap_ops += 1;
                    self.stats.cycles += self.cost.mem_cost - self.cost.instr_cost;
                    let v = self.read(src);
                    match self.globals.get_mut(index as usize) {
                        Some(slot) => *slot = v,
                        None => return Err(self.err("global index out of range")),
                    }
                }
                Instr::Halt => {
                    while !self.shadow.is_empty() {
                        self.leave_activation();
                    }
                    let value = self.read(RV).write_string();
                    return Ok(VmOutcome {
                        value,
                        output: self.output,
                        stats: self.stats,
                    });
                }
            }
        }
    }

    fn apply_prim(&mut self, p: Prim, mut args: Vec<Value>, dst: Reg) -> Result<bool> {
        use Prim::*;

        macro_rules! fixnum {
            ($v:expr) => {
                match $v {
                    Value::Fixnum(n) => *n,
                    other => {
                        return Err(self.err(format!(
                            "{p}: expected number, got {}",
                            other.write_string()
                        )))
                    }
                }
            };
        }
        macro_rules! pair {
            ($v:expr) => {
                match $v {
                    Value::Pair(p) => p.clone(),
                    other => {
                        return Err(
                            self.err(format!("{p}: expected pair, got {}", other.write_string()))
                        )
                    }
                }
            };
        }
        macro_rules! vector {
            ($v:expr) => {
                match $v {
                    Value::Vector(v) => v.clone(),
                    other => {
                        return Err(self.err(format!(
                            "{p}: expected vector, got {}",
                            other.write_string()
                        )))
                    }
                }
            };
        }

        let overflow = |m: &Machine<'_>| m.err(format!("{p}: fixnum overflow"));

        // True when the result comes from memory (gets load latency).
        let mut from_memory = false;
        let result = match p {
            Add | Sub | Mul | Quotient | Remainder | Modulo | Min | Max => {
                let a = fixnum!(&args[0]);
                let b = fixnum!(&args[1]);
                let r = match p {
                    Add => a.checked_add(b).ok_or_else(|| overflow(self))?,
                    Sub => a.checked_sub(b).ok_or_else(|| overflow(self))?,
                    Mul => a.checked_mul(b).ok_or_else(|| overflow(self))?,
                    Min => a.min(b),
                    Max => a.max(b),
                    _ => {
                        if b == 0 {
                            return Err(self.err(format!("{p}: division by zero")));
                        }
                        match p {
                            Quotient => a.checked_div(b).ok_or_else(|| overflow(self))?,
                            Remainder => a.checked_rem(b).ok_or_else(|| overflow(self))?,
                            _ => ((a % b) + b) % b,
                        }
                    }
                };
                Value::Fixnum(r)
            }
            Abs => Value::Fixnum(
                fixnum!(&args[0])
                    .checked_abs()
                    .ok_or_else(|| overflow(self))?,
            ),
            Add1 => Value::Fixnum(
                fixnum!(&args[0])
                    .checked_add(1)
                    .ok_or_else(|| overflow(self))?,
            ),
            Sub1 => Value::Fixnum(
                fixnum!(&args[0])
                    .checked_sub(1)
                    .ok_or_else(|| overflow(self))?,
            ),
            IsZero => Value::Bool(fixnum!(&args[0]) == 0),
            IsPositive => Value::Bool(fixnum!(&args[0]) > 0),
            IsNegative => Value::Bool(fixnum!(&args[0]) < 0),
            IsEven => Value::Bool(fixnum!(&args[0]) % 2 == 0),
            IsOdd => Value::Bool(fixnum!(&args[0]) % 2 != 0),
            NumEq => Value::Bool(fixnum!(&args[0]) == fixnum!(&args[1])),
            Lt => Value::Bool(fixnum!(&args[0]) < fixnum!(&args[1])),
            Le => Value::Bool(fixnum!(&args[0]) <= fixnum!(&args[1])),
            Gt => Value::Bool(fixnum!(&args[0]) > fixnum!(&args[1])),
            Ge => Value::Bool(fixnum!(&args[0]) >= fixnum!(&args[1])),
            IsEq | IsEqv => Value::Bool(args[0].eq_ptr(&args[1])),
            IsEqual => Value::Bool(args[0].eq_structural(&args[1])),
            Not => Value::Bool(!args[0].is_truthy()),
            IsPair => Value::Bool(matches!(args[0], Value::Pair(_))),
            IsNull => Value::Bool(matches!(args[0], Value::Nil)),
            IsSymbol => Value::Bool(matches!(args[0], Value::Symbol(_))),
            IsNumber => Value::Bool(matches!(args[0], Value::Fixnum(_))),
            IsBoolean => Value::Bool(matches!(args[0], Value::Bool(_))),
            IsProcedure => Value::Bool(matches!(args[0], Value::Closure(_))),
            IsVector => Value::Bool(matches!(args[0], Value::Vector(_))),
            IsString => Value::Bool(matches!(args[0], Value::Str(_))),
            IsChar => Value::Bool(matches!(args[0], Value::Char(_))),
            Cons => {
                let d = args.pop().expect("two args");
                let a = args.pop().expect("two args");
                Value::cons(a, d)
            }
            Car => {
                from_memory = true;
                let p = pair!(&args[0]);
                let v = p.borrow().0.clone();
                v
            }
            Cdr => {
                from_memory = true;
                let p = pair!(&args[0]);
                let v = p.borrow().1.clone();
                v
            }
            SetCar => {
                let v = args.pop().expect("two args");
                pair!(&args[0]).borrow_mut().0 = v;
                Value::Void
            }
            SetCdr => {
                let v = args.pop().expect("two args");
                pair!(&args[0]).borrow_mut().1 = v;
                Value::Void
            }
            MakeVector | MakeVectorFill => {
                let n = fixnum!(&args[0]);
                if n < 0 {
                    return Err(self.err("make-vector: negative length"));
                }
                let fill = if p == MakeVectorFill {
                    args[1].clone()
                } else {
                    Value::Fixnum(0)
                };
                Value::Vector(Rc::new(RefCell::new(vec![fill; n as usize])))
            }
            VectorRef => {
                from_memory = true;
                let v = vector!(&args[0]);
                let i = fixnum!(&args[1]);
                let v = v.borrow();
                let idx = usize::try_from(i).ok().filter(|&i| i < v.len());
                match idx {
                    Some(i) => v[i].clone(),
                    None => return Err(self.err(format!("vector-ref: index {i} out of range"))),
                }
            }
            VectorSet => {
                let x = args.pop().expect("three args");
                let v = vector!(&args[0]);
                let i = fixnum!(&args[1]);
                let mut v = v.borrow_mut();
                let len = v.len();
                match usize::try_from(i).ok().filter(|&i| i < len) {
                    Some(i) => v[i] = x,
                    None => return Err(self.err(format!("vector-set!: index {i} out of range"))),
                }
                Value::Void
            }
            VectorLength => Value::Fixnum(vector!(&args[0]).borrow().len() as i64),
            StringLength => match &args[0] {
                Value::Str(s) => Value::Fixnum(s.chars().count() as i64),
                other => {
                    return Err(self.err(format!(
                        "string-length: expected string, got {}",
                        other.write_string()
                    )))
                }
            },
            CharToInteger => match &args[0] {
                Value::Char(c) => Value::Fixnum(*c as i64),
                other => {
                    return Err(self.err(format!(
                        "char->integer: expected char, got {}",
                        other.write_string()
                    )))
                }
            },
            Display => {
                self.output.push_str(&args[0].display_string());
                Value::Void
            }
            Write => {
                self.output.push_str(&args[0].write_string());
                Value::Void
            }
            Newline => {
                self.output.push('\n');
                Value::Void
            }
            Error => return Err(self.err(format!("error: {}", args[0].display_string()))),
            Void => Value::Void,
            MakeCell => Value::Cell(Rc::new(RefCell::new(args[0].clone()))),
            CellRef => {
                from_memory = true;
                match &args[0] {
                    Value::Cell(c) => c.borrow().clone(),
                    other => {
                        return Err(
                            self.err(format!("unbox: expected box, got {}", other.write_string()))
                        )
                    }
                }
            }
            CellSet => {
                let v = args.pop().expect("two args");
                match &args[0] {
                    Value::Cell(c) => {
                        *c.borrow_mut() = v;
                        Value::Void
                    }
                    other => {
                        return Err(self.err(format!(
                            "set-box!: expected box, got {}",
                            other.write_string()
                        )))
                    }
                }
            }
        };
        if from_memory {
            self.write_loaded(dst, result);
        } else {
            self.write(dst, result);
        }
        Ok(from_memory)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::SlotClass;
    use crate::program::{VmFunc, VmProgram};
    use lesgs_ir::machine::{arg_reg, scratch_reg};

    /// Hand-assembled program: computes (2 + 3) * 7 via a helper call.
    fn tiny_program() -> VmProgram {
        let a0 = arg_reg(0);
        let a1 = arg_reg(1);
        let s0 = scratch_reg(0);
        // f0: add(a, b) -> rv
        let add = VmFunc {
            id: FuncId(0),
            name: "add".into(),
            code: vec![
                Instr::Prim {
                    op: Prim::Add,
                    dst: RV,
                    args: vec![a0, a1],
                },
                Instr::Return,
            ],
            frame_size: 0,
            n_incoming: 0,
            syntactic_leaf: true,
            call_inevitable: false,
        };
        // f1: main — saves ret, calls add(2,3), multiplies by 7.
        let main = VmFunc {
            id: FuncId(1),
            name: "main".into(),
            code: vec![
                Instr::StackStore {
                    slot: 0,
                    src: RET,
                    class: SlotClass::Save,
                },
                Instr::LoadImm {
                    dst: a0,
                    imm: Imm::Fixnum(2),
                },
                Instr::LoadImm {
                    dst: a1,
                    imm: Imm::Fixnum(3),
                },
                Instr::Call {
                    target: CallTarget::Func(FuncId(0)),
                    frame_advance: 1,
                },
                Instr::StackLoad {
                    dst: RET,
                    slot: 0,
                    class: SlotClass::Save,
                },
                Instr::LoadImm {
                    dst: s0,
                    imm: Imm::Fixnum(7),
                },
                Instr::Prim {
                    op: Prim::Mul,
                    dst: RV,
                    args: vec![RV, s0],
                },
                Instr::Return,
            ],
            frame_size: 1,
            n_incoming: 0,
            syntactic_leaf: false,
            call_inevitable: true,
        };
        // f2: entry — call main, halt.
        let entry = VmFunc {
            id: FuncId(2),
            name: "entry".into(),
            code: vec![
                Instr::Call {
                    target: CallTarget::Func(FuncId(1)),
                    frame_advance: 0,
                },
                Instr::Halt,
            ],
            frame_size: 0,
            n_incoming: 0,
            syntactic_leaf: false,
            call_inevitable: true,
        };
        VmProgram {
            funcs: vec![add, main, entry],
            entry: FuncId(2),
            constants: vec![],
            n_globals: 0,
        }
    }

    #[test]
    fn hand_assembled_program_runs() {
        let p = tiny_program();
        let out = Machine::new(&p, CostModel::alpha_like())
            .with_poison(true)
            .run()
            .unwrap();
        assert_eq!(out.value, "35");
        assert_eq!(out.stats.calls, 2);
        assert_eq!(out.stats.saves(), 1);
        assert_eq!(out.stats.restores(), 1);
        // add is a syntactic leaf activation.
        assert_eq!(out.stats.activations[&ActivationClass::SyntacticLeaf], 1);
    }

    #[test]
    fn stalls_accrue_on_immediate_use() {
        // Using a loaded value immediately stalls for the latency.
        let a0 = arg_reg(0);
        let f = VmFunc {
            id: FuncId(0),
            name: "entry".into(),
            code: vec![
                Instr::LoadImm {
                    dst: a0,
                    imm: Imm::Fixnum(5),
                },
                Instr::StackStore {
                    slot: 0,
                    src: a0,
                    class: SlotClass::Temp,
                },
                Instr::StackLoad {
                    dst: a0,
                    slot: 0,
                    class: SlotClass::Temp,
                },
                Instr::Prim {
                    op: Prim::Add1,
                    dst: RV,
                    args: vec![a0],
                },
                Instr::Halt,
            ],
            frame_size: 1,
            n_incoming: 0,
            syntactic_leaf: true,
            call_inevitable: false,
        };
        let p = VmProgram {
            funcs: vec![f],
            entry: FuncId(0),
            constants: vec![],
            n_globals: 0,
        };
        let out = Machine::new(&p, CostModel::alpha_like()).run().unwrap();
        assert_eq!(out.value, "6");
        assert!(out.stats.stall_cycles > 0, "{:?}", out.stats);
        let unit = Machine::new(&p, CostModel::unit()).run().unwrap();
        assert_eq!(unit.stats.stall_cycles, 0);
    }

    #[test]
    fn uninitialized_slot_read_fails() {
        let f = VmFunc {
            id: FuncId(0),
            name: "entry".into(),
            code: vec![
                Instr::StackLoad {
                    dst: RV,
                    slot: 3,
                    class: SlotClass::Spill,
                },
                Instr::Halt,
            ],
            frame_size: 4,
            n_incoming: 0,
            syntactic_leaf: true,
            call_inevitable: false,
        };
        let p = VmProgram {
            funcs: vec![f],
            entry: FuncId(0),
            constants: vec![],
            n_globals: 0,
        };
        let err = Machine::new(&p, CostModel::unit()).run().unwrap_err();
        assert!(err.message.contains("uninitialized"));
    }

    #[test]
    fn fuel_exhaustion() {
        let f = VmFunc {
            id: FuncId(0),
            name: "entry".into(),
            code: vec![Instr::Jump { target: 0 }],
            frame_size: 0,
            n_incoming: 0,
            syntactic_leaf: true,
            call_inevitable: false,
        };
        let p = VmProgram {
            funcs: vec![f],
            entry: FuncId(0),
            constants: vec![],
            n_globals: 0,
        };
        let err = Machine::new(&p, CostModel::unit())
            .with_fuel(100)
            .run()
            .unwrap_err();
        assert!(err.message.contains("budget"));
    }

    #[test]
    fn globals_load_and_store() {
        let a0 = arg_reg(0);
        let f = VmFunc {
            id: FuncId(0),
            name: "entry".into(),
            code: vec![
                Instr::LoadImm {
                    dst: a0,
                    imm: Imm::Fixnum(41),
                },
                Instr::StoreGlobal { index: 1, src: a0 },
                Instr::LoadGlobal { dst: RV, index: 1 },
                Instr::Prim {
                    op: Prim::Add1,
                    dst: RV,
                    args: vec![RV],
                },
                Instr::Halt,
            ],
            frame_size: 0,
            n_incoming: 0,
            syntactic_leaf: true,
            call_inevitable: false,
        };
        let p = VmProgram {
            funcs: vec![f],
            entry: FuncId(0),
            constants: vec![],
            n_globals: 2,
        };
        let out = Machine::new(&p, CostModel::alpha_like()).run().unwrap();
        assert_eq!(out.value, "42");
        // Global traffic counts as heap operations with load latency.
        assert!(out.stats.heap_ops >= 2);
    }

    #[test]
    fn global_index_out_of_range_fails() {
        let f = VmFunc {
            id: FuncId(0),
            name: "entry".into(),
            code: vec![Instr::LoadGlobal { dst: RV, index: 5 }, Instr::Halt],
            frame_size: 0,
            n_incoming: 0,
            syntactic_leaf: true,
            call_inevitable: false,
        };
        let p = VmProgram {
            funcs: vec![f],
            entry: FuncId(0),
            constants: vec![],
            n_globals: 1,
        };
        let err = Machine::new(&p, CostModel::unit()).run().unwrap_err();
        assert!(err.message.contains("global"));
    }

    #[test]
    fn branch_prediction_penalties() {
        // Branch falls through on #t: no penalty with default
        // prediction; penalty when hinted the other way.
        let mk = |likely: Option<bool>| {
            let f = VmFunc {
                id: FuncId(0),
                name: "entry".into(),
                code: vec![
                    Instr::LoadImm {
                        dst: RV,
                        imm: Imm::Bool(true),
                    },
                    Instr::BranchFalse {
                        src: RV,
                        target: 3,
                        likely,
                    },
                    Instr::LoadImm {
                        dst: RV,
                        imm: Imm::Fixnum(1),
                    },
                    Instr::Halt,
                ],
                frame_size: 0,
                n_incoming: 0,
                syntactic_leaf: true,
                call_inevitable: false,
            };
            let p = VmProgram {
                funcs: vec![f],
                entry: FuncId(0),
                constants: vec![],
                n_globals: 0,
            };
            Machine::new(&p, CostModel::alpha_like())
                .run()
                .unwrap()
                .stats
        };
        assert_eq!(mk(None).mispredicts, 0);
        assert_eq!(mk(Some(true)).mispredicts, 0);
        assert_eq!(mk(Some(false)).mispredicts, 1);
    }
}
