//! Primitive evaluation shared by both execution engines.
//!
//! The classic interpreter ([`crate::classic::ClassicMachine`]) and the
//! pre-decoded dispatcher ([`crate::Machine`]) must produce *the same*
//! values, output, and error messages for every primitive — so the
//! evaluation logic lives here, once, and both engines call it. The
//! evaluator is deliberately machine-agnostic: it reports failures as
//! bare message strings and leaves it to the caller to attach the
//! function/pc location, and it returns a `from_memory` flag instead of
//! writing the destination register so each engine applies its own
//! load-latency bookkeeping.

use std::cell::RefCell;
use std::ops::Index;
use std::rc::Rc;

use lesgs_frontend::Prim;

use crate::value::Value;

/// The largest fixed arity any [`Prim`] has (`vector-set!`).
pub(crate) const MAX_PRIM_ARGS: usize = 3;

/// A fixed-capacity argument buffer — big enough for every primitive,
/// small enough to live on the stack, so neither engine allocates a
/// `Vec` per primitive dispatch.
pub(crate) struct ArgVals {
    len: usize,
    vals: [Value; MAX_PRIM_ARGS],
}

impl ArgVals {
    /// An empty buffer.
    pub(crate) fn new() -> ArgVals {
        ArgVals {
            len: 0,
            vals: [Value::Void, Value::Void, Value::Void],
        }
    }

    /// Appends an argument.
    ///
    /// # Panics
    ///
    /// Panics past [`MAX_PRIM_ARGS`] arguments — codegen never emits a
    /// primitive with more (checked at decode time too).
    pub(crate) fn push(&mut self, v: Value) {
        self.vals[self.len] = v;
        self.len += 1;
    }

    /// Removes and returns the last argument (mirrors the `Vec::pop`
    /// the historical evaluator used for trailing operands).
    pub(crate) fn pop(&mut self) -> Value {
        debug_assert!(self.len > 0, "pop from empty ArgVals");
        self.len -= 1;
        std::mem::replace(&mut self.vals[self.len], Value::Void)
    }
}

impl Index<usize> for ArgVals {
    type Output = Value;

    fn index(&self, i: usize) -> &Value {
        debug_assert!(i < self.len, "ArgVals index {i} out of {}", self.len);
        &self.vals[i]
    }
}

/// Evaluates primitive `p` over `args`, appending any `display`/`write`
/// text to `output`. Returns the result value and a `from_memory` flag:
/// true when the result was read from the heap, so the destination
/// register takes the cost model's load latency.
///
/// Argument counts are the caller's contract (codegen emits exactly
/// [`Prim::arity`] operands); error *messages* here are byte-identical
/// to the historical in-machine evaluator so differential tests can
/// compare engines textually.
///
/// # Errors
///
/// Type errors, division by zero, fixnum overflow, index violations,
/// and the `(error …)` primitive — as bare messages, location-free.
pub(crate) fn eval_prim(
    p: Prim,
    args: &mut ArgVals,
    output: &mut String,
) -> Result<(Value, bool), String> {
    use Prim::*;

    macro_rules! fixnum {
        ($v:expr) => {
            match $v {
                Value::Fixnum(n) => *n,
                other => {
                    return Err(format!(
                        "{p}: expected number, got {}",
                        other.write_string()
                    ))
                }
            }
        };
    }
    macro_rules! pair {
        ($v:expr) => {
            match $v {
                Value::Pair(p) => p.clone(),
                other => return Err(format!("{p}: expected pair, got {}", other.write_string())),
            }
        };
    }
    macro_rules! vector {
        ($v:expr) => {
            match $v {
                Value::Vector(v) => v.clone(),
                other => {
                    return Err(format!(
                        "{p}: expected vector, got {}",
                        other.write_string()
                    ))
                }
            }
        };
    }

    let overflow = || format!("{p}: fixnum overflow");

    // True when the result comes from memory (gets load latency).
    let mut from_memory = false;
    let result = match p {
        Add | Sub | Mul | Quotient | Remainder | Modulo | Min | Max => {
            let a = fixnum!(&args[0]);
            let b = fixnum!(&args[1]);
            let r = match p {
                Add => a.checked_add(b).ok_or_else(overflow)?,
                Sub => a.checked_sub(b).ok_or_else(overflow)?,
                Mul => a.checked_mul(b).ok_or_else(overflow)?,
                Min => a.min(b),
                Max => a.max(b),
                _ => {
                    if b == 0 {
                        return Err(format!("{p}: division by zero"));
                    }
                    match p {
                        Quotient => a.checked_div(b).ok_or_else(overflow)?,
                        Remainder => a.checked_rem(b).ok_or_else(overflow)?,
                        _ => ((a % b) + b) % b,
                    }
                }
            };
            Value::Fixnum(r)
        }
        Abs => Value::Fixnum(fixnum!(&args[0]).checked_abs().ok_or_else(overflow)?),
        Add1 => Value::Fixnum(fixnum!(&args[0]).checked_add(1).ok_or_else(overflow)?),
        Sub1 => Value::Fixnum(fixnum!(&args[0]).checked_sub(1).ok_or_else(overflow)?),
        IsZero => Value::Bool(fixnum!(&args[0]) == 0),
        IsPositive => Value::Bool(fixnum!(&args[0]) > 0),
        IsNegative => Value::Bool(fixnum!(&args[0]) < 0),
        IsEven => Value::Bool(fixnum!(&args[0]) % 2 == 0),
        IsOdd => Value::Bool(fixnum!(&args[0]) % 2 != 0),
        NumEq => Value::Bool(fixnum!(&args[0]) == fixnum!(&args[1])),
        Lt => Value::Bool(fixnum!(&args[0]) < fixnum!(&args[1])),
        Le => Value::Bool(fixnum!(&args[0]) <= fixnum!(&args[1])),
        Gt => Value::Bool(fixnum!(&args[0]) > fixnum!(&args[1])),
        Ge => Value::Bool(fixnum!(&args[0]) >= fixnum!(&args[1])),
        IsEq | IsEqv => Value::Bool(args[0].eq_ptr(&args[1])),
        IsEqual => Value::Bool(args[0].eq_structural(&args[1])),
        Not => Value::Bool(!args[0].is_truthy()),
        IsPair => Value::Bool(matches!(args[0], Value::Pair(_))),
        IsNull => Value::Bool(matches!(args[0], Value::Nil)),
        IsSymbol => Value::Bool(matches!(args[0], Value::Symbol(_))),
        IsNumber => Value::Bool(matches!(args[0], Value::Fixnum(_))),
        IsBoolean => Value::Bool(matches!(args[0], Value::Bool(_))),
        IsProcedure => Value::Bool(matches!(args[0], Value::Closure(_))),
        IsVector => Value::Bool(matches!(args[0], Value::Vector(_))),
        IsString => Value::Bool(matches!(args[0], Value::Str(_))),
        IsChar => Value::Bool(matches!(args[0], Value::Char(_))),
        Cons => {
            let d = args.pop();
            let a = args.pop();
            Value::cons(a, d)
        }
        Car => {
            from_memory = true;
            let p = pair!(&args[0]);
            let v = p.borrow().0.clone();
            v
        }
        Cdr => {
            from_memory = true;
            let p = pair!(&args[0]);
            let v = p.borrow().1.clone();
            v
        }
        SetCar => {
            let v = args.pop();
            pair!(&args[0]).borrow_mut().0 = v;
            Value::Void
        }
        SetCdr => {
            let v = args.pop();
            pair!(&args[0]).borrow_mut().1 = v;
            Value::Void
        }
        MakeVector | MakeVectorFill => {
            let n = fixnum!(&args[0]);
            if n < 0 {
                return Err("make-vector: negative length".to_owned());
            }
            let fill = if p == MakeVectorFill {
                args[1].clone()
            } else {
                Value::Fixnum(0)
            };
            Value::Vector(Rc::new(RefCell::new(vec![fill; n as usize])))
        }
        VectorRef => {
            from_memory = true;
            let v = vector!(&args[0]);
            let i = fixnum!(&args[1]);
            let v = v.borrow();
            let idx = usize::try_from(i).ok().filter(|&i| i < v.len());
            match idx {
                Some(i) => v[i].clone(),
                None => return Err(format!("vector-ref: index {i} out of range")),
            }
        }
        VectorSet => {
            let x = args.pop();
            let v = vector!(&args[0]);
            let i = fixnum!(&args[1]);
            let mut v = v.borrow_mut();
            let len = v.len();
            match usize::try_from(i).ok().filter(|&i| i < len) {
                Some(i) => v[i] = x,
                None => return Err(format!("vector-set!: index {i} out of range")),
            }
            Value::Void
        }
        VectorLength => Value::Fixnum(vector!(&args[0]).borrow().len() as i64),
        StringLength => match &args[0] {
            Value::Str(s) => Value::Fixnum(s.chars().count() as i64),
            other => {
                return Err(format!(
                    "string-length: expected string, got {}",
                    other.write_string()
                ))
            }
        },
        CharToInteger => match &args[0] {
            Value::Char(c) => Value::Fixnum(*c as i64),
            other => {
                return Err(format!(
                    "char->integer: expected char, got {}",
                    other.write_string()
                ))
            }
        },
        Display => {
            output.push_str(&args[0].display_string());
            Value::Void
        }
        Write => {
            output.push_str(&args[0].write_string());
            Value::Void
        }
        Newline => {
            output.push('\n');
            Value::Void
        }
        Error => return Err(format!("error: {}", args[0].display_string())),
        Void => Value::Void,
        MakeCell => Value::Cell(Rc::new(RefCell::new(args[0].clone()))),
        CellRef => {
            from_memory = true;
            match &args[0] {
                Value::Cell(c) => c.borrow().clone(),
                other => return Err(format!("unbox: expected box, got {}", other.write_string())),
            }
        }
        CellSet => {
            let v = args.pop();
            match &args[0] {
                Value::Cell(c) => {
                    *c.borrow_mut() = v;
                    Value::Void
                }
                other => {
                    return Err(format!(
                        "set-box!: expected box, got {}",
                        other.write_string()
                    ))
                }
            }
        }
    };
    Ok((result, from_memory))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(p: Prim, args: &[Value]) -> Result<(Value, bool), String> {
        let mut vals = ArgVals::new();
        for v in args {
            vals.push(v.clone());
        }
        let mut out = String::new();
        eval_prim(p, &mut vals, &mut out)
    }

    #[test]
    fn arithmetic_and_memory_flag() {
        let (v, mem) = eval(Prim::Add, &[Value::Fixnum(2), Value::Fixnum(3)]).unwrap();
        assert!(matches!(v, Value::Fixnum(5)));
        assert!(!mem);
        let pair = Value::cons(Value::Fixnum(7), Value::Nil);
        let (v, mem) = eval(Prim::Car, &[pair]).unwrap();
        assert!(matches!(v, Value::Fixnum(7)));
        assert!(mem, "car reads the heap");
    }

    #[test]
    fn error_messages_are_location_free() {
        let e = eval(Prim::Add, &[Value::Nil, Value::Fixnum(1)]).unwrap_err();
        assert_eq!(e, "+: expected number, got ()");
        let e = eval(Prim::Quotient, &[Value::Fixnum(1), Value::Fixnum(0)]).unwrap_err();
        assert_eq!(e, "quotient: division by zero");
    }

    #[test]
    fn output_accumulates() {
        let mut vals = ArgVals::new();
        vals.push(Value::Fixnum(42));
        let mut out = String::new();
        eval_prim(Prim::Display, &mut vals, &mut out).unwrap();
        assert_eq!(out, "42");
    }
}
