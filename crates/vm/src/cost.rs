//! The cycle cost model.
//!
//! Register-register operations cost one cycle. Memory operations cost
//! `mem_cost` to issue, and loads additionally make their destination
//! unavailable for `load_latency` cycles — an instruction reading a
//! not-yet-ready register stalls. This is deliberately the simplest
//! model under which the paper's §2.2 observation can be reproduced:
//! eager restores issue loads early enough that the latency is hidden,
//! while lazy restores sit right next to their uses and stall.

/// Cycle costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Base cost of every instruction.
    pub instr_cost: u64,
    /// Issue cost of memory operations (stack and heap).
    pub mem_cost: u64,
    /// Cycles until a loaded value becomes usable.
    pub load_latency: u64,
    /// Extra cycles for a mispredicted branch.
    pub mispredict_penalty: u64,
}

impl CostModel {
    /// The model used throughout the experiments.
    pub fn alpha_like() -> CostModel {
        CostModel {
            instr_cost: 1,
            mem_cost: 2,
            load_latency: 3,
            mispredict_penalty: 2,
        }
    }

    /// Counts every instruction as one cycle (pure operation counts).
    pub fn unit() -> CostModel {
        CostModel {
            instr_cost: 1,
            mem_cost: 1,
            load_latency: 0,
            mispredict_penalty: 0,
        }
    }
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel::alpha_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn models_differ() {
        let a = CostModel::alpha_like();
        assert!(a.load_latency > 0);
        assert_eq!(CostModel::unit().load_latency, 0);
        assert_eq!(CostModel::default(), a);
    }
}
