//! The VM instruction set.

use std::fmt;

use lesgs_frontend::{FuncId, Prim};
use lesgs_ir::Reg;

/// Why a stack access happens — the instrumentation dimension of the
/// paper's stack-reference counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlotClass {
    /// Incoming stack-passed parameter.
    Param,
    /// Register save (store) / restore (load) slot.
    Save,
    /// Spilled local variable.
    Spill,
    /// Shuffle or expression temporary.
    Temp,
    /// Outgoing argument being written for a callee.
    OutArg,
}

impl SlotClass {
    /// All classes, in declaration order (used to export the full,
    /// stable set of `vm.stack_*` counters even when zero).
    pub const ALL: [SlotClass; 5] = [
        SlotClass::Param,
        SlotClass::Save,
        SlotClass::Spill,
        SlotClass::Temp,
        SlotClass::OutArg,
    ];
}

impl fmt::Display for SlotClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SlotClass::Param => "param",
            SlotClass::Save => "save",
            SlotClass::Spill => "spill",
            SlotClass::Temp => "temp",
            SlotClass::OutArg => "out",
        };
        f.write_str(s)
    }
}

/// A small immediate constant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Imm {
    /// Integer.
    Fixnum(i64),
    /// Boolean.
    Bool(bool),
    /// Character.
    Char(char),
    /// `'()`.
    Nil,
    /// Unspecified value.
    Void,
}

/// Where a call transfers control.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallTarget {
    /// A known function label.
    Func(FuncId),
    /// Through the closure in `cp` (code pointer read from the
    /// closure object).
    ClosureCp,
}

/// One VM instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// `dst ← immediate`.
    LoadImm {
        /// Destination.
        dst: Reg,
        /// The constant.
        imm: Imm,
    },
    /// `dst ← constants[idx]` (shared quoted data, strings, symbols).
    LoadConst {
        /// Destination.
        dst: Reg,
        /// Constant-pool index.
        idx: u32,
    },
    /// `dst ← src`.
    Mov {
        /// Destination.
        dst: Reg,
        /// Source.
        src: Reg,
    },
    /// `dst ← stack[fp + slot]` — a memory load with latency.
    StackLoad {
        /// Destination.
        dst: Reg,
        /// Frame offset.
        slot: u32,
        /// Instrumentation class.
        class: SlotClass,
    },
    /// `stack[fp + slot] ← src`.
    StackStore {
        /// Frame offset.
        slot: u32,
        /// Source.
        src: Reg,
        /// Instrumentation class.
        class: SlotClass,
    },
    /// `dst ← op(args…)`.
    Prim {
        /// The operation.
        op: Prim,
        /// Destination.
        dst: Reg,
        /// Operand registers.
        args: Vec<Reg>,
    },
    /// Unconditional intra-function jump.
    Jump {
        /// Target instruction index.
        target: u32,
    },
    /// Jump to `target` when `src` is `#f`; fall through otherwise.
    /// `likely` is the §6 static prediction of the *fallthrough*
    /// (`Some(true)` = fallthrough predicted; `None` defaults to
    /// fallthrough).
    BranchFalse {
        /// Condition register.
        src: Reg,
        /// Else-target instruction index.
        target: u32,
        /// Static prediction of the fallthrough path.
        likely: Option<bool>,
    },
    /// Jump to `target` when `src` is truthy; fall through otherwise.
    /// Emitted when branch layout is swapped so the likely (call-free)
    /// path falls through (§6).
    BranchTrue {
        /// Condition register.
        src: Reg,
        /// Then-target instruction index.
        target: u32,
        /// Static prediction of the fallthrough path.
        likely: Option<bool>,
    },
    /// Non-tail call: `ret ← return address; fp += frame_advance;
    /// jump target`.
    Call {
        /// Callee.
        target: CallTarget,
        /// Caller frame size (callee frame starts above it).
        frame_advance: u32,
    },
    /// Tail call: jump without touching `ret`/`fp`.
    TailCall {
        /// Callee.
        target: CallTarget,
    },
    /// Jump through the return address in `ret`, restoring `fp`.
    Return,
    /// Allocate a closure with `n_free` uninitialized slots.
    AllocClosure {
        /// Destination.
        dst: Reg,
        /// Code pointer.
        func: FuncId,
        /// Number of captured slots.
        n_free: u32,
    },
    /// `closure(clo).free[index] ← src` (captures and backpatching).
    ClosureSlotSet {
        /// Register holding the closure.
        clo: Reg,
        /// Slot index.
        index: u32,
        /// Value source.
        src: Reg,
    },
    /// `dst ← closure(cp).free[index]` — a memory load with latency.
    LoadFree {
        /// Destination.
        dst: Reg,
        /// Slot index.
        index: u32,
    },
    /// `dst ← globals[index]` — a memory load with latency.
    LoadGlobal {
        /// Destination.
        dst: Reg,
        /// Global slot.
        index: u32,
    },
    /// `globals[index] ← src`.
    StoreGlobal {
        /// Global slot.
        index: u32,
        /// Source.
        src: Reg,
    },
    /// Exchange two registers in one instruction.
    Swap {
        /// First register.
        a: Reg,
        /// Second register.
        b: Reg,
    },
    /// Apply a register permutation in place: simultaneously set
    /// `regs[i] ← old regs[perm[i]]`. At most
    /// [`MAX_PERMI_REGS`](lesgs_ir::machine::MAX_PERMI_REGS) registers;
    /// `perm` must be a bijection over `0..regs.len()` (the bytecode
    /// verifier rejects anything else).
    Permi {
        /// Registers touched, in operand order.
        regs: Vec<Reg>,
        /// The permutation over `regs` indices.
        perm: Vec<u8>,
    },
    /// Stop the machine; the program value is in `rv`.
    Halt,
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::LoadImm { dst, imm } => write!(f, "{dst} <- {imm:?}"),
            Instr::LoadConst { dst, idx } => write!(f, "{dst} <- const[{idx}]"),
            Instr::Mov { dst, src } => write!(f, "{dst} <- {src}"),
            Instr::StackLoad { dst, slot, class } => {
                write!(f, "{dst} <- fp[{slot}] ;{class}")
            }
            Instr::StackStore { slot, src, class } => {
                write!(f, "fp[{slot}] <- {src} ;{class}")
            }
            Instr::Prim { op, dst, args } => {
                write!(f, "{dst} <- {op}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Instr::Jump { target } => write!(f, "jump {target}"),
            Instr::BranchFalse {
                src,
                target,
                likely,
            } => {
                write!(f, "brfalse {src} -> {target}")?;
                if let Some(l) = likely {
                    write!(f, " ;likely={l}")?;
                }
                Ok(())
            }
            Instr::BranchTrue {
                src,
                target,
                likely,
            } => {
                write!(f, "brtrue {src} -> {target}")?;
                if let Some(l) = likely {
                    write!(f, " ;likely={l}")?;
                }
                Ok(())
            }
            Instr::Call {
                target,
                frame_advance,
            } => {
                write!(f, "call {target:?} (+{frame_advance})")
            }
            Instr::TailCall { target } => write!(f, "tailcall {target:?}"),
            Instr::Return => write!(f, "return"),
            Instr::AllocClosure { dst, func, n_free } => {
                write!(f, "{dst} <- closure {func} [{n_free}]")
            }
            Instr::ClosureSlotSet { clo, index, src } => {
                write!(f, "{clo}.free[{index}] <- {src}")
            }
            Instr::LoadFree { dst, index } => write!(f, "{dst} <- cp.free[{index}]"),
            Instr::LoadGlobal { dst, index } => write!(f, "{dst} <- global[{index}]"),
            Instr::StoreGlobal { index, src } => write!(f, "global[{index}] <- {src}"),
            Instr::Swap { a, b } => write!(f, "swap {a}, {b}"),
            Instr::Permi { regs, perm } => {
                write!(f, "permi [")?;
                for (i, r) in regs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{r}")?;
                }
                write!(f, "] perm [")?;
                for (i, p) in perm.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, "]")
            }
            Instr::Halt => write!(f, "halt"),
        }
    }
}
